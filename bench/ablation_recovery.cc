// Fig. FT — failure-recovery ablation (the quantitative version of the
// paper's §VI-D fault-tolerance comparison, enabled by pstk::ckpt).
//
// One workload (the Fig 6 PageRank), five recovery mechanisms:
//   MPI + ckpt    coordinated checkpoints to NFS at the allreduce boundary,
//                 Young/Daly interval, RestartManager replays from the last
//                 committed epoch after each failure
//   MPI abort     today's default: any failure aborts the gang, the job is
//                 requeued and reruns from scratch
//   SHMEM + ckpt  same protocol, fragments on local SSD + buddy replica
//                 (SCR partner scheme) instead of NFS
//   Spark         lineage recompute + executor reacquisition, in place
//   Hadoop MR     per-task re-execution (one chained job per iteration)
//
// Swept over node MTBF, plus a checkpoint-interval sweep at fixed MTBF to
// expose the Young/Daly trade-off. Fault plans are Exponential(seeded) and
// every run is deterministic. Time scales are chosen relative to the job
// length (a 1-second simulated job with 1-second MTBF models a 10-hour job
// with 10-hour node MTBF — only the ratios MTBF : job-length :
// requeue-delay matter); node 0 (driver / MR coordinator / rank 0) is
// exempted so the ablation measures worker recovery, not frontend loss.
//
//   ./build/bench/ablation_recovery [--smoke] [vertices=N] [iters=N]
//       [nodes=N] [--metrics] [--verify] [--trace=f.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_opts.h"
#include "ckpt/ckpt.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "mr/mr.h"
#include "serde/serde.h"
#include "shmem/shmem.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "spark/spark.h"
#include "workloads/graph.h"
#include "workloads/pagerank.h"

using namespace pstk;

namespace {

using K = std::int64_t;
using workloads::VertexId;

constexpr std::uint64_t kFaultSeed = 97;
constexpr double kTolerance = 1e-6;

// The PageRank scatter is a random-access CSR walk — each edge visit is a
// dependent load plus a scattered store, so it runs at DRAM/TLB latency
// (~300ns per edge visit), not at the node's dense-flop rate that
// Cluster::ComputeTime models (~40 GFLOP/s/core on Comet). Charge each
// edge visit at its flop-equivalent cost so the simulated iteration time
// matches a memory-bound kernel instead of being startup-dominated.
constexpr double kFlopsPerEdgeVisit = 12000.0;

struct FtConfig {
  int nodes = 8;
  int procs_per_node = 4;
  int iterations = 24;
  SimTime down_for = Seconds(1);       // transient outage Spark/MR ride out
  SimTime restart_delay = Seconds(240);  // HPC requeue (what lineage avoids)
  SimTime horizon = Seconds(6000);
  workloads::Graph graph;
  std::vector<double> reference;
};

/// Fragment layout: the iteration counter + this rank's block of the rank
/// vector. One allreduce of the zero-padded blocks rebuilds the full
/// vector on restore.
serde::Buffer EncodeSlice(int iter, const double* ranks, VertexId lo,
                          VertexId hi) {
  serde::Writer w;
  w.WriteRaw<std::int32_t>(iter);
  for (VertexId v = lo; v < hi; ++v) w.WriteRaw<double>(ranks[v]);
  return w.TakeBuffer();
}

int DecodeSlice(const serde::Buffer& fragment, double* out, VertexId lo,
                VertexId hi) {
  serde::Reader r(fragment);
  const int iter = static_cast<int>(r.ReadRaw<std::int32_t>().value());
  for (VertexId v = lo; v < hi; ++v) out[v] = r.ReadRaw<double>().value();
  return iter;
}

struct HpcRun {
  ckpt::RecoveryOutcome outcome;
  double max_delta = 0;
};

ckpt::HpcJob JobFor(const FtConfig& cfg, cluster::Cluster** cl,
                    const std::string& label) {
  ckpt::HpcJob job;
  job.spec = cluster::ClusterSpec::Comet(cfg.nodes);
  job.procs = cfg.nodes * cfg.procs_per_node;
  job.procs_per_node = cfg.procs_per_node;
  job.on_attempt = [cl](sim::Engine& engine, cluster::Cluster& cluster) {
    *cl = &cluster;
    bench::Observability::Instance().Attach(engine);
  };
  job.on_attempt_end = [label](sim::Engine& engine, int attempt, bool) {
    bench::Observability::Instance().Collect(
        engine, label + " attempt " + std::to_string(attempt));
  };
  return job;
}

Result<HpcRun> RunMpiFt(const FtConfig& cfg, const ckpt::CkptPolicy& policy,
                        const sim::FaultPlan& plan, const std::string& label) {
  HpcRun run;
  cluster::Cluster* cl = nullptr;
  const ckpt::HpcJob job = JobFor(cfg, &cl, label);
  const auto& graph = cfg.graph;
  const VertexId n = graph.vertices;
  ckpt::RestartManager manager(policy, plan);
  auto outcome = manager.RunMpi(
      job, [&](mpi::Comm& comm, ckpt::CheckpointCoordinator& coord) {
        const int rank = comm.rank();
        const int node = rank / cfg.procs_per_node;
        const auto lo = static_cast<VertexId>(
            std::uint64_t{n} * static_cast<unsigned>(rank) /
            static_cast<unsigned>(comm.size()));
        const auto hi = static_cast<VertexId>(
            std::uint64_t{n} * static_cast<unsigned>(rank + 1) /
            static_cast<unsigned>(comm.size()));
        std::vector<double> ranks(n, 0.0);
        std::vector<double> contrib(n, 0.0);
        std::vector<double> summed(n, 0.0);
        comm.Barrier();  // collective boundary: channels quiesced
        // Uniform restore: a committed epoch has a fragment for every rank,
        // so either all ranks decode a slice or all seed the initial 1.0,
        // and the rebuild Allreduce runs unconditionally (the shape the
        // mpi-collective-in-divergent-branch lint rule demands).
        int start_iter = 0;
        const serde::Buffer* frag = coord.Restore(comm.ctx(), rank, node);
        if (frag != nullptr) {
          start_iter = DecodeSlice(*frag, contrib.data(), lo, hi) + 1;
        } else {
          std::fill(contrib.begin() + lo, contrib.begin() + hi, 1.0);
        }
        comm.Allreduce<double>(contrib, ranks);
        for (int iter = start_iter; iter < cfg.iterations; ++iter) {
          std::fill(contrib.begin(), contrib.end(), 0.0);
          for (VertexId v = lo; v < hi; ++v) {
            const std::size_t degree = graph.out_degree(v);
            if (degree == 0) continue;
            const double share = ranks[v] / static_cast<double>(degree);
            for (std::uint64_t e = graph.offsets[v]; e < graph.offsets[v + 1];
                 ++e) {
              contrib[graph.targets[e]] += share;
            }
          }
          const auto local_edges = graph.offsets[hi] - graph.offsets[lo];
          comm.ctx().Compute(cl->ComputeTime(
              static_cast<double>(local_edges) * kFlopsPerEdgeVisit +
                  static_cast<double>(n),
              1));
          comm.Allreduce<double>(contrib, summed);
          for (VertexId v = 0; v < n; ++v) {
            ranks[v] = workloads::kBaseRank + workloads::kDamping * summed[v];
          }
          comm.ctx().Compute(cl->ComputeTime(static_cast<double>(n), 1));
          const serde::Buffer state = EncodeSlice(iter, ranks.data(), lo, hi);
          coord.Checkpoint(comm.ctx(), rank, node, iter, state);
        }
        if (rank == 0) {
          run.max_delta = workloads::MaxRankDelta(ranks, cfg.reference);
        }
      });
  if (!outcome.ok()) return outcome.status();
  run.outcome = outcome.value();
  return run;
}

Result<HpcRun> RunShmemFt(const FtConfig& cfg, const ckpt::CkptPolicy& policy,
                          const sim::FaultPlan& plan,
                          const std::string& label) {
  HpcRun run;
  cluster::Cluster* cl = nullptr;
  const ckpt::HpcJob job = JobFor(cfg, &cl, label);
  const auto& graph = cfg.graph;
  const VertexId n = graph.vertices;
  ckpt::RestartManager manager(policy, plan);
  auto outcome = manager.RunShmem(
      job, [&](shmem::Pe& pe, ckpt::CheckpointCoordinator& coord) {
        const int me = pe.my_pe();
        const int node = me / cfg.procs_per_node;
        const auto lo = static_cast<VertexId>(
            std::uint64_t{n} * static_cast<unsigned>(me) /
            static_cast<unsigned>(pe.n_pes()));
        const auto hi = static_cast<VertexId>(
            std::uint64_t{n} * static_cast<unsigned>(me + 1) /
            static_cast<unsigned>(pe.n_pes()));
        auto ranks_s = pe.Malloc<double>(n);
        auto contrib_s = pe.Malloc<double>(n);
        auto summed_s = pe.Malloc<double>(n);
        double* ranks = pe.Local(ranks_s);
        double* contrib = pe.Local(contrib_s);
        double* summed = pe.Local(summed_s);
        std::fill(ranks, ranks + n, 0.0);
        std::fill(contrib, contrib + n, 0.0);
        pe.BarrierAll();  // collective boundary: channels quiesced
        // Same uniform-restore shape as the MPI body: decode-or-seed is
        // per-PE local, the rebuilding SumToAll is unconditional.
        int start_iter = 0;
        const serde::Buffer* frag = coord.Restore(pe.ctx(), me, node);
        if (frag != nullptr) {
          start_iter = DecodeSlice(*frag, contrib, lo, hi) + 1;
        } else {
          std::fill(contrib + lo, contrib + hi, 1.0);
        }
        pe.SumToAll(ranks_s, contrib_s, n);
        for (int iter = start_iter; iter < cfg.iterations; ++iter) {
          std::fill(contrib, contrib + n, 0.0);
          for (VertexId v = lo; v < hi; ++v) {
            const std::size_t degree = graph.out_degree(v);
            if (degree == 0) continue;
            const double share = ranks[v] / static_cast<double>(degree);
            for (std::uint64_t e = graph.offsets[v]; e < graph.offsets[v + 1];
                 ++e) {
              contrib[graph.targets[e]] += share;
            }
          }
          const auto local_edges = graph.offsets[hi] - graph.offsets[lo];
          pe.ctx().Compute(cl->ComputeTime(
              static_cast<double>(local_edges) * kFlopsPerEdgeVisit +
                  static_cast<double>(n),
              1));
          pe.SumToAll(summed_s, contrib_s, n);
          for (VertexId v = 0; v < n; ++v) {
            ranks[v] = workloads::kBaseRank + workloads::kDamping * summed[v];
          }
          pe.ctx().Compute(cl->ComputeTime(static_cast<double>(n), 1));
          const serde::Buffer state = EncodeSlice(iter, ranks, lo, hi);
          coord.Checkpoint(pe.ctx(), me, node, iter, state);
        }
        if (me == 0) {
          run.max_delta = workloads::MaxRankDelta(
              std::vector<double>(ranks, ranks + n), cfg.reference);
        }
      });
  if (!outcome.ok()) return outcome.status();
  run.outcome = outcome.value();
  return run;
}

struct BigDataRun {
  bool lost = true;
  SimTime elapsed = 0;
  double max_delta = 0;
};

/// Tuned BigDataBench Spark PageRank (the Fig 6 implementation) under the
/// fault plan, with standalone-master executor reacquisition so healed
/// nodes rejoin the app.
BigDataRun RunSparkFt(const FtConfig& cfg, const sim::FaultPlan* plan,
                      const std::string& label) {
  BigDataRun out;
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(cfg.nodes));
  spark::SparkOptions options;
  options.executors_per_node = cfg.procs_per_node;
  options.reacquire_executors = true;
  spark::MiniSpark spark(cluster, nullptr, options);
  bench::Observability::Instance().Attach(engine);
  if (plan != nullptr) cluster.ApplyFaultPlan(*plan);

  std::vector<std::pair<K, std::vector<K>>> links_data;
  links_data.reserve(cfg.graph.vertices);
  for (VertexId v = 0; v < cfg.graph.vertices; ++v) {
    std::vector<K> targets;
    targets.reserve(cfg.graph.out_degree(v));
    for (std::uint64_t e = cfg.graph.offsets[v]; e < cfg.graph.offsets[v + 1];
         ++e) {
      targets.push_back(cfg.graph.targets[e]);
    }
    links_data.emplace_back(v, std::move(targets));
  }

  Status job_status;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    const SimTime job_start = sc.ctx().now();
    const int parts = sc.default_parallelism();
    auto links = sc.Parallelize(links_data, parts)
                     .AsPairs<K, std::vector<K>>()
                     .PartitionBy(parts);
    links.Persist(spark::StorageLevel::kMemoryAndDisk);
    auto ranks = links.MapValues<double>([](const std::vector<K>&) {
      return 1.0;
    });
    for (int i = 0; i < cfg.iterations; ++i) {
      auto contribs =
          links.Join(ranks)
              .AsRdd()
              .FlatMap<std::pair<K, double>>(
                  [](const std::pair<K, std::pair<std::vector<K>, double>>&
                         entry) {
                    const auto& [src, pair] = entry;
                    const auto& [urls, rank] = pair;
                    std::vector<std::pair<K, double>> contributions;
                    contributions.reserve(urls.size() + 1);
                    contributions.emplace_back(src, 0.0);
                    const double share =
                        rank / static_cast<double>(urls.size());
                    for (K url : urls) contributions.emplace_back(url, share);
                    return contributions;
                  })
              .AsPairs<K, double>();
      auto summed = contribs.ReduceByKey(
          [](double a, double b) { return a + b; }, parts);
      ranks = summed.MapValues<double>([](const double& sum) {
        return workloads::kBaseRank + workloads::kDamping * sum;
      });
      ranks.Persist(spark::StorageLevel::kMemoryAndDisk);
      auto count = ranks.Count();
      if (!count.ok()) {
        job_status = count.status();
        return;
      }
    }
    auto final_ranks = ranks.CollectAsMap();
    if (!final_ranks.ok()) {
      job_status = final_ranks.status();
      return;
    }
    std::vector<double> dense(cfg.reference.size(), workloads::kBaseRank);
    for (const auto& [v, r] : final_ranks.value()) {
      if (v >= 0 && static_cast<std::size_t>(v) < dense.size()) {
        dense[static_cast<std::size_t>(v)] = r;
      }
    }
    out.max_delta = workloads::MaxRankDelta(dense, cfg.reference);
    out.elapsed = sc.ctx().now() - job_start;
    out.lost = false;
  });
  bench::Observability::Instance().Collect(engine, label);
  if (!result.ok() || !job_status.ok()) out.lost = true;
  return out;
}

std::string FormatRank(double rank) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", rank);
  return buf;
}

/// Hadoop-style iterative PageRank: one chained MR job per iteration, each
/// reading the previous job's output directory (ranks + adjacency in the
/// line format "v\trank t1 t2 ..."). Recovery is MR's own task
/// re-execution; jobs are chained from the completion callback so the
/// whole run shares one engine (and one fault plan).
BigDataRun RunMrFt(const FtConfig& cfg, const sim::FaultPlan* plan,
                   const std::string& label) {
  BigDataRun out;
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(cfg.nodes));
  dfs::DfsOptions dfs_options;
  dfs_options.block_size = 256 * kKiB;  // a dozen map splits per job
  dfs::MiniDfs dfs(cluster, dfs_options);
  bench::Observability::Instance().Attach(engine);

  std::string init;
  for (VertexId v = 0; v < cfg.graph.vertices; ++v) {
    init += std::to_string(v);
    init += "\t1";
    for (std::uint64_t e = cfg.graph.offsets[v]; e < cfg.graph.offsets[v + 1];
         ++e) {
      init += ' ';
      init += std::to_string(cfg.graph.targets[e]);
    }
    init += '\n';
  }
  if (!dfs.Install("/pr/iter-0", init, kFaultSeed).ok()) return out;
  if (plan != nullptr) cluster.ApplyFaultPlan(*plan);

  mr::MrEngine mr_engine(cluster, dfs);
  auto map = [](const std::string& line, mr::Emitter& emit) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) return;
    const std::string key = line.substr(0, tab);
    char* cursor = nullptr;
    const double rank = std::strtod(line.c_str() + tab + 1, &cursor);
    std::vector<std::string> targets;
    while (cursor != nullptr && *cursor == ' ') {
      const char* start = ++cursor;
      while (*cursor != '\0' && *cursor != ' ') ++cursor;
      targets.emplace_back(start, static_cast<std::size_t>(cursor - start));
    }
    std::string links = "L";
    if (!targets.empty()) {
      const std::string share =
          FormatRank(rank / static_cast<double>(targets.size()));
      for (const std::string& target : targets) {
        emit.Emit(target, share);
        links += ' ';
        links += target;
      }
    }
    emit.Emit(key, links);  // every vertex survives into the next iteration
  };
  auto reduce = [](const std::string& key,
                   const std::vector<std::string>& values, mr::Emitter& emit) {
    double sum = 0;
    std::string links;
    for (const std::string& value : values) {
      if (!value.empty() && value[0] == 'L') {
        links = value.size() > 1 ? value.substr(2) : std::string();
      } else {
        sum += std::strtod(value.c_str(), nullptr);
      }
    }
    std::string line =
        FormatRank(workloads::kBaseRank + workloads::kDamping * sum);
    if (!links.empty()) {
      line += ' ';
      line += links;
    }
    emit.Emit(key, line);
  };

  bool failed = false;
  std::function<void(int)> chain;
  chain = [&](int iter) {
    if (iter == cfg.iterations) {
      engine.Spawn("ft-check", [&](sim::Context& ctx) {
        out.elapsed = ctx.now();
        std::vector<double> dense(cfg.reference.size(), workloads::kBaseRank);
        for (int r = 0; r < cfg.nodes; ++r) {
          auto content = dfs.ReadAll(
              ctx, 0,
              "/pr/iter-" + std::to_string(cfg.iterations) + "/part-r-" +
                  std::to_string(r));
          if (!content.ok()) {
            failed = true;
            return;
          }
          const std::string text = content.value().ToString();
          std::size_t pos = 0;
          while (pos < text.size()) {
            const auto eol = text.find('\n', pos);
            const auto end = eol == std::string::npos ? text.size() : eol;
            const auto tab = text.find('\t', pos);
            if (tab != std::string::npos && tab < end) {
              const auto v = static_cast<std::size_t>(
                  std::strtoll(text.c_str() + pos, nullptr, 10));
              if (v < dense.size()) {
                dense[v] = std::strtod(text.c_str() + tab + 1, nullptr);
              }
            }
            pos = end + 1;
          }
        }
        out.max_delta = workloads::MaxRankDelta(dense, cfg.reference);
        out.lost = false;
      });
      return;
    }
    mr::JobConf conf;
    conf.name = "pr-" + std::to_string(iter);
    conf.input_path = "/pr/iter-" + std::to_string(iter);
    conf.output_path = "/pr/iter-" + std::to_string(iter + 1);
    conf.num_reducers = cfg.nodes;
    mr_engine.Submit(conf, map, reduce, std::nullopt,
                     [&chain, &failed, iter](Result<mr::JobResult> r) {
                       if (!r.ok()) {
                         failed = true;
                         return;
                       }
                       chain(iter + 1);
                     });
  };
  chain(0);
  engine.Run();
  bench::Observability::Instance().Collect(engine, label);
  if (failed) out.lost = true;
  return out;
}

std::string HpcCell(const Result<HpcRun>& run) {
  if (!run.ok()) return "error";
  if (!run->outcome.completed) {
    return "DNF (" + std::to_string(run->outcome.restarts) + "r)";
  }
  std::string cell = FormatDuration(run->outcome.time_to_solution);
  if (run->outcome.restarts > 0) {
    cell += " (" + std::to_string(run->outcome.restarts) + "r)";
  }
  return cell;
}

std::string BigDataCell(const BigDataRun& run) {
  return run.lost ? "JOB LOST" : FormatDuration(run.elapsed);
}

/// Track the worst |err| vs the serial reference across completed runs.
struct Accuracy {
  double worst = 0;
  void Note(const Result<HpcRun>& run) {
    if (run.ok() && run->outcome.completed) {
      worst = std::max(worst, run->max_delta);
    }
  }
  void Note(const BigDataRun& run) {
    if (!run.lost) worst = std::max(worst, run.max_delta);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  bool smoke = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        smoke = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    argv[argc] = nullptr;
  }
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  FtConfig cfg;
  cfg.nodes = static_cast<int>(config->GetInt("nodes", 8));
  cfg.iterations =
      static_cast<int>(config->GetInt("iters", smoke ? 3 : 24));
  if (smoke) cfg.horizon = Seconds(1200);
  workloads::GraphParams gparams;
  gparams.vertices = static_cast<VertexId>(
      config->GetInt("vertices", smoke ? 6000 : 60000));
  cfg.graph = workloads::GenerateGraph(gparams);
  cfg.reference = workloads::PageRankReference(cfg.graph, cfg.iterations);

  std::printf(
      "Fig. FT — failure recovery ablation: PageRank, %u vertices, %llu "
      "edges, %d iterations, %d nodes x %d procs\n",
      cfg.graph.vertices,
      static_cast<unsigned long long>(cfg.graph.edge_count()), cfg.iterations,
      cfg.nodes, cfg.procs_per_node);

  // fig=a / fig=b / fig=ab selects the panels (b is MPI-only and much
  // cheaper to iterate on).
  const std::string fig = config->GetString("fig", "ab");
  const bool run_a = fig.find('a') != std::string::npos;
  const bool run_b = fig.find('b') != std::string::npos;

  Accuracy accuracy;
  const sim::FaultPlan no_faults;

  // Measure the per-epoch checkpoint cost C on failure-free runs: a plain
  // run vs one checkpointing at every collective boundary; the time delta
  // per committed epoch is C (serialize + NFS write under §IV contention).
  struct Calib {
    SimTime plain_time = 0;
    SimTime cost = 0;
    std::string plain_cell;
  };
  auto calibrate = [&](const FtConfig& c, const ckpt::CkptPolicy& b,
                       const char* tag) -> std::optional<Calib> {
    auto plain = RunMpiFt(c, b, no_faults, std::string(tag) + " calib-plain");
    ckpt::CkptPolicy every = b;
    every.interval = 1e-9;  // checkpoint at every collective boundary
    auto dense =
        RunMpiFt(c, every, no_faults, std::string(tag) + " calib-ckpt");
    if (!plain.ok() || !dense.ok()) return std::nullopt;
    accuracy.Note(plain);
    accuracy.Note(dense);
    const int commits = std::max(dense->outcome.checkpoints_committed, 1);
    Calib out;
    out.plain_time = plain->outcome.time_to_solution;
    out.cost = std::max(
        (dense->outcome.time_to_solution - out.plain_time) / commits, 1e-4);
    out.plain_cell = HpcCell(plain);
    std::printf(
        "\n%s: failure-free MPI %s | checkpoint cost C = %s/epoch "
        "(%s over %d epochs to NFS)\n",
        tag, FormatDuration(out.plain_time).c_str(),
        FormatDuration(out.cost).c_str(),
        FormatBytes(dense->outcome.snapshot_bytes).c_str(), commits);
    return out;
  };

  // --- Fig FT-a: MTBF sweep, Young/Daly interval per point ----------------
  if (run_a) {
    ckpt::CkptPolicy base;
    base.target_disk = ckpt::Target::kNfs;
    base.restart_delay = cfg.restart_delay;
    const auto calib = calibrate(cfg, base, "Fig FT-a");
    if (!calib) {
      std::fprintf(stderr, "FT-a calibration failed\n");
      return 1;
    }
    const SimTime ckpt_cost = calib->cost;

    std::vector<double> mtbfs = smoke ? std::vector<double>{4}
                                      : std::vector<double>{0.5, 2, 8, 40};
    Table sweep;
    sweep.SetHeader({"MTBF", "tau*", "MPI+ckpt NFS", "MPI abort-rerun",
                     "SHMEM+ckpt SSD", "Spark lineage", "MR retry"});

    {
      auto spark = RunSparkFt(cfg, nullptr, "spark clean");
      auto mr = RunMrFt(cfg, nullptr, "mr clean");
      accuracy.Note(spark);
      accuracy.Note(mr);
      auto shmem = RunShmemFt(cfg, base, no_faults, "shmem clean");
      accuracy.Note(shmem);
      sweep.Row()
          .Cell("none")
          .Cell("-")
          .Cell(calib->plain_cell)
          .Cell(calib->plain_cell)
          .Cell(HpcCell(shmem))
          .Cell(BigDataCell(spark))
          .Cell(BigDataCell(mr));
    }

    for (std::size_t i = 0; i < mtbfs.size(); ++i) {
      const double mtbf = mtbfs[i];
      const auto plan =
          sim::FaultPlan::Exponential(mtbf, cfg.horizon, cfg.nodes,
                                      /*first_node=*/1, cfg.down_for,
                                      kFaultSeed + i);
      const SimTime tau = ckpt::YoungDalyInterval(ckpt_cost, mtbf);
      const std::string suffix = " mtbf=" + FormatDuration(mtbf);

      ckpt::CkptPolicy nfs = base;
      nfs.interval = tau;
      auto mpi_ckpt = RunMpiFt(cfg, nfs, plan, "mpi-ckpt" + suffix);

      ckpt::CkptPolicy abort_policy = base;  // interval 0: abort + rerun
      auto mpi_abort = RunMpiFt(cfg, abort_policy, plan, "mpi-abort" + suffix);

      ckpt::CkptPolicy ssd = base;
      ssd.interval = tau;
      ssd.target_disk = ckpt::Target::kLocalSsd;
      ssd.replicate = true;  // SCR partner copy on the next node
      auto shmem_ckpt = RunShmemFt(cfg, ssd, plan, "shmem-ckpt" + suffix);

      auto spark = RunSparkFt(cfg, &plan, "spark" + suffix);
      auto mr = RunMrFt(cfg, &plan, "mr" + suffix);
      accuracy.Note(mpi_ckpt);
      accuracy.Note(mpi_abort);
      accuracy.Note(shmem_ckpt);
      accuracy.Note(spark);
      accuracy.Note(mr);

      sweep.Row()
          .Cell(FormatDuration(mtbf))
          .Cell(FormatDuration(tau))
          .Cell(HpcCell(mpi_ckpt))
          .Cell(HpcCell(mpi_abort))
          .Cell(HpcCell(shmem_ckpt))
          .Cell(BigDataCell(spark))
          .Cell(BigDataCell(mr));
    }
    std::printf(
        "\nFig FT-a: time-to-solution by node MTBF — requeue delay %s, node "
        "repair %s\n(Nr = N restarts; DNF = still failing after max "
        "restarts)\n",
        FormatDuration(cfg.restart_delay).c_str(),
        FormatDuration(cfg.down_for).c_str());
    sweep.Print();
  }

  // --- Fig FT-b: checkpoint-interval sweep at fixed MTBF ------------------
  if (run_b) {
    // FT-b isolates the Young/Daly tradeoff: the same kernel on a longer
    // MPI-only job (more iterations, smaller graph), failures at one fixed
    // MTBF, and a small restart delay (reserved nodes, immediate requeue)
    // so the interval terms are not drowned by batch-queue time.
    FtConfig cfg_b = cfg;
    cfg_b.iterations =
        static_cast<int>(config->GetInt("iters_b", smoke ? 3 : 1800));
    cfg_b.restart_delay = Seconds(5);
    workloads::GraphParams gb;
    gb.vertices = static_cast<VertexId>(
        config->GetInt("vertices_b", smoke ? 6000 : 24000));
    cfg_b.graph = workloads::GenerateGraph(gb);
    cfg_b.reference =
        workloads::PageRankReference(cfg_b.graph, cfg_b.iterations);

    ckpt::CkptPolicy base_b;
    base_b.target_disk = ckpt::Target::kNfs;
    base_b.restart_delay = cfg_b.restart_delay;
    const auto calib = calibrate(cfg_b, base_b, "Fig FT-b");
    if (!calib) {
      std::fprintf(stderr, "FT-b calibration failed\n");
      return 1;
    }

    const double mtbf_u = smoke ? 4.0 : 1.0;
    const auto plan_u =
        sim::FaultPlan::Exponential(mtbf_u, cfg_b.horizon, cfg_b.nodes,
                                    /*first_node=*/1, cfg_b.down_for,
                                    kFaultSeed + 11);
    const SimTime tau_u = ckpt::YoungDalyInterval(calib->cost, mtbf_u);
    std::vector<double> factors =
        smoke ? std::vector<double>{0.5, 1, 4}
              : std::vector<double>{0.125, 0.25, 0.5, 1, 2, 4};
    Table interval_table;
    interval_table.SetHeader({"interval", "time-to-solution", "restarts",
                              "epochs committed", "rollback work"});
    {
      auto abort_run =
          RunMpiFt(cfg_b, base_b, plan_u, "mpi-abort interval-sweep");
      accuracy.Note(abort_run);
      interval_table.Row()
          .Cell("none (abort)")
          .Cell(abort_run.ok() && abort_run->outcome.completed
                    ? FormatDuration(abort_run->outcome.time_to_solution)
                    : "DNF")
          .Cell(abort_run.ok() ? std::int64_t{abort_run->outcome.restarts}
                               : std::int64_t{-1})
          .Cell(std::int64_t{0})
          .Cell(abort_run.ok()
                    ? FormatDuration(abort_run->outcome.rollback_work)
                    : "-");
    }
    for (double factor : factors) {
      ckpt::CkptPolicy policy = base_b;
      policy.interval = tau_u * factor;
      auto run =
          RunMpiFt(cfg_b, policy, plan_u,
                   "mpi-ckpt interval=" + FormatDuration(policy.interval));
      accuracy.Note(run);
      std::string name = FormatDuration(policy.interval);
      if (factor == 1) name += " = tau*";
      interval_table.Row()
          .Cell(name)
          .Cell(run.ok() && run->outcome.completed
                    ? FormatDuration(run->outcome.time_to_solution)
                    : "DNF")
          .Cell(run.ok() ? std::int64_t{run->outcome.restarts}
                         : std::int64_t{-1})
          .Cell(run.ok() ? std::int64_t{run->outcome.checkpoints_committed}
                         : std::int64_t{-1})
          .Cell(run.ok() ? FormatDuration(run->outcome.rollback_work) : "-");
    }
    std::printf(
        "\nFig FT-b: MPI+ckpt(NFS) checkpoint-interval sweep — %u vertices, "
        "%d iterations, MTBF %s, restart delay %s (Young/Daly tau* = %s)\n",
        cfg_b.graph.vertices, cfg_b.iterations,
        FormatDuration(mtbf_u).c_str(),
        FormatDuration(cfg_b.restart_delay).c_str(),
        FormatDuration(tau_u).c_str());
    interval_table.Print();
  }

  std::printf(
      "\nmax |rank err| vs serial reference over completed runs: %.2e\n"
      "\nExpected shape: at large MTBF the raw-speed ordering of Fig 6 wins\n"
      "(MPI ~10-100x Spark); as MTBF approaches the HPC job length, every\n"
      "failure costs MPI a requeue delay that Spark's in-place lineage\n"
      "recovery never pays, and the ordering inverts. Checkpointing beats\n"
      "abort-rerun by shrinking the work a restart replays; the interval\n"
      "sweep bottoms out near Young/Daly tau* = sqrt(2*C*MTBF).\n",
      accuracy.worst);
  if (accuracy.worst > kTolerance) {
    std::fprintf(stderr,
                 "FAIL: completed run diverged from reference (%.2e > %.2e)\n",
                 accuracy.worst, kTolerance);
    return 1;
  }
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
