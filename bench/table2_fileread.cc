// Table II: the parallel file read microbenchmark — read an 8 GB and an
// 80 GB text file in parallel (with a counting action to force
// materialization) under three configurations:
//   1. Spark reading from MiniDFS ("Spark on HDFS"),
//   2. Spark reading node-local replicas ("Spark on local/scratch fs"),
//   3. MPI parallel I/O on node-local replicas.
//
// Paper values on Comet (8 nodes x 8 procs):
//     8 GB:  Spark+HDFS 8.2 s | Spark local 6.5 s | MPI 1.2 s
//    80 GB:  Spark+HDFS 46.75 s | Spark local 29.9 s | MPI 14.16 s
//
//   ./build/bench/table2_fileread [nodes=8] [ppn=8] [scale=0.001]
#include <cstdio>
#include <string>

#include "bench_opts.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "sim/engine.h"
#include "spark/spark.h"
#include "workloads/stackexchange.h"

using namespace pstk;

namespace {

std::string MakeDataset(Bytes actual_bytes) {
  workloads::StackExchangeParams params;
  params.target_bytes = actual_bytes;
  return workloads::GenerateStackExchange(params, nullptr);
}

/// Spark reading from MiniDFS; returns the in-app job time of the count.
SimTime SparkHdfsRead(int nodes, int ppn, double scale,
                      const std::string& data) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), scale);
  dfs::MiniDfs dfs(cluster);  // 128 MB blocks, replication 3
  if (!dfs.Install("/in/file.txt", data).ok()) return -1;
  spark::SparkOptions options;
  options.executors_per_node = ppn;
  spark::MiniSpark spark(cluster, &dfs, options);
  bench::Observability::Instance().Attach(engine);
  SimTime job = -1;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    auto lines = sc.TextFile("/in/file.txt");
    if (!lines.ok()) return;
    const SimTime start = sc.ctx().now();
    if (!lines->Count().ok()) return;
    job = sc.ctx().now() - start;
  });
  bench::Observability::Instance().Collect(
      engine, "spark-hdfs " + FormatBytes(data.size()));
  return result.ok() ? job : -1;
}

/// Spark reading node-local replicas.
SimTime SparkLocalRead(int nodes, int ppn, double scale,
                       const std::string& data) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), scale);
  for (int n = 0; n < nodes; ++n) {
    cluster.scratch(n).Install("/scratch/file.txt", data);
  }
  spark::SparkOptions options;
  options.executors_per_node = ppn;
  spark::MiniSpark spark(cluster, nullptr, options);
  bench::Observability::Instance().Attach(engine);
  SimTime job = -1;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    auto lines = sc.TextFileLocal("/scratch/file.txt");
    if (!lines.ok()) return;
    const SimTime start = sc.ctx().now();
    if (!lines->Count().ok()) return;
    job = sc.ctx().now() - start;
  });
  bench::Observability::Instance().Collect(
      engine, "spark-local " + FormatBytes(data.size()));
  return result.ok() ? job : -1;
}

/// MPI collective read + count from node-local replicas.
SimTime MpiRead(int nodes, int ppn, double scale, const std::string& data) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), scale);
  for (int n = 0; n < nodes; ++n) {
    cluster.scratch(n).Install("/scratch/file.txt", data);
  }
  mpi::World world(cluster, nodes * ppn, ppn);
  bench::Observability::Instance().Attach(engine);
  SimTime job = -1;
  auto elapsed = world.RunSpmd([&](mpi::Comm& comm) {
    auto file = mpi::File::OpenAll(comm, "/scratch/file.txt");
    if (!file.ok()) return;
    comm.Barrier();
    const SimTime start = comm.ctx().now();
    const Bytes chunk = file->size() / comm.size();
    const Bytes offset = chunk * comm.rank();
    const Bytes len =
        comm.rank() == comm.size() - 1 ? file->size() - offset : chunk;
    // Uniform guard: every rank tests the largest per-rank length (the
    // last rank's remainder), so all ranks bail out together instead of
    // one rank abandoning the collectives below.  // paper's limitation
    const Bytes max_len = file->size() - chunk * (comm.size() - 1);
    if (max_len > static_cast<Bytes>(INT32_MAX)) return;
    auto part =
        file->ReadLinesAtAll(comm, offset, static_cast<std::int32_t>(len));
    if (!part.ok()) return;
    // The added counting operation (newline count, native speed).
    std::uint64_t local = 0;
    for (char c : part.value()) local += c == '\n' ? 1 : 0;
    comm.ctx().Compute(static_cast<double>(len) / 2.0e9);
    std::vector<std::uint64_t> mine{local};
    std::vector<std::uint64_t> total(1);
    comm.Reduce<std::uint64_t>(mine, total, 0);
    comm.Barrier();
    if (comm.rank() == 0) job = comm.ctx().now() - start;
  });
  bench::Observability::Instance().Collect(
      engine, "mpi-read " + FormatBytes(data.size()));
  return elapsed.ok() ? job : -1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 8));
  const int ppn = static_cast<int>(config->GetInt("ppn", 8));
  const double scale = config->GetDouble("scale", 0.001);

  std::printf("Table II — Parallel file read microbenchmark "
              "(%d nodes x %d procs, scale=%g)\n\n", nodes, ppn, scale);
  Table table;
  table.SetHeader({"logical size", "Spark on HDFS", "Spark on local fs",
                   "MPI (scratch fs)", "paper"});
  const struct {
    Bytes logical;
    const char* paper;
  } rows[] = {
      {8 * kGiB, "8.2s / 6.5s / 1.2s"},
      {80 * kGiB, "46.75s / 29.9s / 14.16s"},
  };
  for (const auto& row : rows) {
    const auto actual =
        static_cast<Bytes>(static_cast<double>(row.logical) * scale);
    const std::string data = MakeDataset(actual);
    const SimTime hdfs = SparkHdfsRead(nodes, ppn, scale, data);
    const SimTime local = SparkLocalRead(nodes, ppn, scale, data);
    const SimTime mpi = MpiRead(nodes, ppn, scale, data);
    table.Row()
        .Cell(FormatBytes(row.logical))
        .Cell(FormatDuration(hdfs))
        .Cell(FormatDuration(local))
        .Cell(FormatDuration(mpi))
        .Cell(row.paper);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): MPI fastest (thin native I/O path);\n"
      "HDFS adds ~25%% over Spark-on-local (extra distribution layer), the\n"
      "price of transparent datanode fault handling.\n");
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
