// Figure 3: the reduce microbenchmark — OSU-style MPI_Reduce latency vs
// the equivalent Spark parallelize().reduce() job, on 64 processes
// (8 nodes x 8 processes/node), for element counts from 4 B to 1 MB of
// floats per process.
//
// Spark semantics per the paper (§V-B1): the Spark array length equals
// (number of processes) x (MPI per-process array length), reduced to one
// scalar; Spark-RDMA differs only in the shuffle engine, which this
// benchmark barely exercises — hence its marginal effect.
//
//   ./build/bench/fig3_reduce [procs=64] [ppn=8] [iters=5]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_opts.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "mpi/mpi.h"
#include "sim/engine.h"
#include "spark/spark.h"

using namespace pstk;

namespace {

SimTime MeasureMpiReduce(int procs, int ppn, Bytes message_bytes, int iters) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(
                                       (procs + ppn - 1) / ppn));
  mpi::World world(cluster, procs, ppn);
  bench::Observability::Instance().Attach(engine);
  SimTime per_op = 0;
  auto elapsed = world.RunSpmd([&](mpi::Comm& comm) {
    const std::size_t elements = message_bytes / sizeof(float);
    std::vector<float> data(std::max<std::size_t>(1, elements), 1.0F);
    std::vector<float> out(data.size());
    comm.Barrier();
    const SimTime start = comm.ctx().now();
    for (int i = 0; i < iters; ++i) {
      comm.Reduce<float>(data, out, /*root=*/0);
    }
    comm.Barrier();
    if (comm.rank() == 0) {
      per_op = (comm.ctx().now() - start) / iters;
    }
  });
  bench::Observability::Instance().Collect(
      engine, "mpi-reduce " + FormatBytes(message_bytes));
  if (!elapsed.ok()) return -1;
  return per_op;
}

SimTime MeasureSparkReduce(int procs, int ppn, Bytes message_bytes, int iters,
                           bool rdma) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(
                                       (procs + ppn - 1) / ppn));
  spark::SparkOptions options;
  options.executors_per_node = ppn;
  options.rdma_shuffle = rdma;
  spark::MiniSpark spark(cluster, nullptr, options);
  bench::Observability::Instance().Attach(engine);

  SimTime per_op = -1;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    // 'size' = number_of_processes * MPI_array_size (paper Fig 2).
    const std::size_t elements =
        std::max<std::size_t>(1, message_bytes / sizeof(float)) *
        static_cast<std::size_t>(procs);
    const SimTime start = sc.ctx().now();
    for (int i = 0; i < iters; ++i) {
      std::vector<float> zeros(elements, 1.0F);
      auto rdd = sc.Parallelize(std::move(zeros), procs);
      auto sum = rdd.Reduce([](const float& a, const float& b) {
        return a + b;
      });
      if (!sum.ok()) return;
    }
    per_op = (sc.ctx().now() - start) / iters;
  });
  bench::Observability::Instance().Collect(
      engine, std::string("spark-reduce ") + FormatBytes(message_bytes) +
                  (rdma ? " rdma" : ""));
  if (!result.ok()) return -1;
  return per_op;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int procs = static_cast<int>(config->GetInt("procs", 64));
  const int ppn = static_cast<int>(config->GetInt("ppn", 8));
  const int iters = static_cast<int>(config->GetInt("iters", 5));

  std::printf("Figure 3 — Reduce microbenchmark, %d processes "
              "(%d processes/node)\n\n", procs, ppn);
  Table table;
  table.SetHeader({"msg size/proc", "MPI", "Spark (IPoIB)", "Spark-RDMA",
                   "Spark/MPI"});
  const Bytes sizes[] = {4,        64,        1 * kKiB,  16 * kKiB,
                         128 * kKiB, 512 * kKiB, 1 * kMiB};
  for (Bytes size : sizes) {
    const SimTime mpi = MeasureMpiReduce(procs, ppn, size, iters);
    const SimTime sp = MeasureSparkReduce(procs, ppn, size, iters, false);
    const SimTime sp_rdma = MeasureSparkReduce(procs, ppn, size, iters, true);
    table.Row()
        .Cell(FormatBytes(size))
        .Cell(FormatDuration(mpi))
        .Cell(FormatDuration(sp))
        .Cell(FormatDuration(sp_rdma))
        .Cell(sp / mpi, 0);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): MPI orders of magnitude faster at every\n"
      "size (asynchronous tuned collectives over RDMA vs driver-scheduled\n"
      "jobs over sockets); Spark-RDMA ~= Spark because this benchmark\n"
      "shuffles almost nothing, so the RDMA shuffle engine is marginal.\n");
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
