// AnswersCount-as-a-service: the StackExchange AnswersCount query run as a
// *service* instead of a batch job. Query jobs arrive as a seeded Poisson
// process (or a trace file via --arrivals=), each a complete 8-process
// AnswersCount over the staged dataset, submitted to pstk::sched and
// executed by the paradigm's runtime:
//
//  * MPI / SHMEM — gang-scheduled: a query waits for a whole free node,
//    owns it exclusively, and is charged all of its cores;
//  * Spark / MapReduce — elastic: a query starts on as few as min_procs
//    cores anywhere and the scheduler grows it toward 8.
//
// Sweeping the offered load λ past saturation exposes each paradigm's knee:
// p50/p99 sojourn time (arrival -> completion), completed jobs/hour, and
// reserved-core utilization per cell. Everything is virtual-time, so the
// numbers are deterministic — byte-identical across runs, backends, and
// host machines for a fixed seed.
//
// The preemption panel runs a low-priority checkpointing MPI job across the
// whole cluster with high-priority queries arriving over it: each query
// preempts the background gang job (checkpoint-preempt-requeue), whose next
// attempt restores from the latest committed snapshot epoch rather than
// restarting from scratch.
//
//   ./build/bench/svc_answerscount [scale=...] [gb=4] [jobs=40]
//       [rates=0.05,0.1,0.2,0.4,0.8,1.6,3.2]
//
// Flags:
//   --smoke            tiny sweep + panel, for ctest / CI
//   --out=<file>       write machine-readable results (BENCH_sched.json)
//   --baseline=<file>  gate against bench/BENCH_sched.baseline.json:
//                      throughput floors, latency ceilings, and the
//                      preemption panel's resume-from-snapshot invariants
//   --arrivals=<spec>  override the Poisson sweep with one arrival process
//                      (see bench_opts.h)
// plus the shared bench flags (--sim-backend= etc., see bench_opts.h).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_opts.h"
#include "ckpt/ckpt.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "mr/mr.h"
#include "sched/adapters.h"
#include "sched/arrivals.h"
#include "sched/sched.h"
#include "serde/serde.h"
#include "shmem/shmem.h"
#include "sim/engine.h"
#include "spark/spark.h"
#include "workloads/stackexchange.h"

using namespace pstk;

namespace {

constexpr SimTime kNativeCpuPerByte = 1.0 / 1.2e9;
constexpr int kNodes = 8;
constexpr int kQueryProcs = 8;  // one node's worth at the paper's 8 ppn

struct Env {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<dfs::MiniDfs> dfs;
};

std::unique_ptr<Env> MakeEnv(double scale, const std::string& data,
                             bool with_dfs, bool with_local) {
  auto env = std::make_unique<Env>();
  env->cluster = std::make_unique<cluster::Cluster>(
      env->engine, cluster::ClusterSpec::Comet(kNodes), scale);
  if (with_dfs) {
    env->dfs = std::make_unique<dfs::MiniDfs>(*env->cluster);
    PSTK_CHECK(env->dfs->Install("/in/posts.txt", data).ok());
  }
  if (with_local) {
    for (int n = 0; n < kNodes; ++n) {
      env->cluster->scratch(n).Install("/scratch/posts.txt", data);
    }
  }
  bench::Observability::Instance().Attach(env->engine);
  return env;
}

// --- per-paradigm query bodies ---------------------------------------------

sched::MpiCkptBody MpiQueryBody() {
  return [](mpi::Comm& comm, ckpt::CheckpointCoordinator&) {
    auto file = mpi::File::OpenAll(comm, "/scratch/posts.txt");
    if (!file.ok()) return;
    const Bytes chunk = file->size() / comm.size();
    const Bytes offset = chunk * comm.rank();
    const Bytes len =
        comm.rank() == comm.size() - 1 ? file->size() - offset : chunk;
    auto part =
        file->ReadLinesAtAll(comm, offset, static_cast<std::int64_t>(len));
    if (!part.ok()) return;
    const auto counts = workloads::CountPosts(part.value());
    comm.ctx().Compute(static_cast<double>(len) * kNativeCpuPerByte);
    const std::vector<std::uint64_t> mine{counts.questions, counts.answers};
    std::vector<std::uint64_t> total(2);
    comm.Reduce<std::uint64_t>(mine, total, 0);
  };
}

sched::ShmemCkptBody ShmemQueryBody(cluster::Cluster* cluster) {
  return [cluster](shmem::Pe& pe, ckpt::CheckpointCoordinator&) {
    sim::Context& ctx = pe.ctx();
    auto& fs = cluster->scratch(ctx.node());
    auto total = fs.Size("/scratch/posts.txt");
    if (!total.ok()) return;
    const Bytes chunk = *total / static_cast<Bytes>(pe.n_pes());
    const Bytes offset = chunk * static_cast<Bytes>(pe.my_pe());
    const Bytes len =
        pe.my_pe() == pe.n_pes() - 1 ? *total - offset : chunk;
    auto part = fs.Read(ctx, "/scratch/posts.txt", offset, len);
    if (!part.ok()) return;
    (void)workloads::CountPosts(part.value());
    ctx.Compute(static_cast<double>(cluster->Modeled(len)) *
                kNativeCpuPerByte);
    pe.BarrierAll();
  };
}

spark::MiniSpark::DriverBody SparkQueryBody() {
  return [](spark::SparkContext& sc) {
    using Counts = std::pair<std::uint64_t, std::uint64_t>;
    auto lines = sc.TextFile("/in/posts.txt");
    if (!lines.ok()) return;
    (void)lines
        ->Map<Counts>([](const std::string& line) {
          switch (workloads::ClassifyPost(line)) {
            case workloads::PostKind::kQuestion: return Counts{1, 0};
            case workloads::PostKind::kAnswer: return Counts{0, 1};
            default: return Counts{0, 0};
          }
        })
        .Reduce([](const Counts& a, const Counts& b) {
          return Counts{a.first + b.first, a.second + b.second};
        });
  };
}

sched::MrJob MrQueryJob(int query) {
  sched::MrJob job;
  job.conf.name = "ac-query";
  job.conf.input_path = "/in/posts.txt";
  job.conf.output_path = "/out/q" + std::to_string(query);
  job.conf.num_reducers = 1;
  job.conf.write_output = false;
  job.map = [](const std::string& line, mr::Emitter& out) {
    switch (workloads::ClassifyPost(line)) {
      case workloads::PostKind::kQuestion: out.Emit("Q", "1"); break;
      case workloads::PostKind::kAnswer: out.Emit("A", "1"); break;
      default: break;
    }
  };
  job.reduce = [](const std::string& key,
                  const std::vector<std::string>& values, mr::Emitter& out) {
    std::int64_t sum = 0;
    for (const auto& v : values) sum += std::strtoll(v.c_str(), nullptr, 10);
    out.Emit(key, std::to_string(sum));
  };
  job.combine = job.reduce;
  return job;
}

// --- load sweep ------------------------------------------------------------

struct CellResult {
  std::string paradigm;
  std::string arrivals;  // "poisson rate" rendered, or "trace"
  double rate = 0;       // 0 for trace arrivals
  int jobs = 0;
  int done = 0;
  double p50_s = 0;
  double p99_s = 0;
  double jobs_per_hour = 0;
  double utilization = 0;
  int backfills = 0;
  int preemptions = 0;
  std::uint64_t grown = 0;
  std::uint64_t shrunk = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto idx = static_cast<std::size_t>(
      std::min(n - 1, std::max(0.0, std::ceil(p * n) - 1)));
  return values[idx];
}

CellResult RunCell(sched::Paradigm paradigm, const sched::ArrivalSpec& spec,
                   double scale, const std::string& data) {
  const bool gang = sched::IsGang(paradigm);
  auto env = MakeEnv(scale, data, /*with_dfs=*/!gang, /*with_local=*/gang);
  sched::Scheduler scheduler(*env->cluster);
  std::unique_ptr<mr::MrEngine> mr_engine;
  if (paradigm == sched::Paradigm::kMr) {
    mr::MrOptions options;
    mr_engine = std::make_unique<mr::MrEngine>(*env->cluster, *env->dfs,
                                               options);
  }

  const int count = spec.kind == sched::ArrivalSpec::Kind::kPoisson
                        ? spec.count
                        : static_cast<int>(spec.trace.size());
  std::vector<int> ids(static_cast<std::size_t>(count), -1);
  sched::ScheduleArrivals(
      env->engine, spec, [&, paradigm](int index, SimTime) {
        sched::JobSpec job;
        job.name = "ac-q" + std::to_string(index);
        job.paradigm = paradigm;
        job.procs = kQueryProcs;
        job.min_procs = gang ? 1 : 2;
        job.procs_per_node = kQueryProcs;
        job.est_runtime = Seconds(30);
        switch (paradigm) {
          case sched::Paradigm::kMpi:
            job.launch = sched::MakeMpiLauncher(scheduler, MpiQueryBody());
            break;
          case sched::Paradigm::kShmem:
            job.launch = sched::MakeShmemLauncher(
                scheduler, ShmemQueryBody(env->cluster.get()));
            break;
          case sched::Paradigm::kSpark:
            job.launch = sched::MakeSparkLauncher(
                scheduler, env->dfs.get(), SparkQueryBody());
            break;
          case sched::Paradigm::kMr:
            job.launch = sched::MakeMrLauncher(scheduler, *mr_engine,
                                               MrQueryJob(index));
            break;
        }
        ids[static_cast<std::size_t>(index)] = scheduler.Submit(std::move(job));
      });
  const auto run = env->engine.Run();
  PSTK_CHECK_MSG(run.status.ok(), "svc cell failed: "
                                      << run.status.ToString());

  CellResult cell;
  cell.paradigm = sched::ParadigmName(paradigm);
  cell.rate = spec.kind == sched::ArrivalSpec::Kind::kPoisson ? spec.rate : 0;
  cell.arrivals = spec.kind == sched::ArrivalSpec::Kind::kPoisson
                      ? "poisson " + std::to_string(spec.rate)
                      : "trace";
  cell.jobs = count;
  std::vector<double> sojourns;
  SimTime horizon = 0;
  for (int id : ids) {
    if (id < 0) continue;
    const sched::JobInfo& info = scheduler.job(id);
    if (info.state != sched::JobState::kDone) continue;
    ++cell.done;
    sojourns.push_back(info.end_time - info.submit_time);
    horizon = std::max(horizon, info.end_time);
  }
  cell.p50_s = Percentile(sojourns, 0.50);
  cell.p99_s = Percentile(sojourns, 0.99);
  if (horizon > 0) {
    cell.jobs_per_hour = static_cast<double>(cell.done) / horizon * 3600.0;
    cell.utilization =
        scheduler.busy_core_seconds() /
        (static_cast<double>(env->cluster->TotalCores()) * horizon);
  }
  cell.backfills = scheduler.backfills();
  cell.preemptions = scheduler.preemptions();
  cell.grown = env->engine.obs().CounterByName("sched.grown");
  cell.shrunk = env->engine.obs().CounterByName("sched.shrunk");
  bench::Observability::Instance().Collect(
      env->engine, cell.paradigm + " " + cell.arrivals);
  return cell;
}

// --- preemption panel ------------------------------------------------------

struct PreemptResult {
  int attempts = 0;     // background launches = 1 + preemptions
  int preemptions = 0;  // scheduler preemption count
  std::vector<int> restore_epochs;  // per attempt; -1 = fresh start
  int steps_executed = 0;           // across attempts; kSteps if never hit
  int steps_total = 0;              // kSteps (the work a scratch rerun pays)
  double background_s = 0;          // background sojourn
  int queries_done = 0;
};

PreemptResult RunPreemptionPanel(double scale, const std::string& data,
                                 int steps, int queries, double rate) {
  auto env = MakeEnv(scale, data, /*with_dfs=*/false, /*with_local=*/true);
  sched::SchedOptions options;
  options.queue_weights = {{"batch", 1.0}, {"default", 4.0}};
  sched::Scheduler scheduler(*env->cluster, options);

  auto epochs = std::make_shared<std::vector<int>>();
  auto executed = std::make_shared<int>(0);
  sched::MpiCkptBody background = [epochs, executed, steps](
                                      mpi::Comm& comm,
                                      ckpt::CheckpointCoordinator& coord) {
    const int rank = comm.rank();
    const int node = comm.ctx().node();
    comm.Barrier();  // collective boundary: channels quiesced
    int start = 0;
    const serde::Buffer* frag = coord.Restore(comm.ctx(), rank, node);
    if (frag != nullptr) {
      serde::Reader r(*frag);
      start = static_cast<int>(r.ReadRaw<std::int32_t>().value()) + 1;
    }
    if (rank == 0) epochs->push_back(coord.restore_epoch().value_or(-1));
    std::vector<double> one(1, 1.0);
    std::vector<double> sum(1, 0.0);
    for (int iter = start; iter < steps; ++iter) {
      comm.ctx().Compute(1.0);
      comm.Allreduce<double>(one, sum);
      if (rank == 0) ++*executed;
      serde::Writer w;
      w.WriteRaw<std::int32_t>(iter);
      coord.Checkpoint(comm.ctx(), rank, node, iter, w.TakeBuffer());
    }
  };
  // Commit an epoch at (almost) every step: the first Checkpoint call only
  // anchors the interval clock, so a short interval keeps the window in
  // which a preemption forces a scratch rerun down to one step.
  ckpt::CkptPolicy policy;
  policy.interval = 0.5;

  sched::JobSpec bg;
  bg.name = "background";
  bg.queue = "batch";
  bg.paradigm = sched::Paradigm::kMpi;
  bg.procs = kNodes * kQueryProcs;  // the whole cluster
  bg.procs_per_node = kQueryProcs;
  bg.est_runtime = Seconds(static_cast<double>(2 * steps));
  bg.priority = 0;
  bg.launch = sched::MakeMpiLauncher(scheduler, background, {}, policy);
  const int bg_id = scheduler.Submit(std::move(bg));

  sched::ArrivalSpec spec;
  spec.kind = sched::ArrivalSpec::Kind::kPoisson;
  spec.rate = rate;
  spec.count = queries;
  spec.seed = 11;
  std::vector<int> ids(static_cast<std::size_t>(queries), -1);
  sched::ScheduleArrivals(env->engine, spec, [&](int index, SimTime) {
    sched::JobSpec job;
    job.name = "ac-hi" + std::to_string(index);
    job.paradigm = sched::Paradigm::kMpi;
    job.procs = kQueryProcs;
    job.procs_per_node = kQueryProcs;
    job.est_runtime = Seconds(30);
    job.priority = 1;  // evicts the background gang
    job.launch = sched::MakeMpiLauncher(scheduler, MpiQueryBody());
    ids[static_cast<std::size_t>(index)] = scheduler.Submit(std::move(job));
  });
  const auto run = env->engine.Run();
  PSTK_CHECK_MSG(run.status.ok(), "preemption panel failed: "
                                      << run.status.ToString());

  PreemptResult result;
  const sched::JobInfo& bg_info = scheduler.job(bg_id);
  result.attempts = bg_info.attempt + 1;
  result.preemptions = scheduler.preemptions();
  result.restore_epochs = *epochs;
  result.steps_executed = *executed;
  result.steps_total = steps;
  result.background_s =
      bg_info.state == sched::JobState::kDone
          ? bg_info.end_time - bg_info.submit_time
          : -1;
  for (int id : ids) {
    if (id >= 0 && scheduler.job(id).state == sched::JobState::kDone) {
      ++result.queries_done;
    }
  }
  bench::Observability::Instance().Collect(env->engine, "preemption panel");
  return result;
}

// --- reporting + CI gate ---------------------------------------------------

void AppendCellJson(std::string* json, const CellResult& c) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"paradigm\": \"%s\", \"rate\": %g, \"jobs\": %d, \"done\": %d, "
      "\"p50_s\": %.3f, \"p99_s\": %.3f, \"jobs_per_hour\": %.1f, "
      "\"utilization\": %.4f, \"backfills\": %d, \"preemptions\": %d, "
      "\"grown\": %llu, \"shrunk\": %llu}",
      c.paradigm.c_str(), c.rate, c.jobs, c.done, c.p50_s, c.p99_s,
      c.jobs_per_hour, c.utilization, c.backfills, c.preemptions,
      static_cast<unsigned long long>(c.grown),
      static_cast<unsigned long long>(c.shrunk));
  if (!json->empty()) *json += ",\n";
  *json += buf;
}

// Minimal `"key": <number>` extraction — enough for the flat baseline file
// this bench writes, without a JSON dependency (same as micro_engine).
double JsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return 0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  bool smoke = false;
  std::string out_path;
  std::string baseline_path;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  // Dataset: small staged bytes standing in for `gb` logical GiB (the
  // Modeled() scale-up, exactly like fig4). Smoke shrinks both.
  const double scale = config->GetDouble("scale", smoke ? 1e-4 : 2.5e-5);
  const Bytes logical =
      static_cast<Bytes>(config->GetInt("gb", smoke ? 1 : 4)) * kGiB;
  const int jobs = static_cast<int>(config->GetInt("jobs", smoke ? 6 : 40));
  std::vector<double> rates;
  {
    std::stringstream ss(config->GetString(
        "rates", smoke ? "0.1,0.8" : "0.05,0.1,0.2,0.4,0.8,1.6,3.2"));
    std::string field;
    while (std::getline(ss, field, ',')) rates.push_back(std::stod(field));
  }

  workloads::StackExchangeParams params;
  params.target_bytes =
      static_cast<Bytes>(static_cast<double>(logical) * scale);
  const std::string data = workloads::GenerateStackExchange(params, nullptr);

  // Arrival processes for the sweep: either the --arrivals= override (one
  // cell per paradigm) or the seeded Poisson rate ladder.
  std::vector<sched::ArrivalSpec> specs;
  if (!bench::Observability::Instance().arrivals().empty()) {
    auto spec = sched::ArrivalSpec::Parse(
        bench::Observability::Instance().arrivals());
    if (!spec.ok()) {
      std::fprintf(stderr, "bad --arrivals: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    specs.push_back(std::move(spec).value());
  } else {
    for (double rate : rates) {
      sched::ArrivalSpec spec;
      spec.kind = sched::ArrivalSpec::Kind::kPoisson;
      spec.rate = rate;
      spec.count = jobs;
      spec.seed = 7;
      specs.push_back(spec);
    }
  }

  std::printf("AnswersCount-as-a-service — %s logical dataset, %d-node "
              "cluster, %d-proc queries (scale=%g)\n\n",
              FormatBytes(logical).c_str(), kNodes, kQueryProcs, scale);

  const sched::Paradigm paradigms[] = {
      sched::Paradigm::kMpi, sched::Paradigm::kShmem, sched::Paradigm::kSpark,
      sched::Paradigm::kMr};
  Table table;
  table.SetHeader({"paradigm", "arrivals", "done", "p50", "p99", "jobs/h",
                   "util", "backfill", "grown"});
  std::string cells_json;
  std::vector<CellResult> cells;
  for (const sched::Paradigm paradigm : paradigms) {
    for (const sched::ArrivalSpec& spec : specs) {
      const CellResult cell = RunCell(paradigm, spec, scale, data);
      table.Row()
          .Cell(cell.paradigm)
          .Cell(cell.arrivals)
          .Cell(std::int64_t{cell.done})
          .Cell(FormatDuration(cell.p50_s))
          .Cell(FormatDuration(cell.p99_s))
          .Cell(std::to_string(static_cast<int>(cell.jobs_per_hour)))
          .Cell(std::to_string(static_cast<int>(cell.utilization * 100)) +
                "%")
          .Cell(std::int64_t{cell.backfills})
          .Cell(static_cast<std::int64_t>(cell.grown));
      AppendCellJson(&cells_json, cell);
      cells.push_back(cell);
    }
  }
  table.Print();

  const PreemptResult panel = RunPreemptionPanel(
      scale, data, /*steps=*/smoke ? 12 : 20, /*queries=*/smoke ? 3 : 4,
      /*rate=*/0.08);
  std::string epochs_json;
  for (int e : panel.restore_epochs) {
    if (!epochs_json.empty()) epochs_json += ", ";
    epochs_json += std::to_string(e);
  }
  std::printf(
      "\npreemption panel: background gang job preempted %d time(s), "
      "%d attempt(s), restore epochs [%s], %d/%d steps executed "
      "(scratch reruns would pay %d), background sojourn %s, "
      "%d/%d queries done\n",
      panel.preemptions, panel.attempts, epochs_json.c_str(),
      panel.steps_executed, panel.steps_total,
      panel.attempts * panel.steps_total, FormatDuration(panel.background_s).c_str(),
      panel.queries_done, smoke ? 3 : 4);

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"svc_answerscount\",\n  \"mode\": \"%s\",\n"
        "  \"cells\": [\n%s\n  ],\n"
        "  \"preemption\": {\"attempts\": %d, \"preemptions\": %d, "
        "\"restore_epochs\": [%s], \"steps_executed\": %d, "
        "\"steps_total\": %d, \"background_s\": %.3f, \"queries_done\": "
        "%d}\n}\n",
        smoke ? "smoke" : "full", cells_json.c_str(), panel.attempts,
        panel.preemptions, epochs_json.c_str(), panel.steps_executed,
        panel.steps_total, panel.background_s, panel.queries_done);
    std::fclose(f);
  }

  // CI gate. The load-sweep numbers are deterministic virtual time, so the
  // baseline holds conservative floors/ceilings (not exact values — model
  // parameters legitimately drift): every paradigm must complete all smoke
  // jobs, clear a jobs/hour floor, and stay under a p99 ceiling at the
  // light rate; the preemption panel must show checkpoint-resume working.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string baseline = ss.str();
    bool ok = true;
    for (const sched::Paradigm paradigm : paradigms) {
      const std::string name = sched::ParadigmName(paradigm);
      // The lightest-load cell for this paradigm.
      const CellResult* light = nullptr;
      for (const CellResult& cell : cells) {
        if (cell.paradigm == name && (light == nullptr || cell.rate < light->rate)) {
          light = &cell;
        }
      }
      if (light == nullptr) continue;
      const double jph_floor = JsonNumber(baseline, name + "_jobs_per_hour_floor");
      const double p99_ceiling = JsonNumber(baseline, name + "_p99_ceiling_s");
      if (light->done < light->jobs) {
        std::fprintf(stderr, "FAIL: %s completed %d/%d smoke jobs\n",
                     name.c_str(), light->done, light->jobs);
        ok = false;
      }
      if (jph_floor > 0 && light->jobs_per_hour < jph_floor) {
        std::fprintf(stderr, "FAIL: %s jobs/hour %.1f below floor %.1f\n",
                     name.c_str(), light->jobs_per_hour, jph_floor);
        ok = false;
      }
      if (p99_ceiling > 0 && light->p99_s > p99_ceiling) {
        std::fprintf(stderr, "FAIL: %s p99 %.1fs above ceiling %.1fs\n",
                     name.c_str(), light->p99_s, p99_ceiling);
        ok = false;
      }
      std::printf("baseline %s: jobs/h %.1f (floor %.1f), p99 %.1fs "
                  "(ceiling %.1fs)\n",
                  name.c_str(), light->jobs_per_hour, jph_floor, light->p99_s,
                  p99_ceiling);
    }
    // The headline acceptance invariant: a preempted gang job resumes from
    // the latest committed epoch instead of restarting from scratch.
    if (panel.preemptions < 1 || panel.attempts < 2) {
      std::fprintf(stderr,
                   "FAIL: preemption panel never preempted (attempts=%d)\n",
                   panel.attempts);
      ok = false;
    }
    bool resumed = false;
    for (int e : panel.restore_epochs) resumed = resumed || e >= 0;
    if (!resumed) {
      std::fprintf(stderr,
                   "FAIL: no relaunch restored from a snapshot epoch\n");
      ok = false;
    }
    if (panel.steps_executed >= panel.attempts * panel.steps_total) {
      std::fprintf(stderr,
                   "FAIL: preempted job re-ran from scratch (%d steps over "
                   "%d attempts)\n",
                   panel.steps_executed, panel.attempts);
      ok = false;
    }
    if (panel.steps_executed < panel.steps_total) {
      std::fprintf(stderr, "FAIL: background job lost work (%d/%d steps)\n",
                   panel.steps_executed, panel.steps_total);
      ok = false;
    }
    if (!ok) return 1;
  }
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
