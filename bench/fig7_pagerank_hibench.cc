// Figure 7: HiBench PageRank — the shuffle-heavy implementation (no
// partitioner reuse, no persist), Spark default (IPoIB sockets) vs
// Spark-RDMA, 16 processes/node, swept over node counts.
//
//   ./build/bench/fig7_pagerank_hibench [vertices=100000] [iters=5]
#include <cstdio>

#include "bench_opts.h"
#include "common/config.h"
#include "common/table.h"
#include "pagerank_common.h"
#include "workloads/pagerank.h"

using namespace pstk;

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  workloads::GraphParams gparams;
  gparams.vertices =
      static_cast<workloads::VertexId>(config->GetInt("vertices", 300000));
  const int iters = static_cast<int>(config->GetInt("iters", 5));

  const workloads::Graph graph = workloads::GenerateGraph(gparams);
  const auto reference = workloads::PageRankReference(graph, iters);

  std::printf("Figure 7 — HiBench PageRank (shuffle-heavy), %u vertices, "
              "%llu edges, %d iterations, 16 procs/node\n\n",
              graph.vertices,
              static_cast<unsigned long long>(graph.edge_count()), iters);

  Table table;
  table.SetHeader({"nodes", "Spark (IPoIB)", "Spark-RDMA", "speedup",
                   "shuffled (Spark)"});
  for (int nodes : {1, 2, 4, 8}) {
    bench::PageRankConfig pr;
    pr.nodes = nodes;
    pr.iterations = iters;

    pr.rdma = false;
    auto sp = bench::RunSparkPageRankHiBench(graph, reference, pr);
    pr.rdma = true;
    auto sp_rdma = bench::RunSparkPageRankHiBench(graph, reference, pr);
    if (!sp.ok() || !sp_rdma.ok()) {
      table.Row().Cell(std::int64_t{nodes}).Cell("error").Cell("error");
      continue;
    }
    table.Row()
        .Cell(std::int64_t{nodes})
        .Cell(FormatDuration(sp->elapsed))
        .Cell(FormatDuration(sp_rdma->elapsed))
        .Cell(sp->elapsed / sp_rdma->elapsed, 2)
        .Cell(FormatBytes(sp->shuffle_fetched));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): with a high data-shuffling rate and more\n"
      "nodes (more traffic crossing the fabric), the RDMA shuffle engine\n"
      "outperforms the default socket engine — unlike Fig 6's tuned code.\n");
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
