// Ablation C: the cost of fault tolerance (paper §VI-D) — the same
// mid-job node failure is injected into Spark, Hadoop MR, and MPI runs of
// comparable jobs, and the recovery overhead (vs an undisturbed run) is
// measured. MPI has no recovery path and aborts.
//
//   ./build/bench/ablation_faults [nodes=8]
//       [--faults=node:<id>@<t>[+<down>][,...]]
//
// The default plan fails the last node at t=10s; --faults overrides it
// (same syntax everywhere, see bench_opts.h).
#include <cstdio>
#include <optional>
#include <string>

#include "bench_opts.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "mr/mr.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "spark/spark.h"
#include "workloads/stackexchange.h"

using namespace pstk;

namespace {

constexpr double kScale = 0.001;
constexpr Bytes kLogical = 20 * kGiB;

std::string Dataset() {
  workloads::StackExchangeParams params;
  params.target_bytes =
      static_cast<Bytes>(static_cast<double>(kLogical) * kScale);
  return workloads::GenerateStackExchange(params, nullptr);
}

/// Spark AnswersCount; optionally run under a fault plan. Returns app time
/// (or nullopt on job failure).
std::optional<SimTime> SparkRun(int nodes, const std::string& data,
                                const sim::FaultPlan* plan) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), kScale);
  dfs::MiniDfs dfs(cluster);
  if (!dfs.Install("/in/f.txt", data, 7).ok()) return std::nullopt;
  spark::MiniSpark spark(cluster, &dfs, {});
  bool ok = false;
  std::optional<Result<spark::AppResult>> outcome;
  spark.Submit(
      [&](spark::SparkContext& sc) {
        auto lines = sc.TextFile("/in/f.txt");
        if (!lines.ok()) return;
        auto count = lines->Count();
        ok = count.ok();
      },
      [&](Result<spark::AppResult> r) { outcome = std::move(r); });
  bench::Observability::Instance().Attach(engine);
  // MiniDFS subscribes to cluster node failures itself, so applying the
  // plan is all the fault wiring a bench needs.
  if (plan != nullptr) cluster.ApplyFaultPlan(*plan);
  const bool run_ok = engine.Run().status.ok();
  bench::Observability::Instance().Collect(
      engine, std::string("spark") + (plan != nullptr ? " faulted" : " clean"));
  if (!run_ok) return std::nullopt;
  if (!ok || !outcome.has_value() || !outcome->ok()) return std::nullopt;
  return (*outcome)->elapsed;
}

std::optional<SimTime> MrRun(int nodes, const std::string& data,
                             const sim::FaultPlan* plan) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), kScale);
  dfs::MiniDfs dfs(cluster);
  if (!dfs.Install("/in/f.txt", data, 7).ok()) return std::nullopt;
  mr::MrEngine mr_engine(cluster, dfs);
  mr::JobConf conf;
  conf.input_path = "/in/f.txt";
  conf.output_path = "/out/f";
  conf.write_output = false;
  auto map = [](const std::string& line, mr::Emitter& out) {
    if (workloads::ClassifyPost(line) == workloads::PostKind::kAnswer) {
      out.Emit("A", "1");
    }
  };
  auto reduce = [](const std::string& key,
                   const std::vector<std::string>& values, mr::Emitter& out) {
    out.Emit(key, std::to_string(values.size()));
  };
  std::optional<Result<mr::JobResult>> outcome;
  mr_engine.Submit(conf, map, reduce, std::nullopt,
                   [&](Result<mr::JobResult> r) { outcome = std::move(r); });
  bench::Observability::Instance().Attach(engine);
  if (plan != nullptr) cluster.ApplyFaultPlan(*plan);
  const bool run_ok = engine.Run().status.ok();
  bench::Observability::Instance().Collect(
      engine,
      std::string("hadoop") + (plan != nullptr ? " faulted" : " clean"));
  if (!run_ok) return std::nullopt;
  if (!outcome.has_value() || !outcome->ok()) return std::nullopt;
  return (*outcome)->elapsed;
}

/// MPI iterative job; returns nullopt when the job aborts.
std::optional<SimTime> MpiRun(int nodes, const sim::FaultPlan* plan) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  mpi::World world(cluster, nodes * 8, 8);
  world.SpawnRanks([](mpi::Comm& comm) {
    std::vector<double> v{1.0};
    std::vector<double> sum(1);
    for (int i = 0; i < 60; ++i) {
      comm.ctx().SleepFor(0.5);
      comm.Allreduce<double>(v, sum);
    }
  });
  bench::Observability::Instance().Attach(engine);
  if (plan != nullptr) cluster.ApplyFaultPlan(*plan);
  auto run = engine.Run();
  bench::Observability::Instance().Collect(
      engine, std::string("mpi") + (plan != nullptr ? " faulted" : " clean"));
  if (run.killed > 0 || !run.status.ok()) return std::nullopt;
  return run.end_time;
}

std::string Overhead(std::optional<SimTime> base,
                     std::optional<SimTime> faulted) {
  if (!base.has_value()) return "-";
  if (!faulted.has_value()) return "JOB LOST";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "+%.0f%%", 100.0 * (*faulted - *base) / *base);
  return buf;
}

std::string Cell(std::optional<SimTime> t) {
  return t.has_value() ? FormatDuration(*t) : "aborted";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 8));
  const std::string data = Dataset();

  sim::FaultPlan plan = bench::Observability::Instance().fault_plan();
  if (plan.empty()) {
    plan = sim::FaultPlan::Parse("node:" + std::to_string(nodes - 1) + "@10")
               .value();
  }

  std::printf("Ablation C — recovery cost of node failure(s) [%s] "
              "(%d nodes)\n\n", plan.ToString().c_str(), nodes);
  Table table;
  table.SetHeader({"system", "no failure", "with failure", "overhead",
                   "mechanism"});

  const auto spark_base = SparkRun(nodes, data, nullptr);
  const auto spark_fault = SparkRun(nodes, data, &plan);
  table.Row()
      .Cell("Spark")
      .Cell(Cell(spark_base))
      .Cell(Cell(spark_fault))
      .Cell(Overhead(spark_base, spark_fault))
      .Cell("lineage recompute");

  const auto mr_base = MrRun(nodes, data, nullptr);
  const auto mr_fault = MrRun(nodes, data, &plan);
  table.Row()
      .Cell("Hadoop MR")
      .Cell(Cell(mr_base))
      .Cell(Cell(mr_fault))
      .Cell(Overhead(mr_base, mr_fault))
      .Cell("task re-execution");

  const auto mpi_base = MpiRun(nodes, nullptr);
  const auto mpi_fault = MpiRun(nodes, &plan);
  table.Row()
      .Cell("MPI")
      .Cell(Cell(mpi_base))
      .Cell(Cell(mpi_fault))
      .Cell(Overhead(mpi_base, mpi_fault))
      .Cell("none (abort)");
  table.Print();
  std::printf(
      "\nExpected shape (paper §VI-D): both Big Data engines absorb the\n"
      "failure with bounded overhead (recomputation / re-execution); the\n"
      "MPI job is lost and must restart from external checkpoints.\n");
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
