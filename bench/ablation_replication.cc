// Ablation B: HDFS replication factor vs executor locality (the paper's
// §V-B2 anecdote: "we increased the replication factor of HDFS and made
// it equal to the number of executor nodes in order to ensure that all
// executors are local to any requested data block").
//
// Spark counts a large DFS-resident file under replication factors 1, 3
// (the HDFS default) and nodes (the paper's workaround); with fewer
// replicas, more blocks must cross the network.
//
//   ./build/bench/ablation_replication [nodes=8] [gb=20] [scale=0.001]
#include <cstdio>
#include <string>

#include "bench_opts.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "dfs/dfs.h"
#include "sim/engine.h"
#include "spark/spark.h"
#include "workloads/stackexchange.h"

using namespace pstk;

namespace {

struct Outcome {
  SimTime job = -1;
  Bytes dfs_network = 0;
};

Outcome Run(int nodes, int replication, double scale,
            const std::string& data) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), scale);
  dfs::DfsOptions options;
  options.replication = replication;
  dfs::MiniDfs dfs(cluster, options);
  if (!dfs.Install("/in/file.txt", data, /*seed=*/42).ok()) return {};
  spark::MiniSpark spark(cluster, &dfs, {});
  bench::Observability::Instance().Attach(engine);
  Outcome outcome;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    auto lines = sc.TextFile("/in/file.txt");
    if (!lines.ok()) return;
    const SimTime start = sc.ctx().now();
    if (!lines->Count().ok()) return;
    outcome.job = sc.ctx().now() - start;
  });
  if (!result.ok()) outcome.job = -1;
  outcome.dfs_network = dfs.network_bytes();
  bench::Observability::Instance().Collect(
      engine, "replication=" + std::to_string(replication));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 8));
  const double scale = config->GetDouble("scale", 0.001);
  const Bytes logical = static_cast<Bytes>(config->GetInt("gb", 20)) * kGiB;

  workloads::StackExchangeParams params;
  params.target_bytes =
      static_cast<Bytes>(static_cast<double>(logical) * scale);
  const std::string data = workloads::GenerateStackExchange(params, nullptr);

  std::printf("Ablation B — HDFS replication vs executor locality "
              "(%s over %d nodes)\n\n", FormatBytes(logical).c_str(), nodes);
  Table table;
  table.SetHeader({"replication", "count() time", "blocks over network"});
  for (int replication : {1, 3, nodes}) {
    const Outcome outcome = Run(nodes, replication, scale, data);
    table.Row()
        .Cell(std::int64_t{replication})
        .Cell(outcome.job >= 0 ? FormatDuration(outcome.job) : "error")
        .Cell(FormatBytes(outcome.dfs_network));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §V-B2): with few replicas some blocks are\n"
      "remote to every executor and cross the network; replication equal to\n"
      "the node count makes every block local and removes the transfers.\n");
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
