#include "bench_opts.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/log.h"
#include "obs/obs.h"
#include "verify/checkers.h"

namespace pstk::bench {

Observability& Observability::Instance() {
  static Observability instance;
  return instance;
}

void Observability::ParseFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path_ = std::string(arg.substr(std::strlen("--trace=")));
    } else if (arg == "--metrics") {
      metrics_ = true;
    } else if (arg == "--verify") {
      verify_ = true;
    } else if (arg.rfind("--sim-backend=", 0) == 0) {
      const std::string_view name = arg.substr(std::strlen("--sim-backend="));
      const auto backend = sim::ParseBackendName(name);
      if (!backend.has_value()) {
        std::fprintf(stderr,
                     "unknown --sim-backend '%.*s' (valid backends: %.*s)\n",
                     static_cast<int>(name.size()), name.data(),
                     static_cast<int>(sim::ValidBackendNames().size()),
                     sim::ValidBackendNames().data());
        std::exit(2);
      }
      sim::SetDefaultBackend(*backend);
    } else if (arg.rfind("--arrivals=", 0) == 0) {
      arrivals_ = std::string(arg.substr(std::strlen("--arrivals=")));
    } else if (arg.rfind("--faults=", 0) == 0) {
      auto plan = sim::FaultPlan::Parse(arg.substr(std::strlen("--faults=")));
      if (!plan.ok()) {
        std::fprintf(stderr, "bad --faults: %s\n",
                     plan.status().ToString().c_str());
        std::exit(2);
      }
      fault_plan_ = std::move(plan).value();
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
}

void Observability::Attach(sim::Engine& engine) {
  if (active() || metrics_) engine.EnableTrace(true);
  if (verify_) verify::InstallAll(engine.verify());
  buf_at_attach_ = buf::SnapshotStats();
}

void Observability::Collect(sim::Engine& engine, const std::string& label) {
  if (active() || metrics_) {
    // Attribute the data plane's buffer activity since Attach to this run.
    const buf::StatsSnapshot now = buf::SnapshotStats();
    obs::Registry& obs = engine.obs();
    obs.Add(obs.Intern("buf.chunks_allocated"),
            now.chunks_allocated - buf_at_attach_.chunks_allocated);
    obs.Add(obs.Intern("buf.chunks_aliased"),
            now.chunks_aliased - buf_at_attach_.chunks_aliased);
    std::array<std::uint64_t, obs::Histogram::kBuckets> hist{};
    double min = 0.0;
    double max = 0.0;
    for (std::size_t b = 0; b < hist.size(); ++b) {
      hist[b] = now.copy_hist[b] - buf_at_attach_.copy_hist[b];
      if (hist[b] == 0) continue;
      // Bucket b holds values with binary exponent b - 32.
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 32);
      if (min == 0.0) min = lo;
      max = lo * 2;
    }
    obs.MergeHistogram(
        obs.Intern("buf.copy_bytes"),
        obs::Histogram::FromRaw(
            now.copies - buf_at_attach_.copies,
            static_cast<double>(now.copy_bytes - buf_at_attach_.copy_bytes),
            min, max, hist));
  }
  if (active()) {
    // Give each run its own pid block so merged runs don't overlap.
    engine.obs().AppendChromeTraceEvents(&events_json_, runs_ * 1000,
                                         label + " / ");
  }
  ++runs_;
  if (metrics_) engine.obs().MetricsTable(label).Print();
  if (verify_) {
    std::printf("--- verify: %s ---\n%s", label.c_str(),
                engine.verify().RenderReport().c_str());
  }
}

bool Observability::Finish() {
  if (!active()) return true;
  std::FILE* f = std::fopen(trace_path_.c_str(), "w");
  if (f == nullptr) {
    PSTK_WARN("bench") << "cannot write trace file " << trace_path_;
    return false;
  }
  std::fputs("{\"traceEvents\":[\n", f);
  std::fwrite(events_json_.data(), 1, events_json_.size(), f);
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

}  // namespace pstk::bench
