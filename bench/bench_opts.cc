#include "bench_opts.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/log.h"
#include "verify/checkers.h"

namespace pstk::bench {

Observability& Observability::Instance() {
  static Observability instance;
  return instance;
}

void Observability::ParseFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path_ = std::string(arg.substr(std::strlen("--trace=")));
    } else if (arg == "--metrics") {
      metrics_ = true;
    } else if (arg == "--verify") {
      verify_ = true;
    } else if (arg.rfind("--sim-backend=", 0) == 0) {
      const std::string_view name = arg.substr(std::strlen("--sim-backend="));
      const auto backend = sim::ParseBackendName(name);
      if (!backend.has_value()) {
        std::fprintf(stderr,
                     "unknown --sim-backend '%.*s' (valid backends: %.*s)\n",
                     static_cast<int>(name.size()), name.data(),
                     static_cast<int>(sim::ValidBackendNames().size()),
                     sim::ValidBackendNames().data());
        std::exit(2);
      }
      sim::SetDefaultBackend(*backend);
    } else if (arg.rfind("--arrivals=", 0) == 0) {
      arrivals_ = std::string(arg.substr(std::strlen("--arrivals=")));
    } else if (arg.rfind("--faults=", 0) == 0) {
      auto plan = sim::FaultPlan::Parse(arg.substr(std::strlen("--faults=")));
      if (!plan.ok()) {
        std::fprintf(stderr, "bad --faults: %s\n",
                     plan.status().ToString().c_str());
        std::exit(2);
      }
      fault_plan_ = std::move(plan).value();
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
}

void Observability::Attach(sim::Engine& engine) {
  if (active() || metrics_) engine.EnableTrace(true);
  if (verify_) verify::InstallAll(engine.verify());
}

void Observability::Collect(sim::Engine& engine, const std::string& label) {
  if (active()) {
    // Give each run its own pid block so merged runs don't overlap.
    engine.obs().AppendChromeTraceEvents(&events_json_, runs_ * 1000,
                                         label + " / ");
  }
  ++runs_;
  if (metrics_) engine.obs().MetricsTable(label).Print();
  if (verify_) {
    std::printf("--- verify: %s ---\n%s", label.c_str(),
                engine.verify().RenderReport().c_str());
  }
}

bool Observability::Finish() {
  if (!active()) return true;
  std::FILE* f = std::fopen(trace_path_.c_str(), "w");
  if (f == nullptr) {
    PSTK_WARN("bench") << "cannot write trace file " << trace_path_;
    return false;
  }
  std::fputs("{\"traceEvents\":[\n", f);
  std::fwrite(events_json_.data(), 1, events_json_.size(), f);
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

}  // namespace pstk::bench
