// Figure 6: BigDataBench PageRank (the *tuned* implementation of the
// paper's Fig 5 — partitioned link table, persisted per-step RDDs), MPI vs
// Spark vs Spark-RDMA, 16 processes/node, swept over node counts.
//
// The paper runs 1,000,000 vertices; the default here is a 300,000-vertex
// instance of the same power-law family so the benchmark executes end to
// end in seconds (pass vertices=1000000 for the full size).
//
//   ./build/bench/fig6_pagerank_bdb [vertices=100000] [iters=5]
#include <cstdio>

#include "bench_opts.h"
#include "common/config.h"
#include "common/table.h"
#include "pagerank_common.h"
#include "workloads/pagerank.h"

using namespace pstk;

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  workloads::GraphParams gparams;
  gparams.vertices =
      static_cast<workloads::VertexId>(config->GetInt("vertices", 300000));
  const int iters = static_cast<int>(config->GetInt("iters", 5));

  const workloads::Graph graph = workloads::GenerateGraph(gparams);
  const auto reference = workloads::PageRankReference(graph, iters);

  std::printf("Figure 6 — BigDataBench PageRank (tuned, persist), "
              "%u vertices, %llu edges, %d iterations, 16 procs/node\n\n",
              graph.vertices,
              static_cast<unsigned long long>(graph.edge_count()), iters);

  Table table;
  table.SetHeader({"nodes", "MPI", "Spark", "Spark-RDMA", "|err| max"});
  for (int nodes : {1, 2, 4, 8}) {
    bench::PageRankConfig pr;
    pr.nodes = nodes;
    pr.iterations = iters;
    pr.persist = true;

    auto mpi = bench::RunMpiPageRank(graph, reference, pr);
    pr.rdma = false;
    auto sp = bench::RunSparkPageRankBdb(graph, reference, pr);
    pr.rdma = true;
    auto sp_rdma = bench::RunSparkPageRankBdb(graph, reference, pr);

    double err = 0;
    for (const auto& r : {&mpi, &sp, &sp_rdma}) {
      if (r->ok()) err = std::max(err, r->value().max_delta_vs_reference);
    }
    table.Row()
        .Cell(std::int64_t{nodes})
        .Cell(mpi.ok() ? FormatDuration(mpi->elapsed) : "error")
        .Cell(sp.ok() ? FormatDuration(sp->elapsed) : "error")
        .Cell(sp_rdma.ok() ? FormatDuration(sp_rdma->elapsed) : "error")
        .Cell(err, 9);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): MPI performs almost the same across node\n"
      "counts (communication-bound allreduce) while Spark improves with\n"
      "nodes; Spark-RDMA ~= Spark because the tuned implementation keeps\n"
      "each stage's data local (persist + co-partitioning), leaving the\n"
      "RDMA shuffle engine almost nothing to accelerate.\n");
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
