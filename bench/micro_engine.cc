// Engine dispatch-throughput microbenchmark (the tentpole measurement for
// the fiber scheduler): a spawn/yield/block storm at 10^3 / 10^4 / 10^5
// processes, run on both execution backends, reporting scheduler
// dispatches per wall-clock second.
//
// Each process runs `rounds` iterations alternating Yield() (ready-heap
// churn) with a Block() woken by a same-instant scheduled event
// (event-heap churn + wake decrease-key). Every iteration costs exactly
// one dispatch on either backend, so dispatch/s isolates the control
// transfer + scheduler-structure cost the backends differ in. The thread
// backend is capped at 10^4 processes — 10^5 OS threads is not a
// reasonable ask of the host — while the fiber backend runs the full
// sweep.
//
// Flags:
//   --smoke            small sizes (both backends), for ctest
//   --out=<file>       write machine-readable results (BENCH_engine.json)
//   --baseline=<file>  compare smoke throughput against a checked-in
//                      BENCH_engine.baseline.json and exit nonzero on a
//                      >30% regression (CI gate)
// plus the shared bench flags (--sim-backend= etc., see bench_opts.h).
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_opts.h"
#include "common/check.h"
#include "sim/engine.h"

namespace {

using pstk::sim::Backend;
using pstk::sim::Context;
using pstk::sim::Engine;
using pstk::sim::Pid;

struct StormResult {
  Backend backend;
  std::size_t procs = 0;
  std::size_t rounds = 0;
  std::uint64_t dispatches = 0;
  double wall_s = 0;
  [[nodiscard]] double DispatchPerSec() const {
    return wall_s > 0 ? static_cast<double>(dispatches) / wall_s : 0;
  }
};

// One storm run: `procs` processes x `rounds` iterations of
// yield-then-blocked-wake. Deterministic: the trace is a pure function of
// (procs, rounds) on either backend.
StormResult RunStorm(Backend backend, std::size_t procs, std::size_t rounds) {
  const auto t0 = std::chrono::steady_clock::now();
  Engine engine(/*seed=*/42, backend);
  for (std::size_t i = 0; i < procs; ++i) {
    engine.Spawn("storm." + std::to_string(i), [rounds](Context& ctx) {
      for (std::size_t r = 0; r < rounds; ++r) {
        if (r % 2 == 0) {
          ctx.Yield();
        } else {
          Engine& eng = ctx.engine();
          const Pid self = ctx.pid();
          eng.ScheduleEvent(ctx.now(),
                            [&eng, self, t = ctx.now()] { eng.Wake(self, t); });
          ctx.Block("storm");
        }
      }
    });
  }
  const auto result = engine.Run();
  const auto t1 = std::chrono::steady_clock::now();
  PSTK_CHECK_MSG(result.status.ok(), "storm failed: "
                                         << result.status.ToString());
  PSTK_CHECK_MSG(result.completed == procs, "storm lost processes");
  StormResult out;
  out.backend = backend;
  out.procs = procs;
  out.rounds = rounds;
  out.dispatches = engine.obs().CounterByName("sim.dispatches");
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

void AppendJson(std::string* json, const StormResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"backend\": \"%s\", \"procs\": %zu, \"rounds\": %zu, "
                "\"dispatches\": %" PRIu64
                ", \"wall_s\": %.6f, \"dispatch_per_s\": %.0f}",
                std::string(pstk::sim::BackendName(r.backend)).c_str(),
                r.procs, r.rounds, r.dispatches, r.wall_s, r.DispatchPerSec());
  if (!json->empty()) *json += ",\n";
  *json += buf;
}

// Minimal extraction of `"key": <number>` from a flat JSON file — enough
// for the baseline format this bench itself writes, without a JSON dep.
double JsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return 0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  pstk::bench::Observability::Instance().ParseFlags(&argc, argv);
  bool smoke = false;
  std::string out_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // (procs, rounds) pairs sized so every cell runs ~10^6 iterations total,
  // keeping wall time per cell comparable across the sweep.
  struct Cell {
    std::size_t procs, rounds;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells = {{1000, 40}};
  } else {
    cells = {{1000, 1000}, {10000, 100}, {100000, 10}};
  }

  std::string json;
  std::vector<StormResult> fiber_results;
  std::vector<StormResult> thread_results;
  std::printf("%-8s %9s %7s %12s %9s %14s\n", "backend", "procs", "rounds",
              "dispatches", "wall_s", "dispatch/s");
  for (const Cell& cell : cells) {
    for (const Backend backend : {Backend::kFibers, Backend::kThreads}) {
      // 10^5 OS threads would thrash (or exhaust) the host: fiber-only.
      if (backend == Backend::kThreads && cell.procs > 10000) continue;
      const StormResult r = RunStorm(backend, cell.procs, cell.rounds);
      std::printf("%-8s %9zu %7zu %12" PRIu64 " %9.3f %14.0f\n",
                  std::string(pstk::sim::BackendName(backend)).c_str(),
                  r.procs, r.rounds, r.dispatches, r.wall_s,
                  r.DispatchPerSec());
      AppendJson(&json, r);
      (backend == Backend::kFibers ? fiber_results : thread_results)
          .push_back(r);
    }
  }

  // Per-size speedup summary (the paper-facing number).
  std::string speedups;
  for (const StormResult& f : fiber_results) {
    for (const StormResult& t : thread_results) {
      if (t.procs != f.procs) continue;
      const double speedup = t.DispatchPerSec() > 0
                                 ? f.DispatchPerSec() / t.DispatchPerSec()
                                 : 0;
      std::printf("fibers vs threads @ %zu procs: %.1fx\n", f.procs, speedup);
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "    {\"procs\": %zu, \"fibers_over_threads\": %.2f}",
                    f.procs, speedup);
      if (!speedups.empty()) speedups += ",\n";
      speedups += buf;
    }
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_engine\",\n  \"mode\": \"%s\",\n"
                 "  \"results\": [\n%s\n  ],\n  \"speedup\": [\n%s\n  ]\n}\n",
                 smoke ? "smoke" : "full", json.c_str(), speedups.c_str());
    std::fclose(f);
  }

  // CI regression gate: smoke throughput must stay within 30% of the
  // checked-in baseline (which is set conservatively below typical runner
  // numbers, so the gate catches real regressions, not runner noise).
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string baseline = ss.str();
    bool ok = true;
    for (const char* key : {"fibers_dispatch_per_s", "threads_dispatch_per_s"}) {
      const double want = JsonNumber(baseline, key);
      if (want <= 0) continue;
      const bool fibers = std::strstr(key, "fibers") != nullptr;
      const auto& results = fibers ? fiber_results : thread_results;
      if (results.empty()) continue;
      const double got = results.front().DispatchPerSec();
      const double floor = 0.7 * want;
      std::printf("baseline %s: got %.0f, floor %.0f (baseline %.0f)\n", key,
                  got, floor, want);
      if (got < floor) {
        std::fprintf(stderr,
                     "FAIL: %s regressed >30%% vs baseline (%.0f < %.0f)\n",
                     key, got, floor);
        ok = false;
      }
    }
    if (!ok) return 1;
  }
  return 0;
}
