// Engine dispatch-throughput microbenchmark (the tentpole measurement for
// the fiber scheduler): a spawn/yield/block storm at 10^3 / 10^4 / 10^5
// processes, run on both execution backends, reporting scheduler
// dispatches per wall-clock second.
//
// Each process runs `rounds` iterations alternating Yield() (ready-heap
// churn) with a Block() woken by a same-instant scheduled event
// (event-heap churn + wake decrease-key). Every iteration costs exactly
// one dispatch on either backend, so dispatch/s isolates the control
// transfer + scheduler-structure cost the backends differ in. The thread
// backend is capped at 10^4 processes — 10^5 OS threads is not a
// reasonable ask of the host — while the fiber backend runs the full
// sweep.
//
// Sharded cells run the same storm partitioned across N conservative-PDES
// shards (one scheduler thread each, node = proc % shards): all churn is
// shard-local, plus one ack-paced cross-shard ping ring forcing real
// synchronization windows, so "dispatch/s" is the *aggregate* throughput
// of N schedulers. The 10^6-process cell is wave-structured (10^4
// processes start per virtual-time epoch) so live fiber stacks stay
// bounded while every process still runs the full churn.
//
// Flags:
//   --smoke            small sizes (both backends + sharded), for ctest
//   --out=<file>       write machine-readable results (BENCH_engine.json)
//   --baseline=<file>  compare smoke throughput against a checked-in
//                      BENCH_engine.baseline.json and exit nonzero on a
//                      >30% regression (CI gate)
// plus the shared bench flags (--sim-backend= etc., see bench_opts.h).
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_opts.h"
#include "common/check.h"
#include "sim/engine.h"

namespace {

using pstk::SimTime;
using pstk::sim::Backend;
using pstk::sim::Context;
using pstk::sim::Engine;
using pstk::sim::Pid;

struct StormResult {
  Backend backend;
  int shards = 1;
  std::size_t procs = 0;
  std::size_t rounds = 0;
  std::uint64_t dispatches = 0;
  double wall_s = 0;
  [[nodiscard]] double DispatchPerSec() const {
    return wall_s > 0 ? static_cast<double>(dispatches) / wall_s : 0;
  }
};

// Every storm process runs this: `rounds` iterations alternating Yield()
// (ready-heap churn) with a Block() woken by a same-instant scheduled
// event (event-heap churn + wake decrease-key). Entirely shard-local.
pstk::sim::ProcessBody StormBody(std::size_t rounds) {
  return [rounds](Context& ctx) {
    for (std::size_t r = 0; r < rounds; ++r) {
      if (r % 2 == 0) {
        ctx.Yield();
      } else {
        Engine& eng = ctx.engine();
        const Pid self = ctx.pid();
        eng.ScheduleEvent(ctx.now(),
                          [&eng, self, t = ctx.now()] { eng.Wake(self, t); });
        ctx.Block("storm");
      }
    }
  };
}

// One storm run: `procs` processes x `rounds` iterations of
// yield-then-blocked-wake. Deterministic: the trace is a pure function of
// (procs, rounds) on either backend.
StormResult RunStorm(Backend backend, std::size_t procs, std::size_t rounds) {
  const auto t0 = std::chrono::steady_clock::now();
  Engine engine(/*seed=*/42, backend);
  for (std::size_t i = 0; i < procs; ++i) {
    engine.Spawn("storm." + std::to_string(i), StormBody(rounds));
  }
  const auto result = engine.Run();
  const auto t1 = std::chrono::steady_clock::now();
  PSTK_CHECK_MSG(result.status.ok(), "storm failed: "
                                         << result.status.ToString());
  PSTK_CHECK_MSG(result.completed == procs, "storm lost processes");
  StormResult out;
  out.backend = backend;
  out.procs = procs;
  out.rounds = rounds;
  out.dispatches = engine.obs().CounterByName("sim.dispatches");
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

// Sharded storm: `procs` storm processes spread round-robin across
// `shards` shards, started in waves of `wave` (one virtual second apart)
// so at most ~one wave of fiber stacks is live at a time, plus an
// ack-paced ping ring with one pinger/ponger pair per shard so every
// window really crosses shard boundaries. Lookahead is a constant 1
// virtual second (the production derivation from the modeled interconnect
// is net::ShardLookahead; the storm has no fabric).
StormResult RunShardedStorm(int shards, std::size_t procs, std::size_t rounds,
                            std::size_t wave) {
  constexpr SimTime kLookahead = 1.0;
  const auto t0 = std::chrono::steady_clock::now();
  pstk::sim::ShardOptions opts;
  opts.shards = shards;
  opts.lookahead = [](int, int) { return kLookahead; };
  Engine engine(/*seed=*/42, Backend::kFibers, std::move(opts));
  for (std::size_t i = 0; i < procs; ++i) {
    const auto start = static_cast<SimTime>(i / wave);
    engine.SpawnAt(start, "storm." + std::to_string(i), StormBody(rounds),
                   /*node=*/static_cast<int>(i % static_cast<std::size_t>(
                                                     shards)));
  }
  std::size_t ring = 0;
  if (shards > 1) {
    // Ping ring (see tests/sim_test.cc): pinger on shard s plays against
    // the ponger on shard s+1; each side parks before its peer's wake
    // lands, which the conservative protocol requires.
    constexpr int kPings = 4;
    // shared_ptr, not stack vectors: these captures outlive this block —
    // the bodies only run inside engine.Run() below.
    auto pingers = std::make_shared<std::vector<Pid>>(
        static_cast<std::size_t>(shards), pstk::sim::kNoPid);
    auto pongers = std::make_shared<std::vector<Pid>>(
        static_cast<std::size_t>(shards), pstk::sim::kNoPid);
    for (int s = 0; s < shards; ++s) {
      (*pongers)[static_cast<std::size_t>(s)] = engine.Spawn(
          "pong." + std::to_string(s),
          [pingers, s, shards](Context& ctx) {
            const Pid peer =
                (*pingers)[static_cast<std::size_t>((s + shards - 1) % shards)];
            for (int k = 0; k < kPings; ++k) {
              const SimTime woken = ctx.Block("await ping");
              ctx.engine().Wake(peer, woken + kLookahead);
            }
          },
          /*node=*/s);
    }
    for (int s = 0; s < shards; ++s) {
      (*pingers)[static_cast<std::size_t>(s)] = engine.Spawn(
          "ping." + std::to_string(s),
          [pongers, s, shards](Context& ctx) {
            const Pid peer =
                (*pongers)[static_cast<std::size_t>((s + 1) % shards)];
            for (int k = 0; k < kPings; ++k) {
              ctx.Compute(0.25);
              ctx.engine().Wake(peer, ctx.now() + kLookahead);
              ctx.Block("await pong");
            }
          },
          /*node=*/s);
    }
    ring = 2 * static_cast<std::size_t>(shards);
  }
  const auto result = engine.Run();
  const auto t1 = std::chrono::steady_clock::now();
  PSTK_CHECK_MSG(result.status.ok(), "sharded storm failed: "
                                         << result.status.ToString());
  PSTK_CHECK_MSG(result.completed == procs + ring,
                 "sharded storm lost processes");
  StormResult out;
  out.backend = Backend::kFibers;
  out.shards = shards;
  out.procs = procs;
  out.rounds = rounds;
  out.dispatches = engine.obs().CounterByName("sim.dispatches");
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

void AppendJson(std::string* json, const StormResult& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    {\"backend\": \"%s\", \"shards\": %d, \"procs\": %zu, "
                "\"rounds\": %zu, \"dispatches\": %" PRIu64
                ", \"wall_s\": %.6f, \"dispatch_per_s\": %.0f}",
                std::string(pstk::sim::BackendName(r.backend)).c_str(),
                r.shards, r.procs, r.rounds, r.dispatches, r.wall_s,
                r.DispatchPerSec());
  if (!json->empty()) *json += ",\n";
  *json += buf;
}

// Minimal extraction of `"key": <number>` from a flat JSON file — enough
// for the baseline format this bench itself writes, without a JSON dep.
double JsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return 0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  pstk::bench::Observability::Instance().ParseFlags(&argc, argv);
  bool smoke = false;
  std::string out_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // (procs, rounds) pairs sized so every cell runs ~10^6 iterations total,
  // keeping wall time per cell comparable across the sweep.
  struct Cell {
    std::size_t procs, rounds;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells = {{1000, 40}};
  } else {
    cells = {{1000, 1000}, {10000, 100}, {100000, 10}};
  }
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::string json;
  std::vector<StormResult> fiber_results;
  std::vector<StormResult> thread_results;
  std::vector<StormResult> sharded_results;
  std::printf("host cores: %u\n", host_cores);
  std::printf("%-8s %7s %9s %7s %12s %9s %14s\n", "backend", "shards",
              "procs", "rounds", "dispatches", "wall_s", "dispatch/s");
  auto print_row = [](const StormResult& r) {
    std::printf("%-8s %7d %9zu %7zu %12" PRIu64 " %9.3f %14.0f\n",
                std::string(pstk::sim::BackendName(r.backend)).c_str(),
                r.shards, r.procs, r.rounds, r.dispatches, r.wall_s,
                r.DispatchPerSec());
  };
  for (const Cell& cell : cells) {
    for (const Backend backend : {Backend::kFibers, Backend::kThreads}) {
      // 10^5 OS threads would thrash (or exhaust) the host: fiber-only.
      if (backend == Backend::kThreads && cell.procs > 10000) continue;
      const StormResult r = RunStorm(backend, cell.procs, cell.rounds);
      print_row(r);
      AppendJson(&json, r);
      (backend == Backend::kFibers ? fiber_results : thread_results)
          .push_back(r);
    }
  }

  // Sharded cells: aggregate throughput of N parallel schedulers over the
  // same storm. Smoke keeps one 2-shard cell (protocol coverage + CI
  // gate); the full sweep scales shard counts against the largest flat
  // cell and finishes with the 10^6-process wave storm.
  struct ShardCell {
    int shards;
    std::size_t procs, rounds, wave;
  };
  std::vector<ShardCell> shard_cells;
  if (smoke) {
    shard_cells = {{2, 1000, 40, 1000}};
  } else {
    shard_cells = {{2, 100000, 10, 100000},
                   {8, 100000, 10, 100000},
                   {8, 1000000, 2, 10000}};
  }
  for (const ShardCell& cell : shard_cells) {
    const StormResult r =
        RunShardedStorm(cell.shards, cell.procs, cell.rounds, cell.wave);
    print_row(r);
    AppendJson(&json, r);
    sharded_results.push_back(r);
  }

  // Speedup summaries (the paper-facing numbers): fibers vs threads at
  // equal size, and aggregate sharded throughput vs the single-shard
  // fiber engine at equal size.
  std::string speedups;
  for (const StormResult& f : fiber_results) {
    for (const StormResult& t : thread_results) {
      if (t.procs != f.procs) continue;
      const double speedup = t.DispatchPerSec() > 0
                                 ? f.DispatchPerSec() / t.DispatchPerSec()
                                 : 0;
      std::printf("fibers vs threads @ %zu procs: %.1fx\n", f.procs, speedup);
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "    {\"procs\": %zu, \"fibers_over_threads\": %.2f}",
                    f.procs, speedup);
      if (!speedups.empty()) speedups += ",\n";
      speedups += buf;
    }
  }
  for (const StormResult& s : sharded_results) {
    for (const StormResult& f : fiber_results) {
      if (f.procs != s.procs) continue;
      const double speedup = f.DispatchPerSec() > 0
                                 ? s.DispatchPerSec() / f.DispatchPerSec()
                                 : 0;
      std::printf("%d shards vs 1 @ %zu procs: %.1fx aggregate\n", s.shards,
                  s.procs, speedup);
      char buf[160];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"procs\": %zu, \"shards\": %d, \"sharded_over_single\": "
          "%.2f}",
          s.procs, s.shards, speedup);
      if (!speedups.empty()) speedups += ",\n";
      speedups += buf;
    }
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_engine\",\n  \"mode\": \"%s\",\n"
                 "  \"host_cores\": %u,\n"
                 "  \"results\": [\n%s\n  ],\n  \"speedup\": [\n%s\n  ]\n}\n",
                 smoke ? "smoke" : "full", host_cores, json.c_str(),
                 speedups.c_str());
    std::fclose(f);
  }

  // CI regression gate: smoke throughput must stay within 30% of the
  // checked-in baseline (which is set conservatively below typical runner
  // numbers, so the gate catches real regressions, not runner noise).
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string baseline = ss.str();
    bool ok = true;
    for (const char* key : {"fibers_dispatch_per_s", "threads_dispatch_per_s",
                            "sharded_dispatch_per_s"}) {
      const double want = JsonNumber(baseline, key);
      if (want <= 0) continue;
      const auto& results = std::strstr(key, "sharded") != nullptr
                                ? sharded_results
                            : std::strstr(key, "fibers") != nullptr
                                ? fiber_results
                                : thread_results;
      if (results.empty()) continue;
      const double got = results.front().DispatchPerSec();
      const double floor = 0.7 * want;
      std::printf("baseline %s: got %.0f, floor %.0f (baseline %.0f)\n", key,
                  got, floor, want);
      if (got < floor) {
        std::fprintf(stderr,
                     "FAIL: %s regressed >30%% vs baseline (%.0f < %.0f)\n",
                     key, got, floor);
        ok = false;
      }
    }
    if (!ok) return 1;
  }
  return 0;
}
