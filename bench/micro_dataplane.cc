// Data-plane bytes-copied microbenchmark (the tentpole measurement for
// the zero-copy buffer plane): drives a read -> shuffle -> cache chain
// over real MiniDFS blocks twice — once on the refcounted zero-copy plane
// (buf::Bytes aliases at every handoff) and once with the deep-copy
// handoffs of the legacy plane it replaced (value-semantics std::string /
// serde::Buffer at each hop) — and reports host bytes actually copied per
// chain from buf::SnapshotStats().
//
// One chain is one DFS block's journey: block read, bucketing into R
// shuffle slices, commit, reduce-side fetch of each bucket, concatenation
// into the reduce partition, and a cache store; the partition is then
// checksummed span-by-span (consumed, never flattened). The legacy mode
// performs the same chain but materializes a fresh buffer at the hops
// where the old plane copied: the block read, each bucket cut, each
// fetch, the reduce-side concatenation, and the cache store. Both modes
// must produce identical checksums — the bench CHECK-fails otherwise.
//
// Flags:
//   --smoke            small sizes, for ctest
//   --legacy-copy      run only the legacy plane (for profiling it alone)
//   --out=<file>       write machine-readable results (BENCH_dataplane.json)
//   --baseline=<file>  compare the copy-reduction ratio against a
//                      checked-in BENCH_dataplane.baseline.json and exit
//                      nonzero when it drops below min_copy_reduction
//                      (CI gate)
// plus the shared bench flags (--trace=, --metrics, see bench_opts.h).
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_opts.h"
#include "buf/bytes.h"
#include "cluster/cluster.h"
#include "common/check.h"
#include "dfs/dfs.h"
#include "sim/engine.h"

namespace {

using pstk::Bytes;
using pstk::buf::StatsSnapshot;

struct ChainConfig {
  int nodes = 4;
  std::size_t blocks = 32;        // map partitions (one chain per block)
  std::size_t block_bytes = 1 << 20;
  std::size_t reducers = 16;
};

struct ChainResult {
  std::uint64_t copy_bytes = 0;   // host bytes deep-copied by the plane
  std::uint64_t copies = 0;       // deep-copy events
  std::uint64_t aliases = 0;      // zero-copy spans minted
  std::uint64_t checksum = 0;     // consumption proof, mode-independent
  double elapsed_sim = 0;         // simulated seconds (must match per mode)
};

// The handoff primitive under test: the zero-copy plane passes the buffer
// through (a refcount bump at most); the legacy plane materializes a fresh
// allocation, exactly what value-semantics buffers did at every hop.
pstk::buf::Bytes Handoff(const pstk::buf::Bytes& b, bool legacy) {
  if (!legacy) return b;
  return b.flat() ? pstk::buf::Bytes::Copy(b.view()) : b.Flatten();
}

ChainResult RunChain(const ChainConfig& config, bool legacy) {
  pstk::sim::Engine engine;
  pstk::cluster::Cluster cluster(
      engine, pstk::cluster::ClusterSpec::Comet(config.nodes));
  pstk::dfs::DfsOptions dfs_opts;
  dfs_opts.block_size = config.block_bytes;  // one chain per block
  pstk::dfs::MiniDfs dfs(cluster, dfs_opts);
  pstk::bench::Observability::Instance().Attach(engine);

  // Stage the input: blocks are deterministic patterned text so the two
  // modes can be checksum-compared.
  std::string content;
  content.reserve(config.blocks * config.block_bytes);
  for (std::size_t b = 0; b < config.blocks; ++b) {
    for (std::size_t i = 0; i < config.block_bytes; ++i) {
      content.push_back(static_cast<char>('a' + (b * 31 + i * 7) % 26));
    }
  }
  PSTK_CHECK(dfs.Install("/bench/input",
                         pstk::buf::Bytes::FromString(std::move(content)))
                 .ok());

  const StatsSnapshot before = pstk::buf::SnapshotStats();
  ChainResult out;

  engine.Spawn("dataplane", [&](pstk::sim::Context& ctx) {
    const auto t0 = ctx.now();
    const std::size_t R = config.reducers;
    // Shuffle store: buckets[map][reduce].
    std::vector<std::vector<pstk::buf::Bytes>> store(config.blocks);

    // Map side: read each block, cut it into R bucket ranges, commit.
    for (std::size_t m = 0; m < config.blocks; ++m) {
      auto block = dfs.ReadBlock(ctx, static_cast<int>(m) % config.nodes,
                                 "/bench/input", m);
      PSTK_CHECK_MSG(block.ok(), block.status().ToString());
      const pstk::buf::Bytes data = Handoff(block.value(), legacy);
      const std::size_t per = data.size() / R;
      store[m].reserve(R);
      for (std::size_t r = 0; r < R; ++r) {
        const std::size_t off = r * per;
        const std::size_t len = r + 1 == R ? data.size() - off : per;
        store[m].push_back(Handoff(data.Slice(off, len), legacy));
      }
    }

    // Reduce side: fetch bucket r of every map output, concatenate into
    // the reduce partition, cache it, and consume span-by-span.
    std::vector<pstk::buf::Bytes> cache;
    cache.reserve(R);
    std::uint64_t checksum = 0;
    for (std::size_t r = 0; r < R; ++r) {
      std::vector<pstk::buf::Bytes> fetched;
      fetched.reserve(config.blocks);
      for (std::size_t m = 0; m < config.blocks; ++m) {
        fetched.push_back(Handoff(store[m][r], legacy));
      }
      pstk::buf::Bytes part = pstk::buf::Bytes::Concat(fetched);
      if (legacy) part = part.Flatten();
      cache.push_back(Handoff(part, legacy));
      cache.back().ForEachChunk([&checksum](std::string_view span) {
        for (const char c : span) {
          checksum = checksum * 1099511628211ULL + static_cast<unsigned char>(c);
        }
      });
    }
    out.checksum = checksum;
    out.elapsed_sim = ctx.now() - t0;
  });
  const auto run = engine.Run();
  PSTK_CHECK_MSG(run.status.ok(), run.status.ToString());

  const StatsSnapshot after = pstk::buf::SnapshotStats();
  out.copy_bytes = after.copy_bytes - before.copy_bytes;
  out.copies = after.copies - before.copies;
  out.aliases = after.chunks_aliased - before.chunks_aliased;
  pstk::bench::Observability::Instance().Collect(
      engine, std::string("dataplane ") + (legacy ? "legacy" : "zero-copy"));
  return out;
}

// Minimal extraction of `"key": <number>` from a flat JSON file — enough
// for the baseline format this bench itself writes, without a JSON dep.
double JsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return 0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  pstk::bench::Observability::Instance().ParseFlags(&argc, argv);
  bool smoke = false;
  bool legacy_only = false;
  std::string out_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--legacy-copy") {
      legacy_only = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  ChainConfig config;
  if (smoke) {
    config.blocks = 8;
    config.block_bytes = 64 << 10;
    config.reducers = 4;
  }
  const double chain_bytes = static_cast<double>(config.block_bytes);

  std::printf("%-10s %10s %14s %16s %10s %12s\n", "plane", "chains",
              "copies", "copy_bytes", "aliases", "copy/chain");
  auto print_row = [&](const char* name, const ChainResult& r) {
    std::printf("%-10s %10zu %14" PRIu64 " %16" PRIu64 " %10" PRIu64
                " %12.0f\n",
                name, config.blocks, r.copies, r.copy_bytes, r.aliases,
                static_cast<double>(r.copy_bytes) /
                    static_cast<double>(config.blocks));
  };

  const ChainResult legacy = RunChain(config, /*legacy=*/true);
  print_row("legacy", legacy);
  ChainResult zero;
  if (!legacy_only) {
    zero = RunChain(config, /*legacy=*/false);
    print_row("zero-copy", zero);
    PSTK_CHECK_MSG(zero.checksum == legacy.checksum,
                   "planes disagree on data: zero-copy checksum "
                       << zero.checksum << " vs legacy " << legacy.checksum);
  }

  // The paper-facing number: bytes the host no longer copies per chain.
  // The zero-copy plane can be perfectly copy-free here, so the ratio is
  // computed against at least one byte.
  const double reduction =
      static_cast<double>(legacy.copy_bytes) /
      static_cast<double>(zero.copy_bytes > 0 ? zero.copy_bytes : 1);
  if (!legacy_only) {
    std::printf("bytes-copied reduction: %.1fx (legacy %.1f vs zero-copy "
                "%.1f bytes/chain over %.0f-byte blocks)\n",
                reduction,
                static_cast<double>(legacy.copy_bytes) /
                    static_cast<double>(config.blocks),
                static_cast<double>(zero.copy_bytes) /
                    static_cast<double>(config.blocks),
                chain_bytes);
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"micro_dataplane\",\n  \"mode\": \"%s\",\n"
        "  \"blocks\": %zu,\n  \"block_bytes\": %zu,\n  \"reducers\": %zu,\n"
        "  \"legacy_copy_bytes\": %" PRIu64 ",\n"
        "  \"zero_copy_bytes\": %" PRIu64 ",\n"
        "  \"zero_copy_aliases\": %" PRIu64 ",\n"
        "  \"copy_reduction\": %.2f\n}\n",
        smoke ? "smoke" : "full", config.blocks, config.block_bytes,
        config.reducers, legacy.copy_bytes, zero.copy_bytes, zero.aliases,
        reduction);
    std::fclose(f);
  }

  // CI gate: the zero-copy plane must keep beating the legacy plane by
  // the checked-in factor (and must stay genuinely alias-based).
  if (!baseline_path.empty() && !legacy_only) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string baseline = ss.str();
    const double min_reduction = JsonNumber(baseline, "min_copy_reduction");
    std::printf("baseline min_copy_reduction: %.1f, got %.1fx\n",
                min_reduction, reduction);
    if (min_reduction > 0 && reduction < min_reduction) {
      std::fprintf(stderr,
                   "FAIL: copy reduction %.2fx below baseline %.2fx\n",
                   reduction, min_reduction);
      return 1;
    }
  }
  return pstk::bench::Observability::Instance().Finish() ? 0 : 1;
}
