// Shared PageRank runners for the Fig 6 / Fig 7 / ablation benchmarks:
// the BigDataBench-style tuned Spark version (partitionBy + persist, per
// Fig 5 of the paper), the HiBench-style shuffle-heavy Spark version, and
// the MPI implementation (dense rank vector + allreduce per iteration).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "dfs/dfs.h"
#include "sim/engine.h"
#include "workloads/graph.h"

namespace pstk::bench {

struct PageRankRun {
  SimTime elapsed = 0;              // job/app time (incl. framework startup)
  Bytes shuffle_fetched = 0;        // modeled bytes over the shuffle fabric
  double max_delta_vs_reference = 0;
};

struct PageRankConfig {
  int nodes = 8;
  int procs_per_node = 16;  // paper: 16 processes/node for Fig 6/7
  int iterations = 5;
  bool rdma = false;        // Spark-RDMA shuffle engine
  bool persist = true;      // only honored by the BigDataBench variant
};

/// Tuned BigDataBench style: hash-partitioned persisted links, narrow
/// join, persisted per-iteration ranks (paper Fig 5).
Result<PageRankRun> RunSparkPageRankBdb(const workloads::Graph& graph,
                                        const std::vector<double>& reference,
                                        const PageRankConfig& config);

/// HiBench style: links re-read from text each iteration, no partitioner,
/// no persist — the join shuffles the full link table every iteration.
Result<PageRankRun> RunSparkPageRankHiBench(
    const workloads::Graph& graph, const std::vector<double>& reference,
    const PageRankConfig& config);

/// MPI implementation: block-partitioned vertices, local contribution
/// accumulation, dense Allreduce of the contribution vector per iteration.
Result<PageRankRun> RunMpiPageRank(const workloads::Graph& graph,
                                   const std::vector<double>& reference,
                                   const PageRankConfig& config);

}  // namespace pstk::bench
