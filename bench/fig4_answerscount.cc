// Figure 4: the StackExchange AnswersCount benchmark over an 80 GB text
// dataset, swept over process counts (8 processes per node).
//
//  * OpenMP runs only on a single node (8- and 16-core configurations);
//  * MPI uses MPI-IO collective reads whose `int` count caps a rank's
//    chunk at 2 GB — with 80 GiB the job is IMPOSSIBLE below 41 ranks
//    (the paper: "we had to use more than 40 processes");
//  * Hadoop MapReduce persists all intermediate results on disk;
//  * Spark caches/streams in memory and scales best.
//
//   ./build/bench/fig4_answerscount [scale=0.001] [gb=80] [maxprocs=128]
//
// maxprocs=16384 extends the sweep past 10^4 ranks (pair it with
// scale=0.0001 so per-node scratch staging fits in RAM; see EXPERIMENTS.md).
#include <cstdio>
#include <string>

#include "bench_opts.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "mr/mr.h"
#include "sim/engine.h"
#include "spark/spark.h"
#include "workloads/stackexchange.h"

using namespace pstk;

namespace {

constexpr SimTime kNativeCpuPerByte = 1.0 / 1.2e9;

struct Env {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<dfs::MiniDfs> dfs;
};

std::unique_ptr<Env> MakeEnv(int nodes, double scale, const std::string& data,
                             bool with_dfs, bool with_local) {
  auto env = std::make_unique<Env>();
  env->cluster = std::make_unique<cluster::Cluster>(
      env->engine, cluster::ClusterSpec::Comet(nodes), scale);
  if (with_dfs) {
    env->dfs = std::make_unique<dfs::MiniDfs>(*env->cluster);  // 128MB blocks
    if (!env->dfs->Install("/in/posts.txt", data).ok()) return nullptr;
  }
  if (with_local) {
    for (int n = 0; n < nodes; ++n) {
      env->cluster->scratch(n).Install("/scratch/posts.txt", data);
    }
  }
  bench::Observability::Instance().Attach(env->engine);
  return env;
}

SimTime RunOpenMp(int threads, double scale, const std::string& data) {
  auto env = MakeEnv(1, scale, data, false, true);
  SimTime elapsed = -1;
  env->engine.Spawn("omp", [&](sim::Context& ctx) {
    auto text = env->cluster->scratch(0).ReadAll(ctx, "/scratch/posts.txt");
    if (!text.ok()) return;
    (void)workloads::CountPosts(text.value());  // real kernel
    const double modeled =
        static_cast<double>(env->cluster->Modeled(text.value().size()));
    const double efficiency = 1.0 / (1.0 + 0.02 * (threads - 1));
    ctx.Compute(modeled * kNativeCpuPerByte /
                (static_cast<double>(threads) * efficiency));
    elapsed = ctx.now();
  });
  const bool ok = env->engine.Run().status.ok();
  bench::Observability::Instance().Collect(
      env->engine, "openmp threads=" + std::to_string(threads));
  return ok ? elapsed : -1;
}

/// Returns -1 on infrastructure error, -2 when the int-count limit bites.
SimTime RunMpi(int procs, int ppn, double scale, const std::string& data) {
  const int nodes = (procs + ppn - 1) / ppn;
  auto env = MakeEnv(nodes, scale, data, false, true);
  bool unsupported = false;
  auto elapsed = mpi::World(*env->cluster, procs, ppn)
                     .RunSpmd([&](mpi::Comm& comm) {
    auto file = mpi::File::OpenAll(comm, "/scratch/posts.txt");
    if (!file.ok()) return;
    const Bytes chunk = file->size() / comm.size();
    const Bytes offset = chunk * comm.rank();
    const Bytes len =
        comm.rank() == comm.size() - 1 ? file->size() - offset : chunk;
    // The collective read itself rejects per-rank counts above INT_MAX
    // (the MPI_File_read_at_all `int` count), failing symmetrically on
    // every rank; under --verify this also files an io-overflow finding.
    auto part =
        file->ReadLinesAtAll(comm, offset, static_cast<std::int64_t>(len));
    if (!part.ok()) {
      if (comm.rank() == 0 &&
          part.status().ToString().find("INT_MAX") != std::string::npos) {
        unsupported = true;
      }
      return;
    }
    const auto counts = workloads::CountPosts(part.value());
    comm.ctx().Compute(static_cast<double>(len) * kNativeCpuPerByte);
    const std::vector<std::uint64_t> mine{counts.questions, counts.answers};
    std::vector<std::uint64_t> total(2);
    comm.Reduce<std::uint64_t>(mine, total, 0);
  });
  bench::Observability::Instance().Collect(
      env->engine, "mpi procs=" + std::to_string(procs));
  if (!elapsed.ok()) return -1;
  return unsupported ? -2 : elapsed.value();
}

SimTime RunHadoop(int nodes, int ppn, double scale, const std::string& data) {
  auto env = MakeEnv(nodes, scale, data, true, false);
  mr::MrOptions options;
  options.slots_per_node = ppn;
  mr::MrEngine engine(*env->cluster, *env->dfs, options);
  mr::JobConf conf;
  conf.input_path = "/in/posts.txt";
  conf.output_path = "/out/ac";
  conf.num_reducers = 1;
  auto map = [](const std::string& line, mr::Emitter& out) {
    switch (workloads::ClassifyPost(line)) {
      case workloads::PostKind::kQuestion: out.Emit("Q", "1"); break;
      case workloads::PostKind::kAnswer: out.Emit("A", "1"); break;
      default: break;
    }
  };
  auto reduce = [](const std::string& key,
                   const std::vector<std::string>& values, mr::Emitter& out) {
    std::int64_t sum = 0;
    for (const auto& v : values) sum += std::strtoll(v.c_str(), nullptr, 10);
    out.Emit(key, std::to_string(sum));
  };
  auto result = engine.RunJob(conf, map, reduce, reduce);
  bench::Observability::Instance().Collect(
      env->engine, "hadoop nodes=" + std::to_string(nodes));
  return result.ok() ? result->elapsed : -1;
}

SimTime RunSpark(int nodes, int ppn, double scale, const std::string& data) {
  auto env = MakeEnv(nodes, scale, data, true, false);
  spark::SparkOptions options;
  options.executors_per_node = ppn;
  spark::MiniSpark spark(*env->cluster, env->dfs.get(), options);
  SimTime job = -1;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    using Counts = std::pair<std::uint64_t, std::uint64_t>;
    auto lines = sc.TextFile("/in/posts.txt");
    if (!lines.ok()) return;
    const SimTime start = sc.ctx().now();
    auto total = lines->Map<Counts>([](const std::string& line) {
                        switch (workloads::ClassifyPost(line)) {
                          case workloads::PostKind::kQuestion:
                            return Counts{1, 0};
                          case workloads::PostKind::kAnswer:
                            return Counts{0, 1};
                          default:
                            return Counts{0, 0};
                        }
                      })
                     .Reduce([](const Counts& a, const Counts& b) {
                       return Counts{a.first + b.first, a.second + b.second};
                     });
    if (!total.ok()) return;
    job = sc.ctx().now() - start;
  });
  bench::Observability::Instance().Collect(
      env->engine, "spark nodes=" + std::to_string(nodes));
  return result.ok() ? job : -1;
}

std::string Cell(SimTime t) {
  if (t == -2) return "N/A (>2GB/rank)";
  if (t < 0) return "error";
  return FormatDuration(t);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.001);
  const Bytes logical =
      static_cast<Bytes>(config->GetInt("gb", 80)) * kGiB;
  // maxprocs extends the paper's 8..128 sweep: 256..1024 ranks are routine
  // on the fiber backend, and maxprocs=16384 sweeps past 10^4 ranks (see
  // EXPERIMENTS.md for the recipe and expected wall times).
  const int maxprocs = static_cast<int>(config->GetInt("maxprocs", 128));
  const int ppn = 8;  // paper: 8 processes per node

  workloads::StackExchangeParams params;
  params.target_bytes =
      static_cast<Bytes>(static_cast<double>(logical) * scale);
  const std::string data = workloads::GenerateStackExchange(params, nullptr);

  std::printf("Figure 4 — StackExchange AnswersCount, %s dataset "
              "(%d procs/node, scale=%g)\n\n",
              FormatBytes(logical).c_str(), ppn, scale);

  Table table;
  table.SetHeader({"processes", "nodes", "OpenMP", "MPI", "Hadoop", "Spark"});
  const int proc_counts[] = {8,   16,  24,  32,   40,   48,   64,   96,  128,
                             256, 512, 1024, 2048, 4096, 8192, 16384};
  for (int procs : proc_counts) {
    if (procs > maxprocs) break;
    const int nodes = procs / ppn;
    const SimTime omp_time =
        procs <= 16 ? RunOpenMp(procs, scale, data) : -3;
    const SimTime mpi_time = RunMpi(procs, ppn, scale, data);
    const SimTime mr_time = RunHadoop(nodes, ppn, scale, data);
    const SimTime spark_time = RunSpark(nodes, ppn, scale, data);
    table.Row()
        .Cell(std::int64_t{procs})
        .Cell(std::int64_t{nodes})
        .Cell(procs <= 16 ? Cell(omp_time) : std::string("single node only"))
        .Cell(Cell(mpi_time))
        .Cell(Cell(mr_time))
        .Cell(Cell(spark_time));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): OpenMP is confined to one node; MPI cannot\n"
      "run below ~41 processes (2 GB int-count limit in MPI-IO) and scales\n"
      "modestly; Hadoop pays disk-persisted intermediates + per-task JVMs;\n"
      "Spark scales best on this I/O-heavy workload.\n");
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
