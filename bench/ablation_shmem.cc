// Ablation D: OpenSHMEM one-sided vs MPI two-sided on a fine-grained,
// irregular update pattern (the survey's §II-C claim: SHMEM "is
// particularly advantageous for applications with many small put/get
// operations", offloading communication to the NIC).
//
// Each process streams 8-byte updates to its right neighbor: SHMEM uses
// puts + one barrier; MPI must match every message with a receive.
//
//   ./build/bench/ablation_shmem [nodes=4] [ppn=4] [updates=4000]
#include <cstdio>
#include <string>

#include "bench_opts.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "common/table.h"
#include "mpi/mpi.h"
#include "shmem/shmem.h"
#include "sim/engine.h"

using namespace pstk;

namespace {

SimTime ShmemUpdates(int nodes, int ppn, int updates) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  shmem::ShmemWorld world(cluster, nodes * ppn, ppn);
  bench::Observability::Instance().Attach(engine);
  SimTime elapsed = -1;
  auto result = world.RunSpmd([&](shmem::Pe& pe) {
    auto slots = pe.Malloc<std::int64_t>(updates);
    pe.BarrierAll();
    const SimTime start = pe.ctx().now();
    const int right = (pe.my_pe() + 1) % pe.n_pes();
    for (int i = 0; i < updates; ++i) {
      pe.PutValue<std::int64_t>(slots.at(i), i, right);
    }
    pe.Quiet();
    pe.BarrierAll();
    if (pe.my_pe() == 0) elapsed = pe.ctx().now() - start;
  });
  bench::Observability::Instance().Collect(
      engine, "shmem updates=" + std::to_string(updates));
  return result.ok() ? elapsed : -1;
}

SimTime MpiUpdates(int nodes, int ppn, int updates) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  mpi::World world(cluster, nodes * ppn, ppn);
  bench::Observability::Instance().Attach(engine);
  SimTime elapsed = -1;
  auto result = world.RunSpmd([&](mpi::Comm& comm) {
    comm.Barrier();
    const SimTime start = comm.ctx().now();
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() - 1 + comm.size()) % comm.size();
    std::vector<std::int64_t> received(updates);
    // Post all receives up front (the best two-sided strategy), push the
    // sends, then complete the receives.
    std::vector<mpi::Request> reqs;
    reqs.reserve(updates);
    for (int i = 0; i < updates; ++i) {
      reqs.push_back(comm.Irecv(&received[i], sizeof(std::int64_t), left, i));
    }
    for (int i = 0; i < updates; ++i) {
      std::int64_t value = i;
      comm.Isend(&value, sizeof(value), right, i);
    }
    comm.Waitall(reqs);
    comm.Barrier();
    if (comm.rank() == 0) elapsed = comm.ctx().now() - start;
  });
  bench::Observability::Instance().Collect(
      engine, "mpi updates=" + std::to_string(updates));
  return result.ok() ? elapsed : -1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  const int ppn = static_cast<int>(config->GetInt("ppn", 4));
  const int updates = static_cast<int>(config->GetInt("updates", 4000));

  std::printf("Ablation D — one-sided vs two-sided fine-grained updates "
              "(%d PEs, %d x 8-byte updates each)\n\n", nodes * ppn, updates);
  const SimTime shmem_time = ShmemUpdates(nodes, ppn, updates);
  const SimTime mpi_time = MpiUpdates(nodes, ppn, updates);

  Table table;
  table.SetHeader({"runtime", "total", "per update"});
  table.Row()
      .Cell("OpenSHMEM put")
      .Cell(FormatDuration(shmem_time))
      .Cell(FormatDuration(shmem_time / updates));
  table.Row()
      .Cell("MPI isend/irecv")
      .Cell(FormatDuration(mpi_time))
      .Cell(FormatDuration(mpi_time / updates));
  table.Print();
  std::printf("\nSHMEM advantage: %.2fx — one-sided puts skip message\n"
              "matching and the receiver CPU entirely (NIC offload).\n",
              mpi_time / shmem_time);
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
