// Ablation A: the persist() tuning of BigDataBench PageRank (paper Fig 5
// and §V-D: "This simple change does not only improve the performance of
// the Spark implementation by a factor of 3...").
//
// Same tuned dataflow, with and without persist(MEMORY_AND_DISK) on the
// partitioned link table and the per-iteration ranks.
//
//   ./build/bench/ablation_persist [vertices=300000] [iters=5] [nodes=8]
#include <cstdio>

#include "bench_opts.h"
#include "common/config.h"
#include "common/table.h"
#include "pagerank_common.h"
#include "workloads/pagerank.h"

using namespace pstk;

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  workloads::GraphParams gparams;
  gparams.vertices =
      static_cast<workloads::VertexId>(config->GetInt("vertices", 300000));
  const int iters = static_cast<int>(config->GetInt("iters", 5));
  const int nodes = static_cast<int>(config->GetInt("nodes", 8));

  const workloads::Graph graph = workloads::GenerateGraph(gparams);
  const auto reference = workloads::PageRankReference(graph, iters);

  std::printf("Ablation A — persist() on/off, BigDataBench PageRank "
              "(%u vertices, %d iterations, %d nodes)\n\n",
              graph.vertices, iters, nodes);

  bench::PageRankConfig pr;
  pr.nodes = nodes;
  pr.iterations = iters;

  pr.persist = true;
  auto tuned = bench::RunSparkPageRankBdb(graph, reference, pr);
  pr.persist = false;
  auto no_persist = bench::RunSparkPageRankBdb(graph, reference, pr);
  auto hibench = bench::RunSparkPageRankHiBench(graph, reference, pr);
  if (!tuned.ok() || !no_persist.ok() || !hibench.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  Table table;
  table.SetHeader({"variant", "time", "shuffle fetched", "|err| max"});
  table.Row()
      .Cell("tuned: partitionBy + persist (Fig 5)")
      .Cell(FormatDuration(tuned->elapsed))
      .Cell(FormatBytes(tuned->shuffle_fetched))
      .Cell(tuned->max_delta_vs_reference, 9);
  table.Row()
      .Cell("partitionBy, no persist")
      .Cell(FormatDuration(no_persist->elapsed))
      .Cell(FormatBytes(no_persist->shuffle_fetched))
      .Cell(no_persist->max_delta_vs_reference, 9);
  table.Row()
      .Cell("untuned (HiBench-style dataflow)")
      .Cell(FormatDuration(hibench->elapsed))
      .Cell(FormatBytes(hibench->shuffle_fetched))
      .Cell(hibench->max_delta_vs_reference, 9);
  table.Print();
  std::printf(
      "\nspeedup of the tuned version over the untuned dataflow: %.2fx "
      "(paper: ~3x)\nshuffle-traffic reduction: %.1fx\n",
      hibench->elapsed / tuned->elapsed,
      static_cast<double>(hibench->shuffle_fetched) /
          static_cast<double>(std::max<Bytes>(1, tuned->shuffle_fetched)));
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
