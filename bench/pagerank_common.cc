#include "pagerank_common.h"

#include "bench_opts.h"

#include <algorithm>

#include "mpi/mpi.h"
#include "spark/spark.h"
#include "workloads/pagerank.h"

namespace pstk::bench {

namespace {

using K = std::int64_t;

/// Per-vertex adjacency pairs from the graph (the parsed text form).
std::vector<std::pair<K, std::vector<K>>> LinksOf(
    const workloads::Graph& graph) {
  std::vector<std::pair<K, std::vector<K>>> links;
  links.reserve(graph.vertices);
  for (workloads::VertexId v = 0; v < graph.vertices; ++v) {
    std::vector<K> targets;
    targets.reserve(graph.out_degree(v));
    for (std::uint64_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      targets.push_back(graph.targets[e]);
    }
    links.emplace_back(v, std::move(targets));
  }
  return links;
}

double CompareToReference(const std::map<K, double>& got,
                          const std::vector<double>& reference) {
  std::vector<double> dense(reference.size(), workloads::kBaseRank);
  for (const auto& [v, r] : got) {
    if (v >= 0 && static_cast<std::size_t>(v) < dense.size()) {
      dense[static_cast<std::size_t>(v)] = r;
    }
  }
  return workloads::MaxRankDelta(dense, reference);
}

spark::SparkOptions SparkOptionsFor(const PageRankConfig& config) {
  spark::SparkOptions options;
  options.executors_per_node = config.procs_per_node;
  options.rdma_shuffle = config.rdma;
  return options;
}

}  // namespace

Result<PageRankRun> RunSparkPageRankBdb(const workloads::Graph& graph,
                                        const std::vector<double>& reference,
                                        const PageRankConfig& config) {
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterSpec::Comet(config.nodes));
  spark::MiniSpark spark(cluster, nullptr, SparkOptionsFor(config));
  Observability::Instance().Attach(engine);

  PageRankRun run;
  auto links_data = LinksOf(graph);
  Status job_status;
  SimTime job_elapsed = 0;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    const SimTime job_start = sc.ctx().now();
    const int parts = sc.default_parallelism();
    auto links = sc.Parallelize(links_data, parts)
                     .AsPairs<K, std::vector<K>>()
                     .PartitionBy(parts);
    if (config.persist) links.Persist(spark::StorageLevel::kMemoryAndDisk);

    auto ranks = links.MapValues<double>([](const std::vector<K>&) {
      return 1.0;
    });
    for (int i = 0; i < config.iterations; ++i) {
      auto contribs =
          links.Join(ranks)  // narrow: co-partitioned
              .AsRdd()
              .FlatMap<std::pair<K, double>>(
                  [](const std::pair<K, std::pair<std::vector<K>, double>>&
                         entry) {
                    const auto& [src, pair] = entry;
                    const auto& [urls, rank] = pair;
                    std::vector<std::pair<K, double>> out;
                    out.reserve(urls.size() + 1);
                    out.emplace_back(src, 0.0);
                    const double share =
                        rank / static_cast<double>(urls.size());
                    for (K url : urls) out.emplace_back(url, share);
                    return out;
                  })
              .AsPairs<K, double>();
      auto summed = contribs.ReduceByKey(
          [](double a, double b) { return a + b; }, parts);
      ranks = summed.MapValues<double>([](const double& sum) {
        return workloads::kBaseRank + workloads::kDamping * sum;
      });
      if (config.persist) {
        ranks.Persist(spark::StorageLevel::kMemoryAndDisk);
      }
      auto count = ranks.Count();  // materialize each step (BigDataBench)
      if (!count.ok()) {
        job_status = count.status();
        return;
      }
    }
    auto final_ranks = ranks.CollectAsMap();
    if (!final_ranks.ok()) {
      job_status = final_ranks.status();
      return;
    }
    run.max_delta_vs_reference =
        CompareToReference(final_ranks.value(), reference);
    job_elapsed = sc.ctx().now() - job_start;
  });
  Observability::Instance().Collect(
      engine, "spark-bdb nodes=" + std::to_string(config.nodes) +
                  (config.rdma ? " rdma" : ""));
  if (!result.ok()) return result.status();
  if (!job_status.ok()) return job_status;
  run.elapsed = job_elapsed;
  run.shuffle_fetched = result->stats.shuffle_fetched_bytes;
  return run;
}

Result<PageRankRun> RunSparkPageRankHiBench(
    const workloads::Graph& graph, const std::vector<double>& reference,
    const PageRankConfig& config) {
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterSpec::Comet(config.nodes));
  spark::MiniSpark spark(cluster, nullptr, SparkOptionsFor(config));
  Observability::Instance().Attach(engine);

  PageRankRun run;
  auto links_data = LinksOf(graph);
  Status job_status;
  SimTime job_elapsed = 0;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    const SimTime job_start = sc.ctx().now();
    const int parts = sc.default_parallelism();
    // No partitionBy, no persist: every iteration's join reshuffles the
    // full link table AND the ranks (HiBench's MR-ported implementation).
    auto links =
        sc.Parallelize(links_data, parts).AsPairs<K, std::vector<K>>();
    auto ranks = links.MapValues<double>([](const std::vector<K>&) {
      return 1.0;
    });
    for (int i = 0; i < config.iterations; ++i) {
      auto contribs =
          links.Join(ranks)  // wide: shuffles both sides
              .AsRdd()
              .FlatMap<std::pair<K, double>>(
                  [](const std::pair<K, std::pair<std::vector<K>, double>>&
                         entry) {
                    const auto& [src, pair] = entry;
                    const auto& [urls, rank] = pair;
                    std::vector<std::pair<K, double>> out;
                    out.reserve(urls.size() + 1);
                    out.emplace_back(src, 0.0);
                    const double share =
                        rank / static_cast<double>(urls.size());
                    for (K url : urls) out.emplace_back(url, share);
                    return out;
                  })
              .AsPairs<K, double>();
      auto summed = contribs.ReduceByKey(
          [](double a, double b) { return a + b; }, parts);
      ranks = summed.MapValues<double>([](const double& sum) {
        return workloads::kBaseRank + workloads::kDamping * sum;
      });
      auto count = ranks.Count();
      if (!count.ok()) {
        job_status = count.status();
        return;
      }
    }
    auto final_ranks = ranks.CollectAsMap();
    if (!final_ranks.ok()) {
      job_status = final_ranks.status();
      return;
    }
    run.max_delta_vs_reference =
        CompareToReference(final_ranks.value(), reference);
    job_elapsed = sc.ctx().now() - job_start;
  });
  Observability::Instance().Collect(
      engine, "spark-hibench nodes=" + std::to_string(config.nodes) +
                  (config.rdma ? " rdma" : ""));
  if (!result.ok()) return result.status();
  if (!job_status.ok()) return job_status;
  run.elapsed = job_elapsed;
  run.shuffle_fetched = result->stats.shuffle_fetched_bytes;
  return run;
}

Result<PageRankRun> RunMpiPageRank(const workloads::Graph& graph,
                                   const std::vector<double>& reference,
                                   const PageRankConfig& config) {
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterSpec::Comet(config.nodes));
  mpi::World world(cluster, config.nodes * config.procs_per_node,
                   config.procs_per_node);
  Observability::Instance().Attach(engine);

  PageRankRun run;
  double max_delta = 0;
  SimTime job_elapsed = 0;
  auto elapsed = world.RunSpmd([&](mpi::Comm& comm) {
    comm.Barrier();
    const SimTime job_start = comm.ctx().now();
    const auto n = graph.vertices;
    const auto lo =
        static_cast<workloads::VertexId>(n * comm.rank() / comm.size());
    const auto hi = static_cast<workloads::VertexId>(
        n * (comm.rank() + 1) / comm.size());

    // Each rank's scatter only reads ranks[lo, hi), so the dense rank
    // vector is kept local-range-only during iterations; the full vector
    // is materialized once at the end (rank 0, from the last allreduce).
    // The modeled per-iteration cost still charges the full-n update every
    // rank performs in the real SPMD code.
    std::vector<double> local_ranks(static_cast<std::size_t>(hi - lo), 1.0);
    std::vector<double> contrib(n, 0.0);
    std::vector<double> summed(n, 0.0);
    for (int iter = 0; iter < config.iterations; ++iter) {
      std::fill(contrib.begin(), contrib.end(), 0.0);
      for (workloads::VertexId v = lo; v < hi; ++v) {
        const std::size_t degree = graph.out_degree(v);
        if (degree == 0) continue;
        const double share =
            local_ranks[v - lo] / static_cast<double>(degree);
        for (std::uint64_t e = graph.offsets[v]; e < graph.offsets[v + 1];
             ++e) {
          contrib[graph.targets[e]] += share;
        }
      }
      // Charge the local scatter (1 flop per local edge + vector sweep).
      const auto local_edges = graph.offsets[hi] - graph.offsets[lo];
      comm.ctx().Compute(cluster.ComputeTime(
          static_cast<double>(local_edges + n), 1));
      comm.Allreduce<double>(contrib, summed);
      for (workloads::VertexId v = lo; v < hi; ++v) {
        local_ranks[v - lo] =
            workloads::kBaseRank + workloads::kDamping * summed[v];
      }
      comm.ctx().Compute(cluster.ComputeTime(static_cast<double>(n), 1));
    }
    if (comm.rank() == 0) {
      std::vector<double> ranks(n, 1.0);
      if (config.iterations > 0) {
        for (workloads::VertexId v = 0; v < n; ++v) {
          ranks[v] = workloads::kBaseRank + workloads::kDamping * summed[v];
        }
      }
      max_delta = workloads::MaxRankDelta(ranks, reference);
      job_elapsed = comm.ctx().now() - job_start;
    }
  });
  Observability::Instance().Collect(
      engine, "mpi-pagerank nodes=" + std::to_string(config.nodes));
  if (!elapsed.ok()) return elapsed.status();
  run.elapsed = job_elapsed;
  run.max_delta_vs_reference = max_delta;
  return run;
}

}  // namespace pstk::bench
