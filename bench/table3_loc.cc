// Table III: maintainability analysis — lines of code and boilerplate
// share of the four AnswersCount implementations (the example programs in
// examples/answerscount_*.cc, measured between their BENCHMARK-BEGIN/END
// markers, exactly like the paper counted benchmark bodies).
//
//   ./build/bench/table3_loc [root=<repo root>]
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/loc.h"
#include "bench_opts.h"
#include "common/config.h"
#include "common/table.h"

#ifndef PSTK_REPO_ROOT
#define PSTK_REPO_ROOT "."
#endif

using namespace pstk;

int main(int argc, char** argv) {
  // No simulation here, but accept the shared flags so every bench binary
  // has a uniform command line (an empty-but-valid trace is still written).
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const std::string root = config->GetString("root", PSTK_REPO_ROOT);

  struct Subject {
    const char* label;
    const char* file;
    std::vector<std::string> boilerplate_markers;
  };
  // Boilerplate = framework setup/teardown/plumbing, not algorithm logic.
  const Subject subjects[] = {
      {"OpenMP",
       "examples/answerscount_omp.cc",
       {"omp::Runtime", "ReadAll", "return;"}},
      {"MPI",
       "examples/answerscount_mpi.cc",
       {"File::OpenAll", "ReadLinesAtAll", "Reduce<", "comm.rank",
        "comm.size", "INT_MAX", "int32_t", "return;"}},
      {"Hadoop MR",
       "examples/answerscount_mr.cc",
       {"MrEngine", "JobConf", "conf.", "RunJob", "mr::Emitter"}},
      {"Spark",
       "examples/answerscount_spark.cc",
       {"TextFile", "return;"}},
  };

  std::printf("Table III — Lines of code / boilerplate of the AnswersCount "
              "implementations\n\n");
  Table table;
  table.SetHeader({"framework", "code lines", "boilerplate",
                   "boilerplate %", "lint findings"});
  bool ok = true;
  for (const Subject& subject : subjects) {
    auto report = analysis::AnalyzeFile(subject.label,
                                        root + "/" + subject.file,
                                        subject.boilerplate_markers);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", subject.label,
                   report.status().ToString().c_str());
      ok = false;
      continue;
    }
    // Maintainability has a correctness face too: how many statically
    // detectable misuse patterns does each paradigm's version carry?
    auto findings = analysis::LintFile(root + "/" + subject.file);
    if (!findings.ok()) {
      std::fprintf(stderr, "%s: %s\n", subject.label,
                   findings.status().ToString().c_str());
      ok = false;
      continue;
    }
    table.Row()
        .Cell(subject.label)
        .Cell(std::int64_t{report->code_lines})
        .Cell(std::int64_t{report->boilerplate_lines})
        .Cell(100.0 * report->BoilerplateShare(), 0)
        .Cell(static_cast<std::int64_t>(findings->size()));
  }
  table.Print();

  // The same lint lens over the framework *implementations*: how many
  // statically detectable misuse patterns live in each paradigm runtime
  // itself (whole-subtree interprocedural scan; warnings included).
  std::printf("\nFramework runtimes (src/) under the same lint rules:\n\n");
  Table fw;
  fw.SetHeader({"framework runtime", "lint findings"});
  const struct {
    const char* label;
    const char* dir;
  } runtimes[] = {
      {"src/omp (OpenMP-like)", "src/omp"},
      {"src/mpi (MPI-like)", "src/mpi"},
      {"src/mr (Hadoop MR-like)", "src/mr"},
      {"src/spark (Spark-like)", "src/spark"},
  };
  for (const auto& rt : runtimes) {
    auto findings = analysis::LintTree({root + "/" + rt.dir});
    if (!findings.ok()) {
      std::fprintf(stderr, "%s: %s\n", rt.label,
                   findings.status().ToString().c_str());
      ok = false;
      continue;
    }
    fw.Row().Cell(rt.label).Cell(
        static_cast<std::int64_t>(findings->size()));
  }
  fw.Print();

  std::printf(
      "\nExpected shape (paper): the OpenMP version is smallest (pragma-style\n"
      "parallelism over a serial kernel); MPI carries the most explicit\n"
      "distribution plumbing (chunking, collective I/O, reductions);\n"
      "Hadoop hides control flow but demands job scaffolding; Spark's\n"
      "transformations read like the logical dataflow.\n");
  if (!bench::Observability::Instance().Finish()) ok = false;
  return ok ? 0 : 1;
}
