// Shared observability flags for the bench binaries.
//
// Every bench accepts:
//   --trace=<file>   write a merged Chrome trace_event JSON of all runs
//   --metrics        print a per-run metrics table (counters + histograms)
//   --verify         install the runtime-verification checkers (MPI usage,
//                    SHMEM synchronization, Spark/MR invariants) and print
//                    a findings report per run
//   --faults=node:<id>@<t>[+<down>][,...]
//   --faults=exp:mtbf=<s>,horizon=<s>,nodes=<n>[,first=<id>][,down=<s>][,seed=<u64>]
//                    unified fault-injection plan: either explicit events
//                    (fail node <id> at virtual time <t>, optionally
//                    restoring it <down> seconds later) or a seeded
//                    Poisson failure process (FaultPlan::Exponential);
//                    benches apply it with
//                    cluster.ApplyFaultPlan(Instance().fault_plan())
//   --arrivals=poisson:rate=<jobs/s>,n=<count>[,seed=<u64>]
//   --arrivals=trace:<file>
//                    job-arrival process for the service benches
//                    (svc_answerscount); parsed lazily with
//                    sched::ArrivalSpec::Parse so bench_opts itself does
//                    not depend on pstk_sched. Ignored by batch benches.
//   --sim-backend=fibers|threads
//                    execution backend for every engine the bench builds
//                    (sets sim::SetDefaultBackend; overrides the
//                    PSTK_SIM_BACKEND env var). Traces and results are
//                    byte-identical across backends; only wall-clock
//                    differs.
//
// Usage pattern (see fig6_pagerank_bdb.cc):
//   int main(int argc, char** argv) {
//     bench::Observability::Instance().ParseFlags(&argc, argv);
//     ... per-run: Attach(engine) before Run, Collect(engine, label) after ...
//     return bench::Observability::Instance().Finish() ? 0 : 1;
//   }
//
// Run helpers that build their own engines (pagerank_common etc.) call
// Attach/Collect directly, so top-level benches need no plumbing beyond
// ParseFlags + Finish.
#pragma once

#include <string>

#include "buf/bytes.h"
#include "sim/engine.h"
#include "sim/fault.h"

namespace pstk::bench {

class Observability {
 public:
  static Observability& Instance();

  /// Strip --trace=<file>, --metrics, and --verify from argv (compacting in
  /// place and updating *argc) so downstream key=value config parsing never
  /// sees them.
  void ParseFlags(int* argc, char** argv);

  /// True when --trace was given (runs should record spans/histograms).
  [[nodiscard]] bool active() const { return !trace_path_.empty(); }
  [[nodiscard]] bool metrics() const { return metrics_; }
  [[nodiscard]] bool verify() const { return verify_; }
  /// The plan parsed from --faults= (empty when the flag was absent).
  [[nodiscard]] const sim::FaultPlan& fault_plan() const {
    return fault_plan_;
  }
  /// Raw --arrivals= spec (empty when absent). Service benches parse it
  /// with sched::ArrivalSpec::Parse.
  [[nodiscard]] const std::string& arrivals() const { return arrivals_; }

  /// Enable the engine's instrumentation bus when --trace/--metrics is on
  /// and install the verification checkers when --verify is on.
  void Attach(sim::Engine& engine);

  /// Harvest one finished engine: append its events to the merged trace
  /// (each run gets its own pid block, prefixed with `label`) and print the
  /// metrics table when --metrics is on.
  void Collect(sim::Engine& engine, const std::string& label);

  /// Write the trace file (valid JSON even with zero collected runs).
  /// Returns false if the file could not be written.
  bool Finish();

 private:
  Observability() = default;

  std::string trace_path_;
  std::string arrivals_;
  bool metrics_ = false;
  bool verify_ = false;
  sim::FaultPlan fault_plan_;
  std::string events_json_;
  int runs_ = 0;
  /// buf::Bytes process-global counters at Attach time; Collect publishes
  /// the delta as buf.* metrics attributed to the run.
  buf::StatsSnapshot buf_at_attach_;
};

}  // namespace pstk::bench
