// Real-runtime microbenchmarks (google-benchmark, wall-clock): the
// components of ParaStack that execute genuinely rather than in virtual
// time — the MiniOMP thread pool, the serde codecs, the simulation
// engine's context-switch machinery, and the fabric cost model.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "bench_opts.h"
#include "net/fabric.h"
#include "omp/omp.h"
#include "serde/serde.h"
#include "sim/engine.h"

namespace {

using namespace pstk;

// ---------------------------------------------------------------------------
// MiniOMP
// ---------------------------------------------------------------------------

void BM_OmpParallelForSum(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::int64_t n = 1 << 20;
  omp::Runtime rt(threads);
  std::vector<double> data(static_cast<std::size_t>(n), 1.5);
  for (auto _ : state) {
    const double sum = rt.ParallelReduce<double>(
        0, n, 0.0,
        [&](std::int64_t lo, std::int64_t hi) {
          double s = 0;
          for (std::int64_t i = lo; i < hi; ++i) {
            s += data[static_cast<std::size_t>(i)];
          }
          return s;
        },
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OmpParallelForSum)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_OmpDynamicSchedule(benchmark::State& state) {
  omp::Runtime rt(4);
  const std::int64_t n = 1 << 16;
  for (auto _ : state) {
    std::atomic<std::int64_t> sink{0};
    rt.ParallelForRanges(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) { sink.fetch_add(hi - lo); },
        omp::Schedule::kDynamic, 256);
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OmpDynamicSchedule);

void BM_OmpTaskSpawn(benchmark::State& state) {
  omp::Runtime rt(4);
  for (auto _ : state) {
    std::atomic<int> done{0};
    omp::TaskGroup group(rt);
    for (int i = 0; i < 256; ++i) {
      group.Run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_OmpTaskSpawn);

// ---------------------------------------------------------------------------
// serde
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, std::int64_t>> MakeKv(int n) {
  std::vector<std::pair<std::string, std::int64_t>> kv;
  kv.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    kv.emplace_back("key-" + std::to_string(i * 7919 % 1000), i);
  }
  return kv;
}

void BM_SerdeEncodeKv(benchmark::State& state) {
  const auto kv = MakeKv(static_cast<int>(state.range(0)));
  Bytes bytes = 0;
  for (auto _ : state) {
    auto buffer = serde::EncodeToBuffer(kv);
    bytes = buffer.size();
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SerdeEncodeKv)->Arg(100)->Arg(10000);

void BM_SerdeDecodeKv(benchmark::State& state) {
  const auto kv = MakeKv(static_cast<int>(state.range(0)));
  const auto buffer = serde::EncodeToBuffer(kv);
  for (auto _ : state) {
    auto back = serde::DecodeFromBuffer<
        std::vector<std::pair<std::string, std::int64_t>>>(buffer);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buffer.size()));
}
BENCHMARK(BM_SerdeDecodeKv)->Arg(100)->Arg(10000);

// ---------------------------------------------------------------------------
// Simulation engine
// ---------------------------------------------------------------------------

void BM_EngineSpawnRunProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < procs; ++i) {
      engine.Spawn("p" + std::to_string(i), [](sim::Context& ctx) {
        ctx.Compute(1.0);
      });
    }
    auto result = engine.Run();
    benchmark::DoNotOptimize(result.end_time);
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_EngineSpawnRunProcesses)->Arg(8)->Arg(64);

void BM_EngineContextSwitches(benchmark::State& state) {
  // Two processes ping-ponging wakes: measures dispatch overhead.
  const int rounds = 1000;
  for (auto _ : state) {
    sim::Engine engine;
    sim::Pid a = engine.Spawn("a", [&](sim::Context& ctx) {
      for (int i = 0; i < rounds; ++i) ctx.BlockUntil(ctx.now() + 1.0, "pp");
    });
    (void)a;
    auto result = engine.Run();
    benchmark::DoNotOptimize(result.end_time);
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_EngineContextSwitches);

void BM_EnginePingPong(benchmark::State& state) {
  // Two processes alternating timed blocks; Arg(1) turns the obs bus on so
  // the dispatch-path tracing overhead is directly comparable to Arg(0).
  const bool traced = state.range(0) != 0;
  const int rounds = 1000;
  for (auto _ : state) {
    sim::Engine engine;
    engine.EnableTrace(traced);
    for (const char* name : {"ping", "pong"}) {
      engine.Spawn(name, [&](sim::Context& ctx) {
        for (int i = 0; i < rounds; ++i) {
          ctx.BlockUntil(ctx.now() + 1.0, "pp");
        }
      });
    }
    auto result = engine.Run();
    benchmark::DoNotOptimize(result.end_time);
    benchmark::DoNotOptimize(engine.obs().events().size());
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
  state.SetLabel(traced ? "tracing on" : "tracing off");
}
BENCHMARK(BM_EnginePingPong)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Fabric cost model
// ---------------------------------------------------------------------------

void BM_FabricTransfer(benchmark::State& state) {
  net::Fabric fabric(16, net::TransportParams::RdmaFdr());
  SimTime t = 0;
  int src = 0;
  for (auto _ : state) {
    const auto times = fabric.Transfer(src, (src + 7) % 16, 64 * 1024, t);
    t = times.arrival;
    src = (src + 1) % 16;
    benchmark::DoNotOptimize(times.arrival);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricTransfer);

}  // namespace

int main(int argc, char** argv) {
  // Strip the shared bench flags before google-benchmark parses argv.
  bench::Observability::Instance().ParseFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // --trace/--metrics capture one traced ping-pong engine (the wall-clock
  // numbers above are never polluted by the exporter).
  if (bench::Observability::Instance().active() ||
      bench::Observability::Instance().metrics()) {
    sim::Engine engine;
    bench::Observability::Instance().Attach(engine);
    for (const char* name : {"ping", "pong"}) {
      engine.Spawn(name, [](sim::Context& ctx) {
        for (int i = 0; i < 100; ++i) ctx.BlockUntil(ctx.now() + 1.0, "pp");
      });
    }
    (void)engine.Run();
    bench::Observability::Instance().Collect(engine, "ping-pong demo");
  }
  return bench::Observability::Instance().Finish() ? 0 : 1;
}
