#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/deadlock.h"
#include "analysis/lint.h"
#include "analysis/loc.h"
#include "analysis/parse.h"
#include "analysis/rewrite.h"
#include "analysis/token.h"

namespace pstk::analysis {
namespace {

TEST(LocTest, CountsCodeLinesOnly) {
  const std::string source = R"(#include <vector>

// a comment line
int main() {
  /* block
     comment */
  int x = 1;  // trailing comment
  return x;
}
)";
  const auto report = AnalyzeSource("demo", source, {});
  // #include, int main() {, int x = 1;, return x;, }
  EXPECT_EQ(report.code_lines, 5);
  EXPECT_EQ(report.boilerplate_lines, 0);
}

TEST(LocTest, BlockCommentSpanningCodeLine) {
  const std::string source = "int a; /* hi\nstill comment */ int b;\n";
  const auto report = AnalyzeSource("demo", source, {});
  EXPECT_EQ(report.code_lines, 2);  // both lines carry code
}

TEST(LocTest, MarkersFlagBoilerplate) {
  const std::string source = R"(#include "mpi/mpi.h"
World world(cluster, 8, 8);
auto t = world.RunSpmd(body);
compute();
)";
  const auto report =
      AnalyzeSource("mpi", source, {"#include", "World", "RunSpmd"});
  EXPECT_EQ(report.code_lines, 4);
  EXPECT_EQ(report.boilerplate_lines, 3);
  EXPECT_NEAR(report.BoilerplateShare(), 0.75, 1e-9);
}

TEST(LocTest, MarkerCountedOncePerLine) {
  const auto report = AnalyzeSource(
      "x", "World world = World(World::Make());\n", {"World", "Make"});
  EXPECT_EQ(report.boilerplate_lines, 1);
}

TEST(LocTest, ExtractBenchmarkRegion) {
  const std::string source = R"(scaffolding();
// BENCHMARK-BEGIN
real code 1;
real code 2;
// BENCHMARK-END
more scaffolding();
)";
  const std::string region = ExtractBenchmarkRegion(source);
  EXPECT_NE(region.find("real code 1"), std::string::npos);
  EXPECT_EQ(region.find("scaffolding"), std::string::npos);
  // Absent markers: whole source returned.
  EXPECT_EQ(ExtractBenchmarkRegion("abc"), "abc");
}

TEST(LocTest, AnalyzeMissingFileFails) {
  const auto report = AnalyzeFile("x", "/no/such/file.cc", {});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

// ===========================================================================
// Stage 1: tokenizer
// ===========================================================================

TEST(TokenTest, CommentsAndStringContentsAreOpaque) {
  const std::string source = R"cc(
// comm.Send(buf, n, rank + 1, 0);
Log("calling Send(rank+1)"); /* Recv( */
)cc";
  const auto tokens = Tokenize(source);
  // Nothing from the comment or the literal leaks as an identifier.
  for (const Token& t : tokens) {
    EXPECT_FALSE(t.IsIdent("Send")) << t.text;
    EXPECT_FALSE(t.IsIdent("Recv")) << t.text;
    EXPECT_FALSE(t.IsIdent("rank")) << t.text;
  }
  // The literal survives as one opaque kString token with exact text.
  const auto str = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokKind::kString;
  });
  ASSERT_NE(str, tokens.end());
  EXPECT_EQ(str->text, "\"calling Send(rank+1)\"");
  EXPECT_EQ(str->line, 3);
}

TEST(TokenTest, RawStringsAndPragmasAreSingleTokens) {
  const std::string source =
      "auto s = R\"x(Send( " "\n" "more)x\";\n"
      "  #pragma omp parallel \\\n      for\n"
      "int after = 1;\n";
  const auto tokens = Tokenize(source);
  const auto raw = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokKind::kString;
  });
  ASSERT_NE(raw, tokens.end());
  EXPECT_NE(raw->text.find("Send("), std::string::npos);  // inside literal only
  const auto pragma =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokKind::kPragma;
      });
  ASSERT_NE(pragma, tokens.end());
  // Backslash continuation folded into one directive token.
  EXPECT_NE(pragma->text.find("omp parallel"), std::string::npos);
  EXPECT_NE(pragma->text.find("for"), std::string::npos);
  // Line accounting stays exact across the raw string + continuation.
  const auto after = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.IsIdent("after");
  });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 5);
}

TEST(TokenTest, PrefixedRawStringsAreOpaque) {
  // u8R"/LR"/uR"/UR" literals used to lex as an identifier followed by an
  // unterminated plain string, leaking the literal contents as code.
  const std::string source =
      "auto a = u8R\"x(comm.Send(buf, n, rank + 1, 0))x\";\n"
      "auto b = LR\"(Recv( more)\";\n"
      "auto c = uR\"y(Barrier())y\";\n"
      "auto d = UR\"(wait())\";\n"
      "int after = 1;\n";
  const auto tokens = Tokenize(source);
  for (const Token& t : tokens) {
    EXPECT_FALSE(t.IsIdent("Send")) << t.text;
    EXPECT_FALSE(t.IsIdent("Recv")) << t.text;
    EXPECT_FALSE(t.IsIdent("Barrier")) << t.text;
    EXPECT_FALSE(t.IsIdent("rank")) << t.text;
  }
  // Each literal is one opaque kString token, prefix included.
  const auto strings = static_cast<std::size_t>(
      std::count_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokKind::kString;
      }));
  EXPECT_EQ(strings, 4u);
  const auto after = std::find_if(tokens.begin(), tokens.end(),
                                  [](const Token& t) {
                                    return t.IsIdent("after");
                                  });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 5);
}

TEST(TokenTest, OperatorsNumbersAndJoin) {
  const auto tokens = Tokenize("x <<= y->z; n += 2'000; p = 0x10;");
  auto has_punct = [&](const char* p) {
    return std::any_of(tokens.begin(), tokens.end(),
                       [&](const Token& t) { return t.IsPunct(p); });
  };
  EXPECT_TRUE(has_punct("<<="));
  EXPECT_TRUE(has_punct("->"));
  EXPECT_TRUE(has_punct("+="));
  long long hex = 0;
  long long sep = 0;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kNumber) continue;
    const auto v = TokenIntValue(t);
    ASSERT_TRUE(v.has_value()) << t.text;
    if (t.text == "0x10") hex = *v;
    if (t.text == "2'000") sep = *v;
  }
  EXPECT_EQ(hex, 16);
  EXPECT_EQ(sep, 2000);
  EXPECT_FALSE(TokenIntValue(Token{TokKind::kNumber, "1.5e3", 1}).has_value());

  const auto cast = Tokenize("static_cast<std::int32_t>(len)");
  EXPECT_EQ(JoinTokens(cast, 0, cast.size()),
            "static_cast<std::int32_t>(len)");
}

// ===========================================================================
// Stage 2: structural parser
// ===========================================================================

TEST(ParseTest, FunctionsLoopsBranchesCalls) {
  const Unit unit = ParseSource(R"cc(
int Compute(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      total += i;
    } else {
      total -= 1;
    }
  }
  helper.Run(total, n + 1);
  return total;
}
)cc");
  ASSERT_EQ(unit.functions.size(), 1u);
  const Function& fn = unit.functions[0];
  EXPECT_EQ(fn.name, "Compute");
  ASSERT_EQ(fn.params.size(), 1u);
  EXPECT_EQ(fn.params[0].name, "n");
  ASSERT_GE(fn.body.size(), 4u);
  EXPECT_EQ(fn.body[0].decl_name, "total");
  const Stmt& loop = fn.body[1];
  ASSERT_EQ(loop.kind, StmtKind::kLoop);
  EXPECT_EQ(loop.induction_var, "i");
  ASSERT_EQ(loop.children.size(), 1u);
  const Stmt& branch = loop.children[0];
  ASSERT_EQ(branch.kind, StmtKind::kBranch);
  ASSERT_EQ(branch.children.size(), 1u);
  ASSERT_EQ(branch.else_children.size(), 1u);
  ASSERT_EQ(branch.children[0].assigns.size(), 1u);
  EXPECT_EQ(branch.children[0].assigns[0].name, "total");
  EXPECT_EQ(branch.children[0].assigns[0].op, "+=");
  const Stmt& call_stmt = fn.body[2];
  ASSERT_EQ(call_stmt.calls.size(), 1u);
  EXPECT_EQ(call_stmt.calls[0].receiver, "helper");
  EXPECT_EQ(call_stmt.calls[0].method, "Run");
  ASSERT_EQ(call_stmt.calls[0].args.size(), 2u);
  EXPECT_EQ(call_stmt.calls[0].args[1], "n+1");
  EXPECT_EQ(fn.body[3].kind, StmtKind::kReturn);
}

TEST(ParseTest, LambdaBodyLiftedAsFunction) {
  const Unit unit = ParseSource(R"cc(
void Outer(mpi::World& world) {
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    comm.Barrier();
  });
}
)cc");
  ASSERT_EQ(unit.functions.size(), 2u);
  const auto lambda =
      std::find_if(unit.functions.begin(), unit.functions.end(),
                   [](const Function& f) { return f.is_lambda; });
  ASSERT_NE(lambda, unit.functions.end());
  ASSERT_EQ(lambda->params.size(), 1u);
  EXPECT_EQ(lambda->params[0].name, "comm");
  ASSERT_EQ(lambda->body.size(), 1u);
  ASSERT_EQ(lambda->body[0].calls.size(), 1u);
  EXPECT_EQ(lambda->body[0].calls[0].method, "Barrier");
}

// ===========================================================================
// Stage 3: dataflow
// ===========================================================================

const Function& OnlyFn(const Unit& unit) {
  EXPECT_EQ(unit.functions.size(), 1u);
  return unit.functions.front();
}

TEST(DataflowTest, RankTaintPropagatesThroughDerivedVars) {
  const Unit unit = ParseSource(R"cc(
void f(mpi::Comm& comm, int iters) {
  const int right = (comm.rank() + 1) % comm.size();
  const int partner = right ^ 1;
  int plain = iters * 2;
}
)cc");
  const FunctionFlow flow(OnlyFn(unit));
  EXPECT_TRUE(flow.IsRankDerived("right"));
  EXPECT_TRUE(flow.IsRankDerived("partner"));  // via right, one hop
  EXPECT_FALSE(flow.IsRankDerived("plain"));
  EXPECT_FALSE(flow.IsRankDerived("iters"));
}

TEST(DataflowTest, WideSizesAndIntMaxGuard) {
  const Unit unit = ParseSource(R"cc(
void g(mpi::File* file) {
  const Bytes chunk = file->size() / 4;
  auto len = chunk * 2;
  int small = 3;
}
)cc");
  const FunctionFlow flow(OnlyFn(unit));
  EXPECT_TRUE(flow.Is64BitSized("chunk"));
  EXPECT_TRUE(flow.Is64BitSized("len"));  // via chunk
  EXPECT_FALSE(flow.Is64BitSized("small"));
  EXPECT_FALSE(flow.HasIntMaxGuard());

  const Unit guarded = ParseSource(R"cc(
void g(Bytes len) {
  if (len > static_cast<Bytes>(INT32_MAX)) return;
}
)cc");
  EXPECT_TRUE(FunctionFlow(OnlyFn(guarded)).HasIntMaxGuard());
}

// ===========================================================================
// Rules: seeded violation + false-positive guard per rule
// ===========================================================================

std::vector<LintFinding> Findings(const std::string& source) {
  return LintSource("t.cc", source);
}

int CountRule(const std::vector<LintFinding>& findings, const char* rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const LintFinding& f) { return f.rule == rule; }));
}

TEST(LintRuleTest, StringsAndCommentsNeverTriggerRules) {
  // Both lines defeated the old substring scanner: "Send(...rank+1...)"
  // only ever appears inside a literal / a comment.
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  // comm.Send(buf, n, rank + 1, 0);
  Log("calling Send(rank+1)");
  comm.Recv(buf, n, src, 0);
}
)cc");
  EXPECT_EQ(findings.size(), 0u) << RenderLintReport(findings);
}

TEST(LintRuleTest, CollectiveInDivergentBranchFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintRuleTest, DivergentEarlyReturnBeforeCollectiveFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int me = comm.rank();
  if (me > 0) return;
  comm.Barrier();
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, UniformBranchAndStatusGuardAreClean) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, mpi::File* file, int iters) {
  if (iters > 0) {
    comm.Barrier();
  }
  const Bytes offset = static_cast<Bytes>(comm.rank()) * 64;
  auto part = file->ReadAtAll(comm, offset, 64);
  if (!part.ok()) return;  // rank-tainted value, uniform error outcome
  comm.Barrier();
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, IntCountOverflowFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  auto part = file->ReadLinesAtAll(comm, 0, static_cast<std::int32_t>(len));
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-int-count-overflow"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("len"), std::string::npos);
}

TEST(LintRuleTest, IntCountWithGuardOrNarrowSourceIsClean) {
  const auto guarded = Findings(R"cc(
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  if (len > static_cast<Bytes>(INT32_MAX)) return;
  auto part = file->ReadLinesAtAll(comm, 0, static_cast<std::int32_t>(len));
}
)cc");
  EXPECT_EQ(CountRule(guarded, "mpi-int-count-overflow"), 0)
      << RenderLintReport(guarded);
  // Narrowing an int-typed value is not the Fig. 4 failure.
  const auto narrow = Findings(R"cc(
void f(mpi::Comm& comm, int lines) {
  comm.Send(buf, static_cast<std::int32_t>(lines), 1, 0);
}
)cc");
  EXPECT_EQ(CountRule(narrow, "mpi-int-count-overflow"), 0)
      << RenderLintReport(narrow);
}

TEST(LintRuleTest, TagMismatchFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  comm.Send(out, 64, dest, 7);
  comm.Recv(in, 64, src, 9);
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-tag-mismatch"), 1)
      << RenderLintReport(findings);
  EXPECT_NE(findings[0].message.find("7"), std::string::npos);
  EXPECT_NE(findings[0].message.find("9"), std::string::npos);
}

TEST(LintRuleTest, MatchingOrVariableTagsAreClean) {
  const auto matching = Findings(R"cc(
void f(mpi::Comm& comm) {
  comm.Send(out, 64, dest, 7);
  comm.Recv(in, 64, src, 7);
}
)cc");
  EXPECT_EQ(CountRule(matching, "mpi-tag-mismatch"), 0);
  // One variable tag makes the sets unprovable: stay silent.
  const auto variable = Findings(R"cc(
void f(mpi::Comm& comm, int tag) {
  comm.Send(out, 64, dest, tag);
  comm.Recv(in, 64, src, 9);
}
)cc");
  EXPECT_EQ(CountRule(variable, "mpi-tag-mismatch"), 0);
}

TEST(LintRuleTest, OmpMissingPrivateFlagged) {
  const auto findings = Findings(R"cc(
void f(int n) {
  int tmp = 0;
  #pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    tmp = i * 2;
    Use(tmp);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "omp-missing-private"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("tmp"), std::string::npos);
}

TEST(LintRuleTest, OmpPrivateClauseOrLocalDeclIsClean) {
  const auto clause = Findings(R"cc(
void f(int n) {
  int tmp = 0;
  #pragma omp parallel for private(tmp)
  for (int i = 0; i < n; ++i) {
    tmp = i * 2;
    Use(tmp);
  }
}
)cc");
  EXPECT_EQ(CountRule(clause, "omp-missing-private"), 0)
      << RenderLintReport(clause);
  const auto local = Findings(R"cc(
void f(int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    int tmp = i * 2;
    Use(tmp);
  }
}
)cc");
  EXPECT_EQ(CountRule(local, "omp-missing-private"), 0)
      << RenderLintReport(local);
}

TEST(LintRuleTest, ShmemPutWithoutQuietFlagged) {
  const auto findings = Findings(R"cc(
void f(shmem::Pe& pe) {
  pe.PutValue(slots.at(0), 1, 2);
  int v = pe.GetValue(slots.at(0), 2);
}
)cc");
  ASSERT_EQ(CountRule(findings, "shmem-put-without-quiet"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("slots"), std::string::npos);
}

TEST(LintRuleTest, ShmemQuietBetweenPutAndGetIsClean) {
  const auto quiet = Findings(R"cc(
void f(shmem::Pe& pe) {
  pe.PutValue(slots.at(0), 1, 2);
  pe.Quiet();
  int v = pe.GetValue(slots.at(0), 2);
}
)cc");
  EXPECT_EQ(CountRule(quiet, "shmem-put-without-quiet"), 0)
      << RenderLintReport(quiet);
  // Reading a different symmetric object needs no fence.
  const auto other = Findings(R"cc(
void f(shmem::Pe& pe) {
  pe.PutValue(slots.at(0), 1, 2);
  int v = pe.GetValue(flags.at(0), 2);
}
)cc");
  EXPECT_EQ(CountRule(other, "shmem-put-without-quiet"), 0)
      << RenderLintReport(other);
}

TEST(LintRuleTest, SymmetricSendViaDerivedPartnerFlagged) {
  // The deadlock pair where the rank arithmetic hides in an initializer.
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Send(out, 64, partner, 0);
  comm.Recv(in, 64, partner, 0);
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-blocking-symmetric-send"), 1)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, SparkMultipleActionsWithoutPersistFlagged) {
  const auto findings = Findings(R"cc(
void f(spark::SparkContext& sc) {
  auto doubled = sc.Parallelize(data, 4).Map([](int x) { return 2 * x; });
  auto first = doubled.Count();
  auto second = doubled.Count();
}
)cc");
  ASSERT_EQ(CountRule(findings, "spark-missing-persist"), 1)
      << RenderLintReport(findings);
  EXPECT_NE(findings[0].message.find("2 actions"), std::string::npos);
}

TEST(LintRuleTest, CkptUnderRankDerivedConditionFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, ckpt::CheckpointCoordinator& coord) {
  const int rank = comm.rank();
  comm.Barrier();
  if (rank == 0) {
    coord.Checkpoint(comm.ctx(), rank, rank / 4, 3, state);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "ckpt-outside-collective"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("never commit"), std::string::npos);
}

TEST(LintRuleTest, CkptAtUniformBoundaryIsClean) {
  // The correct pattern (every rank, right after the collective) and a
  // uniform condition (iteration count) must both stay silent.
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, ckpt::CheckpointCoordinator& coord, int iters) {
  const int rank = comm.rank();
  for (int i = 0; i < iters; ++i) {
    comm.Allreduce<double>(contrib, ranks);
    coord.Checkpoint(comm.ctx(), rank, rank / 4, i, state);
  }
  if (iters > 0) {
    coord.Checkpoint(comm.ctx(), rank, rank / 4, iters, state);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "ckpt-outside-collective"), 0)
      << RenderLintReport(findings);
}

// ===========================================================================
// Stage 4: call graph + function summaries
// ===========================================================================

TEST(CallGraphTest, SummariesCyclesLambdasAndOverloads) {
  Program prog = Program::Analyze({ProgramSource{"a.cc", R"cc(
void Ping(int depth) {
  if (depth > 0) {
    Pong(depth - 1);
  }
  g.Barrier();
}
void Pong(int depth) { Ping(depth); }
void Host(Pool& pool) {
  pool.Submit([&] { q.Allreduce(a, b); });
}
void Narrow(int n) {}
void Narrow(int n, int m) { g.Bcast(buf, n); }
void CallsTwoArg() { Narrow(1, 2); }
void CallsOneArg() { Narrow(1); }
)cc"}});
  // Cycle: both members transitively reach the collective; the sequence
  // is not provable through recursion.
  const int ping = prog.Find("Ping");
  const int pong = prog.Find("Pong");
  ASSERT_GE(ping, 0);
  ASSERT_GE(pong, 0);
  EXPECT_TRUE(prog.fns()[ping].summary.calls_collective);
  EXPECT_TRUE(prog.fns()[pong].summary.calls_collective);
  EXPECT_FALSE(prog.fns()[pong].summary.sequence_known);
  const auto reach = prog.ReachableFrom(ping);
  EXPECT_NE(std::find(reach.begin(), reach.end(), pong), reach.end());
  // On a cycle the root reaches itself.
  EXPECT_NE(std::find(reach.begin(), reach.end(), ping), reach.end());

  // Lambda containment: the deferred lambda's collective counts as the
  // host's (conservative — deferred means "may run").
  const int host = prog.Find("Host");
  ASSERT_GE(host, 0);
  EXPECT_TRUE(prog.fns()[host].summary.calls_collective);
  EXPECT_EQ(prog.fns()[host].summary.collective_name, "Allreduce");

  // Overload resolution prefers matching arity: only the 2-arg Narrow
  // hides a collective.
  const int two = prog.Find("CallsTwoArg");
  const int one = prog.Find("CallsOneArg");
  ASSERT_GE(two, 0);
  ASSERT_GE(one, 0);
  EXPECT_TRUE(prog.fns()[two].summary.calls_collective);
  EXPECT_FALSE(prog.fns()[one].summary.calls_collective);
}

// ===========================================================================
// Interprocedural rules: the PR-3 seeds, pushed through a wrapper
// ===========================================================================

TEST(LintRuleTest, WrapperHiddenCollectiveInDivergentBranchFlagged) {
  // Same seed as CollectiveInDivergentBranchFlagged, with the Barrier
  // hidden one call deep: identical rule and severity, plus a related
  // location pointing into the wrapper.
  const auto findings = Findings(R"cc(
void SyncAll(mpi::Comm& comm) {
  comm.Barrier();
}
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    SyncAll(comm);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 7);  // the call site, not the wrapper
  EXPECT_NE(findings[0].message.find("Barrier"), std::string::npos);
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 3);  // the Barrier inside SyncAll
}

TEST(LintRuleTest, WrapperCalledUniformlyIsClean) {
  const auto findings = Findings(R"cc(
void SyncAll(mpi::Comm& comm) {
  comm.Barrier();
}
void f(mpi::Comm& comm, int iters) {
  if (iters > 0) {
    SyncAll(comm);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, WrapperHiddenIntCountOverflowFlaggedAcrossFiles) {
  // The Fig. 4 narrowing hides inside a helper in another file; the
  // caller passes a 64-bit size. One finding, at the caller.
  const auto findings = LintProgram({
      ProgramSource{"io_util.cc", R"cc(
void ReadChunk(mpi::Comm& comm, mpi::File* file, Bytes n) {
  auto part = file->ReadAtAll(comm, 0, static_cast<std::int32_t>(n));
}
)cc"},
      ProgramSource{"caller.cc", R"cc(
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  ReadChunk(comm, file, len);
}
)cc"},
  });
  ASSERT_EQ(CountRule(findings, "mpi-int-count-overflow"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].file, "caller.cc");
  EXPECT_EQ(findings[0].line, 4);
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].file, "io_util.cc");
  EXPECT_EQ(findings[0].related[0].line, 3);  // the cast site
}

TEST(LintRuleTest, WrapperCountWithCallerGuardIsClean) {
  const auto findings = Findings(R"cc(
void ReadChunk(mpi::Comm& comm, mpi::File* file, Bytes n) {
  auto part = file->ReadAtAll(comm, 0, static_cast<std::int32_t>(n));
}
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  if (len > static_cast<Bytes>(INT32_MAX)) return;
  ReadChunk(comm, file, len);
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-int-count-overflow"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, WrapperHiddenSymmetricSendFlagged) {
  // The deadlocking exchange from SymmetricSendViaDerivedPartnerFlagged,
  // with the Send/Recv pair hidden in a helper and the rank arithmetic
  // at the call site.
  const auto findings = Findings(R"cc(
void Exchange(mpi::Comm& comm, int peer) {
  comm.Send(out, 64, peer, 0);
  comm.Recv(in, 64, peer, 0);
}
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  Exchange(comm, partner);
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-blocking-symmetric-send"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 8);  // the Exchange() call site
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 3);  // the Send inside Exchange
}

TEST(LintRuleTest, WrapperSendWithUniformPeerIsClean) {
  const auto findings = Findings(R"cc(
void Exchange(mpi::Comm& comm, int peer) {
  comm.Send(out, 64, peer, 0);
  comm.Recv(in, 64, peer, 0);
}
void f(mpi::Comm& comm, int root) {
  Exchange(comm, root);
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-blocking-symmetric-send"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, RankReturningHelperTaintsCallers) {
  // The taint-knowledge fixpoint: Partner() returns a rank-derived
  // value, so the branch in f is divergent even though the word "rank"
  // never appears there.
  const auto findings = Findings(R"cc(
int Partner(mpi::Comm& comm) {
  return comm.rank() ^ 1;
}
void f(mpi::Comm& comm) {
  if (Partner(comm) == 0) {
    comm.Barrier();
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
}

// ===========================================================================
// New rules: seeded violation + false-positive guard per rule
// ===========================================================================

TEST(LintRuleTest, CollectiveMismatchFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  } else {
    comm.Allreduce(a, b);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-mismatch"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 3);  // the branch, not either collective
  EXPECT_NE(findings[0].message.find("Barrier"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Allreduce"), std::string::npos);
  // The sequence mismatch subsumes the per-site divergence reports.
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, EquallySequencedArmsAreClean) {
  // PR-3 flagged both arms here; provably equal sequences are symmetric
  // and must stay silent now.
  const auto findings = Findings(R"cc(
void DoSync(mpi::Comm& comm) {
  comm.Barrier();
}
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  } else {
    DoSync(comm);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-mismatch"), 0)
      << RenderLintReport(findings);
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, CollectiveInLoopWithDivergentBoundFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  for (int i = 0; i < comm.rank(); ++i) {
    comm.Barrier();
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-in-loop-divergent-bound"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 3);  // the loop header
}

TEST(LintRuleTest, CollectiveInUniformLoopIsClean) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, int iters) {
  for (int i = 0; i < iters; ++i) {
    comm.Allreduce(a, b);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-loop-divergent-bound"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, BlockingReachableFromDrainFlagged) {
  const auto findings = Findings(R"cc(
void PumpOne(Engine& eng) {
  eng.cv.wait(lock);
}
void DrainChannels(Engine& eng) {
  PumpOne(eng);
}
)cc");
  ASSERT_EQ(CountRule(findings, "sim-blocking-in-drain"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 3);  // the blocking site inside PumpOne
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 5);  // the drain root
}

TEST(LintRuleTest, NonBlockingDrainAndBlockingElsewhereAreClean) {
  const auto findings = Findings(R"cc(
void DrainChannels(Engine& eng) {
  while (eng.ring.Pop(msg)) {
    Apply(msg);
  }
}
void RunRound(Engine& eng) {
  eng.cv.wait(lock);
}
)cc");
  EXPECT_EQ(CountRule(findings, "sim-blocking-in-drain"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, BlockingReachableFromSubmitPathFlagged) {
  // Submit() reaches a blocking wait through a helper — the scheduler's
  // submit path runs inside an engine event handler, so this must flag.
  const auto findings = Findings(R"cc(
void WaitForSlot(Scheduler& sched) {
  sched.cv.wait(lock);
}
void Submit(Scheduler& sched, JobSpec spec) {
  WaitForSlot(sched);
}
)cc");
  ASSERT_EQ(CountRule(findings, "sched-blocking-in-submit-path"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 3);  // the blocking site inside the helper
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 5);  // the submit-path root
}

TEST(LintRuleTest, OnJobHandlerBlockingFlagged) {
  // OnJob* event handlers are submit-path roots too (qualified names
  // included), even when the block is direct rather than via a helper.
  const auto findings = Findings(R"cc(
void Scheduler::OnJobDone(JobId id) {
  done_future.wait_for(timeout);
}
)cc");
  ASSERT_EQ(CountRule(findings, "sched-blocking-in-submit-path"), 1)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, NonBlockingSubmitAndBlockingElsewhereAreClean) {
  // Submit defers onto the event heap (no blocking); a Wait in an
  // unrelated worker body must not be attributed to the submit path,
  // and a SubmitButton::Render() name must not match the root filter.
  const auto findings = Findings(R"cc(
void Submit(Scheduler& sched, JobSpec spec) {
  sched.queue.Push(spec);
  sched.engine.SpawnAt(sched.now, "pass", RunPass);
}
void WorkerBody(mpi::Comm& comm) {
  comm.Recv(buf, n, peer, tag);
}
void SubmitterLoop(Scheduler& sched) {
  sched.cv.wait(lock);
}
)cc");
  EXPECT_EQ(CountRule(findings, "sched-blocking-in-submit-path"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, DataplaneCopyInHotPathFlagged) {
  // RunMapTask reaches a helper that takes its payload as a by-value
  // std::string: every call copies the whole payload on the hot path.
  const auto findings = Findings(R"cc(
void StoreBucket(int r, std::string payload) {
  store[r] = payload;
}
void RunMapTask(TaskRt& rt, int p) {
  StoreBucket(p, bucket);
}
)cc");
  ASSERT_EQ(CountRule(findings, "dataplane-copy-in-hot-path"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].line, 2);  // the copying helper's definition
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 5);  // the data-plane root
}

TEST(LintRuleTest, DataplaneSerdeBufferParamFlagged) {
  // serde::Buffer by value on the shuffle commit surface itself.
  const auto findings = Findings(R"cc(
void TaskRt::CommitShuffleOutput(int shuffle, serde::Buffer bucket) {
  store.Put(shuffle, bucket);
}
)cc");
  ASSERT_EQ(CountRule(findings, "dataplane-copy-in-hot-path"), 1)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, DataplaneAliasingAndColdPathsAreClean) {
  // const& / string_view / refcounted buf::Bytes params are aliases, a
  // message string is a diagnostic sink, and a by-value payload on a
  // function no task/shuffle root reaches is someone else's business.
  const auto findings = Findings(R"cc(
void StoreBucket(int r, const std::string& payload) {
  store[r] = payload;
}
void ShipBlock(buf::Bytes block, std::string_view range) {
  net.Send(block, range);
}
void Fail(std::string msg) {
  log(msg);
}
void RunMapTask(TaskRt& rt, int p) {
  StoreBucket(p, bucket);
  ShipBlock(block, range);
  Fail(oops);
}
void ControlPlaneRpc(std::string body) {
  rpc.Call(body);
}
)cc");
  EXPECT_EQ(CountRule(findings, "dataplane-copy-in-hot-path"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, SpscMultiProducerFlagged) {
  const auto findings = Findings(R"cc(
struct Shard {
  SpscRing<int> outbox;
};
void SendCross(Shard& s, int v) {
  s.outbox.Push(v);
}
void StealBack(Shard& s, int v) {
  s.outbox.Push(v);
}
)cc");
  ASSERT_EQ(CountRule(findings, "sim-spsc-multi-producer"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  // Declaration site and first producer ride along as evidence.
  ASSERT_EQ(findings[0].related.size(), 2u);
  EXPECT_NE(findings[0].message.find("outbox"), std::string::npos);
}

TEST(LintRuleTest, SingleProducerPerRingIsClean) {
  // One producer per channel — two channels, two distinct producers.
  const auto findings = Findings(R"cc(
struct Shard {
  SpscRing<int> inbox;
  SpscRing<int> outbox;
};
void SendCross(Shard& s, int v) {
  s.outbox.Push(v);
}
void Reply(Shard& s, int v) {
  s.inbox.Push(v);
}
)cc");
  EXPECT_EQ(CountRule(findings, "sim-spsc-multi-producer"), 0)
      << RenderLintReport(findings);
}

// ===========================================================================
// Output formats + baseline
// ===========================================================================

LintFinding SampleFinding() {
  LintFinding f;
  f.rule = "mpi-tag-mismatch";
  f.file = "examples/a.cc";
  f.line = 12;
  f.message = "tags 1 vs 2";
  f.severity = Severity::kError;
  return f;
}

TEST(LintOutputTest, SeverityNamesAndWorst) {
  EXPECT_STREQ(SeverityName(Severity::kNote), "note");
  EXPECT_STREQ(SeverityName(Severity::kWarning), "warning");
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
  std::vector<LintFinding> fs{{"r", "f", 1, "m", Severity::kWarning, "", {},
                               "", {}}};
  EXPECT_EQ(WorstSeverity({}), Severity::kNote);
  EXPECT_EQ(WorstSeverity(fs), Severity::kWarning);
  fs.push_back(SampleFinding());
  EXPECT_EQ(WorstSeverity(fs), Severity::kError);
}

TEST(LintOutputTest, JsonGolden) {
  LintFinding f;
  f.rule = "r";
  f.file = "a.cc";
  f.line = 3;
  f.message = "say \"hi\"";
  EXPECT_EQ(RenderJson({f}),
            "[\n"
            "  {\"rule\": \"r\", \"file\": \"a.cc\", \"line\": 3, "
            "\"severity\": \"warning\", \"message\": \"say \\\"hi\\\"\", "
            "\"fixit\": \"\"}\n"
            "]\n");
  EXPECT_EQ(RenderJson({}), "[\n]\n");
}

TEST(LintOutputTest, SarifGolden) {
  const std::string sarif = RenderSarif({SampleFinding()});
  // Required SARIF 2.1.0 envelope.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"pstk-lint\""), std::string::npos);
  // Every registered rule is described in tool.driver.rules.
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + std::string(r.slug) + "\""),
              std::string::npos)
        << r.slug;
  }
  // The result object, golden: mpi-tag-mismatch is rule index 8 (the
  // registry is sorted by slug).
  EXPECT_NE(
      sarif.find(
          "{\"ruleId\": \"mpi-tag-mismatch\", \"ruleIndex\": 8, "
          "\"level\": \"error\", \"message\": {\"text\": \"tags 1 vs 2\"}, "
          "\"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \"examples/a.cc\"}, \"region\": {\"startLine\": 12}}}]}"),
      std::string::npos)
      << sarif;
}

TEST(LintOutputTest, RelatedLocationsRendered) {
  LintFinding f = SampleFinding();
  f.rule = "mpi-collective-in-divergent-branch";
  f.related.push_back({"src/wrap.cc", 9, "collective Barrier() reached "
                                        "through SyncAll()"});

  // Text report: an indented `see:` evidence line under the finding.
  const std::string text = RenderLintReport({f});
  EXPECT_NE(text.find("see: src/wrap.cc:9: collective Barrier() reached "
                      "through SyncAll()"),
            std::string::npos)
      << text;

  // JSON: a `related` array, present only when nonempty.
  const std::string json = RenderJson({f});
  EXPECT_NE(json.find("\"related\": [{\"file\": \"src/wrap.cc\", "
                      "\"line\": 9, \"note\": \"collective Barrier() "
                      "reached through SyncAll()\"}]"),
            std::string::npos)
      << json;
  EXPECT_EQ(RenderJson({SampleFinding()}).find("related"),
            std::string::npos);

  // SARIF 2.1.0: relatedLocations with physicalLocation + message.
  const std::string sarif = RenderSarif({f});
  EXPECT_NE(sarif.find("\"relatedLocations\": [{\"physicalLocation\": "
                       "{\"artifactLocation\": {\"uri\": \"src/wrap.cc\"}, "
                       "\"region\": {\"startLine\": 9}}, \"message\": "
                       "{\"text\": \"collective Barrier() reached through "
                       "SyncAll()\"}}]"),
            std::string::npos)
      << sarif;
  EXPECT_EQ(RenderSarif({SampleFinding()}).find("relatedLocations"),
            std::string::npos);
}

TEST(LintBaselineTest, FormatSortsEntriesAndKeepsCustomHeader) {
  LintFinding b = SampleFinding();
  b.file = "examples/b.cc";
  LintFinding a = SampleFinding();
  a.file = "examples/a.cc";
  // Entries come out sorted (and deduplicated) regardless of input order.
  const std::string def = FormatBaseline({b, a, a});
  const std::size_t first = def.find("mpi-tag-mismatch examples/a.cc\n");
  const std::size_t second = def.find("mpi-tag-mismatch examples/b.cc\n");
  ASSERT_NE(first, std::string::npos) << def;
  ASSERT_NE(second, std::string::npos) << def;
  EXPECT_LT(first, second);
  // The duplicated finding collapses to one entry.
  std::size_t occurrences = 0;
  for (std::size_t at = def.find("examples/a.cc"); at != std::string::npos;
       at = def.find("examples/a.cc", at + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);

  // A custom header (the previous baseline's comment block) replaces the
  // default one, so regeneration diffs cleanly.
  const std::string custom =
      FormatBaseline({a}, "# triaged 2026-08: intentional demo bug\n");
  EXPECT_EQ(custom,
            "# triaged 2026-08: intentional demo bug\n"
            "mpi-tag-mismatch examples/a.cc\n");
}

TEST(LintBaselineTest, RoundTripSuppressesExactlyTheFindings) {
  std::vector<LintFinding> findings{SampleFinding()};
  LintFinding other;
  other.rule = "spark-missing-persist";
  other.file = "bench/b.cc";
  other.line = 4;
  other.message = "m";
  findings.push_back(other);

  const std::string text = FormatBaseline(findings);
  const auto entries = ParseBaseline(text);
  ASSERT_EQ(entries.size(), 2u);
  int suppressed = 0;
  const auto kept = ApplyBaseline(findings, entries, &suppressed);
  EXPECT_EQ(kept.size(), 0u);
  EXPECT_EQ(suppressed, 2);
}

TEST(LintBaselineTest, SuffixMatchRespectsPathComponents) {
  const auto entries = ParseBaseline(
      "# comment line\n"
      "mpi-tag-mismatch fig4.cc  # trailing comment\n");
  ASSERT_EQ(entries.size(), 1u);

  LintFinding in_dir = SampleFinding();
  in_dir.file = "/root/repo/bench/fig4.cc";
  LintFinding lookalike = SampleFinding();
  lookalike.file = "/root/repo/bench/notfig4.cc";
  int suppressed = 0;
  const auto kept = ApplyBaseline({in_dir, lookalike}, entries, &suppressed);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].file, "/root/repo/bench/notfig4.cc");
  EXPECT_EQ(suppressed, 1);
}

TEST(LintBaselineTest, WrongRuleOrPathDoesNotSuppress) {
  const auto entries =
      ParseBaseline("spark-missing-persist examples/a.cc\n");
  const auto kept = ApplyBaseline({SampleFinding()}, entries, nullptr);
  EXPECT_EQ(kept.size(), 1u);  // rule differs, finding survives
}

// ===========================================================================
// Tokenizer regressions: custom raw delimiters + digit separators
// ===========================================================================

TEST(TokenTest, CustomRawDelimiterScansToItsOwnTerminator) {
  // A custom delimiter means `)"` inside the literal does NOT end it —
  // only `)xyz"` does. The contents must stay opaque either way.
  const auto tokens = Tokenize(
      "auto a = R\"xyz(comm.Send(buf)\" still inside)xyz\";\n"
      "int after = 1;\n");
  for (const Token& t : tokens) {
    EXPECT_FALSE(t.IsIdent("Send")) << t.text;
    EXPECT_FALSE(t.IsIdent("inside")) << t.text;
  }
  const auto after = std::find_if(
      tokens.begin(), tokens.end(),
      [](const Token& t) { return t.IsIdent("after"); });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 2);
}

TEST(TokenTest, MalformedRawPrefixFallsBackToOrdinaryString) {
  // `R"<27 chars>(` is not a valid raw literal (delimiter too long); the
  // R must lex as an identifier and the quote as an ordinary string, not
  // scan unbounded for a matching terminator that never comes.
  const auto tokens = Tokenize(
      "auto a = R\"aaaaaaaaaaaaaaaaaaaaaaaaaaa ok\";\n"
      "int after = 1;\n");
  const auto after = std::find_if(
      tokens.begin(), tokens.end(),
      [](const Token& t) { return t.IsIdent("after"); });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 2);
}

TEST(TokenTest, DigitSeparatorsDoNotSpliceTokens) {
  // `1'000'000` is one number; `2'` (a quote not followed by a digit)
  // must not swallow the following character literal apostrophe.
  const auto big = Tokenize("n = 1'000'000;");
  const auto num = std::find_if(
      big.begin(), big.end(),
      [](const Token& t) { return t.kind == TokKind::kNumber; });
  ASSERT_NE(num, big.end());
  EXPECT_EQ(num->text, "1'000'000");
  EXPECT_EQ(TokenIntValue(*num), std::optional<long long>(1000000));

  const auto edge = Tokenize("f(1, 'x'); int after = 1;");
  const auto after = std::find_if(
      edge.begin(), edge.end(),
      [](const Token& t) { return t.IsIdent("after"); });
  EXPECT_NE(after, edge.end());
}

// ===========================================================================
// Stage 3.5: control-flow graph
// ===========================================================================

std::string CfgDumpOf(const std::string& source) {
  const Unit unit = ParseSource(source);
  EXPECT_FALSE(unit.functions.empty());
  const Function& fn = unit.functions.front();
  return DumpCfg(fn, FunctionFlow(fn));
}

TEST(CfgTest, IfElseGolden) {
  const std::string dump = CfgDumpOf(R"cc(
void f(mpi::Comm& comm) {
  int a = 1;
  if (comm.rank() == 0) {
    a = 2;
  } else {
    a = 3;
  }
  comm.Barrier();
}
)cc");
  EXPECT_EQ(dump,
            "entry=b0 exit=b4\n"
            "b0 d0 lines=3,4\n"
            "  -> b1 if \"comm.rank()==0\" (line 4, divergent)\n"
            "  -> b2 ifnot \"comm.rank()==0\" (line 4, divergent)\n"
            "b1 d0 lines=5\n"
            "  -> b3\n"
            "b2 d0 lines=7\n"
            "  -> b3\n"
            "b3 d0 lines=9\n"
            "  -> b4\n"
            "b4 d0 lines=\n");
}

TEST(CfgTest, LoopAndEarlyReturnGolden) {
  // The early return edges straight to the exit block; the loop lowers to
  // head (condition), body (depth 1, back edge), and after blocks.
  const std::string dump = CfgDumpOf(R"cc(
void f(mpi::Comm& comm, int n) {
  if (n == 0) {
    return;
  }
  for (int i = 0; i < n; ++i) {
    comm.Barrier();
  }
}
)cc");
  // Uniform condition: no ", divergent" marker anywhere.
  EXPECT_EQ(dump.find("divergent"), std::string::npos) << dump;
  // The return block's only successor is the exit block.
  EXPECT_NE(dump.find("exit=b6"), std::string::npos) << dump;
  EXPECT_NE(dump.find("b1 d0 lines=4\n  -> b6\n"), std::string::npos)
      << dump;
  // Loop body sits at depth 1 and carries the back edge to the head.
  EXPECT_NE(dump.find("b4 d1 lines=7\n  -> b3 back\n"), std::string::npos)
      << dump;
}

TEST(CfgTest, PathEnumerationAbstractsLoopsToZeroOrOne) {
  const Unit unit = ParseSource(R"cc(
void f(mpi::Comm& comm, int n) {
  if (n > 0) {
    n = 1;
  }
  for (int i = 0; i < n; ++i) {
    comm.Send(buf, 64, 0, 0);
  }
}
)cc");
  const Function& fn = unit.functions.front();
  const Cfg cfg = Cfg::Build(fn, FunctionFlow(fn));
  bool overflow = true;
  const auto paths = cfg.EnumeratePaths(256, &overflow);
  EXPECT_FALSE(overflow);
  // 2 branch outcomes x (loop skipped | body once) = 4 paths.
  EXPECT_EQ(paths.size(), 4u);
  // Any path that walks the loop body marks the Send step with depth > 0,
  // so sequence-exact consumers know not to trust the 0-or-1 abstraction.
  bool saw_loop_send = false;
  for (const auto& p : paths) {
    for (const auto& s : p.steps) {
      if (!s.stmt->calls.empty() && s.stmt->calls[0].method == "Send") {
        EXPECT_GT(s.loop_depth, 0);
        saw_loop_send = true;
      }
    }
  }
  EXPECT_TRUE(saw_loop_send);
}

TEST(CfgTest, PathEnumerationOverflowReportsDontKnow) {
  // 10 sequential two-way branches: 1024 paths > the cap of 8.
  std::string source = "void f(int n) {\n";
  for (int i = 0; i < 10; ++i) {
    source += "  if (n > " + std::to_string(i) + ") {\n    n += 1;\n  }\n";
  }
  source += "}\n";
  const Unit unit = ParseSource(source);
  const Function& fn = unit.functions.front();
  const Cfg cfg = Cfg::Build(fn, FunctionFlow(fn));
  bool overflow = false;
  const auto paths = cfg.EnumeratePaths(8, &overflow);
  EXPECT_TRUE(overflow);
  EXPECT_LE(paths.size(), 8u);
}

// ===========================================================================
// Deadlock machinery: expression evaluator + rendezvous scheduler
// ===========================================================================

TEST(DeadlockSimTest, EvalIntExprGrammar) {
  const auto resolve = [](const std::string& name)
      -> std::optional<long long> {
    if (name == "r") return 3;
    if (name == "N") return 4;
    return std::nullopt;
  };
  const auto eval = [&](const std::string& e) { return EvalIntExpr(e, resolve); };
  EXPECT_EQ(eval("(r+1)%N"), std::optional<long long>(0));
  EXPECT_EQ(eval("r^1"), std::optional<long long>(2));
  EXPECT_EQ(eval("r==0?10:20"), std::optional<long long>(20));
  EXPECT_EQ(eval("static_cast<std::int64_t>(r)*2"),
            std::optional<long long>(6));
  EXPECT_EQ(eval("2'000+1"), std::optional<long long>(2001));
  EXPECT_EQ(eval("!(r<N)||r/2==1"), std::optional<long long>(1));
  // Unknowns stay unknown: unresolved identifier, call syntax, div by 0.
  EXPECT_EQ(eval("x+1"), std::nullopt);
  EXPECT_EQ(eval("f(r)"), std::nullopt);
  EXPECT_EQ(eval("r/(r-3)"), std::nullopt);
}

CommOp Op(CommOp::Kind kind, int peer, int tag = 0) {
  CommOp op;
  op.kind = kind;
  op.peer = peer;
  op.tag = tag;
  return op;
}

TEST(DeadlockSimTest, HeadToHeadSendsDeadlock) {
  using K = CommOp::Kind;
  const auto rep = SimulateRendezvous({
      {Op(K::kSend, 1), Op(K::kRecv, 1)},
      {Op(K::kSend, 0), Op(K::kRecv, 0)},
  });
  EXPECT_TRUE(rep.deadlock);
  EXPECT_TRUE(rep.proper_cycle);
  EXPECT_TRUE(rep.all_sends);
  EXPECT_FALSE(rep.involves_collective);
  ASSERT_EQ(rep.ranks.size(), 2u);
  EXPECT_EQ(rep.ops[0].kind, K::kSend);
}

TEST(DeadlockSimTest, RingSendsDeadlockAtThreeRanks) {
  using K = CommOp::Kind;
  std::vector<std::vector<CommOp>> seqs;
  for (int r = 0; r < 3; ++r) {
    seqs.push_back({Op(K::kSend, (r + 1) % 3), Op(K::kRecv, (r + 2) % 3)});
  }
  const auto rep = SimulateRendezvous(seqs);
  EXPECT_TRUE(rep.deadlock);
  EXPECT_TRUE(rep.all_sends);
  EXPECT_EQ(rep.ranks.size(), 3u);
}

TEST(DeadlockSimTest, RecvBeforeSendIsAWaitCycleNotAllSends) {
  using K = CommOp::Kind;
  const auto rep = SimulateRendezvous({
      {Op(K::kRecv, 1), Op(K::kSend, 1)},
      {Op(K::kRecv, 0), Op(K::kSend, 0)},
  });
  EXPECT_TRUE(rep.deadlock);
  EXPECT_TRUE(rep.proper_cycle);
  EXPECT_FALSE(rep.all_sends);
  EXPECT_EQ(rep.ops[0].kind, K::kRecv);
}

TEST(DeadlockSimTest, SafeOrderingsDrain) {
  using K = CommOp::Kind;
  // Sendrecv exchange.
  CommOp xchg = Op(K::kSendrecv, 1);
  xchg.peer2 = 1;
  CommOp xchg2 = Op(K::kSendrecv, 0);
  xchg2.peer2 = 0;
  EXPECT_FALSE(SimulateRendezvous({{xchg}, {xchg2}}).deadlock);
  // Staggered order: one side sends first.
  EXPECT_FALSE(SimulateRendezvous({
      {Op(K::kSend, 1), Op(K::kRecv, 1)},
      {Op(K::kRecv, 0), Op(K::kSend, 0)},
  }).deadlock);
  // Isend posts without blocking; Wait drains after the Recv matched.
  EXPECT_FALSE(SimulateRendezvous({
      {Op(K::kIsend, 1), Op(K::kRecv, 1), Op(K::kWait, -1)},
      {Op(K::kIsend, 0), Op(K::kRecv, 0), Op(K::kWait, -1)},
  }).deadlock);
}

TEST(DeadlockSimTest, RecvAgainstExitedPeerIsChainNotCycle) {
  using K = CommOp::Kind;
  const auto rep = SimulateRendezvous({{Op(K::kRecv, 1)}, {}});
  EXPECT_TRUE(rep.deadlock);
  EXPECT_FALSE(rep.proper_cycle);
  ASSERT_EQ(rep.ranks.size(), 1u);
  EXPECT_EQ(rep.ranks[0], 0);
}

TEST(DeadlockSimTest, CollectivesRunLockstepOrSuppress) {
  using K = CommOp::Kind;
  CommOp barrier = Op(K::kCollective, -1);
  barrier.label = "Barrier";
  // All ranks at the same collective: it completes.
  EXPECT_FALSE(SimulateRendezvous({{barrier}, {barrier}}).deadlock);
  // One rank at a collective, the other in a Recv: stuck, but the
  // divergence rules own collective shapes — the report says so.
  const auto rep = SimulateRendezvous({{barrier}, {Op(K::kRecv, 0)}});
  EXPECT_TRUE(rep.deadlock);
  EXPECT_TRUE(rep.involves_collective);
}

// ===========================================================================
// Rewriter
// ===========================================================================

TEST(RewriteTest, InsertReplaceDelete) {
  const std::string src = "a();\nb();\nc();\n";
  std::vector<TextEdit> applied;
  std::vector<TextEdit> skipped;
  const std::string out = ApplyEdits(
      src,
      {
          {"f", 2, 0, {"x();"}, "insert before b"},
          {"f", 3, 1, {"y();", "z();"}, "replace c"},
      },
      &applied, &skipped);
  EXPECT_EQ(out, "a();\nx();\nb();\ny();\nz();\n");
  EXPECT_EQ(applied.size(), 2u);
  EXPECT_EQ(skipped.size(), 0u);

  // Pure deletion.
  EXPECT_EQ(ApplyEdits(src, {{"f", 2, 1, {}, "drop b"}}), "a();\nc();\n");
  // No trailing newline: preserved as-is.
  EXPECT_EQ(ApplyEdits("a();\nb();", {{"f", 1, 1, {"n();"}, ""}}),
            "n();\nb();");
}

TEST(RewriteTest, OverlapAndOutOfRangeEditsAreSkipped) {
  const std::string src = "a();\nb();\nc();\n";
  std::vector<TextEdit> applied;
  std::vector<TextEdit> skipped;
  const std::string out = ApplyEdits(
      src,
      {
          {"f", 1, 2, {"one();"}, "replace a+b"},
          {"f", 2, 1, {"clash();"}, "overlaps the first edit"},
          {"f", 99, 1, {"far();"}, "past the end"},
      },
      &applied, &skipped);
  EXPECT_EQ(out, "one();\nc();\n");
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(skipped.size(), 2u);
}

TEST(RewriteTest, InsertedTextAdoptsSurroundingIndentation) {
  // Replacement takes the first replaced line's indent; an insertion
  // after a line that opens a block indents one level deeper.
  EXPECT_EQ(ApplyEdits("  if (x) {\n    foo();\n  }\n",
                       {{"f", 1, 3, {"foo();"}, ""}}),
            "  foo();\n");
  EXPECT_EQ(ApplyEdits("if (x) {\n}\n", {{"f", 2, 0, {"bar();"}, ""}}),
            "if (x) {\n  bar();\n}\n");
}

// ===========================================================================
// Rules: static deadlock detection (rendezvous + wait cycles)
// ===========================================================================

TEST(LintRuleTest, RendezvousExchangeDeadlockFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Send(out, 131072, partner, 3);
  comm.Recv(in, 131072, partner, 3);
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-rendezvous-deadlock"), 1)
      << RenderLintReport(findings);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const LintFinding& f) { return f.rule == "mpi-rendezvous-deadlock"; });
  EXPECT_EQ(it->severity, Severity::kError);
  EXPECT_EQ(it->line, 4);
  // The message names the world size and walks the cycle; both endpoints
  // appear as related locations (static mirror of the runtime explainer).
  EXPECT_NE(it->message.find("with 2 ranks"), std::string::npos)
      << it->message;
  EXPECT_NE(it->message.find("rank 0 blocks in Send()"), std::string::npos);
  EXPECT_EQ(it->related.size(), 2u);
  // The finding carries the Sendrecv fuse: replace the Send line, absorb
  // the Recv line.
  ASSERT_EQ(it->edits.size(), 2u);
  ASSERT_EQ(it->edits[0].text.size(), 1u);
  EXPECT_NE(it->edits[0].text[0].find("comm.Sendrecv("), std::string::npos);
  EXPECT_EQ(it->edits[1].delete_lines, 1);
  EXPECT_TRUE(it->edits[1].text.empty());
}

TEST(LintRuleTest, RingSendDeadlockFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  comm.Send(out, 131072, next, 0);
  comm.Recv(in, 131072, prev, 0);
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-rendezvous-deadlock"), 1)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, RecvBeforeSendFlaggedAsWaitCycle) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Recv(in, 64, partner, 0);
  comm.Send(out, 64, partner, 0);
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-wait-cycle"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(CountRule(findings, "mpi-rendezvous-deadlock"), 0);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const LintFinding& f) { return f.rule == "mpi-wait-cycle"; });
  EXPECT_NE(it->message.find("blocks in Recv()"), std::string::npos)
      << it->message;
}

TEST(LintRuleTest, SafeExchangeOrdersProduceNoDeadlockFindings) {
  // Sendrecv fusion.
  const auto fused = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Sendrecv(out, 131072, partner, in, 131072, partner, 3);
}
)cc");
  EXPECT_EQ(CountRule(fused, "mpi-rendezvous-deadlock"), 0)
      << RenderLintReport(fused);
  EXPECT_EQ(CountRule(fused, "mpi-wait-cycle"), 0);
  // Isend keeps one side nonblocking.
  const auto isend = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  auto req = comm.Isend(out, 131072, partner, 0);
  comm.Recv(in, 131072, partner, 0);
  comm.Wait(req);
}
)cc");
  EXPECT_EQ(CountRule(isend, "mpi-rendezvous-deadlock"), 0)
      << RenderLintReport(isend);
  EXPECT_EQ(CountRule(isend, "mpi-wait-cycle"), 0);
}

TEST(LintRuleTest, DeadlockDetectionBailsOnUnknowns) {
  // Unevaluable peer: stay quiet rather than guess.
  const auto unknown = Findings(R"cc(
void f(mpi::Comm& comm, int peer) {
  comm.Send(out, 131072, peer, 0);
  comm.Recv(in, 131072, peer, 0);
}
)cc");
  EXPECT_EQ(CountRule(unknown, "mpi-rendezvous-deadlock"), 0)
      << RenderLintReport(unknown);
  EXPECT_EQ(CountRule(unknown, "mpi-wait-cycle"), 0);
  // Point-to-point under a loop: the order is not statically known.
  const auto looped = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  for (int i = 0; i < 4; ++i) {
    comm.Send(out, 131072, partner, 0);
    comm.Recv(in, 131072, partner, 0);
  }
}
)cc");
  EXPECT_EQ(CountRule(looped, "mpi-rendezvous-deadlock"), 0)
      << RenderLintReport(looped);
  EXPECT_EQ(CountRule(looped, "mpi-wait-cycle"), 0);
}

// ===========================================================================
// Path-sensitive uniformity gate
// ===========================================================================

TEST(LintRuleTest, UniformPathsThroughDivergentBranchesAreClean) {
  // Every rank executes [Barrier] on every path, so the rank-divergent
  // branches are harmless — the syntactic heuristic used to flag all
  // three of these shapes.
  const auto both_arms = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  } else {
    comm.Barrier();
  }
}
)cc");
  EXPECT_EQ(CountRule(both_arms, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(both_arms);
  EXPECT_EQ(CountRule(both_arms, "mpi-collective-mismatch"), 0);

  const auto early_return = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Bcast(buf, 64, 0);
    return;
  }
  comm.Bcast(buf, 64, 0);
}
)cc");
  EXPECT_EQ(CountRule(early_return, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(early_return);

  const auto elseif_chain = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
    return;
  } else if (comm.rank() == 1) {
    comm.Barrier();
    return;
  }
  comm.Barrier();
}
)cc");
  EXPECT_EQ(CountRule(elseif_chain, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(elseif_chain);
}

TEST(LintRuleTest, NonUniformPathsStillFlagged) {
  // One path has the Barrier, the other does not: genuinely divergent.
  const auto skipped = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  }
  compute();
}
)cc");
  EXPECT_EQ(CountRule(skipped, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(skipped);
}

// ===========================================================================
// Auto-fix engine (--fix): generated edits + idempotence
// ===========================================================================

std::vector<TextEdit> AllEdits(const std::vector<LintFinding>& findings) {
  std::vector<TextEdit> edits;
  for (const LintFinding& f : findings) {
    edits.insert(edits.end(), f.edits.begin(), f.edits.end());
  }
  return edits;
}

TEST(LintFixTest, HoistCollectiveFixAppliesAndIsIdempotent) {
  const std::string src = R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  }
}
)cc";
  const auto findings = LintSource("t.cc", src);
  ASSERT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1);
  const std::string fixed = ApplyEdits(src, AllEdits(findings));
  EXPECT_NE(fixed.find("\n  comm.Barrier();\n"), std::string::npos) << fixed;
  EXPECT_EQ(fixed.find("if ("), std::string::npos) << fixed;
  // The fixed source is clean, so a second pass has nothing to edit.
  const auto refindings = LintSource("t.cc", fixed);
  EXPECT_EQ(CountRule(refindings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(refindings);
  EXPECT_EQ(ApplyEdits(fixed, AllEdits(refindings)), fixed);
}

TEST(LintFixTest, SendrecvFuseFixAppliesAndIsIdempotent) {
  const std::string src = R"cc(
void f(mpi::Comm& comm) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  comm.Send(out, 131072, next, 0);
  comm.Recv(in, 131072, prev, 0);
}
)cc";
  const auto findings = LintSource("t.cc", src);
  ASSERT_EQ(CountRule(findings, "mpi-rendezvous-deadlock"), 1)
      << RenderLintReport(findings);
  const std::string fixed = ApplyEdits(src, AllEdits(findings));
  // The ring exchange fuses with distinct dest/source peers.
  EXPECT_NE(fixed.find("comm.Sendrecv(out, 131072, next, in, 131072, "
                       "prev, 0);"),
            std::string::npos)
      << fixed;
  const auto refindings = LintSource("t.cc", fixed);
  EXPECT_EQ(CountRule(refindings, "mpi-rendezvous-deadlock"), 0)
      << RenderLintReport(refindings);
  EXPECT_EQ(ApplyEdits(fixed, AllEdits(refindings)), fixed);
}

TEST(LintFixTest, IntCountWideningFix) {
  const std::string src = R"cc(
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  auto part = file->ReadLinesAtAll(comm, 0, static_cast<int>(len));
}
)cc";
  const auto findings = LintSource("t.cc", src);
  ASSERT_EQ(CountRule(findings, "mpi-int-count-overflow"), 1);
  const std::string fixed = ApplyEdits(src, AllEdits(findings));
  EXPECT_NE(fixed.find("static_cast<std::int64_t>(len)"), std::string::npos)
      << fixed;
  EXPECT_EQ(LintSource("t.cc", fixed).size(), 0u);
}

TEST(LintFixTest, ShmemQuietInsertionFix) {
  const std::string src = R"cc(
void f(shmem::Pe& pe) {
  pe.PutValue(slots.at(0), 1, 2);
  int v = pe.GetValue(slots.at(0), 2);
}
)cc";
  const auto findings = LintSource("t.cc", src);
  ASSERT_EQ(CountRule(findings, "shmem-put-without-quiet"), 1);
  const std::string fixed = ApplyEdits(src, AllEdits(findings));
  EXPECT_NE(fixed.find("pe.PutValue(slots.at(0), 1, 2);\n  pe.Quiet();\n"),
            std::string::npos)
      << fixed;
  EXPECT_EQ(CountRule(LintSource("t.cc", fixed), "shmem-put-without-quiet"),
            0);
}

// ===========================================================================
// Baseline line hashes (drift tolerance) + parallel determinism
// ===========================================================================

TEST(LintBaselineTest, HashPinsFlaggedLineNotLineNumber) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  }
}
)cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line_hash, SourceLineHash("comm.Barrier();"));

  // A hashed entry suppresses regardless of the line number...
  const BaselineEntry good{"mpi-collective-in-divergent-branch", "t.cc",
                           SourceLineHash("comm.Barrier();")};
  EXPECT_EQ(ApplyBaseline(findings, {good}, nullptr).size(), 0u);
  // ...a stale hash (the flagged code changed) does not...
  const BaselineEntry stale{"mpi-collective-in-divergent-branch", "t.cc",
                            SourceLineHash("comm.Allreduce(a, b);")};
  EXPECT_EQ(ApplyBaseline(findings, {stale}, nullptr).size(), 1u);
  // ...and a legacy two-field entry still matches everything in the file.
  const BaselineEntry legacy{"mpi-collective-in-divergent-branch", "t.cc",
                             ""};
  EXPECT_EQ(ApplyBaseline(findings, {legacy}, nullptr).size(), 0u);
}

TEST(LintBaselineTest, HashRoundTripsThroughFormatAndParse) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  }
}
)cc");
  ASSERT_EQ(findings.size(), 1u);
  const std::string text = FormatBaseline(findings);
  EXPECT_NE(text.find("mpi-collective-in-divergent-branch t.cc " +
                      findings[0].line_hash),
            std::string::npos)
      << text;
  const auto entries = ParseBaseline(text);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].hash, findings[0].line_hash);
  EXPECT_EQ(ApplyBaseline(findings, entries, nullptr).size(), 0u);
}

TEST(LintProgramTest, FindingsIdenticalAcrossJobCounts) {
  // A multi-file program with cross-file wrapper findings: the parallel
  // tokenize/parse phase must not perturb output order or content.
  std::vector<ProgramSource> sources;
  sources.push_back({"a.cc", R"cc(
void SyncAll(mpi::Comm& comm) { comm.Barrier(); }
)cc"});
  sources.push_back({"b.cc", R"cc(
void caller(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    SyncAll(comm);
  }
}
)cc"});
  sources.push_back({"c.cc", R"cc(
void g(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Send(out, 131072, partner, 0);
  comm.Recv(in, 131072, partner, 0);
}
)cc"});
  sources.push_back({"d.cc", "void empty() {}\n"});
  const auto one = LintProgram(sources, 1);
  const auto four = LintProgram(sources, 4);
  EXPECT_FALSE(one.empty());
  ASSERT_EQ(one.size(), four.size());
  EXPECT_EQ(RenderJson(one), RenderJson(four));
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].line_hash, four[i].line_hash);
    EXPECT_EQ(one[i].edits.size(), four[i].edits.size());
  }
}

}  // namespace
}  // namespace pstk::analysis
