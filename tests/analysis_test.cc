#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dataflow.h"
#include "analysis/lint.h"
#include "analysis/loc.h"
#include "analysis/parse.h"
#include "analysis/token.h"

namespace pstk::analysis {
namespace {

TEST(LocTest, CountsCodeLinesOnly) {
  const std::string source = R"(#include <vector>

// a comment line
int main() {
  /* block
     comment */
  int x = 1;  // trailing comment
  return x;
}
)";
  const auto report = AnalyzeSource("demo", source, {});
  // #include, int main() {, int x = 1;, return x;, }
  EXPECT_EQ(report.code_lines, 5);
  EXPECT_EQ(report.boilerplate_lines, 0);
}

TEST(LocTest, BlockCommentSpanningCodeLine) {
  const std::string source = "int a; /* hi\nstill comment */ int b;\n";
  const auto report = AnalyzeSource("demo", source, {});
  EXPECT_EQ(report.code_lines, 2);  // both lines carry code
}

TEST(LocTest, MarkersFlagBoilerplate) {
  const std::string source = R"(#include "mpi/mpi.h"
World world(cluster, 8, 8);
auto t = world.RunSpmd(body);
compute();
)";
  const auto report =
      AnalyzeSource("mpi", source, {"#include", "World", "RunSpmd"});
  EXPECT_EQ(report.code_lines, 4);
  EXPECT_EQ(report.boilerplate_lines, 3);
  EXPECT_NEAR(report.BoilerplateShare(), 0.75, 1e-9);
}

TEST(LocTest, MarkerCountedOncePerLine) {
  const auto report = AnalyzeSource(
      "x", "World world = World(World::Make());\n", {"World", "Make"});
  EXPECT_EQ(report.boilerplate_lines, 1);
}

TEST(LocTest, ExtractBenchmarkRegion) {
  const std::string source = R"(scaffolding();
// BENCHMARK-BEGIN
real code 1;
real code 2;
// BENCHMARK-END
more scaffolding();
)";
  const std::string region = ExtractBenchmarkRegion(source);
  EXPECT_NE(region.find("real code 1"), std::string::npos);
  EXPECT_EQ(region.find("scaffolding"), std::string::npos);
  // Absent markers: whole source returned.
  EXPECT_EQ(ExtractBenchmarkRegion("abc"), "abc");
}

TEST(LocTest, AnalyzeMissingFileFails) {
  const auto report = AnalyzeFile("x", "/no/such/file.cc", {});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

// ===========================================================================
// Stage 1: tokenizer
// ===========================================================================

TEST(TokenTest, CommentsAndStringContentsAreOpaque) {
  const std::string source = R"cc(
// comm.Send(buf, n, rank + 1, 0);
Log("calling Send(rank+1)"); /* Recv( */
)cc";
  const auto tokens = Tokenize(source);
  // Nothing from the comment or the literal leaks as an identifier.
  for (const Token& t : tokens) {
    EXPECT_FALSE(t.IsIdent("Send")) << t.text;
    EXPECT_FALSE(t.IsIdent("Recv")) << t.text;
    EXPECT_FALSE(t.IsIdent("rank")) << t.text;
  }
  // The literal survives as one opaque kString token with exact text.
  const auto str = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokKind::kString;
  });
  ASSERT_NE(str, tokens.end());
  EXPECT_EQ(str->text, "\"calling Send(rank+1)\"");
  EXPECT_EQ(str->line, 3);
}

TEST(TokenTest, RawStringsAndPragmasAreSingleTokens) {
  const std::string source =
      "auto s = R\"x(Send( " "\n" "more)x\";\n"
      "  #pragma omp parallel \\\n      for\n"
      "int after = 1;\n";
  const auto tokens = Tokenize(source);
  const auto raw = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokKind::kString;
  });
  ASSERT_NE(raw, tokens.end());
  EXPECT_NE(raw->text.find("Send("), std::string::npos);  // inside literal only
  const auto pragma =
      std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokKind::kPragma;
      });
  ASSERT_NE(pragma, tokens.end());
  // Backslash continuation folded into one directive token.
  EXPECT_NE(pragma->text.find("omp parallel"), std::string::npos);
  EXPECT_NE(pragma->text.find("for"), std::string::npos);
  // Line accounting stays exact across the raw string + continuation.
  const auto after = std::find_if(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.IsIdent("after");
  });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 5);
}

TEST(TokenTest, PrefixedRawStringsAreOpaque) {
  // u8R"/LR"/uR"/UR" literals used to lex as an identifier followed by an
  // unterminated plain string, leaking the literal contents as code.
  const std::string source =
      "auto a = u8R\"x(comm.Send(buf, n, rank + 1, 0))x\";\n"
      "auto b = LR\"(Recv( more)\";\n"
      "auto c = uR\"y(Barrier())y\";\n"
      "auto d = UR\"(wait())\";\n"
      "int after = 1;\n";
  const auto tokens = Tokenize(source);
  for (const Token& t : tokens) {
    EXPECT_FALSE(t.IsIdent("Send")) << t.text;
    EXPECT_FALSE(t.IsIdent("Recv")) << t.text;
    EXPECT_FALSE(t.IsIdent("Barrier")) << t.text;
    EXPECT_FALSE(t.IsIdent("rank")) << t.text;
  }
  // Each literal is one opaque kString token, prefix included.
  const auto strings = static_cast<std::size_t>(
      std::count_if(tokens.begin(), tokens.end(), [](const Token& t) {
        return t.kind == TokKind::kString;
      }));
  EXPECT_EQ(strings, 4u);
  const auto after = std::find_if(tokens.begin(), tokens.end(),
                                  [](const Token& t) {
                                    return t.IsIdent("after");
                                  });
  ASSERT_NE(after, tokens.end());
  EXPECT_EQ(after->line, 5);
}

TEST(TokenTest, OperatorsNumbersAndJoin) {
  const auto tokens = Tokenize("x <<= y->z; n += 2'000; p = 0x10;");
  auto has_punct = [&](const char* p) {
    return std::any_of(tokens.begin(), tokens.end(),
                       [&](const Token& t) { return t.IsPunct(p); });
  };
  EXPECT_TRUE(has_punct("<<="));
  EXPECT_TRUE(has_punct("->"));
  EXPECT_TRUE(has_punct("+="));
  long long hex = 0;
  long long sep = 0;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kNumber) continue;
    const auto v = TokenIntValue(t);
    ASSERT_TRUE(v.has_value()) << t.text;
    if (t.text == "0x10") hex = *v;
    if (t.text == "2'000") sep = *v;
  }
  EXPECT_EQ(hex, 16);
  EXPECT_EQ(sep, 2000);
  EXPECT_FALSE(TokenIntValue(Token{TokKind::kNumber, "1.5e3", 1}).has_value());

  const auto cast = Tokenize("static_cast<std::int32_t>(len)");
  EXPECT_EQ(JoinTokens(cast, 0, cast.size()),
            "static_cast<std::int32_t>(len)");
}

// ===========================================================================
// Stage 2: structural parser
// ===========================================================================

TEST(ParseTest, FunctionsLoopsBranchesCalls) {
  const Unit unit = ParseSource(R"cc(
int Compute(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      total += i;
    } else {
      total -= 1;
    }
  }
  helper.Run(total, n + 1);
  return total;
}
)cc");
  ASSERT_EQ(unit.functions.size(), 1u);
  const Function& fn = unit.functions[0];
  EXPECT_EQ(fn.name, "Compute");
  ASSERT_EQ(fn.params.size(), 1u);
  EXPECT_EQ(fn.params[0].name, "n");
  ASSERT_GE(fn.body.size(), 4u);
  EXPECT_EQ(fn.body[0].decl_name, "total");
  const Stmt& loop = fn.body[1];
  ASSERT_EQ(loop.kind, StmtKind::kLoop);
  EXPECT_EQ(loop.induction_var, "i");
  ASSERT_EQ(loop.children.size(), 1u);
  const Stmt& branch = loop.children[0];
  ASSERT_EQ(branch.kind, StmtKind::kBranch);
  ASSERT_EQ(branch.children.size(), 1u);
  ASSERT_EQ(branch.else_children.size(), 1u);
  ASSERT_EQ(branch.children[0].assigns.size(), 1u);
  EXPECT_EQ(branch.children[0].assigns[0].name, "total");
  EXPECT_EQ(branch.children[0].assigns[0].op, "+=");
  const Stmt& call_stmt = fn.body[2];
  ASSERT_EQ(call_stmt.calls.size(), 1u);
  EXPECT_EQ(call_stmt.calls[0].receiver, "helper");
  EXPECT_EQ(call_stmt.calls[0].method, "Run");
  ASSERT_EQ(call_stmt.calls[0].args.size(), 2u);
  EXPECT_EQ(call_stmt.calls[0].args[1], "n+1");
  EXPECT_EQ(fn.body[3].kind, StmtKind::kReturn);
}

TEST(ParseTest, LambdaBodyLiftedAsFunction) {
  const Unit unit = ParseSource(R"cc(
void Outer(mpi::World& world) {
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    comm.Barrier();
  });
}
)cc");
  ASSERT_EQ(unit.functions.size(), 2u);
  const auto lambda =
      std::find_if(unit.functions.begin(), unit.functions.end(),
                   [](const Function& f) { return f.is_lambda; });
  ASSERT_NE(lambda, unit.functions.end());
  ASSERT_EQ(lambda->params.size(), 1u);
  EXPECT_EQ(lambda->params[0].name, "comm");
  ASSERT_EQ(lambda->body.size(), 1u);
  ASSERT_EQ(lambda->body[0].calls.size(), 1u);
  EXPECT_EQ(lambda->body[0].calls[0].method, "Barrier");
}

// ===========================================================================
// Stage 3: dataflow
// ===========================================================================

const Function& OnlyFn(const Unit& unit) {
  EXPECT_EQ(unit.functions.size(), 1u);
  return unit.functions.front();
}

TEST(DataflowTest, RankTaintPropagatesThroughDerivedVars) {
  const Unit unit = ParseSource(R"cc(
void f(mpi::Comm& comm, int iters) {
  const int right = (comm.rank() + 1) % comm.size();
  const int partner = right ^ 1;
  int plain = iters * 2;
}
)cc");
  const FunctionFlow flow(OnlyFn(unit));
  EXPECT_TRUE(flow.IsRankDerived("right"));
  EXPECT_TRUE(flow.IsRankDerived("partner"));  // via right, one hop
  EXPECT_FALSE(flow.IsRankDerived("plain"));
  EXPECT_FALSE(flow.IsRankDerived("iters"));
}

TEST(DataflowTest, WideSizesAndIntMaxGuard) {
  const Unit unit = ParseSource(R"cc(
void g(mpi::File* file) {
  const Bytes chunk = file->size() / 4;
  auto len = chunk * 2;
  int small = 3;
}
)cc");
  const FunctionFlow flow(OnlyFn(unit));
  EXPECT_TRUE(flow.Is64BitSized("chunk"));
  EXPECT_TRUE(flow.Is64BitSized("len"));  // via chunk
  EXPECT_FALSE(flow.Is64BitSized("small"));
  EXPECT_FALSE(flow.HasIntMaxGuard());

  const Unit guarded = ParseSource(R"cc(
void g(Bytes len) {
  if (len > static_cast<Bytes>(INT32_MAX)) return;
}
)cc");
  EXPECT_TRUE(FunctionFlow(OnlyFn(guarded)).HasIntMaxGuard());
}

// ===========================================================================
// Rules: seeded violation + false-positive guard per rule
// ===========================================================================

std::vector<LintFinding> Findings(const std::string& source) {
  return LintSource("t.cc", source);
}

int CountRule(const std::vector<LintFinding>& findings, const char* rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const LintFinding& f) { return f.rule == rule; }));
}

TEST(LintRuleTest, StringsAndCommentsNeverTriggerRules) {
  // Both lines defeated the old substring scanner: "Send(...rank+1...)"
  // only ever appears inside a literal / a comment.
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  // comm.Send(buf, n, rank + 1, 0);
  Log("calling Send(rank+1)");
  comm.Recv(buf, n, src, 0);
}
)cc");
  EXPECT_EQ(findings.size(), 0u) << RenderLintReport(findings);
}

TEST(LintRuleTest, CollectiveInDivergentBranchFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintRuleTest, DivergentEarlyReturnBeforeCollectiveFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int me = comm.rank();
  if (me > 0) return;
  comm.Barrier();
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, UniformBranchAndStatusGuardAreClean) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, mpi::File* file, int iters) {
  if (iters > 0) {
    comm.Barrier();
  }
  const Bytes offset = static_cast<Bytes>(comm.rank()) * 64;
  auto part = file->ReadAtAll(comm, offset, 64);
  if (!part.ok()) return;  // rank-tainted value, uniform error outcome
  comm.Barrier();
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, IntCountOverflowFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  auto part = file->ReadLinesAtAll(comm, 0, static_cast<std::int32_t>(len));
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-int-count-overflow"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("len"), std::string::npos);
}

TEST(LintRuleTest, IntCountWithGuardOrNarrowSourceIsClean) {
  const auto guarded = Findings(R"cc(
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  if (len > static_cast<Bytes>(INT32_MAX)) return;
  auto part = file->ReadLinesAtAll(comm, 0, static_cast<std::int32_t>(len));
}
)cc");
  EXPECT_EQ(CountRule(guarded, "mpi-int-count-overflow"), 0)
      << RenderLintReport(guarded);
  // Narrowing an int-typed value is not the Fig. 4 failure.
  const auto narrow = Findings(R"cc(
void f(mpi::Comm& comm, int lines) {
  comm.Send(buf, static_cast<std::int32_t>(lines), 1, 0);
}
)cc");
  EXPECT_EQ(CountRule(narrow, "mpi-int-count-overflow"), 0)
      << RenderLintReport(narrow);
}

TEST(LintRuleTest, TagMismatchFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  comm.Send(out, 64, dest, 7);
  comm.Recv(in, 64, src, 9);
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-tag-mismatch"), 1)
      << RenderLintReport(findings);
  EXPECT_NE(findings[0].message.find("7"), std::string::npos);
  EXPECT_NE(findings[0].message.find("9"), std::string::npos);
}

TEST(LintRuleTest, MatchingOrVariableTagsAreClean) {
  const auto matching = Findings(R"cc(
void f(mpi::Comm& comm) {
  comm.Send(out, 64, dest, 7);
  comm.Recv(in, 64, src, 7);
}
)cc");
  EXPECT_EQ(CountRule(matching, "mpi-tag-mismatch"), 0);
  // One variable tag makes the sets unprovable: stay silent.
  const auto variable = Findings(R"cc(
void f(mpi::Comm& comm, int tag) {
  comm.Send(out, 64, dest, tag);
  comm.Recv(in, 64, src, 9);
}
)cc");
  EXPECT_EQ(CountRule(variable, "mpi-tag-mismatch"), 0);
}

TEST(LintRuleTest, OmpMissingPrivateFlagged) {
  const auto findings = Findings(R"cc(
void f(int n) {
  int tmp = 0;
  #pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    tmp = i * 2;
    Use(tmp);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "omp-missing-private"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("tmp"), std::string::npos);
}

TEST(LintRuleTest, OmpPrivateClauseOrLocalDeclIsClean) {
  const auto clause = Findings(R"cc(
void f(int n) {
  int tmp = 0;
  #pragma omp parallel for private(tmp)
  for (int i = 0; i < n; ++i) {
    tmp = i * 2;
    Use(tmp);
  }
}
)cc");
  EXPECT_EQ(CountRule(clause, "omp-missing-private"), 0)
      << RenderLintReport(clause);
  const auto local = Findings(R"cc(
void f(int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    int tmp = i * 2;
    Use(tmp);
  }
}
)cc");
  EXPECT_EQ(CountRule(local, "omp-missing-private"), 0)
      << RenderLintReport(local);
}

TEST(LintRuleTest, ShmemPutWithoutQuietFlagged) {
  const auto findings = Findings(R"cc(
void f(shmem::Pe& pe) {
  pe.PutValue(slots.at(0), 1, 2);
  int v = pe.GetValue(slots.at(0), 2);
}
)cc");
  ASSERT_EQ(CountRule(findings, "shmem-put-without-quiet"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("slots"), std::string::npos);
}

TEST(LintRuleTest, ShmemQuietBetweenPutAndGetIsClean) {
  const auto quiet = Findings(R"cc(
void f(shmem::Pe& pe) {
  pe.PutValue(slots.at(0), 1, 2);
  pe.Quiet();
  int v = pe.GetValue(slots.at(0), 2);
}
)cc");
  EXPECT_EQ(CountRule(quiet, "shmem-put-without-quiet"), 0)
      << RenderLintReport(quiet);
  // Reading a different symmetric object needs no fence.
  const auto other = Findings(R"cc(
void f(shmem::Pe& pe) {
  pe.PutValue(slots.at(0), 1, 2);
  int v = pe.GetValue(flags.at(0), 2);
}
)cc");
  EXPECT_EQ(CountRule(other, "shmem-put-without-quiet"), 0)
      << RenderLintReport(other);
}

TEST(LintRuleTest, SymmetricSendViaDerivedPartnerFlagged) {
  // The deadlock pair where the rank arithmetic hides in an initializer.
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Send(out, 64, partner, 0);
  comm.Recv(in, 64, partner, 0);
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-blocking-symmetric-send"), 1)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, SparkMultipleActionsWithoutPersistFlagged) {
  const auto findings = Findings(R"cc(
void f(spark::SparkContext& sc) {
  auto doubled = sc.Parallelize(data, 4).Map([](int x) { return 2 * x; });
  auto first = doubled.Count();
  auto second = doubled.Count();
}
)cc");
  ASSERT_EQ(CountRule(findings, "spark-missing-persist"), 1)
      << RenderLintReport(findings);
  EXPECT_NE(findings[0].message.find("2 actions"), std::string::npos);
}

TEST(LintRuleTest, CkptUnderRankDerivedConditionFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, ckpt::CheckpointCoordinator& coord) {
  const int rank = comm.rank();
  comm.Barrier();
  if (rank == 0) {
    coord.Checkpoint(comm.ctx(), rank, rank / 4, 3, state);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "ckpt-outside-collective"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("never commit"), std::string::npos);
}

TEST(LintRuleTest, CkptAtUniformBoundaryIsClean) {
  // The correct pattern (every rank, right after the collective) and a
  // uniform condition (iteration count) must both stay silent.
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, ckpt::CheckpointCoordinator& coord, int iters) {
  const int rank = comm.rank();
  for (int i = 0; i < iters; ++i) {
    comm.Allreduce<double>(contrib, ranks);
    coord.Checkpoint(comm.ctx(), rank, rank / 4, i, state);
  }
  if (iters > 0) {
    coord.Checkpoint(comm.ctx(), rank, rank / 4, iters, state);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "ckpt-outside-collective"), 0)
      << RenderLintReport(findings);
}

// ===========================================================================
// Stage 4: call graph + function summaries
// ===========================================================================

TEST(CallGraphTest, SummariesCyclesLambdasAndOverloads) {
  Program prog = Program::Analyze({ProgramSource{"a.cc", R"cc(
void Ping(int depth) {
  if (depth > 0) {
    Pong(depth - 1);
  }
  g.Barrier();
}
void Pong(int depth) { Ping(depth); }
void Host(Pool& pool) {
  pool.Submit([&] { q.Allreduce(a, b); });
}
void Narrow(int n) {}
void Narrow(int n, int m) { g.Bcast(buf, n); }
void CallsTwoArg() { Narrow(1, 2); }
void CallsOneArg() { Narrow(1); }
)cc"}});
  // Cycle: both members transitively reach the collective; the sequence
  // is not provable through recursion.
  const int ping = prog.Find("Ping");
  const int pong = prog.Find("Pong");
  ASSERT_GE(ping, 0);
  ASSERT_GE(pong, 0);
  EXPECT_TRUE(prog.fns()[ping].summary.calls_collective);
  EXPECT_TRUE(prog.fns()[pong].summary.calls_collective);
  EXPECT_FALSE(prog.fns()[pong].summary.sequence_known);
  const auto reach = prog.ReachableFrom(ping);
  EXPECT_NE(std::find(reach.begin(), reach.end(), pong), reach.end());
  // On a cycle the root reaches itself.
  EXPECT_NE(std::find(reach.begin(), reach.end(), ping), reach.end());

  // Lambda containment: the deferred lambda's collective counts as the
  // host's (conservative — deferred means "may run").
  const int host = prog.Find("Host");
  ASSERT_GE(host, 0);
  EXPECT_TRUE(prog.fns()[host].summary.calls_collective);
  EXPECT_EQ(prog.fns()[host].summary.collective_name, "Allreduce");

  // Overload resolution prefers matching arity: only the 2-arg Narrow
  // hides a collective.
  const int two = prog.Find("CallsTwoArg");
  const int one = prog.Find("CallsOneArg");
  ASSERT_GE(two, 0);
  ASSERT_GE(one, 0);
  EXPECT_TRUE(prog.fns()[two].summary.calls_collective);
  EXPECT_FALSE(prog.fns()[one].summary.calls_collective);
}

// ===========================================================================
// Interprocedural rules: the PR-3 seeds, pushed through a wrapper
// ===========================================================================

TEST(LintRuleTest, WrapperHiddenCollectiveInDivergentBranchFlagged) {
  // Same seed as CollectiveInDivergentBranchFlagged, with the Barrier
  // hidden one call deep: identical rule and severity, plus a related
  // location pointing into the wrapper.
  const auto findings = Findings(R"cc(
void SyncAll(mpi::Comm& comm) {
  comm.Barrier();
}
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    SyncAll(comm);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 7);  // the call site, not the wrapper
  EXPECT_NE(findings[0].message.find("Barrier"), std::string::npos);
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 3);  // the Barrier inside SyncAll
}

TEST(LintRuleTest, WrapperCalledUniformlyIsClean) {
  const auto findings = Findings(R"cc(
void SyncAll(mpi::Comm& comm) {
  comm.Barrier();
}
void f(mpi::Comm& comm, int iters) {
  if (iters > 0) {
    SyncAll(comm);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, WrapperHiddenIntCountOverflowFlaggedAcrossFiles) {
  // The Fig. 4 narrowing hides inside a helper in another file; the
  // caller passes a 64-bit size. One finding, at the caller.
  const auto findings = LintProgram({
      ProgramSource{"io_util.cc", R"cc(
void ReadChunk(mpi::Comm& comm, mpi::File* file, Bytes n) {
  auto part = file->ReadAtAll(comm, 0, static_cast<std::int32_t>(n));
}
)cc"},
      ProgramSource{"caller.cc", R"cc(
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  ReadChunk(comm, file, len);
}
)cc"},
  });
  ASSERT_EQ(CountRule(findings, "mpi-int-count-overflow"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].file, "caller.cc");
  EXPECT_EQ(findings[0].line, 4);
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].file, "io_util.cc");
  EXPECT_EQ(findings[0].related[0].line, 3);  // the cast site
}

TEST(LintRuleTest, WrapperCountWithCallerGuardIsClean) {
  const auto findings = Findings(R"cc(
void ReadChunk(mpi::Comm& comm, mpi::File* file, Bytes n) {
  auto part = file->ReadAtAll(comm, 0, static_cast<std::int32_t>(n));
}
void f(mpi::Comm& comm, mpi::File* file) {
  const Bytes len = file->size() / comm.size();
  if (len > static_cast<Bytes>(INT32_MAX)) return;
  ReadChunk(comm, file, len);
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-int-count-overflow"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, WrapperHiddenSymmetricSendFlagged) {
  // The deadlocking exchange from SymmetricSendViaDerivedPartnerFlagged,
  // with the Send/Recv pair hidden in a helper and the rank arithmetic
  // at the call site.
  const auto findings = Findings(R"cc(
void Exchange(mpi::Comm& comm, int peer) {
  comm.Send(out, 64, peer, 0);
  comm.Recv(in, 64, peer, 0);
}
void f(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  Exchange(comm, partner);
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-blocking-symmetric-send"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 8);  // the Exchange() call site
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 3);  // the Send inside Exchange
}

TEST(LintRuleTest, WrapperSendWithUniformPeerIsClean) {
  const auto findings = Findings(R"cc(
void Exchange(mpi::Comm& comm, int peer) {
  comm.Send(out, 64, peer, 0);
  comm.Recv(in, 64, peer, 0);
}
void f(mpi::Comm& comm, int root) {
  Exchange(comm, root);
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-blocking-symmetric-send"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, RankReturningHelperTaintsCallers) {
  // The taint-knowledge fixpoint: Partner() returns a rank-derived
  // value, so the branch in f is divergent even though the word "rank"
  // never appears there.
  const auto findings = Findings(R"cc(
int Partner(mpi::Comm& comm) {
  return comm.rank() ^ 1;
}
void f(mpi::Comm& comm) {
  if (Partner(comm) == 0) {
    comm.Barrier();
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 1)
      << RenderLintReport(findings);
}

// ===========================================================================
// New rules: seeded violation + false-positive guard per rule
// ===========================================================================

TEST(LintRuleTest, CollectiveMismatchFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  } else {
    comm.Allreduce(a, b);
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-mismatch"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 3);  // the branch, not either collective
  EXPECT_NE(findings[0].message.find("Barrier"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Allreduce"), std::string::npos);
  // The sequence mismatch subsumes the per-site divergence reports.
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, EquallySequencedArmsAreClean) {
  // PR-3 flagged both arms here; provably equal sequences are symmetric
  // and must stay silent now.
  const auto findings = Findings(R"cc(
void DoSync(mpi::Comm& comm) {
  comm.Barrier();
}
void f(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.Barrier();
  } else {
    DoSync(comm);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-mismatch"), 0)
      << RenderLintReport(findings);
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-divergent-branch"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, CollectiveInLoopWithDivergentBoundFlagged) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm) {
  for (int i = 0; i < comm.rank(); ++i) {
    comm.Barrier();
  }
}
)cc");
  ASSERT_EQ(CountRule(findings, "mpi-collective-in-loop-divergent-bound"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 3);  // the loop header
}

TEST(LintRuleTest, CollectiveInUniformLoopIsClean) {
  const auto findings = Findings(R"cc(
void f(mpi::Comm& comm, int iters) {
  for (int i = 0; i < iters; ++i) {
    comm.Allreduce(a, b);
  }
}
)cc");
  EXPECT_EQ(CountRule(findings, "mpi-collective-in-loop-divergent-bound"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, BlockingReachableFromDrainFlagged) {
  const auto findings = Findings(R"cc(
void PumpOne(Engine& eng) {
  eng.cv.wait(lock);
}
void DrainChannels(Engine& eng) {
  PumpOne(eng);
}
)cc");
  ASSERT_EQ(CountRule(findings, "sim-blocking-in-drain"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].line, 3);  // the blocking site inside PumpOne
  ASSERT_EQ(findings[0].related.size(), 1u);
  EXPECT_EQ(findings[0].related[0].line, 5);  // the drain root
}

TEST(LintRuleTest, NonBlockingDrainAndBlockingElsewhereAreClean) {
  const auto findings = Findings(R"cc(
void DrainChannels(Engine& eng) {
  while (eng.ring.Pop(msg)) {
    Apply(msg);
  }
}
void RunRound(Engine& eng) {
  eng.cv.wait(lock);
}
)cc");
  EXPECT_EQ(CountRule(findings, "sim-blocking-in-drain"), 0)
      << RenderLintReport(findings);
}

TEST(LintRuleTest, SpscMultiProducerFlagged) {
  const auto findings = Findings(R"cc(
struct Shard {
  SpscRing<int> outbox;
};
void SendCross(Shard& s, int v) {
  s.outbox.Push(v);
}
void StealBack(Shard& s, int v) {
  s.outbox.Push(v);
}
)cc");
  ASSERT_EQ(CountRule(findings, "sim-spsc-multi-producer"), 1)
      << RenderLintReport(findings);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  // Declaration site and first producer ride along as evidence.
  ASSERT_EQ(findings[0].related.size(), 2u);
  EXPECT_NE(findings[0].message.find("outbox"), std::string::npos);
}

TEST(LintRuleTest, SingleProducerPerRingIsClean) {
  // One producer per channel — two channels, two distinct producers.
  const auto findings = Findings(R"cc(
struct Shard {
  SpscRing<int> inbox;
  SpscRing<int> outbox;
};
void SendCross(Shard& s, int v) {
  s.outbox.Push(v);
}
void Reply(Shard& s, int v) {
  s.inbox.Push(v);
}
)cc");
  EXPECT_EQ(CountRule(findings, "sim-spsc-multi-producer"), 0)
      << RenderLintReport(findings);
}

// ===========================================================================
// Output formats + baseline
// ===========================================================================

LintFinding SampleFinding() {
  LintFinding f;
  f.rule = "mpi-tag-mismatch";
  f.file = "examples/a.cc";
  f.line = 12;
  f.message = "tags 1 vs 2";
  f.severity = Severity::kError;
  return f;
}

TEST(LintOutputTest, SeverityNamesAndWorst) {
  EXPECT_STREQ(SeverityName(Severity::kNote), "note");
  EXPECT_STREQ(SeverityName(Severity::kWarning), "warning");
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
  std::vector<LintFinding> fs{{"r", "f", 1, "m", Severity::kWarning, ""}};
  EXPECT_EQ(WorstSeverity({}), Severity::kNote);
  EXPECT_EQ(WorstSeverity(fs), Severity::kWarning);
  fs.push_back(SampleFinding());
  EXPECT_EQ(WorstSeverity(fs), Severity::kError);
}

TEST(LintOutputTest, JsonGolden) {
  LintFinding f;
  f.rule = "r";
  f.file = "a.cc";
  f.line = 3;
  f.message = "say \"hi\"";
  EXPECT_EQ(RenderJson({f}),
            "[\n"
            "  {\"rule\": \"r\", \"file\": \"a.cc\", \"line\": 3, "
            "\"severity\": \"warning\", \"message\": \"say \\\"hi\\\"\", "
            "\"fixit\": \"\"}\n"
            "]\n");
  EXPECT_EQ(RenderJson({}), "[\n]\n");
}

TEST(LintOutputTest, SarifGolden) {
  const std::string sarif = RenderSarif({SampleFinding()});
  // Required SARIF 2.1.0 envelope.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"pstk-lint\""), std::string::npos);
  // Every registered rule is described in tool.driver.rules.
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + std::string(r.slug) + "\""),
              std::string::npos)
        << r.slug;
  }
  // The result object, golden: mpi-tag-mismatch is rule index 6 (the
  // registry is sorted by slug).
  EXPECT_NE(
      sarif.find(
          "{\"ruleId\": \"mpi-tag-mismatch\", \"ruleIndex\": 6, "
          "\"level\": \"error\", \"message\": {\"text\": \"tags 1 vs 2\"}, "
          "\"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \"examples/a.cc\"}, \"region\": {\"startLine\": 12}}}]}"),
      std::string::npos)
      << sarif;
}

TEST(LintOutputTest, RelatedLocationsRendered) {
  LintFinding f = SampleFinding();
  f.rule = "mpi-collective-in-divergent-branch";
  f.related.push_back({"src/wrap.cc", 9, "collective Barrier() reached "
                                        "through SyncAll()"});

  // Text report: an indented `see:` evidence line under the finding.
  const std::string text = RenderLintReport({f});
  EXPECT_NE(text.find("see: src/wrap.cc:9: collective Barrier() reached "
                      "through SyncAll()"),
            std::string::npos)
      << text;

  // JSON: a `related` array, present only when nonempty.
  const std::string json = RenderJson({f});
  EXPECT_NE(json.find("\"related\": [{\"file\": \"src/wrap.cc\", "
                      "\"line\": 9, \"note\": \"collective Barrier() "
                      "reached through SyncAll()\"}]"),
            std::string::npos)
      << json;
  EXPECT_EQ(RenderJson({SampleFinding()}).find("related"),
            std::string::npos);

  // SARIF 2.1.0: relatedLocations with physicalLocation + message.
  const std::string sarif = RenderSarif({f});
  EXPECT_NE(sarif.find("\"relatedLocations\": [{\"physicalLocation\": "
                       "{\"artifactLocation\": {\"uri\": \"src/wrap.cc\"}, "
                       "\"region\": {\"startLine\": 9}}, \"message\": "
                       "{\"text\": \"collective Barrier() reached through "
                       "SyncAll()\"}}]"),
            std::string::npos)
      << sarif;
  EXPECT_EQ(RenderSarif({SampleFinding()}).find("relatedLocations"),
            std::string::npos);
}

TEST(LintBaselineTest, FormatSortsEntriesAndKeepsCustomHeader) {
  LintFinding b = SampleFinding();
  b.file = "examples/b.cc";
  LintFinding a = SampleFinding();
  a.file = "examples/a.cc";
  // Entries come out sorted (and deduplicated) regardless of input order.
  const std::string def = FormatBaseline({b, a, a});
  const std::size_t first = def.find("mpi-tag-mismatch examples/a.cc\n");
  const std::size_t second = def.find("mpi-tag-mismatch examples/b.cc\n");
  ASSERT_NE(first, std::string::npos) << def;
  ASSERT_NE(second, std::string::npos) << def;
  EXPECT_LT(first, second);
  // The duplicated finding collapses to one entry.
  std::size_t occurrences = 0;
  for (std::size_t at = def.find("examples/a.cc"); at != std::string::npos;
       at = def.find("examples/a.cc", at + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);

  // A custom header (the previous baseline's comment block) replaces the
  // default one, so regeneration diffs cleanly.
  const std::string custom =
      FormatBaseline({a}, "# triaged 2026-08: intentional demo bug\n");
  EXPECT_EQ(custom,
            "# triaged 2026-08: intentional demo bug\n"
            "mpi-tag-mismatch examples/a.cc\n");
}

TEST(LintBaselineTest, RoundTripSuppressesExactlyTheFindings) {
  std::vector<LintFinding> findings{SampleFinding()};
  LintFinding other;
  other.rule = "spark-missing-persist";
  other.file = "bench/b.cc";
  other.line = 4;
  other.message = "m";
  findings.push_back(other);

  const std::string text = FormatBaseline(findings);
  const auto entries = ParseBaseline(text);
  ASSERT_EQ(entries.size(), 2u);
  int suppressed = 0;
  const auto kept = ApplyBaseline(findings, entries, &suppressed);
  EXPECT_EQ(kept.size(), 0u);
  EXPECT_EQ(suppressed, 2);
}

TEST(LintBaselineTest, SuffixMatchRespectsPathComponents) {
  const auto entries = ParseBaseline(
      "# comment line\n"
      "mpi-tag-mismatch fig4.cc  # trailing comment\n");
  ASSERT_EQ(entries.size(), 1u);

  LintFinding in_dir = SampleFinding();
  in_dir.file = "/root/repo/bench/fig4.cc";
  LintFinding lookalike = SampleFinding();
  lookalike.file = "/root/repo/bench/notfig4.cc";
  int suppressed = 0;
  const auto kept = ApplyBaseline({in_dir, lookalike}, entries, &suppressed);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].file, "/root/repo/bench/notfig4.cc");
  EXPECT_EQ(suppressed, 1);
}

TEST(LintBaselineTest, WrongRuleOrPathDoesNotSuppress) {
  const auto entries =
      ParseBaseline("spark-missing-persist examples/a.cc\n");
  const auto kept = ApplyBaseline({SampleFinding()}, entries, nullptr);
  EXPECT_EQ(kept.size(), 1u);  // rule differs, finding survives
}

}  // namespace
}  // namespace pstk::analysis
