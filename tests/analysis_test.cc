#include <gtest/gtest.h>

#include "analysis/loc.h"

namespace pstk::analysis {
namespace {

TEST(LocTest, CountsCodeLinesOnly) {
  const std::string source = R"(#include <vector>

// a comment line
int main() {
  /* block
     comment */
  int x = 1;  // trailing comment
  return x;
}
)";
  const auto report = AnalyzeSource("demo", source, {});
  // #include, int main() {, int x = 1;, return x;, }
  EXPECT_EQ(report.code_lines, 5);
  EXPECT_EQ(report.boilerplate_lines, 0);
}

TEST(LocTest, BlockCommentSpanningCodeLine) {
  const std::string source = "int a; /* hi\nstill comment */ int b;\n";
  const auto report = AnalyzeSource("demo", source, {});
  EXPECT_EQ(report.code_lines, 2);  // both lines carry code
}

TEST(LocTest, MarkersFlagBoilerplate) {
  const std::string source = R"(#include "mpi/mpi.h"
World world(cluster, 8, 8);
auto t = world.RunSpmd(body);
compute();
)";
  const auto report =
      AnalyzeSource("mpi", source, {"#include", "World", "RunSpmd"});
  EXPECT_EQ(report.code_lines, 4);
  EXPECT_EQ(report.boilerplate_lines, 3);
  EXPECT_NEAR(report.BoilerplateShare(), 0.75, 1e-9);
}

TEST(LocTest, MarkerCountedOncePerLine) {
  const auto report = AnalyzeSource(
      "x", "World world = World(World::Make());\n", {"World", "Make"});
  EXPECT_EQ(report.boilerplate_lines, 1);
}

TEST(LocTest, ExtractBenchmarkRegion) {
  const std::string source = R"(scaffolding();
// BENCHMARK-BEGIN
real code 1;
real code 2;
// BENCHMARK-END
more scaffolding();
)";
  const std::string region = ExtractBenchmarkRegion(source);
  EXPECT_NE(region.find("real code 1"), std::string::npos);
  EXPECT_EQ(region.find("scaffolding"), std::string::npos);
  // Absent markers: whole source returned.
  EXPECT_EQ(ExtractBenchmarkRegion("abc"), "abc");
}

TEST(LocTest, AnalyzeMissingFileFails) {
  const auto report = AnalyzeFile("x", "/no/such/file.cc", {});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pstk::analysis
