#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "sim/engine.h"

namespace pstk::cluster {
namespace {

TEST(ClusterSpecTest, CometMatchesTableOne) {
  const ClusterSpec spec = ClusterSpec::Comet(8);
  EXPECT_EQ(spec.nodes, 8u);
  EXPECT_EQ(spec.node.cores, 24);           // 2 sockets x 12
  EXPECT_DOUBLE_EQ(spec.node.clock_ghz, 2.5);
  EXPECT_DOUBLE_EQ(spec.node.peak_flops, 960e9);
  EXPECT_EQ(spec.node.memory, 128 * kGiB);
  EXPECT_EQ(spec.node.scratch_capacity, 320 * kGiB);
  EXPECT_EQ(spec.transport.name, "rdma-fdr");  // FDR InfiniBand
}

TEST(ClusterTest, PerNodeScratchIsIndependent) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(3));
  cluster.scratch(0).Install("/f", "node0");
  EXPECT_TRUE(cluster.scratch(0).Exists("/f"));
  EXPECT_FALSE(cluster.scratch(1).Exists("/f"));
}

TEST(ClusterTest, FabricSharedPerTransport) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(2));
  auto a = cluster.fabric();
  auto b = cluster.fabric();
  EXPECT_EQ(a.get(), b.get());
  auto eth = cluster.fabric(net::TransportParams::Ethernet10G());
  EXPECT_NE(a.get(), eth.get());
  EXPECT_EQ(eth->nodes(), 2u);
}

TEST(ClusterTest, FabricByTransportIsCachedByName) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(2));
  // Repeated requests for the same non-default transport hit the cache.
  auto eth1 = cluster.fabric(net::TransportParams::Ethernet10G());
  auto eth2 = cluster.fabric(net::TransportParams::Ethernet10G());
  EXPECT_EQ(eth1.get(), eth2.get());
  // Spelling the default transport explicitly lands on the same object as
  // the no-argument accessor — one NIC timeline per transport, not per
  // call site.
  auto dflt = cluster.fabric();
  auto named = cluster.fabric(cluster.spec().transport);
  EXPECT_EQ(dflt.get(), named.get());
  EXPECT_NE(dflt.get(), eth1.get());
}

TEST(ClusterTest, ReserveCoresIsAllOrNothing) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(1));  // 24 cores
  EXPECT_TRUE(cluster.ReserveCores(0, 20, /*owner=*/1));
  EXPECT_EQ(cluster.FreeCores(0), 4);
  // Over-committing fails and must reserve *nothing* — a partial grant
  // here would strand cores on a job that can never start.
  EXPECT_FALSE(cluster.ReserveCores(0, 5, /*owner=*/2));
  EXPECT_EQ(cluster.FreeCores(0), 4);
  EXPECT_EQ(cluster.CoresHeldBy(2, 0), 0);
  EXPECT_TRUE(cluster.ReserveCores(0, 4, /*owner=*/2));
  EXPECT_EQ(cluster.FreeCores(0), 0);
  EXPECT_EQ(cluster.UsedCores(), 24);
}

TEST(ClusterTest, FragmentedCoresAreReusable) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(2));
  // Three owners fill node 0; the middle one leaves and a newcomer's
  // all-or-nothing request fits exactly into the hole.
  ASSERT_TRUE(cluster.ReserveCores(0, 8, /*owner=*/1));
  ASSERT_TRUE(cluster.ReserveCores(0, 8, /*owner=*/2));
  ASSERT_TRUE(cluster.ReserveCores(0, 8, /*owner=*/3));
  EXPECT_EQ(cluster.FreeCores(0), 0);
  cluster.ReleaseCores(0, 8, /*owner=*/2);
  EXPECT_EQ(cluster.FreeCores(0), 8);
  EXPECT_TRUE(cluster.ReserveCores(0, 8, /*owner=*/4));
  EXPECT_EQ(cluster.UsedCores(), 24);
  // ReleaseAllCores sweeps one owner across every node it touched.
  ASSERT_TRUE(cluster.ReserveCores(1, 4, /*owner=*/4));
  cluster.ReleaseAllCores(4);
  EXPECT_EQ(cluster.CoresHeldBy(4, 0), 0);
  EXPECT_EQ(cluster.CoresHeldBy(4, 1), 0);
  EXPECT_EQ(cluster.FreeCores(0), 8);  // owners 1 and 3 still hold 8 each
  EXPECT_EQ(cluster.FreeCores(1), 24);
}

TEST(ClusterDeathTest, ReleaseTwiceIsFatal) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(1));
  ASSERT_TRUE(cluster.ReserveCores(0, 8, /*owner=*/1));
  cluster.ReleaseCores(0, 8, /*owner=*/1);
  // Releasing again is bookkeeping corruption, not a no-op.
  EXPECT_DEATH(cluster.ReleaseCores(0, 8, /*owner=*/1), "");
}

TEST(ClusterTest, ComputeTimeScalesWithThreads) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(1));
  const double flops = 1e12;
  const SimTime serial = cluster.ComputeTime(flops, 1);
  const SimTime parallel = cluster.ComputeTime(flops, 24);
  EXPECT_GT(serial, parallel * 10);   // near-linear speedup
  EXPECT_LT(serial, parallel * 24);   // but not perfectly linear
  // Thread counts above the core count saturate.
  EXPECT_DOUBLE_EQ(cluster.ComputeTime(flops, 24),
                   cluster.ComputeTime(flops, 48));
}

TEST(ClusterTest, ModeledScalesBytes) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(1), /*data_scale=*/0.001);
  EXPECT_EQ(cluster.Modeled(kMiB), 1000 * kMiB);
  EXPECT_DOUBLE_EQ(cluster.scratch(0).data_scale(), 0.001);
}

TEST(ClusterTest, FailNodeKillsProcessesAndDisk) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(2));
  bool survivor_finished = false;
  bool victim_finished = false;
  engine.Spawn(
      "victim",
      [&](sim::Context& ctx) {
        ctx.SleepUntil(100.0);
        victim_finished = true;
      },
      /*node=*/1);
  engine.Spawn(
      "survivor",
      [&](sim::Context& ctx) {
        ctx.SleepUntil(10.0);
        survivor_finished = true;
      },
      /*node=*/0);
  cluster.FailNode(1, 5.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(survivor_finished);
  EXPECT_FALSE(victim_finished);
  EXPECT_TRUE(cluster.NodeFailed(1));
  EXPECT_FALSE(cluster.NodeFailed(0));
  EXPECT_TRUE(cluster.scratch_disk(1)->failed());
  EXPECT_EQ(result.killed, 1u);
}

}  // namespace
}  // namespace pstk::cluster
