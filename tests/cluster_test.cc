#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "sim/engine.h"

namespace pstk::cluster {
namespace {

TEST(ClusterSpecTest, CometMatchesTableOne) {
  const ClusterSpec spec = ClusterSpec::Comet(8);
  EXPECT_EQ(spec.nodes, 8u);
  EXPECT_EQ(spec.node.cores, 24);           // 2 sockets x 12
  EXPECT_DOUBLE_EQ(spec.node.clock_ghz, 2.5);
  EXPECT_DOUBLE_EQ(spec.node.peak_flops, 960e9);
  EXPECT_EQ(spec.node.memory, 128 * kGiB);
  EXPECT_EQ(spec.node.scratch_capacity, 320 * kGiB);
  EXPECT_EQ(spec.transport.name, "rdma-fdr");  // FDR InfiniBand
}

TEST(ClusterTest, PerNodeScratchIsIndependent) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(3));
  cluster.scratch(0).Install("/f", "node0");
  EXPECT_TRUE(cluster.scratch(0).Exists("/f"));
  EXPECT_FALSE(cluster.scratch(1).Exists("/f"));
}

TEST(ClusterTest, FabricSharedPerTransport) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(2));
  auto a = cluster.fabric();
  auto b = cluster.fabric();
  EXPECT_EQ(a.get(), b.get());
  auto eth = cluster.fabric(net::TransportParams::Ethernet10G());
  EXPECT_NE(a.get(), eth.get());
  EXPECT_EQ(eth->nodes(), 2u);
}

TEST(ClusterTest, ComputeTimeScalesWithThreads) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(1));
  const double flops = 1e12;
  const SimTime serial = cluster.ComputeTime(flops, 1);
  const SimTime parallel = cluster.ComputeTime(flops, 24);
  EXPECT_GT(serial, parallel * 10);   // near-linear speedup
  EXPECT_LT(serial, parallel * 24);   // but not perfectly linear
  // Thread counts above the core count saturate.
  EXPECT_DOUBLE_EQ(cluster.ComputeTime(flops, 24),
                   cluster.ComputeTime(flops, 48));
}

TEST(ClusterTest, ModeledScalesBytes) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(1), /*data_scale=*/0.001);
  EXPECT_EQ(cluster.Modeled(kMiB), 1000 * kMiB);
  EXPECT_DOUBLE_EQ(cluster.scratch(0).data_scale(), 0.001);
}

TEST(ClusterTest, FailNodeKillsProcessesAndDisk) {
  sim::Engine engine;
  Cluster cluster(engine, ClusterSpec::Comet(2));
  bool survivor_finished = false;
  bool victim_finished = false;
  engine.Spawn(
      "victim",
      [&](sim::Context& ctx) {
        ctx.SleepUntil(100.0);
        victim_finished = true;
      },
      /*node=*/1);
  engine.Spawn(
      "survivor",
      [&](sim::Context& ctx) {
        ctx.SleepUntil(10.0);
        survivor_finished = true;
      },
      /*node=*/0);
  cluster.FailNode(1, 5.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(survivor_finished);
  EXPECT_FALSE(victim_finished);
  EXPECT_TRUE(cluster.NodeFailed(1));
  EXPECT_FALSE(cluster.NodeFailed(0));
  EXPECT_TRUE(cluster.scratch_disk(1)->failed());
  EXPECT_EQ(result.killed, 1u);
}

}  // namespace
}  // namespace pstk::cluster
