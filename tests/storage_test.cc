#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/engine.h"
#include "storage/disk.h"
#include "storage/localfs.h"

namespace pstk::storage {
namespace {

// --------------------------------------------------------------------------
// Disk
// --------------------------------------------------------------------------

TEST(DiskTest, ReadTimeMatchesBandwidth) {
  Disk disk(DiskParams::CometScratchSsd());
  const Bytes size = kGiB;
  const SimTime done = disk.Read(size, 0.0);
  const double expected = static_cast<double>(size) / MBps(980);
  EXPECT_NEAR(done, expected, expected * 0.01);
}

TEST(DiskTest, WritesSlowerThanReads) {
  Disk disk(DiskParams::CometScratchSsd());
  const SimTime r = disk.Read(kGiB, 0.0);
  Disk disk2(DiskParams::CometScratchSsd());
  const SimTime w = disk2.Write(kGiB, 0.0);
  EXPECT_GT(w, r);
}

TEST(DiskTest, SequentialOpsQueue) {
  Disk disk(DiskParams::CometScratchSsd());
  const SimTime first = disk.Read(100 * kMiB, 0.0);
  const SimTime second = disk.Read(100 * kMiB, 0.0);
  EXPECT_NEAR(second, 2 * first, first * 0.01);
}

TEST(DiskTest, ContentionDegradesPastThreshold) {
  DiskParams params = DiskParams::CometScratchSsd();
  params.contention_threshold = 2;
  params.contention_penalty = 0.5;
  Disk contended(params);
  // Far more overlapping readers than the threshold.
  SimTime last_contended = 0;
  for (int i = 0; i < 8; ++i) last_contended = contended.Read(64 * kMiB, 0.0);

  params.contention_threshold = 100;  // effectively off
  Disk uncontended(params);
  SimTime last_clean = 0;
  for (int i = 0; i < 8; ++i) last_clean = uncontended.Read(64 * kMiB, 0.0);

  EXPECT_GT(last_contended, last_clean * 1.5);
}

TEST(DiskTest, TracksTraffic) {
  Disk disk(DiskParams::CometScratchSsd());
  disk.Read(100, 0.0);
  disk.Write(200, 0.0);
  EXPECT_EQ(disk.bytes_read(), 100u);
  EXPECT_EQ(disk.bytes_written(), 200u);
  EXPECT_GT(disk.busy_time(), 0.0);
}

TEST(DiskDeathTest, FailedDiskRejectsIo) {
  Disk disk(DiskParams::CometScratchSsd());
  disk.set_failed(true);
  EXPECT_TRUE(disk.failed());
  EXPECT_DEATH(disk.Read(1, 0.0), "failed disk");
}

// --------------------------------------------------------------------------
// LocalFs
// --------------------------------------------------------------------------

struct FsFixture {
  sim::Engine engine;
  std::shared_ptr<Disk> disk =
      std::make_shared<Disk>(DiskParams::CometScratchSsd());
  LocalFs fs{disk, 1.0};
};

TEST(LocalFsTest, WriteReadRoundTrip) {
  FsFixture f;
  std::string got;
  f.engine.Spawn("io", [&](sim::Context& ctx) {
    ASSERT_TRUE(f.fs.Write(ctx, "/scratch/a.txt", "content").ok());
    auto r = f.fs.ReadAll(ctx, "/scratch/a.txt");
    ASSERT_TRUE(r.ok());
    got = r.value();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_EQ(got, "content");
}

TEST(LocalFsTest, ReadChargesSimTime) {
  FsFixture f;
  SimTime elapsed = 0;
  f.fs.Install("/data/big", std::string(64 * kMiB, 'x'));
  f.engine.Spawn("io", [&](sim::Context& ctx) {
    auto r = f.fs.ReadAll(ctx, "/data/big");
    ASSERT_TRUE(r.ok());
    elapsed = ctx.now();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  const double expected = static_cast<double>(64 * kMiB) / MBps(980);
  EXPECT_NEAR(elapsed, expected, expected * 0.05);
}

TEST(LocalFsTest, DataScaleInflatesCharge) {
  sim::Engine engine;
  auto disk = std::make_shared<Disk>(DiskParams::CometScratchSsd());
  LocalFs fs(disk, /*data_scale=*/0.01);  // 1 actual byte = 100 modeled
  fs.Install("/data/small", std::string(kMiB, 'x'));
  SimTime elapsed = 0;
  engine.Spawn("io", [&](sim::Context& ctx) {
    ASSERT_TRUE(fs.ReadAll(ctx, "/data/small").ok());
    elapsed = ctx.now();
  });
  ASSERT_TRUE(engine.Run().status.ok());
  const double expected = static_cast<double>(100 * kMiB) / MBps(980);
  EXPECT_NEAR(elapsed, expected, expected * 0.05);
  EXPECT_EQ(fs.ModeledSize("/data/small").value(), 100 * kMiB);
}

TEST(LocalFsTest, PartialReadsAndEof) {
  FsFixture f;
  f.fs.Install("/f", "0123456789");
  f.engine.Spawn("io", [&](sim::Context& ctx) {
    auto mid = f.fs.Read(ctx, "/f", 2, 3);
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(mid.value(), "234");
    auto tail = f.fs.Read(ctx, "/f", 8, 100);  // truncated at EOF
    ASSERT_TRUE(tail.ok());
    EXPECT_EQ(tail.value(), "89");
    auto past = f.fs.Read(ctx, "/f", 11, 1);
    EXPECT_FALSE(past.ok());
    EXPECT_EQ(past.status().code(), StatusCode::kOutOfRange);
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
}

TEST(LocalFsTest, AppendGrowsFile) {
  FsFixture f;
  f.engine.Spawn("io", [&](sim::Context& ctx) {
    ASSERT_TRUE(f.fs.Write(ctx, "/log", "a").ok());
    ASSERT_TRUE(f.fs.Append(ctx, "/log", "b").ok());
    ASSERT_TRUE(f.fs.Append(ctx, "/log", "c").ok());
    auto r = f.fs.ReadAll(ctx, "/log");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "abc");
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
}

TEST(LocalFsTest, MissingFileIsNotFound) {
  FsFixture f;
  f.engine.Spawn("io", [&](sim::Context& ctx) {
    auto r = f.fs.ReadAll(ctx, "/nope");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_FALSE(f.fs.Exists("/nope"));
  EXPECT_FALSE(f.fs.Size("/nope").ok());
  EXPECT_FALSE(f.fs.Delete("/nope").ok());
}

TEST(LocalFsTest, ListByPrefix) {
  FsFixture f;
  f.fs.Install("/a/1", "");
  f.fs.Install("/a/2", "");
  f.fs.Install("/b/1", "");
  EXPECT_EQ(f.fs.List("/a/").size(), 2u);
  EXPECT_EQ(f.fs.List("/").size(), 3u);
  EXPECT_TRUE(f.fs.List("/c").empty());
}

TEST(LocalFsTest, FailedDiskSurfacesUnavailable) {
  FsFixture f;
  f.fs.Install("/f", "data");
  f.disk->set_failed(true);
  f.engine.Spawn("io", [&](sim::Context& ctx) {
    auto r = f.fs.ReadAll(ctx, "/f");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    EXPECT_FALSE(f.fs.Write(ctx, "/g", "x").ok());
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
}

}  // namespace
}  // namespace pstk::storage
