#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/cluster.h"
#include "shmem/shmem.h"
#include "sim/engine.h"

namespace pstk::shmem {
namespace {

struct ShmemFixture {
  explicit ShmemFixture(std::size_t nodes = 4) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes));
  }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
};

TEST(ShmemTest, PesSeeIdentityAndPlacement) {
  ShmemFixture f;
  ShmemWorld world(*f.cluster, 8, 2);
  std::vector<int> seen(8, -1);
  auto t = world.RunSpmd([&](Pe& pe) {
    EXPECT_EQ(pe.n_pes(), 8);
    seen[pe.my_pe()] = pe.ctx().node();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int p = 0; p < 8; ++p) EXPECT_EQ(seen[p], p / 2);
}

TEST(ShmemTest, SymmetricAllocationSameOffsetEverywhere) {
  ShmemFixture f;
  ShmemWorld world(*f.cluster, 4, 1);
  std::vector<Bytes> offsets(4, 12345);
  auto t = world.RunSpmd([&](Pe& pe) {
    auto a = pe.Malloc<std::int64_t>(16);
    auto b = pe.Malloc<double>(8);
    EXPECT_NE(a.offset, b.offset);
    offsets[pe.my_pe()] = b.offset;
  });
  ASSERT_TRUE(t.ok());
  for (int p = 1; p < 4; ++p) EXPECT_EQ(offsets[p], offsets[0]);
}

TEST(ShmemTest, PutThenBarrierVisibleRemotely) {
  ShmemFixture f;
  ShmemWorld world(*f.cluster, 4, 2);
  std::vector<std::int64_t> got(4, -1);
  auto t = world.RunSpmd([&](Pe& pe) {
    auto slot = pe.Malloc<std::int64_t>(1);
    *pe.Local(slot) = -7;
    pe.BarrierAll();
    // Each PE writes its id into the next PE's slot.
    const int target = (pe.my_pe() + 1) % pe.n_pes();
    pe.PutValue<std::int64_t>(slot, pe.my_pe(), target);
    pe.BarrierAll();
    got[pe.my_pe()] = *pe.Local(slot);
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(got[p], (p + 3) % 4);  // written by the left neighbor
  }
}

TEST(ShmemTest, GetReadsRemoteValue) {
  ShmemFixture f;
  ShmemWorld world(*f.cluster, 2, 1);
  std::int64_t fetched = 0;
  auto t = world.RunSpmd([&](Pe& pe) {
    auto slot = pe.Malloc<std::int64_t>(1);
    *pe.Local(slot) = 100 + pe.my_pe();
    pe.BarrierAll();
    if (pe.my_pe() == 0) fetched = pe.GetValue(slot, 1);
  });
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(fetched, 101);
}

TEST(ShmemTest, BulkPutGetArrays) {
  ShmemFixture f;
  ShmemWorld world(*f.cluster, 2, 1);
  std::vector<std::int64_t> readback(64, 0);
  auto t = world.RunSpmd([&](Pe& pe) {
    auto array = pe.Malloc<std::int64_t>(64);
    pe.BarrierAll();
    if (pe.my_pe() == 0) {
      std::vector<std::int64_t> data(64);
      std::iota(data.begin(), data.end(), 1000);
      pe.Put<std::int64_t>(array, data, /*target=*/1);
      pe.Quiet();
    }
    pe.BarrierAll();
    if (pe.my_pe() == 1) {
      // Read back through a get from PE 1's own heap via PE 0's handle...
      // simply check the local view.
      std::copy_n(pe.Local(array), 64, readback.begin());
    }
  });
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(readback[0], 1000);
  EXPECT_EQ(readback[63], 1063);
}

TEST(ShmemTest, AtomicFetchAddSerializesCounters) {
  ShmemFixture f;
  const int npes = 8;
  ShmemWorld world(*f.cluster, npes, 2);
  std::vector<std::int64_t> tickets(npes, -1);
  std::int64_t final_value = -1;
  auto t = world.RunSpmd([&](Pe& pe) {
    auto counter = pe.Malloc<std::int64_t>(1);
    *pe.Local(counter) = 0;
    pe.BarrierAll();
    tickets[pe.my_pe()] = pe.AtomicFetchAdd(counter, 1, /*target=*/0);
    pe.BarrierAll();
    if (pe.my_pe() == 0) final_value = *pe.Local(counter);
  });
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(final_value, npes);
  std::sort(tickets.begin(), tickets.end());
  for (int i = 0; i < npes; ++i) EXPECT_EQ(tickets[i], i);  // unique tickets
}

TEST(ShmemTest, AtomicCompareSwap) {
  ShmemFixture f;
  ShmemWorld world(*f.cluster, 4, 1);
  std::vector<std::int64_t> winners;
  std::mutex mu;
  auto t = world.RunSpmd([&](Pe& pe) {
    auto lock_word = pe.Malloc<std::int64_t>(1);
    *pe.Local(lock_word) = 0;
    pe.BarrierAll();
    const std::int64_t old =
        pe.AtomicCompareSwap(lock_word, 0, pe.my_pe() + 1, /*target=*/0);
    if (old == 0) {
      std::lock_guard<std::mutex> g(mu);
      winners.push_back(pe.my_pe());
    }
  });
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(winners.size(), 1u);  // exactly one CAS succeeds
}

TEST(ShmemTest, WaitUntilBlocksUntilFlagSet) {
  ShmemFixture f;
  ShmemWorld world(*f.cluster, 2, 1);
  SimTime wake_time = 0;
  auto t = world.RunSpmd([&](Pe& pe) {
    auto flag = pe.Malloc<std::int64_t>(1);
    *pe.Local(flag) = 0;
    pe.BarrierAll();
    if (pe.my_pe() == 0) {
      pe.ctx().SleepFor(2.0);
      pe.PutValue<std::int64_t>(flag, 42, /*target=*/1);
      pe.Quiet();
    } else {
      pe.WaitUntil(flag, Cmp::kEq, 42);
      wake_time = pe.ctx().now();
      EXPECT_EQ(*pe.Local(flag), 42);
    }
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_GE(wake_time, 2.0);
}

TEST(ShmemTest, BroadcastAllDistributesRootData) {
  ShmemFixture f;
  const int npes = 8;
  ShmemWorld world(*f.cluster, npes, 2);
  std::vector<std::int64_t> got(npes, -1);
  auto t = world.RunSpmd([&](Pe& pe) {
    auto data = pe.Malloc<std::int64_t>(4);
    if (pe.my_pe() == 3) {
      for (int i = 0; i < 4; ++i) pe.Local(data)[i] = 900 + i;
    }
    pe.BarrierAll();
    pe.BroadcastAll(data, /*root=*/3);
    pe.BarrierAll();
    got[pe.my_pe()] = pe.Local(data)[3];
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int p = 0; p < npes; ++p) EXPECT_EQ(got[p], 903);
}

TEST(ShmemTest, SumToAllReduces) {
  ShmemFixture f;
  const int npes = 6;
  ShmemWorld world(*f.cluster, npes, 2);
  std::vector<std::int64_t> sums(npes, -1);
  auto t = world.RunSpmd([&](Pe& pe) {
    auto src = pe.Malloc<std::int64_t>(2);
    auto dst = pe.Malloc<std::int64_t>(2);
    pe.Local(src)[0] = pe.my_pe();
    pe.Local(src)[1] = 1;
    pe.BarrierAll();
    pe.SumToAll(dst, src, 2);
    pe.BarrierAll();
    EXPECT_EQ(pe.Local(dst)[1], npes);
    sums[pe.my_pe()] = pe.Local(dst)[0];
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int p = 0; p < npes; ++p) EXPECT_EQ(sums[p], 15);  // 0+..+5
}

TEST(ShmemTest, SmallPutsCheaperThanEagerMessagePingPong) {
  // The survey's claim: many small one-sided puts beat two-sided messaging
  // because there is no receiver CPU involvement or matching.
  ShmemFixture f(2);
  SimTime put_elapsed = 0;
  {
    sim::Engine engine;
    cluster::Cluster cl(engine, cluster::ClusterSpec::Comet(2));
    ShmemWorld world(cl, 2, 1);
    auto t = world.RunSpmd([&](Pe& pe) {
      auto array = pe.Malloc<std::int64_t>(1024);
      pe.BarrierAll();
      const SimTime start = pe.ctx().now();
      if (pe.my_pe() == 0) {
        for (int i = 0; i < 1024; ++i) {
          pe.PutValue<std::int64_t>(array.at(i), i, 1);
        }
        pe.Quiet();
        put_elapsed = pe.ctx().now() - start;
      }
    });
    ASSERT_TRUE(t.ok());
  }
  // 1024 puts of 8 bytes each over RDMA should take well under 1 ms
  // aggregate (pipelined, ~0.3 us CPU each).
  EXPECT_LT(put_elapsed, Millis(2));
  EXPECT_GT(put_elapsed, 0.0);
}

TEST(ShmemDeathTest, AsymmetricMallocCaught) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Engine engine;
        cluster::Cluster cl(engine, cluster::ClusterSpec::Comet(2));
        ShmemWorld world(cl, 2, 1);
        (void)world.RunSpmd([&](Pe& pe) {
          (void)pe.Malloc<std::int64_t>(pe.my_pe() == 0 ? 4 : 8);
          pe.BarrierAll();
        });
      },
      "asymmetric");
}

}  // namespace
}  // namespace pstk::shmem
