#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/network.h"
#include "sim/engine.h"

namespace pstk::net {
namespace {

serde::Buffer Payload(const std::string& s) {
  return serde::Buffer(s.begin(), s.end());
}

std::string AsString(const buf::Bytes& b) { return b.ToString(); }

// --------------------------------------------------------------------------
// Fabric cost model
// --------------------------------------------------------------------------

TEST(FabricTest, TransportPresetsOrdering) {
  const auto eth = TransportParams::Ethernet10G();
  const auto ipoib = TransportParams::IPoIB();
  const auto rdma = TransportParams::RdmaFdr();
  EXPECT_GT(eth.base_latency, ipoib.base_latency);
  EXPECT_GT(ipoib.base_latency, rdma.base_latency);
  EXPECT_LT(eth.bandwidth, ipoib.bandwidth);
  EXPECT_LT(ipoib.bandwidth, rdma.bandwidth);
  EXPECT_GT(eth.per_message_cpu, rdma.per_message_cpu);
  EXPECT_TRUE(rdma.rdma);
  EXPECT_FALSE(eth.rdma);
}

TEST(FabricTest, SmallMessageDominatedByLatency) {
  Fabric fabric(2, TransportParams::RdmaFdr());
  const auto t = fabric.Transfer(0, 1, 8, 0.0);
  EXPECT_GT(t.arrival, Micros(1.0));
  EXPECT_LT(t.arrival, Micros(10.0));
}

TEST(FabricTest, LargeMessageDominatedByBandwidth) {
  Fabric fabric(2, TransportParams::RdmaFdr());
  const Bytes size = 64 * kMiB;
  const auto t = fabric.Transfer(0, 1, size, 0.0);
  const double expected = static_cast<double>(size) / Gbps(54);
  EXPECT_NEAR(t.arrival, expected, expected * 0.2);
}

TEST(FabricTest, NicContentionSerializes) {
  Fabric fabric(3, TransportParams::RdmaFdr());
  const Bytes size = 64 * kMiB;
  // Two senders target the same receiver at the same instant: the second
  // transfer queues behind the first on the receiver's NIC.
  const auto a = fabric.Transfer(0, 2, size, 0.0);
  const auto b = fabric.Transfer(1, 2, size, 0.0);
  EXPECT_GT(b.arrival, a.arrival * 1.8);
}

TEST(FabricTest, IntraNodeBypassesNic) {
  Fabric fabric(2, TransportParams::Ethernet10G());
  const auto local = fabric.Transfer(0, 0, kMiB, 0.0);
  const auto remote = fabric.Transfer(0, 1, kMiB, 0.0);
  EXPECT_LT(local.arrival, remote.arrival);
  // Only the remote transfer consumes NIC time.
  const double wire = static_cast<double>(kMiB) / Gbps(9.4);
  EXPECT_NEAR(fabric.tx_busy(0), wire, wire * 0.01);
}

TEST(FabricTest, SocketsChargeMoreCpuThanRdma) {
  Fabric eth(2, TransportParams::Ethernet10G());
  Fabric ib(2, TransportParams::RdmaFdr());
  const auto t_eth = eth.Transfer(0, 1, kMiB, 0.0);
  const auto t_ib = ib.Transfer(0, 1, kMiB, 0.0);
  EXPECT_GT(t_eth.sender_cpu, 50 * t_ib.sender_cpu);
}

TEST(FabricTest, RdmaWriteHasNoReceiverCpu) {
  Fabric fabric(2, TransportParams::RdmaFdr());
  const auto t = fabric.RdmaWrite(0, 1, kMiB, 0.0);
  EXPECT_DOUBLE_EQ(t.receiver_cpu, 0.0);
}

TEST(FabricTest, AccountsTraffic) {
  Fabric fabric(2, TransportParams::RdmaFdr());
  fabric.Transfer(0, 1, 100, 0.0);
  fabric.Transfer(1, 0, 200, 0.0);
  EXPECT_EQ(fabric.messages_sent(), 2u);
  EXPECT_EQ(fabric.bytes_sent(), 300u);
}

// --------------------------------------------------------------------------
// Network / Endpoint
// --------------------------------------------------------------------------

struct NetFixture {
  sim::Engine engine;
  std::shared_ptr<Fabric> fabric =
      std::make_shared<Fabric>(4, TransportParams::RdmaFdr());
  Network network{engine, fabric};
};

TEST(NetworkTest, SendRecvDeliversPayload) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  std::string received;
  SimTime recv_time = 0;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    a.Send(ctx, 1, 7, Payload("hello"));
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    Message m = b.Recv(ctx, 0, 7);
    received = AsString(m.payload);
    recv_time = ctx.now();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_EQ(received, "hello");
  EXPECT_GT(recv_time, 0.0);
}

TEST(NetworkTest, TagMatchingIsSelective) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  std::vector<std::string> order;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    a.Send(ctx, 1, /*tag=*/1, Payload("first"));
    a.Send(ctx, 1, /*tag=*/2, Payload("second"));
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    // Receive tag 2 first even though tag 1 arrived earlier.
    order.push_back(AsString(b.Recv(ctx, 0, 2).payload));
    order.push_back(AsString(b.Recv(ctx, 0, 1).payload));
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "second");
  EXPECT_EQ(order[1], "first");
}

TEST(NetworkTest, WildcardRecvTakesEarliestArrival) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& c = f.network.CreateEndpoint(1, 1);
  auto& b = f.network.CreateEndpoint(2, 2);
  std::vector<int> sources;
  f.engine.Spawn("s1", [&](sim::Context& ctx) {
    ctx.SleepUntil(1.0);
    a.Send(ctx, 2, 0, Payload("late"));
  });
  f.engine.Spawn("s2", [&](sim::Context& ctx) {
    c.Send(ctx, 2, 0, Payload("early"));
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    ctx.SleepUntil(5.0);  // both already arrived
    sources.push_back(b.Recv(ctx, kAnySource, kAnyTag).src);
    sources.push_back(b.Recv(ctx, kAnySource, kAnyTag).src);
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], 1);  // "early" sender
  EXPECT_EQ(sources[1], 0);
}

TEST(NetworkTest, RecvBlocksUntilArrival) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  SimTime recv_time = 0;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    ctx.SleepUntil(3.0);
    a.Send(ctx, 1, 0, Payload("x"));
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    b.Recv(ctx, 0, 0);
    recv_time = ctx.now();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_GE(recv_time, 3.0);
}

TEST(NetworkTest, EagerSendDoesNotWaitForReceiver) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  SimTime send_done = 0;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    a.Send(ctx, 1, 0, Payload("small"));
    send_done = ctx.now();
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    ctx.SleepUntil(100.0);  // receiver is very late
    b.Recv(ctx, 0, 0);
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_LT(send_done, 1.0);
}

TEST(NetworkTest, RendezvousSendWaitsForReceiver) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  SimTime send_done = 0;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    serde::Buffer big(2 * kMiB, 0xAB);  // above the 64 KiB eager threshold
    a.Send(ctx, 1, 0, std::move(big));
    send_done = ctx.now();
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    ctx.SleepUntil(50.0);
    b.Recv(ctx, 0, 0);
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_GE(send_done, 50.0);
}

TEST(NetworkTest, ModeledSizeOverridesPayloadSize) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  SimTime arrival_small = 0;
  SimTime arrival_big = 0;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    a.SendAsync(ctx, 1, 1, Payload("x"));                     // 1 byte
    a.SendAsync(ctx, 1, 2, Payload("x"), /*modeled=*/kGiB);   // "1 GiB"
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    arrival_small = b.Recv(ctx, 0, 1).arrival;
    arrival_big = b.Recv(ctx, 0, 2).arrival;
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_GT(arrival_big, arrival_small + 0.1);  // ~0.16 s at 54 Gbit/s
}

TEST(NetworkTest, TryRecvAndProbe) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  bool empty_probe = true;
  bool later_probe = false;
  bool got = false;
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    empty_probe = b.Probe(ctx);
    ctx.SleepUntil(10.0);
    later_probe = b.Probe(ctx, 0, 5);
    got = b.TryRecv(ctx, 0, 5).has_value();
  });
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    ctx.SleepUntil(1.0);
    a.Send(ctx, 1, 5, Payload("y"));
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_FALSE(empty_probe);
  EXPECT_TRUE(later_probe);
  EXPECT_TRUE(got);
}

TEST(NetworkTest, ManyMessagesFifoPerPair) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  std::vector<std::string> order;
  const int n = 50;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    for (int i = 0; i < n; ++i) {
      a.Send(ctx, 1, 0, Payload(std::to_string(i)));
    }
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    for (int i = 0; i < n; ++i) {
      order.push_back(AsString(b.Recv(ctx, 0, 0).payload));
    }
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(order[i], std::to_string(i));
}

}  // namespace
}  // namespace pstk::net

namespace pstk::net {
namespace {

TEST(NetworkTest, RecvWithTimeoutReturnsMessage) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  bool got = false;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    ctx.SleepUntil(1.0);
    a.Send(ctx, 1, 0, Payload("hi"));
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    auto m = b.RecvWithTimeout(ctx, /*deadline=*/5.0);
    got = m.has_value();
    EXPECT_LT(ctx.now(), 2.0);  // woke on arrival, not at the deadline
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_TRUE(got);
}

TEST(NetworkTest, RecvWithTimeoutExpires) {
  NetFixture f;
  f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  bool got = true;
  SimTime when = 0;
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    auto m = b.RecvWithTimeout(ctx, 3.0);
    got = m.has_value();
    when = ctx.now();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_FALSE(got);
  EXPECT_DOUBLE_EQ(when, 3.0);
}

TEST(NetworkTest, RecvWithTimeoutIgnoresNonMatching) {
  NetFixture f;
  auto& a = f.network.CreateEndpoint(0, 0);
  auto& b = f.network.CreateEndpoint(1, 1);
  bool got = true;
  f.engine.Spawn("sender", [&](sim::Context& ctx) {
    a.Send(ctx, 1, /*tag=*/7, Payload("wrong tag"));
  });
  f.engine.Spawn("receiver", [&](sim::Context& ctx) {
    auto m = b.RecvWithTimeout(ctx, 2.0, kAnySource, /*tag=*/9);
    got = m.has_value();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_FALSE(got);
}

// --------------------------------------------------------------------------
// Shard lookahead derivation (conservative PDES horizon from the fabric)
// --------------------------------------------------------------------------

TEST(FabricTest, MinLatencyDistinguishesIntraAndInterNode) {
  Fabric fabric(4, TransportParams::RdmaFdr());
  EXPECT_DOUBLE_EQ(fabric.MinLatency(2, 2),
                   TransportParams::SharedMemory().base_latency);
  EXPECT_DOUBLE_EQ(fabric.MinLatency(0, 3),
                   TransportParams::RdmaFdr().base_latency);
  EXPECT_DOUBLE_EQ(fabric.MinLatency(3, 0), fabric.MinLatency(0, 3));
  EXPECT_GT(fabric.MinLatency(0, 1), 0.0);
  // Same-node messages are cheaper than the wire — which is why a shard
  // pair's lookahead must min over *cross-shard* node pairs only.
  EXPECT_LT(fabric.MinLatency(1, 1), fabric.MinLatency(0, 1));
}

TEST(FabricTest, ShardLookaheadMinimizesOverCrossShardNodePairs) {
  Fabric fabric(4, TransportParams::Ethernet10G());
  const SimTime wire = TransportParams::Ethernet10G().base_latency;
  // Default placement (node % shards): every cross-shard node pair is
  // cross-node, so the bound is the wire latency — not the (smaller)
  // shared-memory latency of the same-shard pairs.
  const auto la = ShardLookahead(fabric, /*shard_of_node=*/nullptr, 2);
  EXPECT_DOUBLE_EQ(la(0, 1), wire);
  EXPECT_DOUBLE_EQ(la(1, 0), wire);
  // Custom placement splitting node 0|rest gives the same wire bound.
  const auto pinned = ShardLookahead(
      fabric, [](int node) { return node == 0 ? 0 : 1; }, 2);
  EXPECT_DOUBLE_EQ(pinned(0, 1), wire);
  EXPECT_DOUBLE_EQ(pinned(1, 0), wire);
}

TEST(ShardLookaheadTest, DrivesShardedEngineToOracleResult) {
  // End-to-end: a sharded engine whose lookahead comes from the modeled
  // fabric, with messaging paced at exactly MinLatency, matches the
  // single-threaded oracle byte for byte.
  auto run = [](int shards) {
    Fabric fabric(4, TransportParams::RdmaFdr());
    const SimTime wire = fabric.MinLatency(0, 1);
    sim::ShardOptions opts;
    opts.shards = shards;
    opts.lookahead = ShardLookahead(fabric, nullptr, shards);
    sim::Engine engine(5, sim::Backend::kFibers, std::move(opts));
    engine.EnableTrace(true);
    std::vector<sim::Pid> echoes(4);
    for (int n = 0; n < 4; ++n) {
      echoes[static_cast<std::size_t>(n)] = engine.Spawn(
          "echo" + std::to_string(n),
          [](sim::Context& ctx) {
            const SimTime woken = ctx.Block("await msg");
            ctx.Trace("echo", "t=" + std::to_string(woken));
          },
          /*node=*/n);
    }
    for (int n = 0; n < 4; ++n) {
      engine.Spawn(
          "send" + std::to_string(n),
          [&echoes, n, wire](sim::Context& ctx) {
            ctx.Compute(0.5 * (n + 1));
            ctx.engine().Wake(echoes[static_cast<std::size_t>((n + 1) % 4)],
                              ctx.now() + wire);
          },
          /*node=*/n);
    }
    auto result = engine.Run();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return engine.obs().ToChromeTraceJson();
  };
  const std::string oracle = run(1);
  EXPECT_EQ(run(2), oracle);
  EXPECT_EQ(run(4), oracle);
}

}  // namespace
}  // namespace pstk::net
