// Unit tests for the zero-copy buffer plane (src/buf): alias semantics,
// rope concatenation, the builder, and the process-global copy accounting
// that the benches gate on.
#include "buf/bytes.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace pstk::buf {
namespace {

StatsSnapshot Delta(const StatsSnapshot& before) {
  const StatsSnapshot now = SnapshotStats();
  StatsSnapshot d;
  d.chunks_allocated = now.chunks_allocated - before.chunks_allocated;
  d.chunks_aliased = now.chunks_aliased - before.chunks_aliased;
  d.copies = now.copies - before.copies;
  d.copy_bytes = now.copy_bytes - before.copy_bytes;
  return d;
}

TEST(BytesTest, DefaultIsEmptyAndFlat) {
  Bytes b;
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.flat());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.chunk_count(), 0u);
  EXPECT_EQ(b.view(), "");
  EXPECT_EQ(b.ToString(), "");
}

TEST(BytesTest, CopyIsOneCountedAllocation) {
  const StatsSnapshot before = SnapshotStats();
  const Bytes b = Bytes::Copy("hello world");
  const StatsSnapshot d = Delta(before);
  EXPECT_EQ(b.view(), "hello world");
  EXPECT_TRUE(b.flat());
  EXPECT_EQ(d.chunks_allocated, 1u);
  EXPECT_EQ(d.copies, 1u);
  EXPECT_EQ(d.copy_bytes, 11u);
}

TEST(BytesTest, FromStringTakesOwnershipWithoutCopying) {
  std::string payload(1024, 'x');
  const char* storage = payload.data();
  const StatsSnapshot before = SnapshotStats();
  const Bytes b = Bytes::FromString(std::move(payload));
  const StatsSnapshot d = Delta(before);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_EQ(reinterpret_cast<const char*>(b.data()), storage);
  EXPECT_EQ(d.chunks_allocated, 1u);
  EXPECT_EQ(d.copies, 0u);
}

TEST(BytesTest, FromVectorTakesOwnershipWithoutCopying) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const std::uint8_t* storage = payload.data();
  const StatsSnapshot before = SnapshotStats();
  const Bytes b = Bytes::FromVector(std::move(payload));
  const StatsSnapshot d = Delta(before);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.data(), storage);
  EXPECT_EQ(d.copies, 0u);
}

TEST(BytesTest, SliceAliasesStorage) {
  const Bytes b = Bytes::Copy("abcdefgh");
  const StatsSnapshot before = SnapshotStats();
  const Bytes mid = b.Slice(2, 4);
  const StatsSnapshot d = Delta(before);
  EXPECT_EQ(mid.view(), "cdef");
  EXPECT_EQ(mid.data(), b.data() + 2);  // same allocation, no copy
  EXPECT_EQ(d.copies, 0u);
  EXPECT_EQ(d.chunks_allocated, 0u);
  EXPECT_GE(d.chunks_aliased, 1u);
}

TEST(BytesTest, SliceNposRunsToEnd) {
  const Bytes b = Bytes::Copy("abcdefgh");
  EXPECT_EQ(b.Slice(5).view(), "fgh");
  EXPECT_EQ(b.Slice(0).view(), "abcdefgh");
  EXPECT_EQ(b.Slice(8).size(), 0u);
}

TEST(BytesTest, SliceOfSliceComposesOffsets) {
  const Bytes b = Bytes::Copy("0123456789");
  const Bytes inner = b.Slice(2, 6).Slice(1, 3);
  EXPECT_EQ(inner.view(), "345");
  EXPECT_EQ(inner.data(), b.data() + 3);
}

TEST(BytesTest, SliceKeepsChunkAliveAfterSourceDies) {
  Bytes tail;
  {
    Bytes whole = Bytes::Copy("the quick brown fox");
    tail = whole.Slice(10);
  }  // `whole` destroyed; the chunk survives via the slice's refcount
  EXPECT_EQ(tail.view(), "brown fox");
}

TEST(BytesTest, ConcatIsRopeWithoutCopy) {
  const Bytes a = Bytes::Copy("hello ");
  const Bytes b = Bytes::Copy("world");
  const StatsSnapshot before = SnapshotStats();
  const Bytes joined = Bytes::Concat({a, b});
  const StatsSnapshot d = Delta(before);
  EXPECT_EQ(joined.size(), 11u);
  EXPECT_FALSE(joined.flat());
  EXPECT_EQ(joined.chunk_count(), 2u);
  EXPECT_EQ(joined.ToString(), "hello world");
  EXPECT_EQ(d.copies, 0u);
}

TEST(BytesTest, ConcatCoalescesAdjacentSlicesToFlat) {
  // Re-concatenating consecutive slices of one chunk must yield a flat
  // buffer again — this is what makes ReadAll of one installed file flat.
  const Bytes whole = Bytes::Copy("abcdefghij");
  const Bytes joined =
      Bytes::Concat({whole.Slice(0, 3), whole.Slice(3, 4), whole.Slice(7)});
  EXPECT_TRUE(joined.flat());
  EXPECT_EQ(joined.view(), "abcdefghij");
  EXPECT_EQ(joined.data(), whole.data());
}

TEST(BytesTest, SliceAcrossRopeSpans) {
  const Bytes joined =
      Bytes::Concat({Bytes::Copy("aaa"), Bytes::Copy("bbb"), Bytes::Copy("ccc")});
  const Bytes cut = joined.Slice(2, 5);
  EXPECT_EQ(cut.ToString(), "abbbc");
  EXPECT_FALSE(cut.flat());
  const Bytes inside = joined.Slice(3, 3);  // exactly the middle span
  EXPECT_TRUE(inside.flat());
  EXPECT_EQ(inside.view(), "bbb");
}

TEST(BytesTest, FlattenRopeCopiesOnceFlatAliases) {
  const Bytes rope = Bytes::Concat({Bytes::Copy("foo"), Bytes::Copy("bar")});
  StatsSnapshot before = SnapshotStats();
  const Bytes flat = rope.Flatten();
  StatsSnapshot d = Delta(before);
  EXPECT_TRUE(flat.flat());
  EXPECT_EQ(flat.view(), "foobar");
  EXPECT_EQ(d.copies, 1u);
  EXPECT_EQ(d.copy_bytes, 6u);

  before = SnapshotStats();
  const Bytes again = flat.Flatten();
  d = Delta(before);
  EXPECT_EQ(again.data(), flat.data());  // already flat: alias, no copy
  EXPECT_EQ(d.copies, 0u);
}

TEST(BytesTest, CopyToAndEquality) {
  const Bytes rope = Bytes::Concat({Bytes::Copy("ab"), Bytes::Copy("cd")});
  char out[4];
  rope.CopyTo(out);
  EXPECT_EQ(std::string_view(out, 4), "abcd");
  EXPECT_TRUE(rope.Equals("abcd"));
  EXPECT_FALSE(rope.Equals("abce"));
  EXPECT_FALSE(rope.Equals("abc"));
  EXPECT_EQ(rope, Bytes::Copy("abcd"));  // flat vs rope, same content
  EXPECT_NE(rope, Bytes::Copy("xbcd"));
  EXPECT_EQ(rope, std::string_view("abcd"));
  EXPECT_EQ(std::string_view("abcd"), rope);
}

TEST(BytesTest, ForEachChunkVisitsSpansInOrder) {
  const Bytes rope = Bytes::Concat({Bytes::Copy("one"), Bytes::Copy("two")});
  std::vector<std::string> spans;
  rope.ForEachChunk([&](std::string_view s) { spans.emplace_back(s); });
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], "one");
  EXPECT_EQ(spans[1], "two");
}

TEST(BuilderTest, AppendStringViewBatchesIntoOneChunk) {
  Builder builder;
  const StatsSnapshot before = SnapshotStats();
  builder.Append("hello ");
  builder.Append("world");
  EXPECT_EQ(builder.size(), 11u);
  const Bytes built = builder.Build();
  const StatsSnapshot d = Delta(before);
  EXPECT_EQ(built.ToString(), "hello world");
  // Both appends land in one pending chunk: one allocation, not two.
  EXPECT_EQ(d.chunks_allocated, 1u);
}

TEST(BuilderTest, AppendBytesSplicesWithoutCopy) {
  const Bytes block = Bytes::Copy("0123456789");
  Builder builder;
  const StatsSnapshot before = SnapshotStats();
  builder.Append(block.Slice(0, 5));
  builder.Append(block.Slice(5));
  const Bytes built = builder.Build();
  const StatsSnapshot d = Delta(before);
  EXPECT_EQ(d.copies, 0u);  // pure splice
  EXPECT_TRUE(built.flat());  // adjacent slices coalesce
  EXPECT_EQ(built.view(), "0123456789");
  EXPECT_EQ(built.data(), block.data());
}

TEST(BuilderTest, MixedAppendsPreserveOrderAndReset) {
  const Bytes mid = Bytes::Copy("-mid-");
  Builder builder;
  builder.Append("head");
  builder.Append(mid);
  builder.Append("tail");
  EXPECT_EQ(builder.Build().ToString(), "head-mid-tail");
  // Build() resets: the builder is reusable.
  EXPECT_EQ(builder.size(), 0u);
  builder.Append("again");
  EXPECT_EQ(builder.Build().ToString(), "again");
}

TEST(StatsTest, CopyHistogramBucketsByLog2Size) {
  const StatsSnapshot before = SnapshotStats();
  (void)Bytes::Copy(std::string(100, 'a'));   // bit width 7  -> bucket 39
  (void)Bytes::Copy(std::string(5000, 'b'));  // bit width 13 -> bucket 45
  const StatsSnapshot now = SnapshotStats();
  EXPECT_EQ(now.copy_hist[39] - before.copy_hist[39], 1u);
  EXPECT_EQ(now.copy_hist[45] - before.copy_hist[45], 1u);
  EXPECT_EQ(now.copy_bytes - before.copy_bytes, 5100u);
}

}  // namespace
}  // namespace pstk::buf
