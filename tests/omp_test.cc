#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "omp/omp.h"

namespace pstk::omp {
namespace {

TEST(OmpTest, ParallelRunsAllThreads) {
  Runtime rt(4);
  EXPECT_EQ(rt.num_threads(), 4);
  std::set<int> seen;
  std::mutex mu;
  rt.Parallel([&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.num_threads(), 4);
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(ctx.thread_num());
  });
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2, 3}));
}

TEST(OmpTest, SingleThreadRuntimeWorks) {
  Runtime rt(1);
  int runs = 0;
  rt.Parallel([&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.thread_num(), 0);
    ctx.Single([&] { ++runs; });
    ctx.Barrier();
    ++runs;
  });
  EXPECT_EQ(runs, 2);
}

TEST(OmpTest, DefaultsToHardwareConcurrency) {
  Runtime rt;
  EXPECT_GE(rt.num_threads(), 1);
}

TEST(OmpTest, ConsecutiveRegionsReuseThreads) {
  Runtime rt(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 10; ++i) {
    rt.Parallel([&](ThreadCtx&) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 40);
}

TEST(OmpTest, BarrierSeparatesPhases) {
  Runtime rt(4);
  std::atomic<int> phase1{0};
  std::vector<int> observed(4, -1);
  rt.Parallel([&](ThreadCtx& ctx) {
    phase1.fetch_add(1);
    ctx.Barrier();
    observed[ctx.thread_num()] = phase1.load();
  });
  for (int v : observed) EXPECT_EQ(v, 4);
}

TEST(OmpTest, CriticalSerializes) {
  Runtime rt(8);
  std::int64_t unguarded = 0;  // mutated only inside Critical
  rt.ParallelFor(0, 10000, [&](std::int64_t) {
    // no-op body
  });
  rt.Parallel([&](ThreadCtx& ctx) {
    for (int i = 0; i < 1000; ++i) {
      ctx.Critical([&] { ++unguarded; });
    }
  });
  EXPECT_EQ(unguarded, 8000);
}

TEST(OmpTest, SingleRunsExactlyOncePerSite) {
  Runtime rt(6);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  rt.Parallel([&](ThreadCtx& ctx) {
    ctx.Single([&] { first.fetch_add(1); });
    ctx.Single([&] { second.fetch_add(1); });
  });
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 1);
  // Fresh region: counters reset.
  rt.Parallel([&](ThreadCtx& ctx) {
    ctx.Single([&] { first.fetch_add(1); });
  });
  EXPECT_EQ(first.load(), 2);
}

class ScheduleSweep : public ::testing::TestWithParam<Schedule> {};

TEST_P(ScheduleSweep, ParallelForCoversEveryIterationOnce) {
  Runtime rt(4);
  const std::int64_t n = 4321;
  std::vector<std::atomic<int>> hits(n);
  rt.ParallelFor(
      0, n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; },
      GetParam(), /*chunk=*/7);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_P(ScheduleSweep, RangesPartitionExactly) {
  Runtime rt(3);
  const std::int64_t n = 1000;
  std::atomic<std::int64_t> sum{0};
  rt.ParallelForRanges(
      0, n,
      [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t local = 0;
        for (std::int64_t i = lo; i < hi; ++i) local += i;
        sum.fetch_add(local);
      },
      GetParam());
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ScheduleSweep,
                         ::testing::Values(Schedule::kStatic,
                                           Schedule::kDynamic,
                                           Schedule::kGuided));

TEST(OmpTest, ParallelForEmptyRange) {
  Runtime rt(4);
  int runs = 0;
  rt.ParallelFor(5, 5, [&](std::int64_t) { ++runs; });
  rt.ParallelFor(7, 3, [&](std::int64_t) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(OmpTest, ParallelReduceSum) {
  Runtime rt(8);
  const std::int64_t n = 100000;
  const auto sum = rt.ParallelReduce<std::int64_t>(
      0, n, 0,
      [](std::int64_t lo, std::int64_t hi) {
        std::int64_t s = 0;
        for (std::int64_t i = lo; i < hi; ++i) s += i;
        return s;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(OmpTest, ParallelReduceMaxWithDynamicSchedule) {
  Runtime rt(4);
  std::vector<int> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>((i * 2654435761u) % 99991);
  }
  const int expected = *std::max_element(data.begin(), data.end());
  const int got = rt.ParallelReduce<int>(
      0, static_cast<std::int64_t>(data.size()), 0,
      [&](std::int64_t lo, std::int64_t hi) {
        int m = 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          m = std::max(m, data[static_cast<std::size_t>(i)]);
        }
        return m;
      },
      [](int a, int b) { return std::max(a, b); }, Schedule::kDynamic, 64);
  EXPECT_EQ(got, expected);
}

TEST(OmpTest, TasksAllExecute) {
  Runtime rt(4);
  std::atomic<int> done{0};
  {
    TaskGroup group(rt);
    for (int i = 0; i < 100; ++i) {
      group.Run([&] { done.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(done.load(), 100);
  }
}

TEST(OmpTest, NestedTasksDrainBeforeWaitReturns) {
  Runtime rt(4);
  std::atomic<int> done{0};
  TaskGroup group(rt);
  for (int i = 0; i < 10; ++i) {
    group.Run([&] {
      done.fetch_add(1);
      // Spawn children into the same group.
      for (int j = 0; j < 5; ++j) {
        group.Run([&] { done.fetch_add(1); });
      }
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 60);
}

TEST(OmpTest, TaskGroupDestructorWaits) {
  Runtime rt(2);
  std::atomic<int> done{0};
  {
    TaskGroup group(rt);
    for (int i = 0; i < 50; ++i) group.Run([&] { done.fetch_add(1); });
  }  // ~TaskGroup waits
  EXPECT_EQ(done.load(), 50);
}

TEST(OmpTest, RecursiveTaskDecomposition) {
  // Task-parallel divide and conquer: sum [0, n) by halving.
  Runtime rt(4);
  std::atomic<std::int64_t> sum{0};
  TaskGroup group(rt);
  std::function<void(std::int64_t, std::int64_t)> split =
      [&](std::int64_t lo, std::int64_t hi) {
        if (hi - lo <= 1000) {
          std::int64_t s = 0;
          for (std::int64_t i = lo; i < hi; ++i) s += i;
          sum.fetch_add(s);
          return;
        }
        const std::int64_t mid = lo + (hi - lo) / 2;
        group.Run([&split, lo, mid] { split(lo, mid); });
        group.Run([&split, mid, hi] { split(mid, hi); });
      };
  const std::int64_t n = 100000;
  split(0, n);
  group.Wait();
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(OmpTest, WordCountStyleReduction) {
  // The AnswersCount-shaped usage: count marker lines in a text block.
  Runtime rt(4);
  std::string text;
  int expected = 0;
  for (int i = 0; i < 5000; ++i) {
    if (i % 3 == 0) {
      text += "A:answer line\n";
      ++expected;
    } else {
      text += "Q:question line\n";
    }
  }
  // Split into lines first (serial), then count in parallel.
  std::vector<std::string_view> lines;
  std::string_view sv = text;
  std::size_t pos = 0;
  while (pos < sv.size()) {
    const auto nl = sv.find('\n', pos);
    lines.push_back(sv.substr(pos, nl - pos));
    pos = nl + 1;
  }
  const auto count = rt.ParallelReduce<std::int64_t>(
      0, static_cast<std::int64_t>(lines.size()), 0,
      [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t c = 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          if (lines[static_cast<std::size_t>(i)].substr(0, 2) == "A:") ++c;
        }
        return c;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(count, expected);
}

}  // namespace
}  // namespace pstk::omp
