#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mr/mr.h"
#include "sim/engine.h"

namespace pstk::mr {
namespace {

// Word-count style fixture over a small synthetic corpus.
struct MrFixture {
  explicit MrFixture(std::size_t nodes = 4, double scale = 1.0,
                     dfs::DfsOptions dfs_options = SmallBlocks()) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes), scale);
    dfs = std::make_unique<dfs::MiniDfs>(*cluster, dfs_options);
    MrOptions options;
    options.jvm_startup_per_task = Millis(50);  // keep tests snappy
    options.job_setup = Millis(100);
    mr = std::make_unique<MrEngine>(*cluster, *dfs, options);
  }
  static dfs::DfsOptions SmallBlocks() {
    dfs::DfsOptions o;
    o.block_size = 2 * kKiB;
    return o;
  }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::unique_ptr<MrEngine> mr;
};

std::string WordCorpus(int lines) {
  static const char* words[] = {"spark", "hadoop", "mpi", "openmp", "shmem"};
  std::string out;
  for (int i = 0; i < lines; ++i) {
    out += words[i % 5];
    out += ' ';
    out += words[(i * 7) % 5];
    out += '\n';
  }
  return out;
}

MapFn WordCountMap() {
  return [](const std::string& line, Emitter& out) {
    std::size_t pos = 0;
    while (pos < line.size()) {
      auto space = line.find(' ', pos);
      if (space == std::string::npos) space = line.size();
      if (space > pos) out.Emit(line.substr(pos, space - pos), "1");
      pos = space + 1;
    }
  };
}

ReduceFn WordCountReduce() {
  return [](const std::string& key, const std::vector<std::string>& values,
            Emitter& out) {
    std::int64_t sum = 0;
    for (const auto& v : values) sum += std::stoll(v);
    out.Emit(key, std::to_string(sum));
  };
}

std::map<std::string, std::int64_t> ParseOutput(MrFixture& f,
                                                const std::string& dir,
                                                int reducers) {
  std::map<std::string, std::int64_t> counts;
  sim::Engine reader_engine;
  // Read through a fresh process in the same engine is over; use Stat to
  // fetch contents directly via a throwaway process in a new engine run is
  // impossible — instead re-run a tiny process in the existing engine.
  // Simpler: MiniDfs keeps content; spawn a reader process post-hoc.
  for (int r = 0; r < reducers; ++r) {
    const std::string path = dir + "/part-r-" + std::to_string(r);
    auto stat = f.dfs->Stat(path);
    if (!stat.ok()) continue;
    // Pull the bytes without charging time: run one more engine pass.
    std::string content;
    f.engine.Spawn("post-reader", [&, path](sim::Context& ctx) {
      auto data = f.dfs->ReadAll(ctx, 0, path);
      if (data.ok()) content = data.value().ToString();
    });
    EXPECT_TRUE(f.engine.Run().status.ok());
    std::size_t pos = 0;
    while (pos < content.size()) {
      auto nl = content.find('\n', pos);
      if (nl == std::string::npos) nl = content.size();
      const std::string line = content.substr(pos, nl - pos);
      pos = nl + 1;
      const auto tab = line.find('\t');
      if (tab == std::string::npos) continue;
      counts[line.substr(0, tab)] += std::stoll(line.substr(tab + 1));
    }
  }
  return counts;
}

TEST(MrTest, WordCountCorrectness) {
  MrFixture f;
  const int lines = 2000;
  ASSERT_TRUE(f.dfs->Install("/in/corpus.txt", WordCorpus(lines)).ok());

  JobConf conf;
  conf.input_path = "/in/corpus.txt";
  conf.output_path = "/out/wc";
  conf.num_reducers = 3;
  auto result = f.mr->RunJob(conf, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->elapsed, 0.0);
  EXPECT_GT(result->counters.map_tasks, 1u);
  EXPECT_EQ(result->counters.reduce_tasks, 3u);
  EXPECT_EQ(result->counters.input_records, static_cast<std::uint64_t>(lines));
  EXPECT_EQ(result->counters.map_output_records,
            static_cast<std::uint64_t>(2 * lines));

  auto counts = ParseOutput(f, "/out/wc", 3);
  std::int64_t total = 0;
  for (const auto& [word, count] : counts) total += count;
  EXPECT_EQ(total, 2 * lines);
  // Every word appears (corpus cycles through all five).
  EXPECT_EQ(counts.size(), 5u);
}

TEST(MrTest, CombinerReducesShuffleVolume) {
  auto run = [](bool with_combiner) {
    MrFixture f;
    EXPECT_TRUE(f.dfs->Install("/in/c.txt", WordCorpus(3000)).ok());
    JobConf conf;
    conf.input_path = "/in/c.txt";
    conf.output_path = with_combiner ? "/out/comb" : "/out/nocomb";
    conf.num_reducers = 2;
    auto result = f.mr->RunJob(
        conf, WordCountMap(), WordCountReduce(),
        with_combiner ? std::optional<ReduceFn>(WordCountReduce())
                      : std::nullopt);
    EXPECT_TRUE(result.ok());
    return result->counters;
  };
  const Counters without = run(false);
  const Counters with = run(true);
  EXPECT_LT(with.shuffled_bytes, without.shuffled_bytes / 4);
  EXPECT_LT(with.spilled_bytes, without.spilled_bytes / 4);
}

TEST(MrTest, IntermediateResultsHitDisk) {
  // The paper's structural point: Hadoop persists map outputs on disk.
  MrFixture f;
  ASSERT_TRUE(f.dfs->Install("/in/d.txt", WordCorpus(2000)).ok());
  JobConf conf;
  conf.input_path = "/in/d.txt";
  conf.output_path = "/out/d";
  conf.write_output = false;
  auto result = f.mr->RunJob(conf, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->counters.spilled_bytes, 0u);
  EXPECT_GT(result->counters.shuffled_bytes, 0u);
}

TEST(MrTest, MoreReducersSpreadOutput) {
  MrFixture f;
  ASSERT_TRUE(f.dfs->Install("/in/r.txt", WordCorpus(1000)).ok());
  JobConf conf;
  conf.input_path = "/in/r.txt";
  conf.output_path = "/out/r";
  conf.num_reducers = 5;
  auto result = f.mr->RunJob(conf, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok());
  int parts = 0;
  for (int r = 0; r < 5; ++r) {
    if (f.dfs->Exists("/out/r/part-r-" + std::to_string(r))) ++parts;
  }
  EXPECT_EQ(parts, 5);
}

TEST(MrTest, MissingInputFailsCleanly) {
  MrFixture f;
  JobConf conf;
  conf.input_path = "/no/such/file";
  conf.output_path = "/out/x";
  auto result = f.mr->RunJob(conf, WordCountMap(), WordCountReduce());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MrTest, NodeFailureMidJobRecovers) {
  MrFixture f(4);
  // Slow the per-task JVM launch down so tasks are guaranteed to be in
  // flight on every node when the failure hits.
  {
    MrOptions options;
    options.jvm_startup_per_task = Millis(500);
    options.job_setup = Millis(100);
    f.mr = std::make_unique<MrEngine>(*f.cluster, *f.dfs, options);
  }
  ASSERT_TRUE(f.dfs->Install("/in/ft.txt", WordCorpus(4000)).ok());

  JobConf conf;
  conf.input_path = "/in/ft.txt";
  conf.output_path = "/out/ft";
  conf.num_reducers = 2;

  std::optional<Result<JobResult>> outcome;
  f.mr->Submit(conf, WordCountMap(), WordCountReduce(), std::nullopt,
               [&](Result<JobResult> r) { outcome = std::move(r); });
  // Fail node 1 while its workers are mid-map (node 0 hosts the
  // coordinator); DFS re-replicates its blocks.
  f.cluster->FailNode(1, 0.4);
  f.dfs->OnNodeFailed(1, 0.4);
  auto run = f.engine.Run();
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok()) << outcome->status().ToString();
  EXPECT_GT((*outcome)->counters.task_retries, 0u);

  auto counts = ParseOutput(f, "/out/ft", 2);
  std::int64_t total = 0;
  for (const auto& [word, count] : counts) total += count;
  EXPECT_EQ(total, 8000);  // 2 words x 4000 lines, nothing lost
}

TEST(MrTest, JvmStartupDominatesSmallJobs) {
  // Many tiny tasks: per-task JVM launches dominate elapsed time — the
  // structural reason Hadoop loses to Spark on iterative work (§II-D).
  MrFixture f;
  ASSERT_TRUE(f.dfs->Install("/in/tiny.txt", WordCorpus(64)).ok());
  JobConf conf;
  conf.input_path = "/in/tiny.txt";
  conf.output_path = "/out/tiny";
  conf.write_output = false;
  auto result = f.mr->RunJob(conf, WordCountMap(), WordCountReduce());
  ASSERT_TRUE(result.ok());
  // 50 ms per task (test option) + 100 ms setup is the floor.
  EXPECT_GE(result->elapsed, 0.15);
}

TEST(MrTest, ScaledRunCostsMoreSimTime) {
  auto elapsed_at_scale = [](double scale) {
    MrFixture f(4, scale);
    EXPECT_TRUE(f.dfs->Install("/in/s.txt", WordCorpus(2000)).ok());
    JobConf conf;
    conf.input_path = "/in/s.txt";
    conf.output_path = "/out/s";
    conf.write_output = false;
    auto result = f.mr->RunJob(conf, WordCountMap(), WordCountReduce());
    EXPECT_TRUE(result.ok());
    return result->elapsed;
  };
  EXPECT_GT(elapsed_at_scale(0.01), elapsed_at_scale(1.0) * 1.5);
}

}  // namespace
}  // namespace pstk::mr
