#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "cluster/cluster.h"
#include "mpi/mpi.h"
#include "sched/adapters.h"
#include "sched/arrivals.h"
#include "sched/sched.h"
#include "serde/serde.h"
#include "sim/engine.h"

namespace pstk::sched {
namespace {

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(JobQueueTest, FairShareRanksByUsagePerWeight) {
  JobQueue q;
  q.SetWeight("hpc", 1.0);
  q.SetWeight("bigdata", 2.0);
  q.Submit(1, "hpc");
  q.Submit(2, "bigdata");
  // Equal usage: "bigdata" < "hpc" alphabetically breaks the tie.
  ASSERT_TRUE(q.FairShareHead().has_value());
  EXPECT_EQ(*q.FairShareHead(), 2);
  // bigdata accrues 100 core-seconds at weight 2 (share 50), hpc 60 at
  // weight 1 (share 60): bigdata is still the least-served queue.
  q.AddUsage("bigdata", 100);
  q.AddUsage("hpc", 60);
  EXPECT_DOUBLE_EQ(q.Share("bigdata"), 50);
  EXPECT_DOUBLE_EQ(q.Share("hpc"), 60);
  EXPECT_EQ(*q.FairShareHead(), 2);
  // More bigdata usage flips the ranking.
  q.AddUsage("bigdata", 40);
  EXPECT_EQ(*q.FairShareHead(), 1);
  // Scan order ranks whole queues, FIFO inside each.
  q.Submit(3, "hpc");
  EXPECT_EQ(q.InScanOrder(), (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(q.Pending(), 3u);
}

TEST(JobQueueTest, PreemptedJobsRequeueAtFront) {
  JobQueue q;
  q.Submit(1, "default");
  q.Submit(2, "default");
  q.Remove(1, "default");  // job 1 started...
  q.Submit(1, "default", /*front=*/true);  // ...and was preempted
  EXPECT_EQ(*q.FairShareHead(), 1);  // it does not wait behind job 2 again
}

// ---------------------------------------------------------------------------
// Arrivals
// ---------------------------------------------------------------------------

TEST(ArrivalSpecTest, PoissonIsDeterministicPerSeed) {
  ArrivalSpec spec;
  spec.rate = 2.0;
  spec.count = 32;
  spec.seed = 7;
  const std::vector<SimTime> a = spec.Times();
  const std::vector<SimTime> b = spec.Times();
  EXPECT_EQ(a, b);  // bitwise: no host entropy anywhere
  ASSERT_EQ(a.size(), 32u);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
  spec.seed = 8;
  EXPECT_NE(a, spec.Times());
}

TEST(ArrivalSpecTest, ParsePoissonSpellingsAndErrors) {
  auto ok = ArrivalSpec::Parse("poisson:rate=0.5,n=10,seed=42");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->kind, ArrivalSpec::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(ok->rate, 0.5);
  EXPECT_EQ(ok->count, 10);
  EXPECT_EQ(ok->seed, 42u);
  EXPECT_FALSE(ArrivalSpec::Parse("poisson:rate=0,n=3").ok());
  EXPECT_FALSE(ArrivalSpec::Parse("poisson:rate=1,n=3,burst=2").ok());
  EXPECT_FALSE(ArrivalSpec::Parse("uniform:rate=1").ok());
  EXPECT_FALSE(ArrivalSpec::Parse("no-colon").ok());
}

TEST(ArrivalSpecTest, TraceFileReplay) {
  const std::string path = testing::TempDir() + "/sched_arrivals.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n" << "5.0\n" << "  1.5\n" << "\n" << "3.0\n";
  }
  auto spec = ArrivalSpec::Parse("trace:" + path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->Times(), (std::vector<SimTime>{1.5, 3.0, 5.0}));  // sorted
  EXPECT_FALSE(ArrivalSpec::Parse("trace:/no/such/file").ok());
}

// ---------------------------------------------------------------------------
// Scheduler placement and bookkeeping (stub launchers: no processes, every
// Submit runs its scheduling pass synchronously, so placement is testable
// without running the engine)
// ---------------------------------------------------------------------------

struct StubLog {
  std::vector<Launch> launches;
  std::vector<int> nodes;  // elastic: nodes held, grant order (for shrink)
};

Launcher StubGang(std::shared_ptr<StubLog> log) {
  return [log](const Launch& launch) {
    log->launches.push_back(launch);
    JobHooks hooks;
    hooks.kill = [] {};
    return hooks;
  };
}

Launcher StubElastic(std::shared_ptr<StubLog> log) {
  return [log](const Launch& launch) {
    log->launches.push_back(launch);
    log->nodes = launch.placement;
    JobHooks hooks;
    hooks.grow = [log](int node) {
      log->nodes.push_back(node);
      return true;
    };
    hooks.shrink = [log]() -> int {
      if (log->nodes.empty()) return -1;
      const int node = log->nodes.back();
      log->nodes.pop_back();
      return node;
    };
    return hooks;
  };
}

JobSpec Gang(std::shared_ptr<StubLog> log, int procs, int ppn) {
  JobSpec spec;
  spec.paradigm = Paradigm::kMpi;
  spec.procs = procs;
  spec.procs_per_node = ppn;
  spec.launch = StubGang(std::move(log));
  return spec;
}

JobSpec Elastic(std::shared_ptr<StubLog> log, int procs, int min_procs,
                int ppn) {
  JobSpec spec;
  spec.paradigm = Paradigm::kSpark;
  spec.procs = procs;
  spec.min_procs = min_procs;
  spec.procs_per_node = ppn;
  spec.launch = StubElastic(std::move(log));
  return spec;
}

TEST(SchedulerTest, GangTakesWholeNodesExclusively) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  Scheduler sched(cluster);
  auto log = std::make_shared<StubLog>();

  // 8 ranks at 8 per node need one node — but they get ALL 24 of its
  // cores: gang placement is whole-node (the paper's HPC utilization tax).
  const int a = sched.Submit(Gang(log, 8, 8));
  ASSERT_EQ(log->launches.size(), 1u);
  EXPECT_EQ(log->launches[0].placement, std::vector<int>(8, 0));
  EXPECT_EQ(sched.job(a).state, JobState::kRunning);
  EXPECT_EQ(cluster.CoresHeldBy(a, 0), 24);
  EXPECT_EQ(cluster.UsedCores(), 24);

  const int b = sched.Submit(Gang(log, 8, 8));
  EXPECT_EQ(log->launches[1].placement, std::vector<int>(8, 1));
  EXPECT_EQ(cluster.UsedCores(), 48);

  // No whole node free: all-or-nothing means pending, not partial.
  const int c = sched.Submit(Gang(log, 8, 8));
  EXPECT_EQ(sched.job(c).state, JobState::kPending);
  EXPECT_EQ(log->launches.size(), 2u);
  EXPECT_EQ(sched.jobs_running(), 2);
  (void)b;
}

TEST(SchedulerTest, ElasticStartsPartialAndGrowsOnRelease) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  Scheduler sched(cluster);
  auto gang_log = std::make_shared<StubLog>();
  auto log = std::make_shared<StubLog>();

  // A gang job owns node 0; the elastic job wants 30 executors but starts
  // immediately with the 24 cores node 1 can give (min_procs=1).
  const int a = sched.Submit(Gang(gang_log, 1, 1));
  const int b = sched.Submit(Elastic(log, 30, 1, 24));
  EXPECT_EQ(sched.job(b).state, JobState::kRunning);
  EXPECT_EQ(sched.job(b).procs_running, 24);
  EXPECT_EQ(cluster.CoresHeldBy(b, 1), 24);

  // Node 0 frees: the next pass grows the elastic job to its target.
  sched.OnJobDone(a);
  const auto run = engine.Run();
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(sched.job(b).procs_running, 30);
  EXPECT_EQ(cluster.CoresHeldBy(b, 0), 6);
  EXPECT_EQ(engine.obs().CounterByName("sched.grown"), 6u);
  EXPECT_EQ(cluster.UsedCores(), 30);
}

TEST(SchedulerTest, EasyBackfillRespectsShadowTime) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  Scheduler sched(cluster);
  auto log = std::make_shared<StubLog>();

  // A runs on node 0 with a 100 s estimate. B (head, needs both nodes)
  // blocks until A ends — its shadow time is t=100.
  JobSpec a = Gang(log, 8, 8);
  a.est_runtime = Seconds(100);
  sched.Submit(std::move(a));
  JobSpec b = Gang(log, 16, 8);
  b.est_runtime = Seconds(10);
  const int b_id = sched.Submit(std::move(b));
  EXPECT_EQ(sched.job(b_id).state, JobState::kPending);

  // C fits on node 1 and its 50 s estimate ends before the shadow time:
  // EASY lets it jump the blocked head.
  JobSpec c = Gang(log, 8, 8);
  c.est_runtime = Seconds(50);
  const int c_id = sched.Submit(std::move(c));
  EXPECT_EQ(sched.job(c_id).state, JobState::kRunning);
  EXPECT_TRUE(sched.job(c_id).backfilled);
  EXPECT_EQ(sched.backfills(), 1);

  // D would also fit but its 200 s estimate overruns the shadow time —
  // starting it would delay the head, which EASY forbids.
  JobSpec d = Gang(log, 8, 8);
  d.est_runtime = Seconds(200);
  const int d_id = sched.Submit(std::move(d));
  EXPECT_EQ(sched.job(d_id).state, JobState::kPending);
  EXPECT_EQ(sched.backfills(), 1);
}

TEST(SchedulerTest, ElasticShrinksToFloorUnderPreemption) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(1));
  Scheduler sched(cluster);
  auto victim_log = std::make_shared<StubLog>();
  auto log = std::make_shared<StubLog>();

  const int a = sched.Submit(Elastic(victim_log, 24, 8, 24));
  EXPECT_EQ(sched.job(a).procs_running, 24);

  // A high-priority elastic job needing 16 cores shrinks A to its floor
  // (min_procs=8) instead of killing it — lineage absorbs the loss.
  JobSpec b = Elastic(log, 16, 16, 24);
  b.priority = 1;
  const int b_id = sched.Submit(std::move(b));
  EXPECT_EQ(sched.job(b_id).state, JobState::kRunning);
  EXPECT_EQ(sched.job(b_id).procs_running, 16);
  EXPECT_EQ(sched.job(a).procs_running, 8);
  EXPECT_EQ(engine.obs().CounterByName("sched.shrunk"), 16u);
  EXPECT_EQ(cluster.UsedCores(), 24);
  // Shrink-to-floor is not a gang preemption: nothing was killed.
  EXPECT_EQ(sched.preemptions(), 0);
  EXPECT_EQ(sched.job(a).attempt, 0);

  // When the high-priority job leaves, A regrows to its target.
  sched.OnJobDone(b_id);
  const auto run = engine.Run();
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(sched.job(a).procs_running, 24);
  EXPECT_EQ(cluster.UsedCores(), 24);
}

// ---------------------------------------------------------------------------
// Preemption end-to-end: checkpoint-preempt-requeue with the real MPI
// runtime — the preempted gang job's second attempt must resume from the
// latest committed snapshot epoch, not from scratch.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, PreemptedGangResumesFromLatestEpoch) {
  constexpr int kSteps = 8;
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  Scheduler sched(cluster);

  auto epochs = std::make_shared<std::vector<int>>();
  auto executed = std::make_shared<int>(0);
  MpiCkptBody background = [epochs, executed](
                               mpi::Comm& comm,
                               ckpt::CheckpointCoordinator& coord) {
    const int rank = comm.rank();
    const int node = comm.ctx().node();
    comm.Barrier();
    int start = 0;
    const serde::Buffer* frag = coord.Restore(comm.ctx(), rank, node);
    if (frag != nullptr) {
      serde::Reader r(*frag);
      start = static_cast<int>(r.ReadRaw<std::int32_t>().value()) + 1;
    }
    if (rank == 0) epochs->push_back(coord.restore_epoch().value_or(-1));
    std::vector<double> one(1, 1.0);
    std::vector<double> sum(1, 0.0);
    for (int iter = start; iter < kSteps; ++iter) {
      comm.ctx().Compute(1.0);
      comm.Allreduce<double>(one, sum);
      if (rank == 0) ++*executed;
      serde::Writer w;
      w.WriteRaw<std::int32_t>(iter);
      coord.Checkpoint(comm.ctx(), rank, node, iter, w.TakeBuffer());
    }
  };
  ckpt::CkptPolicy policy;
  policy.interval = 0.5;  // the first Checkpoint call only anchors the clock

  JobSpec bg;
  bg.name = "background";
  bg.paradigm = Paradigm::kMpi;
  bg.procs = 2;
  bg.procs_per_node = 1;  // one rank per node: owns the whole cluster
  bg.priority = 0;
  bg.launch = MakeMpiLauncher(sched, background, {}, policy);
  const int bg_id = sched.Submit(std::move(bg));

  // A high-priority query lands mid-run and evicts the gang. t=4.5 gives
  // the ~1 s steps time to commit an epoch or two first (iter 0's
  // Checkpoint only anchors the interval clock, and commits also pay the
  // snapshot's disk-write latency).
  ArrivalSpec arrival;
  arrival.kind = ArrivalSpec::Kind::kTrace;
  arrival.trace = {4.5};
  int query_id = -1;
  ScheduleArrivals(engine, arrival, [&](int, SimTime) {
    JobSpec query;
    query.name = "query";
    query.paradigm = Paradigm::kMpi;
    query.procs = 2;
    query.procs_per_node = 2;
    query.priority = 1;
    query.launch = MakeMpiLauncher(
        sched, [](mpi::Comm& comm, ckpt::CheckpointCoordinator&) {
          comm.ctx().Compute(0.5);
          comm.Barrier();
        });
    query_id = sched.Submit(std::move(query));
  });

  const auto run = engine.Run();
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();

  EXPECT_EQ(sched.preemptions(), 1);
  EXPECT_EQ(sched.job(query_id).state, JobState::kDone);
  const JobInfo& info = sched.job(bg_id);
  EXPECT_EQ(info.state, JobState::kDone);
  EXPECT_EQ(info.attempt, 1);
  EXPECT_EQ(info.preemptions, 1);
  // Attempt 0 started fresh; attempt 1 restored a committed epoch.
  ASSERT_EQ(epochs->size(), 2u);
  EXPECT_EQ((*epochs)[0], -1);
  EXPECT_GE((*epochs)[1], 0);
  // Resumed, not rerun: strictly fewer than 2x the steps, none lost.
  EXPECT_GE(*executed, kSteps);
  EXPECT_LT(*executed, 2 * kSteps);
  EXPECT_EQ(cluster.UsedCores(), 0);
}

// ---------------------------------------------------------------------------
// Determinism: a service run is a pure function of its seed.
// ---------------------------------------------------------------------------

std::vector<SimTime> RunService() {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  Scheduler sched(cluster);
  ArrivalSpec spec;
  spec.rate = 0.5;
  spec.count = 4;
  spec.seed = 7;
  std::vector<int> ids(4, -1);
  ScheduleArrivals(engine, spec, [&](int index, SimTime) {
    JobSpec job;
    job.name = "q" + std::to_string(index);
    job.paradigm = Paradigm::kMpi;
    job.procs = 2;
    job.procs_per_node = 1;
    job.est_runtime = Seconds(5);
    job.launch = MakeMpiLauncher(
        sched, [index](mpi::Comm& comm, ckpt::CheckpointCoordinator&) {
          comm.ctx().Compute(0.25 * (index + 1));
          comm.Barrier();
        });
    ids[static_cast<std::size_t>(index)] = sched.Submit(std::move(job));
  });
  const auto run = engine.Run();
  PSTK_CHECK(run.status.ok());
  std::vector<SimTime> ends;
  for (int id : ids) {
    PSTK_CHECK(sched.job(id).state == JobState::kDone);
    ends.push_back(sched.job(id).end_time);
  }
  return ends;
}

TEST(SchedulerTest, ServiceRunIsDeterministicAcrossRepeats) {
  const std::vector<SimTime> first = RunService();
  const std::vector<SimTime> second = RunService();
  EXPECT_EQ(first, second);  // bitwise-equal virtual times
  ASSERT_EQ(first.size(), 4u);
  for (SimTime t : first) EXPECT_GT(t, 0.0);
}

}  // namespace
}  // namespace pstk::sched
