// Cross-framework integration tests: the same computation run through
// every runtime in the repository must produce identical answers, and the
// relative performance orderings the paper reports must hold.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "mr/mr.h"
#include "omp/omp.h"
#include "shmem/shmem.h"
#include "sim/engine.h"
#include "spark/spark.h"
#include "workloads/graph.h"
#include "workloads/pagerank.h"
#include "workloads/stackexchange.h"

namespace pstk {
namespace {

struct Counts {
  std::uint64_t questions = 0;
  std::uint64_t answers = 0;
  SimTime elapsed = -1;
  bool operator==(const Counts& other) const {
    return questions == other.questions && answers == other.answers;
  }
};

class AnswersCountIntegration : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.01;
  static constexpr int kNodes = 4;
  static constexpr int kPpn = 4;

  static std::string MakeData() {
    workloads::StackExchangeParams params;
    params.target_bytes = 512 * kKiB;
    return workloads::GenerateStackExchange(params, &truth_);
  }

  static const std::string& Data() {
    static const std::string data = MakeData();
    return data;
  }

  static workloads::StackExchangeStats truth_;
};

workloads::StackExchangeStats AnswersCountIntegration::truth_;

Counts RunOmpVersion(const std::string& data) {
  Counts counts;
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(1), 0.01);
  cluster.scratch(0).Install("/posts", data);
  engine.Spawn("omp", [&](sim::Context& ctx) {
    auto text = cluster.scratch(0).ReadAll(ctx, "/posts");
    ASSERT_TRUE(text.ok());
    omp::Runtime rt(4);
    const auto total = rt.ParallelReduce<workloads::StackExchangeStats>(
        0, 4, {},
        [&](std::int64_t lo, std::int64_t) {
          const std::string& t = text.value();
          const std::size_t begin = t.size() * lo / 4;
          std::size_t end = t.size() * (lo + 1) / 4;
          if (end < t.size()) end = t.find('\n', end) + 1;
          return workloads::CountPosts(
              std::string_view(t).substr(begin, end - begin), lo > 0);
        },
        [](workloads::StackExchangeStats a, workloads::StackExchangeStats b) {
          a.questions += b.questions;
          a.answers += b.answers;
          return a;
        });
    counts.questions = total.questions;
    counts.answers = total.answers;
    counts.elapsed = ctx.now();
  });
  EXPECT_TRUE(engine.Run().status.ok());
  return counts;
}

Counts RunMpiVersion(const std::string& data, int nodes, int ppn,
                     double scale) {
  Counts counts;
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), scale);
  for (int n = 0; n < nodes; ++n) cluster.scratch(n).Install("/posts", data);
  mpi::World world(cluster, nodes * ppn, ppn);
  auto elapsed = world.RunSpmd([&](mpi::Comm& comm) {
    auto file = mpi::File::OpenAll(comm, "/posts");
    ASSERT_TRUE(file.ok());
    const Bytes chunk = file->size() / comm.size();
    ASSERT_LE(chunk,
              static_cast<Bytes>(std::numeric_limits<std::int32_t>::max()));
    const Bytes offset = chunk * comm.rank();
    const Bytes len =
        comm.rank() == comm.size() - 1 ? file->size() - offset : chunk;
    auto part =
        file->ReadLinesAtAll(comm, offset, static_cast<std::int32_t>(len));
    ASSERT_TRUE(part.ok());
    const auto local = workloads::CountPosts(part.value());
    const std::vector<std::uint64_t> mine{local.questions, local.answers};
    std::vector<std::uint64_t> total(2);
    comm.Allreduce<std::uint64_t>(mine, total);
    if (comm.rank() == 0) {
      counts.questions = total[0];
      counts.answers = total[1];
    }
  });
  EXPECT_TRUE(elapsed.ok()) << elapsed.status().ToString();
  counts.elapsed = elapsed.ok() ? elapsed.value() : -1;
  return counts;
}

Counts RunMrVersion(const std::string& data, int nodes, double scale) {
  Counts counts;
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), scale);
  dfs::DfsOptions dopts;
  dopts.block_size = 4 * kMiB;
  dfs::MiniDfs dfs(cluster, dopts);
  EXPECT_TRUE(dfs.Install("/posts", data).ok());
  mr::MrOptions mopts;
  mopts.jvm_startup_per_task = Millis(50);
  mopts.job_setup = Millis(100);
  mr::MrEngine mr_engine(cluster, dfs, mopts);
  mr::JobConf conf;
  conf.input_path = "/posts";
  conf.output_path = "/out";
  auto result = mr_engine.RunJob(
      conf,
      [](const std::string& line, mr::Emitter& out) {
        switch (workloads::ClassifyPost(line)) {
          case workloads::PostKind::kQuestion: out.Emit("Q", "1"); break;
          case workloads::PostKind::kAnswer: out.Emit("A", "1"); break;
          default: break;
        }
      },
      [](const std::string& key, const std::vector<std::string>& values,
         mr::Emitter& out) {
        std::int64_t sum = 0;
        for (const auto& v : values) {
          sum += std::strtoll(v.c_str(), nullptr, 10);
        }
        out.Emit(key, std::to_string(sum));
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return counts;
  counts.elapsed = result->elapsed;
  // Parse the single part file.
  sim::Engine reader;
  engine.Spawn("read", [&](sim::Context& ctx) {
    auto part = dfs.ReadAll(ctx, 0, "/out/part-r-0");
    ASSERT_TRUE(part.ok());
    const std::string text = part.value().ToString();
    std::size_t pos = 0;
    while (pos < text.size()) {
      auto nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size();
      const std::string line = text.substr(pos, nl - pos);
      pos = nl + 1;
      const auto tab = line.find('\t');
      if (tab == std::string::npos) continue;
      const auto value = std::strtoull(line.c_str() + tab + 1, nullptr, 10);
      if (line.substr(0, tab) == "Q") counts.questions = value;
      if (line.substr(0, tab) == "A") counts.answers = value;
    }
  });
  EXPECT_TRUE(engine.Run().status.ok());
  return counts;
}

Counts RunSparkVersion(const std::string& data, int nodes, double scale) {
  Counts counts;
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes), scale);
  dfs::DfsOptions dopts;
  dopts.block_size = 4 * kMiB;
  dfs::MiniDfs dfs(cluster, dopts);
  EXPECT_TRUE(dfs.Install("/posts", data).ok());
  spark::SparkOptions sopts;
  sopts.app_startup = Millis(200);
  sopts.executors_per_node = 4;
  spark::MiniSpark spark(cluster, &dfs, sopts);
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    using P = std::pair<std::uint64_t, std::uint64_t>;
    auto lines = sc.TextFile("/posts");
    ASSERT_TRUE(lines.ok());
    auto total = lines->Map<P>([](const std::string& line) {
                        switch (workloads::ClassifyPost(line)) {
                          case workloads::PostKind::kQuestion: return P{1, 0};
                          case workloads::PostKind::kAnswer: return P{0, 1};
                          default: return P{0, 0};
                        }
                      })
                     .Reduce([](const P& a, const P& b) {
                       return P{a.first + b.first, a.second + b.second};
                     });
    ASSERT_TRUE(total.ok());
    counts.questions = total->first;
    counts.answers = total->second;
  });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  counts.elapsed = result.ok() ? result->elapsed : -1;
  return counts;
}

TEST_F(AnswersCountIntegration, AllFourFrameworksAgreeWithGroundTruth) {
  const Counts omp = RunOmpVersion(Data());
  const Counts mpi = RunMpiVersion(Data(), kNodes, kPpn, kScale);
  const Counts mr = RunMrVersion(Data(), kNodes, kScale);
  const Counts spark = RunSparkVersion(Data(), kNodes, kScale);

  EXPECT_EQ(omp.questions, truth_.questions);
  EXPECT_EQ(omp.answers, truth_.answers);
  EXPECT_TRUE(mpi == omp);
  EXPECT_TRUE(mr == omp);
  EXPECT_TRUE(spark == omp);
}

TEST_F(AnswersCountIntegration, PaperPerformanceOrderingsHold) {
  const Counts mpi = RunMpiVersion(Data(), kNodes, kPpn, kScale);
  const Counts mr = RunMrVersion(Data(), kNodes, kScale);
  const Counts spark = RunSparkVersion(Data(), kNodes, kScale);
  ASSERT_GT(mpi.elapsed, 0);
  ASSERT_GT(mr.elapsed, 0);
  ASSERT_GT(spark.elapsed, 0);
  // §V-C: Hadoop noticeably slower than Spark (disk-persisted
  // intermediates + per-task JVMs). The MPI-vs-Spark ordering is
  // size-dependent (fixed launcher costs dominate at this small test
  // scale), so it is asserted in the Fig 4 benchmark, not here.
  EXPECT_GT(mr.elapsed, spark.elapsed);
}

// ---------------------------------------------------------------------------
// PageRank: MPI and Spark agree with the serial reference.
// ---------------------------------------------------------------------------

TEST(PageRankIntegration, MpiMatchesReference) {
  workloads::GraphParams gparams;
  gparams.vertices = 3000;
  const auto graph = workloads::GenerateGraph(gparams);
  const auto reference = workloads::PageRankReference(graph, 4);

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  mpi::World world(cluster, 8, 4);
  double max_delta = 1.0;
  auto elapsed = world.RunSpmd([&](mpi::Comm& comm) {
    const auto n = graph.vertices;
    const auto lo = n * comm.rank() / comm.size();
    const auto hi = n * (comm.rank() + 1) / comm.size();
    std::vector<double> ranks(n, 1.0);
    std::vector<double> contrib(n, 0.0);
    std::vector<double> summed(n, 0.0);
    for (int iter = 0; iter < 4; ++iter) {
      std::fill(contrib.begin(), contrib.end(), 0.0);
      for (auto v = lo; v < hi; ++v) {
        const auto degree = graph.out_degree(v);
        if (degree == 0) continue;
        const double share = ranks[v] / static_cast<double>(degree);
        for (auto e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
          contrib[graph.targets[e]] += share;
        }
      }
      comm.Allreduce<double>(contrib, summed);
      for (workloads::VertexId v = 0; v < n; ++v) {
        ranks[v] = workloads::kBaseRank + workloads::kDamping * summed[v];
      }
    }
    if (comm.rank() == 0) {
      max_delta = workloads::MaxRankDelta(ranks, reference);
    }
  });
  ASSERT_TRUE(elapsed.ok());
  EXPECT_LT(max_delta, 1e-9);
}

TEST(PageRankIntegration, SparkMatchesReference) {
  workloads::GraphParams gparams;
  gparams.vertices = 2000;
  const auto graph = workloads::GenerateGraph(gparams);
  const auto reference = workloads::PageRankReference(graph, 3);

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  spark::SparkOptions sopts;
  sopts.app_startup = Millis(100);
  sopts.executors_per_node = 2;
  spark::MiniSpark spark(cluster, nullptr, sopts);
  double max_delta = 1.0;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    using K = std::int64_t;
    std::vector<std::pair<K, std::vector<K>>> links_data;
    for (workloads::VertexId v = 0; v < graph.vertices; ++v) {
      std::vector<K> targets(graph.targets.begin() + graph.offsets[v],
                             graph.targets.begin() + graph.offsets[v + 1]);
      links_data.emplace_back(v, std::move(targets));
    }
    auto links = sc.Parallelize(std::move(links_data), 4)
                     .AsPairs<K, std::vector<K>>()
                     .PartitionBy(4);
    links.Persist(spark::StorageLevel::kMemoryOnly);
    auto ranks = links.MapValues<double>([](const std::vector<K>&) {
      return 1.0;
    });
    for (int i = 0; i < 3; ++i) {
      auto contribs =
          links.Join(ranks)
              .AsRdd()
              .FlatMap<std::pair<K, double>>(
                  [](const std::pair<K, std::pair<std::vector<K>, double>>&
                         entry) {
                    const auto& [src, pr] = entry;
                    std::vector<std::pair<K, double>> out;
                    out.emplace_back(src, 0.0);
                    const double share =
                        pr.second / static_cast<double>(pr.first.size());
                    for (K url : pr.first) out.emplace_back(url, share);
                    return out;
                  })
              .AsPairs<K, double>();
      ranks = contribs
                  .ReduceByKey([](double a, double b) { return a + b; }, 4)
                  .MapValues<double>([](const double& sum) {
                    return workloads::kBaseRank + workloads::kDamping * sum;
                  });
    }
    auto final_ranks = ranks.CollectAsMap();
    ASSERT_TRUE(final_ranks.ok());
    std::vector<double> dense(reference.size(), workloads::kBaseRank);
    for (const auto& [v, r] : final_ranks.value()) {
      dense[static_cast<std::size_t>(v)] = r;
    }
    max_delta = workloads::MaxRankDelta(dense, reference);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(max_delta, 1e-9);
}

// ---------------------------------------------------------------------------
// SHMEM + MPI interop sanity: both runtimes on one engine, different jobs.
// ---------------------------------------------------------------------------

TEST(MixedRuntimeIntegration, MpiAndShmemJobsShareACluster) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(2));
  std::int64_t mpi_sum = 0;
  std::int64_t shmem_sum = 0;

  mpi::World world(cluster, 4, 2);
  world.SpawnRanks([&](mpi::Comm& comm) {
    std::vector<std::int64_t> mine{comm.rank() + 1};
    std::vector<std::int64_t> total(1);
    comm.Allreduce<std::int64_t>(mine, total);
    if (comm.rank() == 0) mpi_sum = total[0];
  });

  shmem::ShmemWorld shmem_world(cluster, 4, 2);
  shmem_world.SpawnPes([&](shmem::Pe& pe) {
    auto counter = pe.Malloc<std::int64_t>(1);
    *pe.Local(counter) = 0;
    pe.BarrierAll();
    pe.AtomicFetchAdd(counter, pe.my_pe() + 1, 0);
    pe.BarrierAll();
    if (pe.my_pe() == 0) shmem_sum = *pe.Local(counter);
  });

  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(mpi_sum, 10);
  EXPECT_EQ(shmem_sum, 10);
}

}  // namespace
}  // namespace pstk
