#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "sim/engine.h"

namespace pstk::dfs {
namespace {

std::string Lines(int n, std::size_t width = 20) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    std::string line = "line-" + std::to_string(i);
    line.resize(width, '.');
    out += line;
    out += '\n';
  }
  return out;
}

struct DfsFixture {
  explicit DfsFixture(std::size_t nodes = 4, double scale = 1.0,
                      DfsOptions options = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes), scale);
    dfs = std::make_unique<MiniDfs>(*cluster, options);
  }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<MiniDfs> dfs;
};

TEST(DfsTest, InstallAndReadAllRoundTrip) {
  DfsFixture f;
  const std::string content = Lines(100);
  ASSERT_TRUE(f.dfs->Install("/data/in.txt", content).ok());
  std::string got;
  f.engine.Spawn("reader", [&](sim::Context& ctx) {
    auto r = f.dfs->ReadAll(ctx, 0, "/data/in.txt");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    got = r.value().ToString();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_EQ(got, content);
}

TEST(DfsTest, SplitsIntoBlocks) {
  // With scale=1 and a small block size, content splits into many blocks,
  // each cut at a line boundary.
  DfsOptions options;
  options.block_size = 256;  // modeled bytes
  DfsFixture f(4, 1.0, options);
  const std::string content = Lines(100);
  ASSERT_TRUE(f.dfs->Install("/f", content).ok());
  auto stat = f.dfs->Stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_GT(stat->blocks.size(), 5u);
  EXPECT_EQ(stat->actual_size, content.size());
}

TEST(DfsTest, BlocksEndAtLineBoundaries) {
  DfsOptions options;
  options.block_size = 300;
  DfsFixture f(4, 1.0, options);
  ASSERT_TRUE(f.dfs->Install("/f", Lines(50)).ok());
  auto stat = f.dfs->Stat("/f");
  ASSERT_TRUE(stat.ok());
  f.engine.Spawn("reader", [&](sim::Context& ctx) {
    for (std::size_t i = 0; i < stat->blocks.size(); ++i) {
      auto block = f.dfs->ReadBlock(ctx, 0, "/f", i);
      ASSERT_TRUE(block.ok());
      ASSERT_FALSE(block.value().empty());
      EXPECT_EQ(block.value().view().back(), '\n') << "block " << i;
    }
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
}

TEST(DfsTest, ReplicationFactorHonored) {
  DfsOptions options;
  options.block_size = 128;
  options.replication = 3;
  DfsFixture f(6, 1.0, options);
  ASSERT_TRUE(f.dfs->Install("/f", Lines(40)).ok());
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  for (const auto& replicas : locations.value()) {
    EXPECT_EQ(replicas.size(), 3u);
    std::set<int> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);  // distinct nodes
  }
}

TEST(DfsTest, ReplicationClampedToClusterSize) {
  DfsOptions options;
  options.replication = 10;
  DfsFixture f(3, 1.0, options);
  ASSERT_TRUE(f.dfs->Install("/f", Lines(10)).ok());
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations.value()[0].size(), 3u);
}

TEST(DfsTest, WriteChargesPipelineTime) {
  DfsFixture f(4);
  SimTime write_time = 0;
  f.engine.Spawn("writer", [&](sim::Context& ctx) {
    ASSERT_TRUE(f.dfs->Write(ctx, 0, "/f", Lines(5000, 100)).ok());
    write_time = ctx.now();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_GT(write_time, 0.0);
}

TEST(DfsTest, FirstReplicaOnWriterNode) {
  DfsFixture f(4);
  f.engine.Spawn("writer", [&](sim::Context& ctx) {
    ASSERT_TRUE(f.dfs->Write(ctx, 2, "/f", Lines(10)).ok());
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations.value()[0][0], 2);
}

TEST(DfsTest, LocalReadCheaperThanRemote) {
  DfsOptions options;
  options.replication = 1;  // single replica pins the location
  DfsFixture f(2, 1.0, options);
  ASSERT_TRUE(f.dfs->Install("/f", Lines(50000, 100), /*seed=*/7).ok());
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  const int holder = locations.value()[0][0];
  const int other = 1 - holder;

  SimTime local_time = 0;
  SimTime remote_time = 0;
  {
    DfsFixture g(2, 1.0, options);
    ASSERT_TRUE(g.dfs->Install("/f", Lines(50000, 100), /*seed=*/7).ok());
    g.engine.Spawn("local", [&](sim::Context& ctx) {
      ASSERT_TRUE(g.dfs->ReadBlock(ctx, holder, "/f", 0).ok());
      local_time = ctx.now();
    });
    ASSERT_TRUE(g.engine.Run().status.ok());
  }
  {
    DfsFixture g(2, 1.0, options);
    ASSERT_TRUE(g.dfs->Install("/f", Lines(50000, 100), /*seed=*/7).ok());
    g.engine.Spawn("remote", [&](sim::Context& ctx) {
      ASSERT_TRUE(g.dfs->ReadBlock(ctx, other, "/f", 0).ok());
      remote_time = ctx.now();
    });
    ASSERT_TRUE(g.engine.Run().status.ok());
  }
  EXPECT_GT(remote_time, local_time);
}

TEST(DfsTest, MetadataOps) {
  DfsFixture f;
  ASSERT_TRUE(f.dfs->Install("/a/x", Lines(5)).ok());
  ASSERT_TRUE(f.dfs->Install("/a/y", Lines(5)).ok());
  ASSERT_TRUE(f.dfs->Install("/b/z", Lines(5)).ok());
  EXPECT_TRUE(f.dfs->Exists("/a/x"));
  EXPECT_FALSE(f.dfs->Exists("/a/q"));
  EXPECT_EQ(f.dfs->List("/a/").size(), 2u);
  ASSERT_TRUE(f.dfs->Delete("/a/x").ok());
  EXPECT_FALSE(f.dfs->Exists("/a/x"));
  EXPECT_FALSE(f.dfs->Delete("/a/x").ok());
  EXPECT_FALSE(f.dfs->Stat("/a/x").ok());
  // Duplicate install rejected.
  EXPECT_EQ(f.dfs->Install("/a/y", "dup").code(),
            StatusCode::kAlreadyExists);
}

TEST(DfsTest, BlockAliasOutlivesDelete) {
  // The zero-copy contract: a block handed out by ReadBlock aliases the
  // stored chunk, and the refcount — not the namespace — owns the payload.
  // Deleting the file (or any later read) must not invalidate outstanding
  // aliases, e.g. a cached RDD partition built over the block.
  DfsOptions options;
  options.block_size = 256;
  DfsFixture f(4, 1.0, options);
  const std::string content = Lines(40);
  ASSERT_TRUE(f.dfs->Install("/f", content).ok());
  buf::Bytes cached;
  std::string expected;
  f.engine.Spawn("reader", [&](sim::Context& ctx) {
    auto block = f.dfs->ReadBlock(ctx, 0, "/f", 0);
    ASSERT_TRUE(block.ok()) << block.status().ToString();
    expected = block.value().ToString();
    cached = block.value().Slice(0, block.value().size());
    ASSERT_TRUE(f.dfs->Delete("/f").ok());
    EXPECT_FALSE(f.dfs->ReadBlock(ctx, 0, "/f", 0).ok());
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_FALSE(expected.empty());
  EXPECT_TRUE(cached.Equals(expected));  // alias intact after the delete
}

TEST(DfsTest, NodeFailureTransparentToReaders) {
  DfsOptions options;
  options.block_size = 200;
  options.replication = 2;
  DfsFixture f(4, 1.0, options);
  const std::string content = Lines(60);
  ASSERT_TRUE(f.dfs->Install("/f", content).ok());

  // Fail node 1 at t=0 and re-replicate.
  f.dfs->OnNodeFailed(1, 0.0);
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  for (const auto& replicas : locations.value()) {
    EXPECT_EQ(replicas.size(), 2u);  // factor restored
    for (int node : replicas) EXPECT_NE(node, 1);
  }

  std::string got;
  f.engine.Spawn("reader", [&](sim::Context& ctx) {
    auto r = f.dfs->ReadAll(ctx, 0, "/f");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    got = r.value().ToString();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_EQ(got, content);
}

TEST(DfsTest, TwoConcurrentFailuresReReplicateFromSurvivors) {
  // Losing two of six datanodes at once must still restore the factor-3
  // replica sets from the surviving copies — the scenario the recovery
  // ablation's multi-fault plans exercise.
  DfsOptions options;
  options.block_size = 200;
  options.replication = 3;
  DfsFixture f(6, 1.0, options);
  const std::string content = Lines(60);
  ASSERT_TRUE(f.dfs->Install("/f", content).ok());

  f.dfs->OnNodeFailed(1, 0.0);
  f.dfs->OnNodeFailed(2, 0.0);
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  for (const auto& replicas : locations.value()) {
    EXPECT_EQ(replicas.size(), 3u);  // factor restored after both losses
    std::set<int> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);  // no node holds two copies
    for (int node : replicas) {
      EXPECT_NE(node, 1);
      EXPECT_NE(node, 2);
    }
  }

  std::string got;
  f.engine.Spawn("reader", [&](sim::Context& ctx) {
    auto r = f.dfs->ReadAll(ctx, 0, "/f");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    got = r.value().ToString();
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
  EXPECT_EQ(got, content);
}

TEST(DfsTest, AllReplicasLostIsDataLoss) {
  DfsOptions options;
  options.replication = 1;
  DfsFixture f(2, 1.0, options);
  ASSERT_TRUE(f.dfs->Install("/f", Lines(10), /*seed=*/3).ok());
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  const int holder = locations.value()[0][0];
  // With replication=1 and the holder gone there is nothing to copy from —
  // but OnNodeFailed also can't re-replicate; mark the other node failed so
  // re-replication has no candidates either way.
  f.dfs->OnNodeFailed(holder, 0.0);
  f.engine.Spawn("reader", [&](sim::Context& ctx) {
    auto r = f.dfs->ReadBlock(ctx, 1 - holder, "/f", 0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  });
  ASSERT_TRUE(f.engine.Run().status.ok());
}

TEST(DfsTest, ScaledFileChargesLogicalBytes) {
  // 1 MiB actual at scale 1/1000 behaves like 1 GiB logically.
  DfsFixture scaled(2, 0.001);
  DfsFixture unscaled(2, 1.0);
  const std::string content = Lines(10000, 100);  // ~1 MiB
  ASSERT_TRUE(scaled.dfs->Install("/f", content, 11).ok());
  ASSERT_TRUE(unscaled.dfs->Install("/f", content, 11).ok());

  SimTime scaled_time = 0;
  SimTime unscaled_time = 0;
  scaled.engine.Spawn("r", [&](sim::Context& ctx) {
    ASSERT_TRUE(scaled.dfs->ReadAll(ctx, 0, "/f").ok());
    scaled_time = ctx.now();
  });
  unscaled.engine.Spawn("r", [&](sim::Context& ctx) {
    ASSERT_TRUE(unscaled.dfs->ReadAll(ctx, 0, "/f").ok());
    unscaled_time = ctx.now();
  });
  ASSERT_TRUE(scaled.engine.Run().status.ok());
  ASSERT_TRUE(unscaled.engine.Run().status.ok());
  EXPECT_GT(scaled_time, unscaled_time * 100);
}

TEST(DfsTest, RaisingReplicationImprovesLocality) {
  // The paper's workaround (§V-B2): set replication = node count so every
  // executor finds every block locally.
  DfsOptions options;
  options.block_size = 200;
  options.replication = 4;
  DfsFixture f(4, 1.0, options);
  ASSERT_TRUE(f.dfs->Install("/f", Lines(60)).ok());
  auto locations = f.dfs->BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  for (const auto& replicas : locations.value()) {
    EXPECT_EQ(replicas.size(), 4u);  // block local to every node
  }
}

}  // namespace
}  // namespace pstk::dfs
