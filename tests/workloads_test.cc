#include <gtest/gtest.h>

#include <set>

#include "workloads/graph.h"
#include "workloads/pagerank.h"
#include "workloads/stackexchange.h"

namespace pstk::workloads {
namespace {

// --------------------------------------------------------------------------
// StackExchange generator + AnswersCount kernel
// --------------------------------------------------------------------------

TEST(StackExchangeTest, GeneratesRequestedVolume) {
  StackExchangeParams params;
  params.target_bytes = 256 * kKiB;
  StackExchangeStats stats;
  const std::string data = GenerateStackExchange(params, &stats);
  EXPECT_GE(data.size(), params.target_bytes);
  EXPECT_LE(data.size(), params.target_bytes + 4 * kKiB);
  EXPECT_GT(stats.questions, 100u);
  EXPECT_GT(stats.answers, 100u);
  EXPECT_EQ(stats.bytes, data.size());
}

TEST(StackExchangeTest, DeterministicForSeed) {
  StackExchangeParams params;
  params.target_bytes = 64 * kKiB;
  const std::string a = GenerateStackExchange(params, nullptr);
  const std::string b = GenerateStackExchange(params, nullptr);
  EXPECT_EQ(a, b);
  params.seed += 1;
  const std::string c = GenerateStackExchange(params, nullptr);
  EXPECT_NE(a, c);
}

TEST(StackExchangeTest, CountKernelMatchesGeneratorStats) {
  StackExchangeParams params;
  params.target_bytes = 128 * kKiB;
  StackExchangeStats truth;
  const std::string data = GenerateStackExchange(params, &truth);
  const StackExchangeStats counted = CountPosts(data);
  EXPECT_EQ(counted.questions, truth.questions);
  EXPECT_EQ(counted.answers, truth.answers);
}

TEST(StackExchangeTest, ChunkedCountMatchesWholeFile) {
  // The MPI/OpenMP pattern: split at arbitrary byte offsets, chunk k>0
  // skips its partial first line and reads through the end of its last.
  StackExchangeParams params;
  params.target_bytes = 96 * kKiB;
  StackExchangeStats truth;
  const std::string data = GenerateStackExchange(params, &truth);

  const int chunks = 7;
  StackExchangeStats total;
  for (int c = 0; c < chunks; ++c) {
    const std::size_t lo = data.size() * c / chunks;
    std::size_t hi = data.size() * (c + 1) / chunks;
    // Extend to the end of the line containing hi-1.
    if (hi < data.size()) {
      const auto nl = data.find('\n', hi);
      hi = nl == std::string::npos ? data.size() : nl + 1;
    }
    std::size_t ext_lo = lo;
    if (lo > 0) {
      // The previous chunk consumed through the end of the line crossing
      // its boundary; we skip our partial first line to match.
      const auto counted = CountPosts(
          std::string_view(data).substr(ext_lo, hi - ext_lo), true);
      total.questions += counted.questions;
      total.answers += counted.answers;
      continue;
    }
    const auto counted =
        CountPosts(std::string_view(data).substr(lo, hi - lo), false);
    total.questions += counted.questions;
    total.answers += counted.answers;
  }
  EXPECT_EQ(total.questions, truth.questions);
  EXPECT_EQ(total.answers, truth.answers);
}

TEST(StackExchangeTest, ClassifyPost) {
  EXPECT_EQ(ClassifyPost("12\tQ\t0\t5\tbody"), PostKind::kQuestion);
  EXPECT_EQ(ClassifyPost("13\tA\t12\t1\tbody"), PostKind::kAnswer);
  EXPECT_EQ(ClassifyPost("garbage line"), PostKind::kOther);
  EXPECT_EQ(ClassifyPost(""), PostKind::kOther);
}

// --------------------------------------------------------------------------
// Graph generator
// --------------------------------------------------------------------------

TEST(GraphTest, GeneratesRequestedShape) {
  GraphParams params;
  params.vertices = 5000;
  params.average_out_degree = 6.0;
  const Graph graph = GenerateGraph(params);
  EXPECT_EQ(graph.vertices, 5000u);
  EXPECT_EQ(graph.offsets.size(), 5001u);
  const double avg = static_cast<double>(graph.edge_count()) / 5000.0;
  EXPECT_GT(avg, 3.0);
  EXPECT_LT(avg, 9.0);
  // Every vertex has at least one out edge; targets in range.
  for (VertexId v = 0; v < graph.vertices; ++v) {
    EXPECT_GE(graph.out_degree(v), 1u);
  }
  for (VertexId t : graph.targets) EXPECT_LT(t, graph.vertices);
}

TEST(GraphTest, PowerLawSkewsInDegree) {
  GraphParams params;
  params.vertices = 20000;
  const Graph graph = GenerateGraph(params);
  std::vector<std::uint64_t> in_degree(graph.vertices, 0);
  for (VertexId t : graph.targets) ++in_degree[t];
  // Low-id vertices are far more popular than the median vertex.
  std::uint64_t head = 0;
  for (VertexId v = 0; v < 20; ++v) head += in_degree[v];
  std::uint64_t mid = 0;
  for (VertexId v = 10000; v < 10020; ++v) mid += in_degree[v];
  EXPECT_GT(head, 10 * (mid + 1));
}

TEST(GraphTest, AdjacencyTextRoundTrips) {
  GraphParams params;
  params.vertices = 200;
  const Graph graph = GenerateGraph(params);
  const std::string text = GraphToAdjacencyText(graph);

  std::uint64_t edges = 0;
  std::set<VertexId> sources;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    VertexId src = 0;
    std::vector<VertexId> targets;
    ASSERT_TRUE(ParseAdjacencyLine(line, &src, &targets));
    sources.insert(src);
    edges += targets.size();
    // Spot-check against the CSR form.
    EXPECT_EQ(targets.size(), graph.out_degree(src));
  }
  EXPECT_EQ(sources.size(), 200u);
  EXPECT_EQ(edges, graph.edge_count());
}

// --------------------------------------------------------------------------
// PageRank reference
// --------------------------------------------------------------------------

TEST(PageRankTest, UniformRingConverges) {
  // A directed ring: every vertex has in/out degree 1; ranks stay uniform.
  Graph ring;
  ring.vertices = 10;
  ring.offsets.push_back(0);
  for (VertexId v = 0; v < 10; ++v) {
    ring.targets.push_back((v + 1) % 10);
    ring.offsets.push_back(ring.targets.size());
  }
  const auto ranks = PageRankReference(ring, 20);
  for (double r : ranks) EXPECT_NEAR(r, 1.0, 1e-9);
}

TEST(PageRankTest, PopularVertexRanksHigher) {
  GraphParams params;
  params.vertices = 2000;
  const Graph graph = GenerateGraph(params);
  const auto ranks = PageRankReference(graph, kDefaultIterations);
  // Vertex 0 (most popular by construction) outranks the median vertex.
  EXPECT_GT(ranks[0], ranks[1000] * 5);
  // All ranks at least the base value.
  for (double r : ranks) EXPECT_GE(r, kBaseRank - 1e-12);
}

TEST(PageRankTest, MaxRankDelta) {
  EXPECT_DOUBLE_EQ(MaxRankDelta({1.0, 2.0}, {1.0, 2.5}), 0.5);
  EXPECT_DOUBLE_EQ(MaxRankDelta({}, {}), 0.0);
}

}  // namespace
}  // namespace pstk::workloads
