#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace pstk {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such block");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such block");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW({ (void)r.value(); }, StatusError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// --------------------------------------------------------------------------
// Units
// --------------------------------------------------------------------------

TEST(UnitsTest, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(GiB(8), 8ull * 1024 * 1024 * 1024);
}

TEST(UnitsTest, RateHelpers) {
  // FDR InfiniBand 56 Gbit/s = 7 GB/s.
  EXPECT_DOUBLE_EQ(Gbps(56), 7e9);
  EXPECT_DOUBLE_EQ(TransferTime(MiB(1), MBps(1)), 1048576.0 / 1e6);
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(1.5), "1.5s");
  EXPECT_EQ(FormatDuration(0.0125), "12.5ms");
  EXPECT_EQ(FormatDuration(3.2e-6), "3.2us");
  EXPECT_EQ(FormatDuration(5e-9), "5ns");
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(kMiB * 2), "2MiB");
  EXPECT_EQ(FormatBytes(kGiB * 80), "80GiB");
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differ;
  }
  EXPECT_GT(differ, 8);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, PowerLawBoundsAndSkew) {
  Rng rng(6);
  std::uint64_t ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.PowerLaw(1000, 2.0);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    if (v == 1) ++ones;
  }
  // Power law with alpha=2 concentrates mass at small values.
  EXPECT_GT(ones, n / 4);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(9);
  Rng child = a.Split();
  EXPECT_NE(a.Next(), child.Next());
}

// --------------------------------------------------------------------------
// Stats
// --------------------------------------------------------------------------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SampleTest, ExactQuantiles) {
  Sample s;
  for (int i = 1; i <= 101; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Median(), 51.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 101.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 26.0);
}

TEST(Log2HistogramTest, Buckets) {
  Log2Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(1024);
  EXPECT_EQ(h.count(), 5u);
  ASSERT_GE(h.buckets().size(), 11u);
  EXPECT_EQ(h.buckets()[0], 2u);   // 0 and 1
  EXPECT_EQ(h.buckets()[1], 2u);   // 2 and 3
  EXPECT_EQ(h.buckets()[10], 1u);  // 1024
}

// --------------------------------------------------------------------------
// Strings
// --------------------------------------------------------------------------

TEST(StringsTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitNonEmpty) {
  const auto parts = SplitNonEmpty("  a b  c ", ' ');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("hdfs://x", "hdfs://"));
  EXPECT_FALSE(StartsWith("x", "hdfs://"));
  EXPECT_TRUE(EndsWith("part-00000.txt", ".txt"));
}

TEST(StringsTest, JoinAndLower) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
}

// --------------------------------------------------------------------------
// Table
// --------------------------------------------------------------------------

TEST(TableTest, AsciiLayout) {
  Table t("Demo");
  t.SetHeader({"name", "value"});
  t.Row().Cell("alpha").Cell(std::int64_t{42});
  t.Row().Cell("beta").Cell(3.14159, 2);
  const std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvEscaping) {
  Table t;
  t.SetHeader({"a", "b"});
  t.Row().Cell("x,y").Cell("say \"hi\"");
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Config
// --------------------------------------------------------------------------

TEST(ConfigTest, ParseArgs) {
  const char* argv[] = {"prog", "nodes=8", "scale=0.25", "rdma=true",
                        "name=comet"};
  auto result = Config::FromArgs(5, argv);
  ASSERT_TRUE(result.ok());
  const Config& c = result.value();
  EXPECT_EQ(c.GetInt("nodes", 0), 8);
  EXPECT_DOUBLE_EQ(c.GetDouble("scale", 0), 0.25);
  EXPECT_TRUE(c.GetBool("rdma", false));
  EXPECT_EQ(c.GetString("name", ""), "comet");
  EXPECT_EQ(c.GetInt("missing", 17), 17);
}

TEST(ConfigTest, RejectsMalformed) {
  const char* argv[] = {"prog", "oops"};
  auto result = Config::FromArgs(2, argv);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pstk
