#include "obs/obs.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "net/fabric.h"
#include "net/network.h"
#include "sim/engine.h"

namespace pstk::obs {
namespace {

TEST(RegistryTest, InternIsStableAndIdempotent) {
  Registry reg;
  const TagId a = reg.Intern("alpha");
  const TagId b = reg.Intern("beta");
  EXPECT_NE(a, kNoTag);
  EXPECT_NE(b, kNoTag);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.Intern("alpha"), a);
  EXPECT_EQ(reg.Name(a), "alpha");
  EXPECT_EQ(reg.Name(kNoTag), "");
}

TEST(RegistryTest, CountersAccumulateWhileDisabled) {
  Registry reg;
  const TagId tag = reg.Intern("ops");
  ASSERT_FALSE(reg.enabled());
  reg.Add(tag);
  reg.Add(tag, 41);
  EXPECT_EQ(reg.counter(tag), 42u);
  EXPECT_EQ(reg.CounterByName("ops"), 42u);
  EXPECT_EQ(reg.CounterByName("missing"), 0u);
  // Histograms and events are gated on enabled().
  reg.Observe(tag, 1.0);
  reg.BeginSpan(0, 0, tag, 0.0);
  reg.EndSpan(0, 0, tag, 1.0);
  EXPECT_EQ(reg.histogram(tag), nullptr);
  EXPECT_TRUE(reg.events().empty());
}

TEST(RegistryTest, HistogramStats) {
  Registry reg;
  reg.Enable(true);
  const TagId tag = reg.Intern("latency");
  reg.Observe(tag, 1.0);
  reg.Observe(tag, 2.0);
  reg.Observe(tag, 4.0);
  const Histogram* h = reg.histogram(tag);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 7.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 4.0);
  EXPECT_NEAR(h->mean(), 7.0 / 3.0, 1e-12);
}

TEST(RegistryTest, ChromeTraceJsonShape) {
  Registry reg;
  reg.Enable(true);
  const TagId task = reg.Intern("task");
  const TagId mark = reg.Intern("mark");
  reg.SetTrackName(0, 1, "worker");
  reg.BeginSpan(0, 1, task, 0.5);
  reg.Instant(0, 1, mark, 1.0, reg.Intern("de\"tail"));
  reg.EndSpan(0, 1, task, 1.5);
  const std::string json = reg.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\""), std::string::npos);
  // µs timestamps: 1.5 s -> 1500000.000.
  EXPECT_NE(json.find("\"ts\":1500000.000"), std::string::npos);
  // The detail string is JSON-escaped.
  EXPECT_NE(json.find("de\\\"tail"), std::string::npos);
}

TEST(RegistryTest, AppendWithPidOffsetMergesRuns) {
  Registry reg;
  reg.Enable(true);
  const TagId task = reg.Intern("task");
  reg.SetTrackName(2, 0, "worker");
  reg.BeginSpan(2, 0, task, 0.0);
  reg.EndSpan(2, 0, task, 1.0);
  std::string merged;
  reg.AppendChromeTraceEvents(&merged, 0, "run0 / ");
  reg.AppendChromeTraceEvents(&merged, 1000, "run1 / ");
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":1002"), std::string::npos);
  EXPECT_NE(merged.find("run1 / node 2"), std::string::npos);
}

TEST(RegistryTest, MetricsTableListsCountersAndHistograms) {
  Registry reg;
  reg.Enable(true);
  reg.Add(reg.Intern("zeta.count"), 3);
  reg.Observe(reg.Intern("alpha.latency"), 2.0);
  reg.Intern("never.touched");
  Table table = reg.MetricsTable("run");
  ASSERT_EQ(table.row_count(), 2u);
  // Sorted by metric name; untouched tags are filtered out.
  EXPECT_EQ(table.rows()[0][0], "alpha.latency");
  EXPECT_EQ(table.rows()[1][0], "zeta.count");
}

TEST(ObsIntegrationTest, EngineAndNetworkTraceIsDeterministic) {
  auto run_once = [] {
    sim::Engine engine(123);
    engine.EnableTrace(true);
    auto fabric =
        std::make_shared<net::Fabric>(4, net::TransportParams::RdmaFdr());
    fabric->AttachObs(&engine.obs());
    net::Network network(engine, fabric);
    for (int i = 0; i < 4; ++i) {
      network.CreateEndpoint(i, i);
    }
    for (int i = 0; i < 4; ++i) {
      engine.Spawn("peer" + std::to_string(i), [&, i](sim::Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 0.1));
        if (i % 2 == 0) {
          const std::string text = "payload-" + std::to_string(i);
          network.endpoint(i).Send(ctx, i + 1, /*tag=*/0,
                                   serde::Buffer(text.begin(), text.end()));
        } else {
          (void)network.endpoint(i).Recv(ctx);
        }
      });
    }
    EXPECT_TRUE(engine.Run().status.ok());
    return std::pair(engine.obs().ToChromeTraceJson(),
                     engine.obs().CounterByName("sim.dispatches"));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);
}

}  // namespace
}  // namespace pstk::obs
