#include "obs/obs.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "net/fabric.h"
#include "net/network.h"
#include "sim/engine.h"

namespace pstk::obs {
namespace {

TEST(RegistryTest, InternIsStableAndIdempotent) {
  Registry reg;
  const TagId a = reg.Intern("alpha");
  const TagId b = reg.Intern("beta");
  EXPECT_NE(a, kNoTag);
  EXPECT_NE(b, kNoTag);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.Intern("alpha"), a);
  EXPECT_EQ(reg.Name(a), "alpha");
  EXPECT_EQ(reg.Name(kNoTag), "");
}

TEST(RegistryTest, CountersAccumulateWhileDisabled) {
  Registry reg;
  const TagId tag = reg.Intern("ops");
  ASSERT_FALSE(reg.enabled());
  reg.Add(tag);
  reg.Add(tag, 41);
  EXPECT_EQ(reg.counter(tag), 42u);
  EXPECT_EQ(reg.CounterByName("ops"), 42u);
  EXPECT_EQ(reg.CounterByName("missing"), 0u);
  // Histograms and events are gated on enabled().
  reg.Observe(tag, 1.0);
  reg.BeginSpan(0, 0, tag, 0.0);
  reg.EndSpan(0, 0, tag, 1.0);
  EXPECT_EQ(reg.histogram(tag), nullptr);
  EXPECT_TRUE(reg.events().empty());
}

TEST(RegistryTest, HistogramStats) {
  Registry reg;
  reg.Enable(true);
  const TagId tag = reg.Intern("latency");
  reg.Observe(tag, 1.0);
  reg.Observe(tag, 2.0);
  reg.Observe(tag, 4.0);
  const Histogram* h = reg.histogram(tag);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 7.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 4.0);
  EXPECT_NEAR(h->mean(), 7.0 / 3.0, 1e-12);
}

TEST(RegistryTest, ChromeTraceJsonShape) {
  Registry reg;
  reg.Enable(true);
  const TagId task = reg.Intern("task");
  const TagId mark = reg.Intern("mark");
  reg.SetTrackName(0, 1, "worker");
  reg.BeginSpan(0, 1, task, 0.5);
  reg.Instant(0, 1, mark, 1.0, reg.Intern("de\"tail"));
  reg.EndSpan(0, 1, task, 1.5);
  const std::string json = reg.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\""), std::string::npos);
  // µs timestamps: 1.5 s -> 1500000.000.
  EXPECT_NE(json.find("\"ts\":1500000.000"), std::string::npos);
  // The detail string is JSON-escaped.
  EXPECT_NE(json.find("de\\\"tail"), std::string::npos);
}

TEST(RegistryTest, AppendWithPidOffsetMergesRuns) {
  Registry reg;
  reg.Enable(true);
  const TagId task = reg.Intern("task");
  reg.SetTrackName(2, 0, "worker");
  reg.BeginSpan(2, 0, task, 0.0);
  reg.EndSpan(2, 0, task, 1.0);
  std::string merged;
  reg.AppendChromeTraceEvents(&merged, 0, "run0 / ");
  reg.AppendChromeTraceEvents(&merged, 1000, "run1 / ");
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":1002"), std::string::npos);
  EXPECT_NE(merged.find("run1 / node 2"), std::string::npos);
}

TEST(RegistryTest, MetricsTableListsCountersAndHistograms) {
  Registry reg;
  reg.Enable(true);
  reg.Add(reg.Intern("zeta.count"), 3);
  reg.Observe(reg.Intern("alpha.latency"), 2.0);
  reg.Intern("never.touched");
  Table table = reg.MetricsTable("run");
  ASSERT_EQ(table.row_count(), 2u);
  // Sorted by metric name; untouched tags are filtered out.
  EXPECT_EQ(table.rows()[0][0], "alpha.latency");
  EXPECT_EQ(table.rows()[1][0], "zeta.count");
}

TEST(HistogramTest, MergeCombinesExactly) {
  Histogram a;
  a.Record(1.0);
  a.Record(8.0);
  Histogram b;
  b.Record(0.25);
  b.Record(64.0);
  b.Record(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 75.25);
  EXPECT_DOUBLE_EQ(a.min(), 0.25);
  EXPECT_DOUBLE_EQ(a.max(), 64.0);
  std::uint64_t bucket_total = 0;
  for (const auto c : a.buckets()) bucket_total += c;
  EXPECT_EQ(bucket_total, 5u);
  // Merging an empty histogram changes nothing.
  a.Merge(Histogram{});
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.min(), 0.25);
}

TEST(RegistryShardTest, MergeReproducesSingleThreadedStream) {
  // Reference: the event stream a single-threaded engine would record,
  // actions in global (time, kind, key) order.
  Registry expected;
  expected.Enable(true);
  const TagId ev = expected.Intern("ev");
  expected.Add(expected.Intern("ops"), 5);
  expected.Observe(expected.Intern("lat"), 1.0);
  expected.Observe(expected.Intern("lat"), 4.0);
  expected.Instant(0, 7, ev, 1.0);   // block (1.0, event, seq 7)
  expected.Instant(0, 5, ev, 1.0);   // block (1.0, dispatch, pid 5)
  expected.Instant(1, 9, ev, 2.0);   // block (2.0, dispatch, pid 9)
  expected.Instant(1, 2, ev, 3.0);   // block (3.0, event, seq 2)

  // The same four scheduler actions recorded from two shard slots, each
  // shard seeing only its own interleaving-free subsequence.
  Registry reg;
  reg.Enable(true);
  const TagId ops = reg.Intern("ops");
  const TagId lat = reg.Intern("lat");
  const TagId tag = reg.Intern("ev");
  reg.ConfigureShards(2);
  ASSERT_EQ(reg.shard_count(), 2);
  Registry::SetCurrentShard(0);
  reg.Add(ops, 2);
  reg.Observe(lat, 1.0);
  reg.MarkBlock(1.0, /*kind=*/1, /*key=*/5);
  reg.Instant(0, 5, tag, 1.0);
  reg.MarkBlock(3.0, /*kind=*/0, /*key=*/2);
  reg.Instant(1, 2, tag, 3.0);
  Registry::SetCurrentShard(1);
  reg.Add(ops, 3);
  reg.Observe(lat, 4.0);
  reg.MarkBlock(1.0, /*kind=*/0, /*key=*/7);
  reg.Instant(0, 7, tag, 1.0);
  reg.MarkBlock(2.0, /*kind=*/1, /*key=*/9);
  reg.Instant(1, 9, tag, 2.0);
  Registry::SetCurrentShard(-1);
  reg.MergeShards();
  EXPECT_EQ(reg.shard_count(), 0);

  // Events interleave back into global schedule order; counters and
  // histograms fold; the exported bytes match the single-threaded run.
  EXPECT_EQ(reg.ToChromeTraceJson(), expected.ToChromeTraceJson());
  EXPECT_EQ(reg.CounterByName("ops"), 5u);
  const Histogram* h = reg.histogram(lat);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 5.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 4.0);
}

TEST(RegistryShardTest, UnboundThreadRecordsToMainStreamWhileSharded) {
  Registry reg;
  reg.Enable(true);
  const TagId ops = reg.Intern("ops");
  reg.ConfigureShards(2);
  // The coordinator thread (shard slot unset) keeps writing to the main
  // stream even while shard logs exist.
  reg.Add(ops, 7);
  reg.MergeShards();
  EXPECT_EQ(reg.CounterByName("ops"), 7u);
}

TEST(ObsIntegrationTest, EngineAndNetworkTraceIsDeterministic) {
  auto run_once = [] {
    sim::Engine engine(123);
    engine.EnableTrace(true);
    auto fabric =
        std::make_shared<net::Fabric>(4, net::TransportParams::RdmaFdr());
    fabric->AttachObs(&engine.obs());
    net::Network network(engine, fabric);
    for (int i = 0; i < 4; ++i) {
      network.CreateEndpoint(i, i);
    }
    for (int i = 0; i < 4; ++i) {
      engine.Spawn("peer" + std::to_string(i), [&, i](sim::Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 0.1));
        if (i % 2 == 0) {
          const std::string text = "payload-" + std::to_string(i);
          network.endpoint(i).Send(ctx, i + 1, /*tag=*/0,
                                   serde::Buffer(text.begin(), text.end()));
        } else {
          (void)network.endpoint(i).Recv(ctx);
        }
      });
    }
    EXPECT_TRUE(engine.Run().status.ok());
    return std::pair(engine.obs().ToChromeTraceJson(),
                     engine.obs().CounterByName("sim.dispatches"));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);
}

}  // namespace
}  // namespace pstk::obs
