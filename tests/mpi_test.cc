#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mpi/mpi.h"
#include "sim/engine.h"

namespace pstk::mpi {
namespace {

struct MpiFixture {
  explicit MpiFixture(std::size_t nodes = 4, double scale = 1.0) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes), scale);
  }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
};

TEST(MpiTest, RanksSeeCorrectRankAndSize) {
  MpiFixture f;
  World world(*f.cluster, 8, 2);
  std::vector<int> seen(8, -1);
  auto t = world.RunSpmd([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 8);
    seen[comm.rank()] = comm.rank();
    // Block placement: 2 ranks per node.
    EXPECT_EQ(comm.node(), comm.rank() / 2);
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int r = 0; r < 8; ++r) EXPECT_EQ(seen[r], r);
}

TEST(MpiTest, SendRecvTyped) {
  MpiFixture f;
  World world(*f.cluster, 2, 1);
  std::vector<double> received(4);
  auto t = world.RunSpmd([&](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
      comm.Send<double>(data, /*dest=*/1, /*tag=*/5);
    } else {
      const auto n = comm.Recv<double>(received, /*source=*/0, /*tag=*/5);
      EXPECT_EQ(n, 4u);
    }
  });
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(received[3], 4.0);
}

TEST(MpiTest, IsendIrecvWaitall) {
  MpiFixture f;
  World world(*f.cluster, 2, 1);
  int got_a = 0;
  int got_b = 0;
  auto t = world.RunSpmd([&](Comm& comm) {
    if (comm.rank() == 0) {
      int a = 11;
      int b = 22;
      Request r1 = comm.Isend(&a, sizeof(a), 1, 1);
      Request r2 = comm.Isend(&b, sizeof(b), 1, 2);
      std::vector<Request> reqs{r1, r2};
      comm.Waitall(reqs);
    } else {
      Request r1 = comm.Irecv(&got_a, sizeof(got_a), 0, 1);
      Request r2 = comm.Irecv(&got_b, sizeof(got_b), 0, 2);
      comm.Wait(r2);
      comm.Wait(r1);
    }
  });
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(got_a, 11);
  EXPECT_EQ(got_b, 22);
}

TEST(MpiTest, BarrierSynchronizes) {
  MpiFixture f;
  World world(*f.cluster, 6, 2);
  std::vector<SimTime> after(6);
  auto t = world.RunSpmd([&](Comm& comm) {
    // Rank r works r*10ms before the barrier.
    comm.ctx().Compute(0.01 * comm.rank());
    comm.Barrier();
    after[comm.rank()] = comm.ctx().now();
  });
  ASSERT_TRUE(t.ok());
  // Everyone leaves the barrier at (or after) the slowest rank's entry.
  for (int r = 0; r < 6; ++r) EXPECT_GE(after[r], 0.05);
}

class BcastSweep : public ::testing::TestWithParam<int> {};

TEST_P(BcastSweep, AllRanksReceiveRootValue) {
  const int nranks = GetParam();
  MpiFixture f(8);
  World world(*f.cluster, nranks, 4);
  std::vector<std::uint64_t> got(nranks, 0);
  auto t = world.RunSpmd([&](Comm& comm) {
    std::uint64_t value = comm.rank() == 2 % comm.size() ? 777u : 0u;
    comm.Bcast(&value, sizeof(value), 2 % comm.size());
    got[comm.rank()] = value;
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int r = 0; r < nranks; ++r) EXPECT_EQ(got[r], 777u) << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BcastSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 32));

class ReduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReduceSweep, SumReachesRoot) {
  const int nranks = GetParam();
  MpiFixture f(8);
  World world(*f.cluster, nranks, 8);
  std::vector<std::int64_t> result(3, -1);
  auto t = world.RunSpmd([&](Comm& comm) {
    // data[i] = rank + i; sum over ranks = n*(n-1)/2 + n*i.
    std::vector<std::int64_t> data{comm.rank() + 0, comm.rank() + 1,
                                   comm.rank() + 2};
    std::vector<std::int64_t> out(3);
    comm.Reduce<std::int64_t>(data, out, /*root=*/0);
    if (comm.rank() == 0) result = out;
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const std::int64_t n = nranks;
  const std::int64_t base = n * (n - 1) / 2;
  EXPECT_EQ(result[0], base);
  EXPECT_EQ(result[1], base + n);
  EXPECT_EQ(result[2], base + 2 * n);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ReduceSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 64));

class AllreduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceSweep, EveryRankGetsTheSum) {
  const int nranks = GetParam();
  MpiFixture f(8);
  World world(*f.cluster, nranks, 8);
  std::vector<std::int64_t> results(nranks, -1);
  auto t = world.RunSpmd([&](Comm& comm) {
    std::vector<std::int64_t> data{1};
    std::vector<std::int64_t> out(1);
    comm.Allreduce<std::int64_t>(data, out);
    results[comm.rank()] = out[0];
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int r = 0; r < nranks; ++r) EXPECT_EQ(results[r], nranks);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllreduceSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 7, 8, 12, 16, 31,
                                           32, 64));

TEST(MpiTest, AllreduceMaxOperator) {
  MpiFixture f;
  World world(*f.cluster, 5, 2);
  std::vector<std::int64_t> results(5, -1);
  auto t = world.RunSpmd([&](Comm& comm) {
    std::vector<std::int64_t> data{(comm.rank() * 7) % 5};
    std::vector<std::int64_t> out(1);
    comm.Allreduce<std::int64_t, OpMax<std::int64_t>>(data, out);
    results[comm.rank()] = out[0];
  });
  ASSERT_TRUE(t.ok());
  for (int r = 0; r < 5; ++r) EXPECT_EQ(results[r], 4);
}

TEST(MpiTest, GatherCollectsInRankOrder) {
  MpiFixture f;
  World world(*f.cluster, 6, 2);
  std::vector<int> gathered(12, -1);
  auto t = world.RunSpmd([&](Comm& comm) {
    std::vector<int> mine{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<int> out(comm.rank() == 1 ? 12 : 0);
    comm.Gather<int>(mine, out, /*root=*/1);
    if (comm.rank() == 1) gathered = out;
  });
  ASSERT_TRUE(t.ok());
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(gathered[2 * r], r * 10);
    EXPECT_EQ(gathered[2 * r + 1], r * 10 + 1);
  }
}

class AllgatherSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllgatherSweep, RingDeliversAllBlocks) {
  const int nranks = GetParam();
  MpiFixture f(8);
  World world(*f.cluster, nranks, 8);
  std::vector<std::vector<int>> results(nranks);
  auto t = world.RunSpmd([&](Comm& comm) {
    std::vector<int> mine{comm.rank(), comm.rank() + 100};
    std::vector<int> out(2 * nranks);
    comm.Allgather<int>(mine, out);
    results[comm.rank()] = out;
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  for (int r = 0; r < nranks; ++r) {
    for (int s = 0; s < nranks; ++s) {
      EXPECT_EQ(results[r][2 * s], s);
      EXPECT_EQ(results[r][2 * s + 1], s + 100);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllgatherSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(MpiTest, ScatterDistributesPieces) {
  MpiFixture f;
  World world(*f.cluster, 4, 2);
  std::vector<int> received(4, -1);
  auto t = world.RunSpmd([&](Comm& comm) {
    std::vector<int> all;
    if (comm.rank() == 0) all = {100, 101, 102, 103};
    std::vector<int> mine(1);
    comm.Scatter<int>(all, mine, /*root=*/0);
    received[comm.rank()] = mine[0];
  });
  ASSERT_TRUE(t.ok());
  for (int r = 0; r < 4; ++r) EXPECT_EQ(received[r], 100 + r);
}

TEST(MpiTest, AlltoallTransposes) {
  MpiFixture f;
  const int n = 4;
  World world(*f.cluster, n, 2);
  std::vector<std::vector<int>> results(n);
  auto t = world.RunSpmd([&](Comm& comm) {
    // Element j of rank i is i*10 + j; after alltoall rank i holds j*10 + i.
    std::vector<int> data(n);
    for (int j = 0; j < n; ++j) data[j] = comm.rank() * 10 + j;
    std::vector<int> out(n);
    comm.Alltoall<int>(data, out);
    results[comm.rank()] = out;
  });
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(results[i][j], j * 10 + i);
    }
  }
}

TEST(MpiTest, SplitCreatesIndependentComms) {
  MpiFixture f;
  World world(*f.cluster, 8, 2);
  std::vector<int> subrank(8, -1);
  std::vector<std::int64_t> subsum(8, -1);
  auto t = world.RunSpmd([&](Comm& comm) {
    auto sub = comm.Split(comm.rank() % 2, comm.rank());
    subrank[comm.rank()] = sub->rank();
    EXPECT_EQ(sub->size(), 4);
    std::vector<std::int64_t> data{comm.rank()};
    std::vector<std::int64_t> out(1);
    sub->Allreduce<std::int64_t>(data, out);
    subsum[comm.rank()] = out[0];
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // Evens: 0+2+4+6 = 12; odds: 1+3+5+7 = 16.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(subsum[r], r % 2 == 0 ? 12 : 16);
    EXPECT_EQ(subrank[r], r / 2);
  }
}

TEST(MpiTest, IprobeSeesPendingMessage) {
  MpiFixture f;
  World world(*f.cluster, 2, 1);
  bool before = true;
  bool after = false;
  auto t = world.RunSpmd([&](Comm& comm) {
    if (comm.rank() == 0) {
      int x = 1;
      comm.ctx().SleepFor(0.5);
      comm.Send(&x, sizeof(x), 1, 9);
    } else {
      before = comm.Iprobe(0, 9);  // nothing yet
      comm.ctx().SleepFor(1.0);
      after = comm.Iprobe(0, 9);
      int x = 0;
      comm.Recv(&x, sizeof(x), 0, 9);
    }
  });
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(MpiTest, CollectiveLatencyScalesLogarithmically) {
  // Allreduce of a tiny payload: time should grow ~log2(n), far from
  // linearly. Compare 4 vs 64 ranks.
  auto measure = [](int nranks) {
    MpiFixture f(8);
    World world(*f.cluster, nranks, 8);
    SimTime elapsed = 0;
    MpiOptions options;
    auto t = world.RunSpmd([&](Comm& comm) {
      comm.Barrier();
      const SimTime start = comm.ctx().now();
      std::vector<float> data{1.0F};
      std::vector<float> out(1);
      for (int i = 0; i < 10; ++i) comm.Allreduce<float>(data, out);
      if (comm.rank() == 0) elapsed = comm.ctx().now() - start;
    });
    EXPECT_TRUE(t.ok());
    return elapsed;
  };
  const SimTime t4 = measure(4);
  const SimTime t64 = measure(64);
  EXPECT_GT(t64, t4);
  EXPECT_LT(t64, t4 * 8);  // log2(64)/log2(4) = 3, allow slack for NIC load
}

TEST(MpiTest, RankFailureAbortsJob) {
  MpiFixture f;
  World world(*f.cluster, 4, 1);
  world.SpawnRanks([](Comm& comm) {
    comm.ctx().SleepFor(10.0);
    comm.Barrier();
  });
  f.cluster->FailNode(2, 5.0);
  // RunSpmd not used (we needed to inject between spawn and run).
  auto result = f.engine.Run();
  EXPECT_GT(result.killed, 0u);
}

// --------------------------------------------------------------------------
// MPI-IO
// --------------------------------------------------------------------------

std::string MakeText(std::size_t bytes) {
  std::string out;
  out.reserve(bytes + 32);
  int i = 0;
  while (out.size() < bytes) {
    out += "record-" + std::to_string(i++) + "\n";
  }
  return out;
}

TEST(MpiIoTest, OpenRequiresLocalReplica) {
  MpiFixture f(2);
  // Stage the file on node 0 only.
  f.cluster->scratch(0).Install("/scratch/in", MakeText(1000));
  World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](Comm& comm) {
    auto file = File::OpenAll(comm, "/scratch/in");
    if (comm.node() == 0) {
      EXPECT_TRUE(file.ok());
    } else {
      EXPECT_FALSE(file.ok());
    }
  });
  ASSERT_TRUE(t.ok());
}

TEST(MpiIoTest, ParallelReadCoversWholeFile) {
  MpiFixture f(4);
  const std::string content = MakeText(100000);
  for (int n = 0; n < 4; ++n) {
    f.cluster->scratch(n).Install("/scratch/in", content);
  }
  World world(*f.cluster, 4, 1);
  std::vector<std::string> pieces(4);
  auto t = world.RunSpmd([&](Comm& comm) {
    auto file = File::OpenAll(comm, "/scratch/in");
    ASSERT_TRUE(file.ok());
    const Bytes chunk = file->size() / comm.size();
    const Bytes offset = chunk * comm.rank();
    const Bytes len = comm.rank() == comm.size() - 1
                          ? file->size() - offset
                          : chunk;
    auto data =
        file->ReadAtAll(comm, offset, static_cast<std::int32_t>(len));
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    pieces[comm.rank()] = data.value();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  std::string reassembled;
  for (const auto& piece : pieces) reassembled += piece;
  EXPECT_EQ(reassembled, content);
}

TEST(MpiIoTest, ScaledFileSizeIsModeled) {
  MpiFixture f(2, /*scale=*/0.001);
  const std::string content = MakeText(64 * kKiB);
  f.cluster->scratch(0).Install("/in", content);
  f.cluster->scratch(1).Install("/in", content);
  World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](Comm& comm) {
    auto file = File::OpenAll(comm, "/in");
    ASSERT_TRUE(file.ok());
    // Modeled size is 1000x the staged size.
    EXPECT_NEAR(static_cast<double>(file->size()),
                static_cast<double>(content.size()) * 1000.0,
                static_cast<double>(content.size()));
  });
  ASSERT_TRUE(t.ok());
}

TEST(MpiIoTest, IntCountCannotExpressMoreThan2GB) {
  // The structural limitation from the paper: with a modeled 8 GiB file and
  // 2 ranks, the per-rank chunk (4 GiB) exceeds INT32_MAX and cannot even be
  // passed to ReadAtAll. Callers must detect this, as our benches do.
  MpiFixture f(2, /*scale=*/0.00001);
  const std::string content = MakeText(90 * kKiB);  // ~8.6 GiB modeled
  f.cluster->scratch(0).Install("/in", content);
  f.cluster->scratch(1).Install("/in", content);
  World world(*f.cluster, 2, 1);
  bool chunk_too_large = false;
  auto t = world.RunSpmd([&](Comm& comm) {
    auto file = File::OpenAll(comm, "/in");
    ASSERT_TRUE(file.ok());
    const Bytes chunk = file->size() / comm.size();
    if (chunk > static_cast<Bytes>(std::numeric_limits<std::int32_t>::max())) {
      chunk_too_large = true;  // MPI_File_read_at_all(int count) unusable
      return;
    }
    FAIL() << "expected the chunk to exceed INT32_MAX";
  });
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(chunk_too_large);
}

TEST(MpiIoTest, ReadAtIndependentMatchesCollective) {
  MpiFixture f(2);
  const std::string content = MakeText(5000);
  f.cluster->scratch(0).Install("/in", content);
  f.cluster->scratch(1).Install("/in", content);
  World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](Comm& comm) {
    auto file = File::OpenAll(comm, "/in");
    ASSERT_TRUE(file.ok());
    auto collective = file->ReadAtAll(comm, 100, 50);
    auto independent = file->ReadAt(comm, 100, 50);
    ASSERT_TRUE(collective.ok());
    ASSERT_TRUE(independent.ok());
    EXPECT_EQ(collective.value(), independent.value());
  });
  ASSERT_TRUE(t.ok());
}

}  // namespace
}  // namespace pstk::mpi

namespace pstk::mpi {
namespace {

// Property sweep: ReadLinesAtAll over ranges that tile the file must yield
// every line exactly once, for any rank count and scale.
class ReadLinesSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ReadLinesSweep, TilingRangesCoverEveryLineOnce) {
  const auto [nranks, scale] = GetParam();
  MpiFixture f(8, scale);
  std::string content;
  int expected_lines = 0;
  {
    Rng rng(nranks * 1000 + 7);
    for (int i = 0; i < 400; ++i) {
      content += "line-" + std::to_string(i);
      content += std::string(rng.Below(60), '.');
      content += '\n';
      ++expected_lines;
    }
  }
  for (int n = 0; n < 8; ++n) {
    f.cluster->scratch(n).Install("/in", content);
  }
  World world(*f.cluster, nranks, 8);
  std::vector<std::string> pieces(nranks);
  auto t = world.RunSpmd([&](Comm& comm) {
    auto file = File::OpenAll(comm, "/in");
    ASSERT_TRUE(file.ok());
    const Bytes chunk = file->size() / comm.size();
    const Bytes offset = chunk * comm.rank();
    const Bytes len = comm.rank() == comm.size() - 1
                          ? file->size() - offset
                          : chunk;
    auto data =
        file->ReadLinesAtAll(comm, offset, static_cast<std::int32_t>(len));
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    pieces[comm.rank()] = data.value();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  std::string reassembled;
  for (const auto& piece : pieces) {
    // Every piece is whole lines.
    if (!piece.empty()) {
      EXPECT_EQ(piece.back(), '\n');
    }
    reassembled += piece;
  }
  EXPECT_EQ(reassembled, content);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndScales, ReadLinesSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16, 64),
                       ::testing::Values(1.0, 0.1, 0.001)));

}  // namespace
}  // namespace pstk::mpi
