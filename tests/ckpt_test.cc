// Tests for pstk::ckpt — the Young/Daly interval helper, SnapshotStore
// commit/invalidation semantics, and RestartManager end-to-end recovery
// for MPI and SHMEM jobs under injected node failures. The integration
// tests assert the recovery *result* (final reduced value identical to a
// failure-free run), not just that the job limped to completion.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "ckpt/ckpt.h"
#include "cluster/cluster.h"
#include "mpi/mpi.h"
#include "serde/serde.h"
#include "shmem/shmem.h"
#include "sim/fault.h"

namespace pstk {
namespace {

serde::Buffer Frag(std::int32_t tag) {
  serde::Writer w;
  w.WriteRaw<std::int32_t>(tag);
  return w.TakeBuffer();
}

// ===========================================================================
// Young/Daly interval
// ===========================================================================

TEST(YoungDalyTest, MatchesClosedForm) {
  // tau* = sqrt(2 * C * MTBF): C = 2s, MTBF = 100s -> sqrt(400) = 20s.
  EXPECT_DOUBLE_EQ(ckpt::YoungDalyInterval(2.0, 100.0), 20.0);
}

TEST(YoungDalyTest, ClampedBelowByWriteCost) {
  // sqrt(2 * 50 * 1) = 10 < C = 50: an interval shorter than the write
  // cost would mean checkpointing back-to-back forever.
  EXPECT_DOUBLE_EQ(ckpt::YoungDalyInterval(50.0, 1.0), 50.0);
}

// ===========================================================================
// SnapshotStore: the 2-phase commit point and copy invalidation
// ===========================================================================

TEST(SnapshotStoreTest, CommitsOnlyWhenEveryRankWrote) {
  ckpt::SnapshotStore store(3);
  EXPECT_FALSE(store.RecordWrite(0, 0, Frag(0), {0}));
  EXPECT_FALSE(store.RecordWrite(0, 1, Frag(1), {0}));
  EXPECT_EQ(store.LatestRestorableEpoch(), std::nullopt);
  EXPECT_TRUE(store.RecordWrite(0, 2, Frag(2), {1}));
  EXPECT_EQ(store.LatestRestorableEpoch(), std::optional<int>(0));
  ASSERT_NE(store.Fragment(0, 2), nullptr);
  EXPECT_EQ(store.FragmentCopies(0, 2), std::vector<int>{1});
}

TEST(SnapshotStoreTest, ReplayRewriteDoesNotRecommit) {
  // After a rollback the replayed attempt rewrites fragments the failed
  // attempt already left behind; only the first completion is the commit.
  ckpt::SnapshotStore store(1);
  EXPECT_TRUE(store.RecordWrite(4, 0, Frag(7), {0}));
  EXPECT_FALSE(store.RecordWrite(4, 0, Frag(7), {0}));
  EXPECT_EQ(store.LatestRestorableEpoch(), std::optional<int>(4));
}

TEST(SnapshotStoreTest, DropNodeInvalidatesUnreplicatedEpochs) {
  ckpt::SnapshotStore store(2);
  // Epoch 0: each rank's only copy lives on its own node.
  store.RecordWrite(0, 0, Frag(0), {0});
  store.RecordWrite(0, 1, Frag(1), {1});
  // Epoch 1: buddy-replicated (SCR partner scheme).
  store.RecordWrite(1, 0, Frag(2), {0, 1});
  store.RecordWrite(1, 1, Frag(3), {1, 0});
  EXPECT_EQ(store.LatestRestorableEpoch(), std::optional<int>(1));

  store.DropNode(1);  // node 1's scratch is wiped
  // Epoch 0 lost rank 1's only copy; epoch 1 survives via the buddies.
  EXPECT_EQ(store.LatestRestorableEpoch(), std::optional<int>(1));
  store.DropNode(0);
  EXPECT_EQ(store.LatestRestorableEpoch(), std::nullopt);
}

TEST(SnapshotStoreTest, NfsCopiesSurviveAnyNodeLoss) {
  ckpt::SnapshotStore store(2);
  store.RecordWrite(0, 0, Frag(0), {ckpt::SnapshotStore::kNfsNode});
  store.RecordWrite(0, 1, Frag(1), {ckpt::SnapshotStore::kNfsNode});
  store.DropNode(0);
  store.DropNode(1);
  EXPECT_EQ(store.LatestRestorableEpoch(), std::optional<int>(0));
}

// ===========================================================================
// RestartManager end-to-end: an iterative Allreduce job that accumulates
// sum_{iter=0..11} sum_{rank=0..7} (iter + rank) = 8*66 + 12*28 = 864.
// ===========================================================================

constexpr int kIters = 12;
constexpr double kExpectedValue = 864.0;

ckpt::HpcJob TestJob() {
  ckpt::HpcJob job;
  job.spec = cluster::ClusterSpec::Comet(4);
  job.procs = 8;
  job.procs_per_node = 2;
  return job;
}

ckpt::RestartManager::MpiBody MpiBody(double* final_value) {
  return [final_value](mpi::Comm& comm, ckpt::CheckpointCoordinator& coord) {
    const int rank = comm.rank();
    const int node = rank / 2;
    comm.Barrier();  // collective boundary: channels quiesced
    int start = 0;
    double value = 0.0;
    const serde::Buffer* frag = coord.Restore(comm.ctx(), rank, node);
    if (frag != nullptr) {
      serde::Reader r(*frag);
      start = static_cast<int>(r.ReadRaw<std::int32_t>().value()) + 1;
      value = r.ReadRaw<double>().value();
    }
    std::vector<double> contrib(1, 0.0);
    std::vector<double> sum(1, 0.0);
    for (int iter = start; iter < kIters; ++iter) {
      comm.ctx().Compute(0.05);
      contrib[0] = static_cast<double>(iter + rank);
      comm.Allreduce<double>(contrib, sum);
      value += sum[0];
      serde::Writer w;
      w.WriteRaw<std::int32_t>(iter);
      w.WriteRaw<double>(value);
      coord.Checkpoint(comm.ctx(), rank, node, iter, w.TakeBuffer());
    }
    if (rank == 0) *final_value = value;
  };
}

TEST(RestartManagerTest, FailureFreeRunMatchesClosedForm) {
  ckpt::CkptPolicy policy;
  policy.interval = 0.1;
  policy.target_disk = ckpt::Target::kNfs;
  double value = 0.0;
  ckpt::RestartManager manager(policy, sim::FaultPlan{});
  auto outcome = manager.RunMpi(TestJob(), MpiBody(&value));
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_TRUE(outcome.value().completed);
  EXPECT_EQ(outcome.value().restarts, 0);
  EXPECT_GT(outcome.value().checkpoints_committed, 0);
  EXPECT_DOUBLE_EQ(value, kExpectedValue);
}

TEST(RestartManagerTest, MpiJobSurvivesNodeFailureViaNfsSnapshots) {
  ckpt::CkptPolicy policy;
  policy.interval = 0.1;
  policy.target_disk = ckpt::Target::kNfs;
  policy.restart_delay = 1.0;
  auto plan = sim::FaultPlan::Parse("node:1@0.5");
  ASSERT_TRUE(plan.ok());
  double value = 0.0;
  ckpt::RestartManager manager(policy, plan.value());
  auto outcome = manager.RunMpi(TestJob(), MpiBody(&value));
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_TRUE(outcome.value().completed);
  EXPECT_GE(outcome.value().restarts, 1);
  EXPECT_GT(outcome.value().checkpoints_committed, 0);
  EXPECT_GT(outcome.value().snapshot_bytes, 0u);
  // The restart replayed from a snapshot, not from scratch, yet the
  // answer is bit-identical to the failure-free run.
  EXPECT_DOUBLE_EQ(value, kExpectedValue);
  // Time-to-solution charges the requeue delay at least once.
  EXPECT_GT(outcome.value().time_to_solution, policy.restart_delay);
}

TEST(RestartManagerTest, RecoveryIsBackendInvariant) {
  // The same faulty job on both execution backends: every recovery
  // observable (attempts, restarts, commits, virtual times) and the final
  // answer must match, because the scheduler backend is pure mechanism —
  // the kill/unwind/replay sequence is scheduling-contract behavior.
  auto run = [](sim::Backend backend, double* value) {
    ckpt::CkptPolicy policy;
    policy.interval = 0.1;
    policy.target_disk = ckpt::Target::kNfs;
    policy.restart_delay = 1.0;
    auto plan = sim::FaultPlan::Parse("node:1@0.5");
    EXPECT_TRUE(plan.ok());
    ckpt::RestartManager manager(policy, plan.value());
    ckpt::HpcJob job = TestJob();
    job.backend = backend;
    return manager.RunMpi(job, MpiBody(value));
  };
  double fiber_value = 0.0;
  double thread_value = 0.0;
  auto fibers = run(sim::Backend::kFibers, &fiber_value);
  auto threads = run(sim::Backend::kThreads, &thread_value);
  ASSERT_TRUE(fibers.ok()) << fibers.status().message();
  ASSERT_TRUE(threads.ok()) << threads.status().message();
  EXPECT_EQ(fibers.value().completed, threads.value().completed);
  EXPECT_EQ(fibers.value().attempts, threads.value().attempts);
  EXPECT_EQ(fibers.value().restarts, threads.value().restarts);
  EXPECT_EQ(fibers.value().checkpoints_committed,
            threads.value().checkpoints_committed);
  EXPECT_EQ(fibers.value().snapshot_bytes, threads.value().snapshot_bytes);
  EXPECT_DOUBLE_EQ(fibers.value().time_to_solution,
                   threads.value().time_to_solution);
  EXPECT_DOUBLE_EQ(fibers.value().rollback_work,
                   threads.value().rollback_work);
  EXPECT_DOUBLE_EQ(fiber_value, thread_value);
  EXPECT_DOUBLE_EQ(fiber_value, kExpectedValue);
}

TEST(RestartManagerTest, RecoveryIsShardCountInvariant) {
  // The same faulty job on a sharded host engine, the whole SPMD job
  // pinned to one shard (its ranks interact at zero lookahead, so they
  // may not be split): every recovery observable must match the
  // single-shard run exactly.
  auto run = [](int shards, double* value) {
    ckpt::CkptPolicy policy;
    policy.interval = 0.1;
    policy.target_disk = ckpt::Target::kNfs;
    policy.restart_delay = 1.0;
    auto plan = sim::FaultPlan::Parse("node:1@0.5");
    EXPECT_TRUE(plan.ok());
    ckpt::RestartManager manager(policy, plan.value());
    ckpt::HpcJob job = TestJob();
    job.shard_options.shards = shards;
    job.shard_options.shard_of_node = [](int) { return 0; };
    return manager.RunMpi(job, MpiBody(value));
  };
  double one_value = 0.0;
  double eight_value = 0.0;
  auto one = run(1, &one_value);
  auto eight = run(8, &eight_value);
  ASSERT_TRUE(one.ok()) << one.status().message();
  ASSERT_TRUE(eight.ok()) << eight.status().message();
  EXPECT_EQ(one.value().completed, eight.value().completed);
  EXPECT_EQ(one.value().attempts, eight.value().attempts);
  EXPECT_EQ(one.value().restarts, eight.value().restarts);
  EXPECT_EQ(one.value().checkpoints_committed,
            eight.value().checkpoints_committed);
  EXPECT_EQ(one.value().snapshot_bytes, eight.value().snapshot_bytes);
  EXPECT_DOUBLE_EQ(one.value().time_to_solution,
                   eight.value().time_to_solution);
  EXPECT_DOUBLE_EQ(one.value().rollback_work, eight.value().rollback_work);
  EXPECT_DOUBLE_EQ(one_value, eight_value);
  EXPECT_DOUBLE_EQ(one_value, kExpectedValue);
}

TEST(RestartManagerTest, AbortRerunRecoversWithoutSnapshots) {
  ckpt::CkptPolicy policy;
  policy.interval = 0;  // checkpointing disabled: abort + full rerun
  policy.restart_delay = 1.0;
  auto plan = sim::FaultPlan::Parse("node:1@0.5");
  ASSERT_TRUE(plan.ok());
  double value = 0.0;
  ckpt::RestartManager manager(policy, plan.value());
  auto outcome = manager.RunMpi(TestJob(), MpiBody(&value));
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_TRUE(outcome.value().completed);
  EXPECT_GE(outcome.value().restarts, 1);
  EXPECT_EQ(outcome.value().checkpoints_committed, 0);
  EXPECT_EQ(outcome.value().snapshot_bytes, 0u);
  EXPECT_DOUBLE_EQ(value, kExpectedValue);
  // The whole prefix was recomputed: rollback work >= the failed span.
  EXPECT_GT(outcome.value().rollback_work, 0.0);
}

TEST(RestartManagerTest, ExhaustedRestartBudgetReportsDnf) {
  ckpt::CkptPolicy policy;
  policy.interval = 0.1;
  policy.target_disk = ckpt::Target::kNfs;
  policy.restart_delay = 1.0;
  policy.max_restarts = 0;
  auto plan = sim::FaultPlan::Parse("node:1@0.5");
  ASSERT_TRUE(plan.ok());
  double value = 0.0;
  ckpt::RestartManager manager(policy, plan.value());
  auto outcome = manager.RunMpi(TestJob(), MpiBody(&value));
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_FALSE(outcome.value().completed);  // data, not an error
  EXPECT_EQ(outcome.value().attempts, 1);
  // Every killed attempt counts as a consumed restart, so DNF after the
  // only permitted attempt reports one (the bench prints it as "DNF(1r)").
  EXPECT_EQ(outcome.value().restarts, 1);
}

TEST(RestartManagerTest, ShmemJobSurvivesViaBuddyReplicatedSsd) {
  // Local-SSD fragments die with the node; the buddy replica on the next
  // node is what makes the snapshot restorable after node 1 is wiped.
  ckpt::CkptPolicy policy;
  policy.interval = 0.1;
  policy.target_disk = ckpt::Target::kLocalSsd;
  policy.replicate = true;
  policy.restart_delay = 1.0;
  auto plan = sim::FaultPlan::Parse("node:1@0.5");
  ASSERT_TRUE(plan.ok());
  double value = 0.0;
  ckpt::RestartManager manager(policy, plan.value());
  auto outcome = manager.RunShmem(
      TestJob(), [&](shmem::Pe& pe, ckpt::CheckpointCoordinator& coord) {
        const int me = pe.my_pe();
        const int node = me / 2;
        auto contrib_s = pe.Malloc<double>(1);
        auto sum_s = pe.Malloc<double>(1);
        pe.BarrierAll();  // collective boundary: channels quiesced
        int start = 0;
        double local = 0.0;
        const serde::Buffer* frag = coord.Restore(pe.ctx(), me, node);
        if (frag != nullptr) {
          serde::Reader r(*frag);
          start = static_cast<int>(r.ReadRaw<std::int32_t>().value()) + 1;
          local = r.ReadRaw<double>().value();
        }
        for (int iter = start; iter < kIters; ++iter) {
          pe.ctx().Compute(0.05);
          pe.Local(contrib_s)[0] = static_cast<double>(iter + me);
          pe.SumToAll(sum_s, contrib_s, 1);
          local += pe.Local(sum_s)[0];
          serde::Writer w;
          w.WriteRaw<std::int32_t>(iter);
          w.WriteRaw<double>(local);
          coord.Checkpoint(pe.ctx(), me, node, iter, w.TakeBuffer());
        }
        if (me == 0) value = local;
      });
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_TRUE(outcome.value().completed);
  EXPECT_GE(outcome.value().restarts, 1);
  EXPECT_GT(outcome.value().checkpoints_committed, 0);
  EXPECT_DOUBLE_EQ(value, kExpectedValue);
}

}  // namespace
}  // namespace pstk
