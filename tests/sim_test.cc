#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/timeline.h"

namespace pstk::sim {
namespace {

TEST(EngineTest, SingleProcessAdvancesClock) {
  Engine engine;
  SimTime end = -1;
  engine.Spawn("solo", [&](Context& ctx) {
    ctx.Compute(1.5);
    ctx.Compute(0.5);
    end = ctx.now();
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_DOUBLE_EQ(result.end_time, 2.0);
  EXPECT_EQ(result.completed, 1u);
}

TEST(EngineTest, SleepUntilAdvances) {
  Engine engine;
  SimTime observed = 0;
  engine.Spawn("sleeper", [&](Context& ctx) {
    ctx.SleepUntil(10.0);
    observed = ctx.now();
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(observed, 10.0);
}

TEST(EngineTest, SleepForIsRelative) {
  Engine engine;
  SimTime observed = 0;
  engine.Spawn("sleeper", [&](Context& ctx) {
    ctx.Compute(2.0);
    ctx.SleepFor(3.0);
    observed = ctx.now();
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(observed, 5.0);
}

TEST(EngineTest, MinClockDispatchOrder) {
  // Three processes with different compute times interleave in virtual-time
  // order, not creation order.
  Engine engine;
  std::vector<std::string> order;
  auto worker = [&](double step, const std::string& tag) {
    return [&, step, tag](Context& ctx) {
      for (int i = 0; i < 3; ++i) {
        ctx.Compute(step);
        // Force a scheduling point so interleaving is observable.
        ctx.Yield();
        order.push_back(tag + std::to_string(i));
      }
    };
  };
  engine.Spawn("slow", worker(10.0, "s"));
  engine.Spawn("fast", worker(1.0, "f"));
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(order.size(), 6u);
  // fast finishes all three steps (t=1,2,3) before slow's first (t=10).
  EXPECT_EQ(order[0], "f0");
  EXPECT_EQ(order[1], "f1");
  EXPECT_EQ(order[2], "f2");
  EXPECT_EQ(order[3], "s0");
}

TEST(EngineTest, BlockAndWake) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.Block("test wait");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(4.0);
    ctx.engine().Wake(waiter, ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 4.0);
}

TEST(EngineTest, WakeTimeNeverRewindsClock) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    ctx.Compute(9.0);
    resumed = ctx.Block("test wait");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(1.0);
    ctx.engine().Wake(waiter, ctx.now());  // wake time 1.0 < waiter clock 9.0
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 9.0);
}

TEST(EngineTest, BlockUntilWakesEarlierOnSignal) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.BlockUntil(100.0, "poll");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(2.5);
    ctx.engine().Wake(waiter, ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 2.5);
}

TEST(EngineTest, BlockUntilTimesOutWithoutSignal) {
  Engine engine;
  SimTime resumed = 0;
  engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.BlockUntil(7.0, "poll");
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 7.0);
}

TEST(EngineTest, ConditionNotifyAll) {
  Engine engine;
  Condition cond;
  int released = 0;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn("w" + std::to_string(i), [&](Context& ctx) {
      cond.Wait(ctx, "cond");
      ++released;
      EXPECT_DOUBLE_EQ(ctx.now(), 3.0);
    });
  }
  engine.Spawn("notifier", [&](Context& ctx) {
    ctx.Compute(3.0);
    cond.NotifyAll(ctx.engine(), ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(released, 5);
}

TEST(EngineTest, ConditionNotifyOneIsFifo) {
  Engine engine;
  Condition cond;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn("w" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(i * 0.1);  // stagger arrival
      cond.Wait(ctx, "cond");
      order.push_back(i);
      // Chain: release the next one.
      cond.NotifyOne(ctx.engine(), ctx.now());
    });
  }
  engine.Spawn("kick", [&](Context& ctx) {
    ctx.Compute(1.0);
    cond.NotifyOne(ctx.engine(), ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(EngineTest, DeadlockDetected) {
  Engine engine;
  engine.Spawn("stuck", [](Context& ctx) { ctx.Block("never woken"); });
  auto result = engine.Run();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("never woken"), std::string::npos);
}

TEST(EngineTest, ScheduledEventRuns) {
  Engine engine;
  SimTime seen = -1;
  engine.ScheduleEvent(5.0, [&] { seen = 5.0; });
  engine.Spawn("bystander", [](Context& ctx) { ctx.SleepUntil(10.0); });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EngineTest, KillUnwindsProcess) {
  Engine engine;
  bool cleanup_ran = false;
  bool after_block = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    ctx.Block("waiting forever");
    after_block = true;  // must never execute
  });
  engine.Kill(victim, 2.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(cleanup_ran);
  EXPECT_FALSE(after_block);
  EXPECT_EQ(result.killed, 1u);
  EXPECT_FALSE(engine.IsAlive(victim));
}

TEST(EngineTest, KillBeforeFirstDispatch) {
  Engine engine;
  bool ran = false;
  const Pid victim = engine.SpawnAt(5.0, "late", [&](Context&) { ran = true; });
  engine.Kill(victim, 1.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(ran);
  EXPECT_EQ(result.killed, 1u);
}

TEST(EngineTest, SpawnFromProcessInheritsClock) {
  Engine engine;
  SimTime child_start = -1;
  engine.Spawn("parent", [&](Context& ctx) {
    ctx.Compute(6.0);
    ctx.engine().Spawn("child",
                       [&](Context& c) { child_start = c.now(); });
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(child_start, 6.0);
}

TEST(EngineTest, ExceptionInProcessPropagates) {
  Engine engine;
  engine.Spawn("thrower", [](Context& ctx) {
    ctx.Compute(1.0);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(engine.Run(), std::runtime_error);
}

TEST(EngineTest, DeterministicReplay) {
  auto run_once = [] {
    Engine engine(42);
    std::vector<std::pair<SimTime, int>> log;
    Condition cond;
    for (int i = 0; i < 8; ++i) {
      engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
        log.emplace_back(ctx.now(), i);
        ctx.SleepFor(ctx.rng().Uniform(0.0, 0.5));
        log.emplace_back(ctx.now(), i);
      });
    }
    auto result = engine.Run();
    EXPECT_TRUE(result.status.ok());
    return log;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(EngineTest, TraceRecordsEvents) {
  Engine engine;
  engine.EnableTrace(true);
  engine.Spawn("tracer", [](Context& ctx) {
    ctx.Compute(1.0);
    ctx.Trace("phase", "one");
    ctx.Compute(1.0);
    ctx.Trace("phase", "two");
  });
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(engine.trace().size(), 2u);
  EXPECT_DOUBLE_EQ(engine.trace()[0].time, 1.0);
  EXPECT_EQ(engine.trace()[1].detail, "two");
}

TEST(EngineTest, ConditionDropsKilledWaiter) {
  // Regression: a killed process must not linger in a Condition's waiter
  // queue, or a later NotifyOne would be swallowed by the corpse instead of
  // releasing a live waiter.
  Engine engine;
  Condition cond;
  bool victim_released = false;
  bool survivor_released = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    cond.Wait(ctx, "cond");
    victim_released = true;
  });
  engine.Spawn("survivor", [&](Context& ctx) {
    ctx.Compute(0.5);  // enqueue strictly after the victim
    cond.Wait(ctx, "cond");
    survivor_released = true;
  });
  engine.Spawn("driver", [&](Context& ctx) {
    ctx.engine().Kill(victim, 1.0);
    ctx.SleepUntil(2.0);
    EXPECT_TRUE(cond.NotifyOne(ctx.engine(), ctx.now()));
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.killed, 1u);
  EXPECT_FALSE(victim_released);
  EXPECT_TRUE(survivor_released);
}

TEST(EngineTest, ObsCountsSchedulerActivity) {
  Engine engine;
  engine.Spawn("a", [](Context& ctx) { ctx.Compute(1.0); });
  engine.Spawn("b", [](Context& ctx) {
    ctx.Yield();
    ctx.Compute(1.0);
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(engine.obs().CounterByName("sim.spawns"), 2u);
  EXPECT_GE(engine.obs().CounterByName("sim.dispatches"), 2u);
  // Counters accumulate even with tracing disabled, and no trace events
  // are recorded.
  EXPECT_TRUE(engine.obs().events().empty());
}

TEST(EngineTest, TraceExportIsDeterministic) {
  auto run_once = [] {
    Engine engine(7);
    engine.EnableTrace(true);
    Condition cond;
    for (int i = 0; i < 6; ++i) {
      engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
        ctx.Trace("step", "p" + std::to_string(i));
        if (i % 2 == 0) {
          cond.Wait(ctx, "pair");
        } else {
          ctx.SleepFor(0.25);
          cond.NotifyOne(ctx.engine(), ctx.now());
        }
      });
    }
    EXPECT_TRUE(engine.Run().status.ok());
    return std::pair(engine.obs().ToChromeTraceJson(),
                     engine.obs().CounterByName("sim.dispatches"));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);  // byte-identical JSON
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first.find("\"traceEvents\""), std::string::npos);
}

TEST(EngineTest, ManyProcesses) {
  Engine engine;
  std::atomic<int> done{0};
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(0.001 * i);
      ++done;
    });
  }
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(done.load(), n);
}

// --------------------------------------------------------------------------
// Timeline
// --------------------------------------------------------------------------

TEST(TimelineTest, SerializesOverlappingOps) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.Acquire(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.Acquire(0.0, 2.0), 4.0);  // queued behind first
  EXPECT_DOUBLE_EQ(tl.Acquire(10.0, 1.0), 11.0);  // idle gap
  EXPECT_DOUBLE_EQ(tl.busy_time(), 5.0);
  EXPECT_EQ(tl.op_count(), 3u);
}

TEST(TimelineTest, PeekDoesNotReserve) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.Peek(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(tl.Peek(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(tl.next_free(), 0.0);
}

TEST(TimelineTest, FairShareEquivalence) {
  // k equal ops issued together complete at k * d, like processor sharing.
  Timeline tl;
  const int k = 4;
  SimTime last = 0;
  for (int i = 0; i < k; ++i) last = tl.Acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(last, 4.0);
}

TEST(ChannelBankTest, ParallelChannels) {
  ChannelBank bank(2);
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 5.0);   // second channel
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 10.0);  // queues
}

TEST(ConcurrencyWindowTest, CountsOverlaps) {
  ConcurrencyWindow win;
  EXPECT_EQ(win.Record(0.0, 2.0), 0u);
  EXPECT_EQ(win.Record(1.0, 3.0), 1u);
  EXPECT_EQ(win.active_at(1.5), 2u);
  // Non-overlapping later op: prior spans are pruned (starts nondecreasing).
  EXPECT_EQ(win.Record(5.0, 6.0), 0u);
  EXPECT_EQ(win.active_at(4.0), 0u);
  EXPECT_EQ(win.active_at(5.5), 1u);
}

}  // namespace
}  // namespace pstk::sim
