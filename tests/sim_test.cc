#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/timeline.h"

namespace pstk::sim {
namespace {

TEST(EngineTest, SingleProcessAdvancesClock) {
  Engine engine;
  SimTime end = -1;
  engine.Spawn("solo", [&](Context& ctx) {
    ctx.Compute(1.5);
    ctx.Compute(0.5);
    end = ctx.now();
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_DOUBLE_EQ(result.end_time, 2.0);
  EXPECT_EQ(result.completed, 1u);
}

TEST(EngineTest, SleepUntilAdvances) {
  Engine engine;
  SimTime observed = 0;
  engine.Spawn("sleeper", [&](Context& ctx) {
    ctx.SleepUntil(10.0);
    observed = ctx.now();
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(observed, 10.0);
}

TEST(EngineTest, SleepForIsRelative) {
  Engine engine;
  SimTime observed = 0;
  engine.Spawn("sleeper", [&](Context& ctx) {
    ctx.Compute(2.0);
    ctx.SleepFor(3.0);
    observed = ctx.now();
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(observed, 5.0);
}

TEST(EngineTest, MinClockDispatchOrder) {
  // Three processes with different compute times interleave in virtual-time
  // order, not creation order.
  Engine engine;
  std::vector<std::string> order;
  auto worker = [&](double step, const std::string& tag) {
    return [&, step, tag](Context& ctx) {
      for (int i = 0; i < 3; ++i) {
        ctx.Compute(step);
        // Force a scheduling point so interleaving is observable.
        ctx.Yield();
        order.push_back(tag + std::to_string(i));
      }
    };
  };
  engine.Spawn("slow", worker(10.0, "s"));
  engine.Spawn("fast", worker(1.0, "f"));
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(order.size(), 6u);
  // fast finishes all three steps (t=1,2,3) before slow's first (t=10).
  EXPECT_EQ(order[0], "f0");
  EXPECT_EQ(order[1], "f1");
  EXPECT_EQ(order[2], "f2");
  EXPECT_EQ(order[3], "s0");
}

TEST(EngineTest, BlockAndWake) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.Block("test wait");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(4.0);
    ctx.engine().Wake(waiter, ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 4.0);
}

TEST(EngineTest, WakeTimeNeverRewindsClock) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    ctx.Compute(9.0);
    resumed = ctx.Block("test wait");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(1.0);
    ctx.engine().Wake(waiter, ctx.now());  // wake time 1.0 < waiter clock 9.0
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 9.0);
}

TEST(EngineTest, BlockUntilWakesEarlierOnSignal) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.BlockUntil(100.0, "poll");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(2.5);
    ctx.engine().Wake(waiter, ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 2.5);
}

TEST(EngineTest, BlockUntilTimesOutWithoutSignal) {
  Engine engine;
  SimTime resumed = 0;
  engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.BlockUntil(7.0, "poll");
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 7.0);
}

TEST(EngineTest, ConditionNotifyAll) {
  Engine engine;
  Condition cond;
  int released = 0;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn("w" + std::to_string(i), [&](Context& ctx) {
      cond.Wait(ctx, "cond");
      ++released;
      EXPECT_DOUBLE_EQ(ctx.now(), 3.0);
    });
  }
  engine.Spawn("notifier", [&](Context& ctx) {
    ctx.Compute(3.0);
    cond.NotifyAll(ctx.engine(), ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(released, 5);
}

TEST(EngineTest, ConditionNotifyOneIsFifo) {
  Engine engine;
  Condition cond;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn("w" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(i * 0.1);  // stagger arrival
      cond.Wait(ctx, "cond");
      order.push_back(i);
      // Chain: release the next one.
      cond.NotifyOne(ctx.engine(), ctx.now());
    });
  }
  engine.Spawn("kick", [&](Context& ctx) {
    ctx.Compute(1.0);
    cond.NotifyOne(ctx.engine(), ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(EngineTest, DeadlockDetected) {
  Engine engine;
  engine.Spawn("stuck", [](Context& ctx) { ctx.Block("never woken"); });
  auto result = engine.Run();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("never woken"), std::string::npos);
}

TEST(EngineTest, ScheduledEventRuns) {
  Engine engine;
  SimTime seen = -1;
  engine.ScheduleEvent(5.0, [&] { seen = 5.0; });
  engine.Spawn("bystander", [](Context& ctx) { ctx.SleepUntil(10.0); });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EngineTest, KillUnwindsProcess) {
  Engine engine;
  bool cleanup_ran = false;
  bool after_block = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    ctx.Block("waiting forever");
    after_block = true;  // must never execute
  });
  engine.Kill(victim, 2.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(cleanup_ran);
  EXPECT_FALSE(after_block);
  EXPECT_EQ(result.killed, 1u);
  EXPECT_FALSE(engine.IsAlive(victim));
}

TEST(EngineTest, KillBeforeFirstDispatch) {
  Engine engine;
  bool ran = false;
  const Pid victim = engine.SpawnAt(5.0, "late", [&](Context&) { ran = true; });
  engine.Kill(victim, 1.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(ran);
  EXPECT_EQ(result.killed, 1u);
}

TEST(EngineTest, SpawnFromProcessInheritsClock) {
  Engine engine;
  SimTime child_start = -1;
  engine.Spawn("parent", [&](Context& ctx) {
    ctx.Compute(6.0);
    ctx.engine().Spawn("child",
                       [&](Context& c) { child_start = c.now(); });
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(child_start, 6.0);
}

TEST(EngineTest, ExceptionInProcessPropagates) {
  Engine engine;
  engine.Spawn("thrower", [](Context& ctx) {
    ctx.Compute(1.0);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(engine.Run(), std::runtime_error);
}

TEST(EngineTest, DeterministicReplay) {
  auto run_once = [] {
    Engine engine(42);
    std::vector<std::pair<SimTime, int>> log;
    Condition cond;
    for (int i = 0; i < 8; ++i) {
      engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
        log.emplace_back(ctx.now(), i);
        ctx.SleepFor(ctx.rng().Uniform(0.0, 0.5));
        log.emplace_back(ctx.now(), i);
      });
    }
    auto result = engine.Run();
    EXPECT_TRUE(result.status.ok());
    return log;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(EngineTest, TraceRecordsEvents) {
  Engine engine;
  engine.EnableTrace(true);
  engine.Spawn("tracer", [](Context& ctx) {
    ctx.Compute(1.0);
    ctx.Trace("phase", "one");
    ctx.Compute(1.0);
    ctx.Trace("phase", "two");
  });
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(engine.trace().size(), 2u);
  EXPECT_DOUBLE_EQ(engine.trace()[0].time, 1.0);
  EXPECT_EQ(engine.trace()[1].detail, "two");
}

TEST(EngineTest, ConditionDropsKilledWaiter) {
  // Regression: a killed process must not linger in a Condition's waiter
  // queue, or a later NotifyOne would be swallowed by the corpse instead of
  // releasing a live waiter.
  Engine engine;
  Condition cond;
  bool victim_released = false;
  bool survivor_released = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    cond.Wait(ctx, "cond");
    victim_released = true;
  });
  engine.Spawn("survivor", [&](Context& ctx) {
    ctx.Compute(0.5);  // enqueue strictly after the victim
    cond.Wait(ctx, "cond");
    survivor_released = true;
  });
  engine.Spawn("driver", [&](Context& ctx) {
    ctx.engine().Kill(victim, 1.0);
    ctx.SleepUntil(2.0);
    EXPECT_TRUE(cond.NotifyOne(ctx.engine(), ctx.now()));
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.killed, 1u);
  EXPECT_FALSE(victim_released);
  EXPECT_TRUE(survivor_released);
}

TEST(EngineTest, ObsCountsSchedulerActivity) {
  Engine engine;
  engine.Spawn("a", [](Context& ctx) { ctx.Compute(1.0); });
  engine.Spawn("b", [](Context& ctx) {
    ctx.Yield();
    ctx.Compute(1.0);
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(engine.obs().CounterByName("sim.spawns"), 2u);
  EXPECT_GE(engine.obs().CounterByName("sim.dispatches"), 2u);
  // Counters accumulate even with tracing disabled, and no trace events
  // are recorded.
  EXPECT_TRUE(engine.obs().events().empty());
}

TEST(EngineTest, TraceExportIsDeterministic) {
  auto run_once = [] {
    Engine engine(7);
    engine.EnableTrace(true);
    Condition cond;
    for (int i = 0; i < 6; ++i) {
      engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
        ctx.Trace("step", "p" + std::to_string(i));
        if (i % 2 == 0) {
          cond.Wait(ctx, "pair");
        } else {
          ctx.SleepFor(0.25);
          cond.NotifyOne(ctx.engine(), ctx.now());
        }
      });
    }
    EXPECT_TRUE(engine.Run().status.ok());
    return std::pair(engine.obs().ToChromeTraceJson(),
                     engine.obs().CounterByName("sim.dispatches"));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);  // byte-identical JSON
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first.find("\"traceEvents\""), std::string::npos);
}

TEST(EngineTest, ManyProcesses) {
  Engine engine;
  std::atomic<int> done{0};
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(0.001 * i);
      ++done;
    });
  }
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(done.load(), n);
}

// --------------------------------------------------------------------------
// Cross-backend equivalence: the fiber scheduler's acceptance oracle. Both
// execution backends implement one scheduling contract, so every
// observable — trace bytes, RunResult, deadlock diagnostics, kill/unwind
// behavior — must be identical between them.
// --------------------------------------------------------------------------

class BackendTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(
    All, BackendTest, ::testing::Values(Backend::kFibers, Backend::kThreads),
    [](const ::testing::TestParamInfo<Backend>& param) {
      return std::string(BackendName(param.param));
    });

TEST_P(BackendTest, KillRunsRaiiCleanup) {
  Engine engine(1, GetParam());
  bool cleanup_ran = false;
  bool after_block = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    ctx.Block("waiting forever");
    after_block = true;
  });
  engine.Kill(victim, 2.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(cleanup_ran);
  EXPECT_FALSE(after_block);
  EXPECT_EQ(result.killed, 1u);
}

TEST_P(BackendTest, ConditionDropsKilledWaiter) {
  Engine engine(1, GetParam());
  Condition cond;
  bool victim_released = false;
  bool survivor_released = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    cond.Wait(ctx, "cond");
    victim_released = true;
  });
  engine.Spawn("survivor", [&](Context& ctx) {
    ctx.Compute(0.5);
    cond.Wait(ctx, "cond");
    survivor_released = true;
  });
  engine.Spawn("driver", [&](Context& ctx) {
    ctx.engine().Kill(victim, 1.0);
    ctx.SleepUntil(2.0);
    EXPECT_TRUE(cond.NotifyOne(ctx.engine(), ctx.now()));
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_FALSE(victim_released);
  EXPECT_TRUE(survivor_released);
}

TEST_P(BackendTest, DeadlockUnwindsBlockedProcesses) {
  Engine engine(1, GetParam());
  bool cleanup_ran = false;
  engine.Spawn("stuck", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    ctx.Block("never woken");
  });
  auto result = engine.Run();
  EXPECT_FALSE(result.status.ok());
  EXPECT_NE(result.status.message().find("never woken"), std::string::npos);
  // JoinAll force-unwound the parked process: its destructors ran.
  EXPECT_TRUE(cleanup_ran);
}

TEST_P(BackendTest, ExceptionUnwindsBystanders) {
  // A throwing process aborts the run; processes still parked must be
  // force-unwound (RAII runs) on either backend before Run rethrows.
  Engine engine(1, GetParam());
  bool bystander_cleanup = false;
  engine.Spawn("bystander", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&bystander_cleanup};
    ctx.Block("forever");
  });
  engine.Spawn("thrower", [](Context& ctx) {
    ctx.Compute(1.0);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(engine.Run(), std::runtime_error);
  EXPECT_TRUE(bystander_cleanup);
}

namespace crossbackend {

// A workload exercising every scheduler path: RNG-staggered computes,
// yields, sleeps, condition waits/notifies, events, a fault-injected kill,
// and user trace instants.
struct Observed {
  std::string trace_json;
  std::uint64_t dispatches = 0;
  Status status;
  SimTime end_time = 0;
  std::size_t completed = 0;
  std::size_t killed = 0;
};

Observed RunMixedWorkload(Backend backend, ShardOptions shard_options = {}) {
  Engine engine(1234, backend, std::move(shard_options));
  engine.EnableTrace(true);
  Condition cond;
  for (int i = 0; i < 12; ++i) {
    engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
      ctx.Trace("step", "a" + std::to_string(i));
      if (i % 3 == 0) {
        cond.Wait(ctx, "trio");
      } else if (i % 3 == 1) {
        ctx.SleepFor(0.5);
        cond.NotifyOne(ctx.engine(), ctx.now());
      } else {
        ctx.Yield();
        ctx.Compute(0.25);
      }
      ctx.Trace("step", "b" + std::to_string(i));
    });
  }
  const Pid victim =
      engine.Spawn("victim", [](Context& ctx) { ctx.Block("doomed"); });
  engine.Kill(victim, 0.75);
  engine.ScheduleEvent(0.25, [&engine] {
    engine.Spawn("late", [](Context& ctx) { ctx.Compute(0.125); });
  });
  auto result = engine.Run();
  Observed out;
  out.trace_json = engine.obs().ToChromeTraceJson();
  out.dispatches = engine.obs().CounterByName("sim.dispatches");
  out.status = result.status;
  out.end_time = result.end_time;
  out.completed = result.completed;
  out.killed = result.killed;
  return out;
}

}  // namespace crossbackend

TEST(CrossBackendTest, MixedWorkloadIsByteIdentical) {
  const auto fibers = crossbackend::RunMixedWorkload(Backend::kFibers);
  const auto threads = crossbackend::RunMixedWorkload(Backend::kThreads);
  EXPECT_TRUE(fibers.status.ok()) << fibers.status.ToString();
  EXPECT_EQ(fibers.trace_json, threads.trace_json);  // byte-identical
  EXPECT_EQ(fibers.dispatches, threads.dispatches);
  EXPECT_EQ(fibers.status.ToString(), threads.status.ToString());
  EXPECT_DOUBLE_EQ(fibers.end_time, threads.end_time);
  EXPECT_EQ(fibers.completed, threads.completed);
  EXPECT_EQ(fibers.killed, threads.killed);
  EXPECT_EQ(fibers.killed, 1u);
}

TEST(CrossBackendTest, DeadlockReportsMatch) {
  auto run = [](Backend backend) {
    Engine engine(1, backend);
    const Pid a = engine.Spawn("hold.a", [](Context& ctx) {
      ctx.BlockOn("lock b", 1);  // waits on hold.b
    });
    engine.Spawn("hold.b", [a](Context& ctx) {
      ctx.Compute(0.5);
      ctx.BlockOn("lock a", a);
    });
    return engine.Run().status.ToString();
  };
  const std::string fibers = run(Backend::kFibers);
  const std::string threads = run(Backend::kThreads);
  EXPECT_EQ(fibers, threads);
  EXPECT_NE(fibers.find("lock"), std::string::npos);
}

TEST(CrossBackendTest, BackendCounterIdentifiesScheduler) {
  Engine fibers(1, Backend::kFibers);
  Engine threads(1, Backend::kThreads);
  EXPECT_EQ(fibers.obs().CounterByName("sim.backend.fibers"), 1u);
  EXPECT_EQ(fibers.obs().CounterByName("sim.backend.threads"), 0u);
  EXPECT_EQ(threads.obs().CounterByName("sim.backend.threads"), 1u);
  EXPECT_EQ(fibers.backend(), Backend::kFibers);
  EXPECT_EQ(threads.backend(), Backend::kThreads);
}

// --------------------------------------------------------------------------
// Backend name parsing: --sim-backend= and PSTK_SIM_BACKEND share one
// parser, and unknown spellings must fail loudly with the valid list.
// --------------------------------------------------------------------------

TEST(BackendParseTest, AcceptsExactlyTheDocumentedSpellings) {
  EXPECT_EQ(ParseBackendName("fibers"), Backend::kFibers);
  EXPECT_EQ(ParseBackendName("threads"), Backend::kThreads);
  EXPECT_FALSE(ParseBackendName("").has_value());
  EXPECT_FALSE(ParseBackendName("Fibers").has_value());
  EXPECT_FALSE(ParseBackendName("fiber").has_value());
  EXPECT_FALSE(ParseBackendName("green-threads").has_value());
  EXPECT_EQ(ValidBackendNames(), "fibers, threads");
  EXPECT_EQ(BackendName(Backend::kFibers), "fibers");
  EXPECT_EQ(BackendName(Backend::kThreads), "threads");
}

TEST(BackendParseDeathTest, UnknownEnvValueDiesListingValidBackends) {
  // Regression: an unrecognized PSTK_SIM_BACKEND used to degrade to a
  // warning + silent fibers fallback; it must abort naming the valid set.
  ::setenv("PSTK_SIM_BACKEND", "green-threads", 1);
  EXPECT_DEATH(
      { (void)DefaultBackend(); },
      "unknown PSTK_SIM_BACKEND 'green-threads'.*valid backends: "
      "fibers, threads");
  ::unsetenv("PSTK_SIM_BACKEND");
}

// --------------------------------------------------------------------------
// Scheduling-heap lazy deletion under decrease-key churn. Every Wake on an
// already-ready process pushes a fresh generation-stamped entry and leaves
// the old one to be discarded when it surfaces; these regressions flood
// the heap with stale entries and check the dispatch order and counters
// the stamps are supposed to protect.
// --------------------------------------------------------------------------

TEST(SchedHeapTest, DecreaseKeyFloodDispatchesOnceAtFinalTime) {
  Engine engine;
  int resumes = 0;
  SimTime resumed_at = -1;
  // pid 0 dispatches first at t=0 (tie broken by pid) and parks before
  // the driver starts churning it.
  const Pid target = engine.Spawn("sleeper", [&](Context& ctx) {
    ctx.Block("await churn");
    ++resumes;
    resumed_at = ctx.now();
  });
  engine.Spawn("driver", [&](Context& ctx) {
    Engine& eng = ctx.engine();
    eng.Wake(target, 1000.0);  // blocked -> ready at 1000
    // 2000 decrease-keys: each strictly lowers the wake time, so each
    // pushes a fresh stamped entry and strands the previous one.
    const int kChurn = 2000;
    for (int i = 0; i < kChurn; ++i) {
      eng.Wake(target, 999.0 - 0.25 * i);
    }
    // Increase attempts must be ignored (an already-scheduled process's
    // wake time only ever decreases).
    eng.Wake(target, 5000.0);
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(resumes, 1);
  EXPECT_DOUBLE_EQ(resumed_at, 999.0 - 0.25 * 1999);
  // sleeper parks, driver churns, sleeper resumes once: 3 dispatches, not
  // one per stale entry.
  EXPECT_EQ(engine.obs().CounterByName("sim.dispatches"), 3u);
}

TEST(SchedHeapTest, PopAfterManyStampsPreservesGlobalOrder) {
  // 50 parked processes, 40 decrease-key rounds each: the ready heap ends
  // up with 2050 entries of which 2000 are stale. The final wake times
  // are strictly decreasing in pid, so the resume order must be exactly
  // reversed — any stale entry surviving its stamp check would scramble
  // it.
  Engine engine;
  std::vector<int> order;
  const int n = 50;
  const SimTime far = 1e6;
  std::vector<Pid> pids;
  for (int i = 0; i < n; ++i) {
    pids.push_back(engine.Spawn("p" + std::to_string(i),
                                [&order, i](Context& ctx) {
                                  ctx.Block("await churn");
                                  order.push_back(i);
                                }));
  }
  engine.Spawn("driver", [&pids, n, far](Context& ctx) {
    for (int round = 0; round <= 40; ++round) {
      for (int i = 0; i < n; ++i) {
        ctx.engine().Wake(pids[static_cast<std::size_t>(i)],
                          far - round * (i + 1));
      }
    }
  });
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], n - 1 - i) << "slot " << i;
  }
}

// --------------------------------------------------------------------------
// Sharded engine (conservative PDES): the parallel backend must replay the
// single-threaded schedule exactly — byte-identical traces and identical
// RunResults at any shard count — including kills, fault-injected
// deadlocks, and cross-shard message passing.
// --------------------------------------------------------------------------

namespace sharded {

constexpr SimTime kLookahead = 2.0;

ShardOptions MakeOptions(int shards) {
  ShardOptions opts;
  opts.shards = shards;
  opts.lookahead = [](int, int) { return kLookahead; };
  return opts;
}

struct Observed {
  std::string trace_json;
  std::uint64_t dispatches = 0;
  std::uint64_t events = 0;
  std::string status;
  SimTime end_time = 0;
  std::size_t completed = 0;
  std::size_t killed = 0;
};

// Cross-shard ping-pong pairs (the pinger on node n plays against the
// ponger on node n+1, cross-shard at every tested shard count) plus
// node-local RNG churn, with an optional fault-injected kill that
// deadlocks the victim's peer. The exchange is ack-paced — each side
// parks before its peer's wake lands — because a wake racing an
// already-ready process is decrease-key-only and would be dropped.
constexpr int kNodes = 8;
constexpr int kRounds = 4;

Observed RunPingWorkload(int shards, bool kill_a_ponger) {
  Engine engine(31, Backend::kFibers, MakeOptions(shards));
  engine.EnableTrace(true);
  std::vector<Pid> pongers(kNodes);
  auto pingers = std::make_shared<std::vector<Pid>>(kNodes, kNoPid);
  for (int n = 0; n < kNodes; ++n) {
    pongers[n] = engine.Spawn(
        "pong" + std::to_string(n),
        [pingers, n](Context& ctx) {
          // Our pinger sits one node back along the ring.
          const Pid peer = (*pingers)[(n + kNodes - 1) % kNodes];
          for (int k = 0; k < kRounds; ++k) {
            const SimTime woken = ctx.Block("await ping");
            ctx.Trace("ping", "k" + std::to_string(k));
            // The pinger parked right after sending, so this wake honors
            // the discipline: target parked from before the send until t.
            ctx.engine().Wake(peer, woken + kLookahead);
          }
        },
        /*node=*/n);
  }
  for (int n = 0; n < kNodes; ++n) {
    (*pingers)[n] = engine.Spawn(
        "ping" + std::to_string(n),
        [&pongers, n](Context& ctx) {
          const Pid peer = pongers[(n + 1) % kNodes];
          for (int k = 0; k < kRounds; ++k) {
            ctx.Compute(0.25);
            ctx.engine().Wake(peer, ctx.now() + kLookahead);
            ctx.Block("await pong");
          }
        },
        /*node=*/n);
  }
  for (int n = 0; n < kNodes; ++n) {
    engine.Spawn(
        "churn" + std::to_string(n),
        [](Context& ctx) {
          for (int k = 0; k < 6; ++k) {
            ctx.Compute(ctx.rng().Uniform(0.0, 0.3));
            ctx.Yield();
          }
        },
        /*node=*/n);
  }
  if (kill_a_ponger) {
    // Killing pong3 mid-run strands ping2 in Block("await pong"): the
    // run must end in a deadlock whose report is shard-count-invariant.
    engine.Kill(pongers[3], 3.0);
  }
  auto result = engine.Run();
  Observed out;
  out.trace_json = engine.obs().ToChromeTraceJson();
  out.dispatches = engine.obs().CounterByName("sim.dispatches");
  out.events = engine.obs().CounterByName("sim.events");
  out.status = result.status.ToString();
  out.end_time = result.end_time;
  out.completed = result.completed;
  out.killed = result.killed;
  return out;
}

}  // namespace sharded

TEST(ShardedEngineTest, ShardOfNodeDefaultsToModulo) {
  Engine engine(1, Backend::kFibers, sharded::MakeOptions(3));
  EXPECT_EQ(engine.shard_count(), 3);
  EXPECT_EQ(engine.ShardOfNode(0), 0);
  EXPECT_EQ(engine.ShardOfNode(4), 1);
  EXPECT_EQ(engine.ShardOfNode(5), 2);
  ShardOptions pinned = sharded::MakeOptions(4);
  pinned.shard_of_node = [](int) { return 2; };
  Engine custom(1, Backend::kFibers, pinned);
  EXPECT_EQ(custom.ShardOfNode(17), 2);
}

TEST(ShardedEngineTest, PingWorkloadByteIdenticalAcrossShardCounts) {
  const auto oracle = sharded::RunPingWorkload(1, /*kill_a_ponger=*/false);
  EXPECT_EQ(oracle.status, "OK");
  EXPECT_EQ(oracle.completed, 24u);
  for (int shards : {2, 8}) {
    const auto par = sharded::RunPingWorkload(shards, false);
    EXPECT_EQ(par.trace_json, oracle.trace_json) << shards << " shards";
    EXPECT_EQ(par.dispatches, oracle.dispatches) << shards << " shards";
    EXPECT_EQ(par.events, oracle.events) << shards << " shards";
    EXPECT_EQ(par.status, oracle.status) << shards << " shards";
    EXPECT_DOUBLE_EQ(par.end_time, oracle.end_time) << shards << " shards";
    EXPECT_EQ(par.completed, oracle.completed) << shards << " shards";
    EXPECT_EQ(par.killed, oracle.killed) << shards << " shards";
  }
}

TEST(ShardedEngineTest, KillAndDeadlockReportShardCountInvariant) {
  const auto oracle = sharded::RunPingWorkload(1, /*kill_a_ponger=*/true);
  EXPECT_NE(oracle.status, "OK");
  EXPECT_NE(oracle.status.find("await pong"), std::string::npos);
  EXPECT_EQ(oracle.killed, 1u);
  for (int shards : {2, 8}) {
    const auto par = sharded::RunPingWorkload(shards, true);
    EXPECT_EQ(par.trace_json, oracle.trace_json) << shards << " shards";
    EXPECT_EQ(par.status, oracle.status) << shards << " shards";
    EXPECT_DOUBLE_EQ(par.end_time, oracle.end_time) << shards << " shards";
    EXPECT_EQ(par.completed, oracle.completed) << shards << " shards";
    EXPECT_EQ(par.killed, oracle.killed) << shards << " shards";
  }
}

TEST(ShardedEngineTest, MixedWorkloadOnPinnedShardMatchesOracle) {
  // A job confined to one shard of a multi-shard engine (every node
  // pinned to shard 0 — the layout the framework layers use) behaves
  // exactly like the unsharded engine, including its mid-run Spawn from a
  // scheduled event, its condition churn, and its fault-injected kill.
  const auto oracle = crossbackend::RunMixedWorkload(Backend::kFibers);
  for (int shards : {2, 8}) {
    ShardOptions opts;
    opts.shards = shards;
    opts.shard_of_node = [](int) { return 0; };
    const auto par = crossbackend::RunMixedWorkload(Backend::kFibers, opts);
    EXPECT_EQ(par.trace_json, oracle.trace_json) << shards << " shards";
    EXPECT_EQ(par.dispatches, oracle.dispatches) << shards << " shards";
    EXPECT_EQ(par.status.ToString(), oracle.status.ToString());
    EXPECT_DOUBLE_EQ(par.end_time, oracle.end_time);
    EXPECT_EQ(par.completed, oracle.completed);
    EXPECT_EQ(par.killed, oracle.killed);
  }
}

TEST(ShardedEngineTest, CrossShardChannelsCarryTraffic) {
  Engine engine(7, Backend::kFibers, sharded::MakeOptions(2));
  const Pid receiver = engine.Spawn(
      "recv", [](Context& ctx) { ctx.Block("await"); }, /*node=*/0);
  engine.Spawn(
      "send",
      [receiver](Context& ctx) {
        ctx.Compute(0.5);
        ctx.engine().Wake(receiver, ctx.now() + sharded::kLookahead);
      },
      /*node=*/1);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.completed, 2u);
  EXPECT_GE(engine.obs().CounterByName("sim.shard.rounds"), 1u);
  EXPECT_GE(engine.obs().CounterByName("sim.shard.msgs"), 1u);
}

TEST(ShardedEngineTest, TinyChannelSpillsInsteadOfBlocking) {
  // Capacity-2 rings under a burst of cross-shard wakes: overflow must
  // spill (counted) and every message still arrive.
  ShardOptions opts = sharded::MakeOptions(2);
  opts.channel_capacity = 2;
  Engine engine(7, Backend::kFibers, opts);
  const int kPeers = 16;
  std::vector<Pid> receivers(kPeers);
  for (int i = 0; i < kPeers; ++i) {
    receivers[i] = engine.Spawn(
        "recv" + std::to_string(i),
        [](Context& ctx) { ctx.Block("await"); }, /*node=*/0);
  }
  engine.Spawn(
      "burst",
      [&receivers](Context& ctx) {
        for (const Pid pid : receivers) {
          ctx.engine().Wake(pid, ctx.now() + sharded::kLookahead);
        }
      },
      /*node=*/1);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.completed, static_cast<std::size_t>(kPeers) + 1);
  EXPECT_GE(engine.obs().CounterByName("sim.shard.channel_spills"), 1u);
}

TEST(ShardedEngineTest, ScheduleEventForRunsOnOwningShard) {
  Engine engine(1, Backend::kFibers, sharded::MakeOptions(2));
  engine.Spawn(
      "bystander", [](Context& ctx) { ctx.SleepUntil(10.0); }, /*node=*/0);
  const Pid victim = engine.Spawn(
      "victim", [](Context& ctx) { ctx.Block("forever"); }, /*node=*/1);
  // KillNow is shard-affine; ScheduleEventFor must land this event on
  // node 1's shard or the engine aborts.
  engine.ScheduleEventFor(1, 5.0, [&engine, victim] { engine.KillNow(victim); });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.killed, 1u);
  EXPECT_EQ(result.completed, 1u);
}

TEST(ShardedEngineTest, ExceptionPropagatesAndUnwindsAcrossShards) {
  ShardOptions opts = sharded::MakeOptions(2);
  Engine engine(1, Backend::kFibers, opts);
  bool bystander_cleanup = false;
  engine.Spawn(
      "bystander",
      [&](Context& ctx) {
        struct Cleanup {
          bool* flag;
          ~Cleanup() { *flag = true; }
        } cleanup{&bystander_cleanup};
        ctx.Block("forever");
      },
      /*node=*/0);
  engine.Spawn(
      "thrower",
      [](Context& ctx) {
        ctx.Compute(1.0);
        throw std::runtime_error("sharded boom");
      },
      /*node=*/1);
  EXPECT_THROW(engine.Run(), std::runtime_error);
  EXPECT_TRUE(bystander_cleanup);
}

TEST(ShardedEngineDeathTest, TwoPopulatedShardsRequireLookahead) {
  ShardOptions opts;
  opts.shards = 2;  // no lookahead function
  EXPECT_DEATH(
      {
        Engine engine(1, Backend::kFibers, opts);
        engine.Spawn("a", [](Context& ctx) { ctx.Compute(1.0); }, 0);
        engine.Spawn("b", [](Context& ctx) { ctx.Compute(1.0); }, 1);
        engine.Run();
      },
      "requires ShardOptions.lookahead");
}

TEST(ShardedEngineDeathTest, LookaheadViolationAbortsAtSend) {
  EXPECT_DEATH(
      {
        ShardOptions opts;
        opts.shards = 2;
        opts.lookahead = [](int, int) { return 1.0; };
        Engine engine(1, Backend::kFibers, opts);
        const Pid receiver = engine.Spawn(
            "recv", [](Context& ctx) { ctx.Block("await"); }, 0);
        engine.Spawn(
            "cheater",
            [receiver](Context& ctx) {
              // Promises an effect only 0.5 into the future on a fabric
              // whose minimum latency is 1.0: causality would break.
              ctx.engine().Wake(receiver, ctx.now() + 0.5);
            },
            1);
        engine.Run();
      },
      "violates lookahead");
}

TEST(FiberSchedulerTest, StackPoolReusesAcrossSequentialSpawns) {
  // Processes whose lifetimes never overlap share one pooled stack: the
  // allocated counter stays at 1 while reuse climbs.
  Engine engine(1, Backend::kFibers);
  for (int i = 0; i < 32; ++i) {
    engine.SpawnAt(static_cast<SimTime>(i), "seq" + std::to_string(i),
                   [](Context& ctx) { ctx.Compute(0.5); });
  }
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(engine.obs().CounterByName("sim.fiber.stacks_allocated"), 1u);
  EXPECT_EQ(engine.obs().CounterByName("sim.fiber.stacks_reused"), 31u);
}

TEST(ConditionTest, ManyKilledWaitersDoNotStallNotify) {
  // Regression for the O(n) find-erase on kill-unwind and the O(dead)
  // rescan in NotifyOne: pile up killed waiters in front of one live one
  // and check a single NotifyOne releases it, with waiter_count tracking
  // live (not queued) slots throughout.
  Engine engine(1, Backend::kFibers);
  Condition cond;
  const int kDead = 500;
  int released = 0;
  for (int i = 0; i < kDead; ++i) {
    const Pid victim =
        engine.Spawn("dead" + std::to_string(i), [&](Context& ctx) {
          cond.Wait(ctx, "cond");
          ADD_FAILURE() << "killed waiter resumed";
        });
    engine.Kill(victim, 1.0);
  }
  engine.Spawn("live", [&](Context& ctx) {
    ctx.Compute(0.5);  // enqueue behind every doomed waiter
    cond.Wait(ctx, "cond");
    ++released;
  });
  engine.Spawn("driver", [&](Context& ctx) {
    ctx.SleepUntil(2.0);
    EXPECT_EQ(cond.waiter_count(), 1u);  // corpses already discounted
    EXPECT_TRUE(cond.NotifyOne(ctx.engine(), ctx.now()));
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.killed, static_cast<std::size_t>(kDead));
  EXPECT_EQ(released, 1);
  EXPECT_EQ(cond.waiter_count(), 0u);
}

#if defined(__SANITIZE_ADDRESS__)
#define PSTK_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PSTK_TEST_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define PSTK_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSTK_TEST_TSAN 1
#endif
#endif

TEST(FiberSchedulerTest, HundredThousandProcessStorm) {
  // The scale the fiber backend exists for; thread-per-process would need
  // 10^5 OS threads, so this is fiber-gated. Reduced under ASan, whose
  // doubled stacks and shadow memory make the full count needlessly slow,
  // and under TSan, which counts every live __tsan_create_fiber context
  // against its hard 8128-thread limit and dies past it.
#if defined(PSTK_TEST_TSAN)
  const int n = 4000;
#elif defined(PSTK_TEST_ASAN)
  const int n = 20000;
#else
  const int n = 100000;
#endif
  Engine engine(1, Backend::kFibers);
  long long done = 0;
  for (int i = 0; i < n; ++i) {
    engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(1e-6 * i);
      ctx.Yield();
      ++done;
    });
  }
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(done, n);
  EXPECT_EQ(result.completed, static_cast<std::size_t>(n));
}

// --------------------------------------------------------------------------
// Timeline
// --------------------------------------------------------------------------

TEST(TimelineTest, SerializesOverlappingOps) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.Acquire(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.Acquire(0.0, 2.0), 4.0);  // queued behind first
  EXPECT_DOUBLE_EQ(tl.Acquire(10.0, 1.0), 11.0);  // idle gap
  EXPECT_DOUBLE_EQ(tl.busy_time(), 5.0);
  EXPECT_EQ(tl.op_count(), 3u);
}

TEST(TimelineTest, PeekDoesNotReserve) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.Peek(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(tl.Peek(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(tl.next_free(), 0.0);
}

TEST(TimelineTest, FairShareEquivalence) {
  // k equal ops issued together complete at k * d, like processor sharing.
  Timeline tl;
  const int k = 4;
  SimTime last = 0;
  for (int i = 0; i < k; ++i) last = tl.Acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(last, 4.0);
}

TEST(ChannelBankTest, ParallelChannels) {
  ChannelBank bank(2);
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 5.0);   // second channel
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 10.0);  // queues
}

TEST(ConcurrencyWindowTest, CountsOverlaps) {
  ConcurrencyWindow win;
  EXPECT_EQ(win.Record(0.0, 2.0), 0u);
  EXPECT_EQ(win.Record(1.0, 3.0), 1u);
  EXPECT_EQ(win.active_at(1.5), 2u);
  // Non-overlapping later op: prior spans are pruned (starts nondecreasing).
  EXPECT_EQ(win.Record(5.0, 6.0), 0u);
  EXPECT_EQ(win.active_at(4.0), 0u);
  EXPECT_EQ(win.active_at(5.5), 1u);
}

}  // namespace
}  // namespace pstk::sim
