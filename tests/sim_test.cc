#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/timeline.h"

namespace pstk::sim {
namespace {

TEST(EngineTest, SingleProcessAdvancesClock) {
  Engine engine;
  SimTime end = -1;
  engine.Spawn("solo", [&](Context& ctx) {
    ctx.Compute(1.5);
    ctx.Compute(0.5);
    end = ctx.now();
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_DOUBLE_EQ(result.end_time, 2.0);
  EXPECT_EQ(result.completed, 1u);
}

TEST(EngineTest, SleepUntilAdvances) {
  Engine engine;
  SimTime observed = 0;
  engine.Spawn("sleeper", [&](Context& ctx) {
    ctx.SleepUntil(10.0);
    observed = ctx.now();
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(observed, 10.0);
}

TEST(EngineTest, SleepForIsRelative) {
  Engine engine;
  SimTime observed = 0;
  engine.Spawn("sleeper", [&](Context& ctx) {
    ctx.Compute(2.0);
    ctx.SleepFor(3.0);
    observed = ctx.now();
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(observed, 5.0);
}

TEST(EngineTest, MinClockDispatchOrder) {
  // Three processes with different compute times interleave in virtual-time
  // order, not creation order.
  Engine engine;
  std::vector<std::string> order;
  auto worker = [&](double step, const std::string& tag) {
    return [&, step, tag](Context& ctx) {
      for (int i = 0; i < 3; ++i) {
        ctx.Compute(step);
        // Force a scheduling point so interleaving is observable.
        ctx.Yield();
        order.push_back(tag + std::to_string(i));
      }
    };
  };
  engine.Spawn("slow", worker(10.0, "s"));
  engine.Spawn("fast", worker(1.0, "f"));
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(order.size(), 6u);
  // fast finishes all three steps (t=1,2,3) before slow's first (t=10).
  EXPECT_EQ(order[0], "f0");
  EXPECT_EQ(order[1], "f1");
  EXPECT_EQ(order[2], "f2");
  EXPECT_EQ(order[3], "s0");
}

TEST(EngineTest, BlockAndWake) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.Block("test wait");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(4.0);
    ctx.engine().Wake(waiter, ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 4.0);
}

TEST(EngineTest, WakeTimeNeverRewindsClock) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    ctx.Compute(9.0);
    resumed = ctx.Block("test wait");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(1.0);
    ctx.engine().Wake(waiter, ctx.now());  // wake time 1.0 < waiter clock 9.0
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 9.0);
}

TEST(EngineTest, BlockUntilWakesEarlierOnSignal) {
  Engine engine;
  SimTime resumed = 0;
  const Pid waiter = engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.BlockUntil(100.0, "poll");
  });
  engine.Spawn("waker", [&, waiter](Context& ctx) {
    ctx.Compute(2.5);
    ctx.engine().Wake(waiter, ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 2.5);
}

TEST(EngineTest, BlockUntilTimesOutWithoutSignal) {
  Engine engine;
  SimTime resumed = 0;
  engine.Spawn("waiter", [&](Context& ctx) {
    resumed = ctx.BlockUntil(7.0, "poll");
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(resumed, 7.0);
}

TEST(EngineTest, ConditionNotifyAll) {
  Engine engine;
  Condition cond;
  int released = 0;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn("w" + std::to_string(i), [&](Context& ctx) {
      cond.Wait(ctx, "cond");
      ++released;
      EXPECT_DOUBLE_EQ(ctx.now(), 3.0);
    });
  }
  engine.Spawn("notifier", [&](Context& ctx) {
    ctx.Compute(3.0);
    cond.NotifyAll(ctx.engine(), ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(released, 5);
}

TEST(EngineTest, ConditionNotifyOneIsFifo) {
  Engine engine;
  Condition cond;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn("w" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(i * 0.1);  // stagger arrival
      cond.Wait(ctx, "cond");
      order.push_back(i);
      // Chain: release the next one.
      cond.NotifyOne(ctx.engine(), ctx.now());
    });
  }
  engine.Spawn("kick", [&](Context& ctx) {
    ctx.Compute(1.0);
    cond.NotifyOne(ctx.engine(), ctx.now());
  });
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(EngineTest, DeadlockDetected) {
  Engine engine;
  engine.Spawn("stuck", [](Context& ctx) { ctx.Block("never woken"); });
  auto result = engine.Run();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("never woken"), std::string::npos);
}

TEST(EngineTest, ScheduledEventRuns) {
  Engine engine;
  SimTime seen = -1;
  engine.ScheduleEvent(5.0, [&] { seen = 5.0; });
  engine.Spawn("bystander", [](Context& ctx) { ctx.SleepUntil(10.0); });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EngineTest, KillUnwindsProcess) {
  Engine engine;
  bool cleanup_ran = false;
  bool after_block = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    ctx.Block("waiting forever");
    after_block = true;  // must never execute
  });
  engine.Kill(victim, 2.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(cleanup_ran);
  EXPECT_FALSE(after_block);
  EXPECT_EQ(result.killed, 1u);
  EXPECT_FALSE(engine.IsAlive(victim));
}

TEST(EngineTest, KillBeforeFirstDispatch) {
  Engine engine;
  bool ran = false;
  const Pid victim = engine.SpawnAt(5.0, "late", [&](Context&) { ran = true; });
  engine.Kill(victim, 1.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(ran);
  EXPECT_EQ(result.killed, 1u);
}

TEST(EngineTest, SpawnFromProcessInheritsClock) {
  Engine engine;
  SimTime child_start = -1;
  engine.Spawn("parent", [&](Context& ctx) {
    ctx.Compute(6.0);
    ctx.engine().Spawn("child",
                       [&](Context& c) { child_start = c.now(); });
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_DOUBLE_EQ(child_start, 6.0);
}

TEST(EngineTest, ExceptionInProcessPropagates) {
  Engine engine;
  engine.Spawn("thrower", [](Context& ctx) {
    ctx.Compute(1.0);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(engine.Run(), std::runtime_error);
}

TEST(EngineTest, DeterministicReplay) {
  auto run_once = [] {
    Engine engine(42);
    std::vector<std::pair<SimTime, int>> log;
    Condition cond;
    for (int i = 0; i < 8; ++i) {
      engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
        log.emplace_back(ctx.now(), i);
        ctx.SleepFor(ctx.rng().Uniform(0.0, 0.5));
        log.emplace_back(ctx.now(), i);
      });
    }
    auto result = engine.Run();
    EXPECT_TRUE(result.status.ok());
    return log;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(EngineTest, TraceRecordsEvents) {
  Engine engine;
  engine.EnableTrace(true);
  engine.Spawn("tracer", [](Context& ctx) {
    ctx.Compute(1.0);
    ctx.Trace("phase", "one");
    ctx.Compute(1.0);
    ctx.Trace("phase", "two");
  });
  ASSERT_TRUE(engine.Run().status.ok());
  ASSERT_EQ(engine.trace().size(), 2u);
  EXPECT_DOUBLE_EQ(engine.trace()[0].time, 1.0);
  EXPECT_EQ(engine.trace()[1].detail, "two");
}

TEST(EngineTest, ConditionDropsKilledWaiter) {
  // Regression: a killed process must not linger in a Condition's waiter
  // queue, or a later NotifyOne would be swallowed by the corpse instead of
  // releasing a live waiter.
  Engine engine;
  Condition cond;
  bool victim_released = false;
  bool survivor_released = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    cond.Wait(ctx, "cond");
    victim_released = true;
  });
  engine.Spawn("survivor", [&](Context& ctx) {
    ctx.Compute(0.5);  // enqueue strictly after the victim
    cond.Wait(ctx, "cond");
    survivor_released = true;
  });
  engine.Spawn("driver", [&](Context& ctx) {
    ctx.engine().Kill(victim, 1.0);
    ctx.SleepUntil(2.0);
    EXPECT_TRUE(cond.NotifyOne(ctx.engine(), ctx.now()));
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.killed, 1u);
  EXPECT_FALSE(victim_released);
  EXPECT_TRUE(survivor_released);
}

TEST(EngineTest, ObsCountsSchedulerActivity) {
  Engine engine;
  engine.Spawn("a", [](Context& ctx) { ctx.Compute(1.0); });
  engine.Spawn("b", [](Context& ctx) {
    ctx.Yield();
    ctx.Compute(1.0);
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(engine.obs().CounterByName("sim.spawns"), 2u);
  EXPECT_GE(engine.obs().CounterByName("sim.dispatches"), 2u);
  // Counters accumulate even with tracing disabled, and no trace events
  // are recorded.
  EXPECT_TRUE(engine.obs().events().empty());
}

TEST(EngineTest, TraceExportIsDeterministic) {
  auto run_once = [] {
    Engine engine(7);
    engine.EnableTrace(true);
    Condition cond;
    for (int i = 0; i < 6; ++i) {
      engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
        ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
        ctx.Trace("step", "p" + std::to_string(i));
        if (i % 2 == 0) {
          cond.Wait(ctx, "pair");
        } else {
          ctx.SleepFor(0.25);
          cond.NotifyOne(ctx.engine(), ctx.now());
        }
      });
    }
    EXPECT_TRUE(engine.Run().status.ok());
    return std::pair(engine.obs().ToChromeTraceJson(),
                     engine.obs().CounterByName("sim.dispatches"));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);  // byte-identical JSON
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first.find("\"traceEvents\""), std::string::npos);
}

TEST(EngineTest, ManyProcesses) {
  Engine engine;
  std::atomic<int> done{0};
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(0.001 * i);
      ++done;
    });
  }
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(done.load(), n);
}

// --------------------------------------------------------------------------
// Cross-backend equivalence: the fiber scheduler's acceptance oracle. Both
// execution backends implement one scheduling contract, so every
// observable — trace bytes, RunResult, deadlock diagnostics, kill/unwind
// behavior — must be identical between them.
// --------------------------------------------------------------------------

class BackendTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(
    All, BackendTest, ::testing::Values(Backend::kFibers, Backend::kThreads),
    [](const ::testing::TestParamInfo<Backend>& param) {
      return std::string(BackendName(param.param));
    });

TEST_P(BackendTest, KillRunsRaiiCleanup) {
  Engine engine(1, GetParam());
  bool cleanup_ran = false;
  bool after_block = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    ctx.Block("waiting forever");
    after_block = true;
  });
  engine.Kill(victim, 2.0);
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(cleanup_ran);
  EXPECT_FALSE(after_block);
  EXPECT_EQ(result.killed, 1u);
}

TEST_P(BackendTest, ConditionDropsKilledWaiter) {
  Engine engine(1, GetParam());
  Condition cond;
  bool victim_released = false;
  bool survivor_released = false;
  const Pid victim = engine.Spawn("victim", [&](Context& ctx) {
    cond.Wait(ctx, "cond");
    victim_released = true;
  });
  engine.Spawn("survivor", [&](Context& ctx) {
    ctx.Compute(0.5);
    cond.Wait(ctx, "cond");
    survivor_released = true;
  });
  engine.Spawn("driver", [&](Context& ctx) {
    ctx.engine().Kill(victim, 1.0);
    ctx.SleepUntil(2.0);
    EXPECT_TRUE(cond.NotifyOne(ctx.engine(), ctx.now()));
  });
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_FALSE(victim_released);
  EXPECT_TRUE(survivor_released);
}

TEST_P(BackendTest, DeadlockUnwindsBlockedProcesses) {
  Engine engine(1, GetParam());
  bool cleanup_ran = false;
  engine.Spawn("stuck", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&cleanup_ran};
    ctx.Block("never woken");
  });
  auto result = engine.Run();
  EXPECT_FALSE(result.status.ok());
  EXPECT_NE(result.status.message().find("never woken"), std::string::npos);
  // JoinAll force-unwound the parked process: its destructors ran.
  EXPECT_TRUE(cleanup_ran);
}

TEST_P(BackendTest, ExceptionUnwindsBystanders) {
  // A throwing process aborts the run; processes still parked must be
  // force-unwound (RAII runs) on either backend before Run rethrows.
  Engine engine(1, GetParam());
  bool bystander_cleanup = false;
  engine.Spawn("bystander", [&](Context& ctx) {
    struct Cleanup {
      bool* flag;
      ~Cleanup() { *flag = true; }
    } cleanup{&bystander_cleanup};
    ctx.Block("forever");
  });
  engine.Spawn("thrower", [](Context& ctx) {
    ctx.Compute(1.0);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(engine.Run(), std::runtime_error);
  EXPECT_TRUE(bystander_cleanup);
}

namespace crossbackend {

// A workload exercising every scheduler path: RNG-staggered computes,
// yields, sleeps, condition waits/notifies, events, a fault-injected kill,
// and user trace instants.
struct Observed {
  std::string trace_json;
  std::uint64_t dispatches = 0;
  Status status;
  SimTime end_time = 0;
  std::size_t completed = 0;
  std::size_t killed = 0;
};

Observed RunMixedWorkload(Backend backend) {
  Engine engine(1234, backend);
  engine.EnableTrace(true);
  Condition cond;
  for (int i = 0; i < 12; ++i) {
    engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(ctx.rng().Uniform(0.0, 1.0));
      ctx.Trace("step", "a" + std::to_string(i));
      if (i % 3 == 0) {
        cond.Wait(ctx, "trio");
      } else if (i % 3 == 1) {
        ctx.SleepFor(0.5);
        cond.NotifyOne(ctx.engine(), ctx.now());
      } else {
        ctx.Yield();
        ctx.Compute(0.25);
      }
      ctx.Trace("step", "b" + std::to_string(i));
    });
  }
  const Pid victim =
      engine.Spawn("victim", [](Context& ctx) { ctx.Block("doomed"); });
  engine.Kill(victim, 0.75);
  engine.ScheduleEvent(0.25, [&engine] {
    engine.Spawn("late", [](Context& ctx) { ctx.Compute(0.125); });
  });
  auto result = engine.Run();
  Observed out;
  out.trace_json = engine.obs().ToChromeTraceJson();
  out.dispatches = engine.obs().CounterByName("sim.dispatches");
  out.status = result.status;
  out.end_time = result.end_time;
  out.completed = result.completed;
  out.killed = result.killed;
  return out;
}

}  // namespace crossbackend

TEST(CrossBackendTest, MixedWorkloadIsByteIdentical) {
  const auto fibers = crossbackend::RunMixedWorkload(Backend::kFibers);
  const auto threads = crossbackend::RunMixedWorkload(Backend::kThreads);
  EXPECT_TRUE(fibers.status.ok()) << fibers.status.ToString();
  EXPECT_EQ(fibers.trace_json, threads.trace_json);  // byte-identical
  EXPECT_EQ(fibers.dispatches, threads.dispatches);
  EXPECT_EQ(fibers.status.ToString(), threads.status.ToString());
  EXPECT_DOUBLE_EQ(fibers.end_time, threads.end_time);
  EXPECT_EQ(fibers.completed, threads.completed);
  EXPECT_EQ(fibers.killed, threads.killed);
  EXPECT_EQ(fibers.killed, 1u);
}

TEST(CrossBackendTest, DeadlockReportsMatch) {
  auto run = [](Backend backend) {
    Engine engine(1, backend);
    const Pid a = engine.Spawn("hold.a", [](Context& ctx) {
      ctx.BlockOn("lock b", 1);  // waits on hold.b
    });
    engine.Spawn("hold.b", [a](Context& ctx) {
      ctx.Compute(0.5);
      ctx.BlockOn("lock a", a);
    });
    return engine.Run().status.ToString();
  };
  const std::string fibers = run(Backend::kFibers);
  const std::string threads = run(Backend::kThreads);
  EXPECT_EQ(fibers, threads);
  EXPECT_NE(fibers.find("lock"), std::string::npos);
}

TEST(CrossBackendTest, BackendCounterIdentifiesScheduler) {
  Engine fibers(1, Backend::kFibers);
  Engine threads(1, Backend::kThreads);
  EXPECT_EQ(fibers.obs().CounterByName("sim.backend.fibers"), 1u);
  EXPECT_EQ(fibers.obs().CounterByName("sim.backend.threads"), 0u);
  EXPECT_EQ(threads.obs().CounterByName("sim.backend.threads"), 1u);
  EXPECT_EQ(fibers.backend(), Backend::kFibers);
  EXPECT_EQ(threads.backend(), Backend::kThreads);
}

TEST(FiberSchedulerTest, StackPoolReusesAcrossSequentialSpawns) {
  // Processes whose lifetimes never overlap share one pooled stack: the
  // allocated counter stays at 1 while reuse climbs.
  Engine engine(1, Backend::kFibers);
  for (int i = 0; i < 32; ++i) {
    engine.SpawnAt(static_cast<SimTime>(i), "seq" + std::to_string(i),
                   [](Context& ctx) { ctx.Compute(0.5); });
  }
  ASSERT_TRUE(engine.Run().status.ok());
  EXPECT_EQ(engine.obs().CounterByName("sim.fiber.stacks_allocated"), 1u);
  EXPECT_EQ(engine.obs().CounterByName("sim.fiber.stacks_reused"), 31u);
}

TEST(ConditionTest, ManyKilledWaitersDoNotStallNotify) {
  // Regression for the O(n) find-erase on kill-unwind and the O(dead)
  // rescan in NotifyOne: pile up killed waiters in front of one live one
  // and check a single NotifyOne releases it, with waiter_count tracking
  // live (not queued) slots throughout.
  Engine engine(1, Backend::kFibers);
  Condition cond;
  const int kDead = 500;
  int released = 0;
  for (int i = 0; i < kDead; ++i) {
    const Pid victim =
        engine.Spawn("dead" + std::to_string(i), [&](Context& ctx) {
          cond.Wait(ctx, "cond");
          ADD_FAILURE() << "killed waiter resumed";
        });
    engine.Kill(victim, 1.0);
  }
  engine.Spawn("live", [&](Context& ctx) {
    ctx.Compute(0.5);  // enqueue behind every doomed waiter
    cond.Wait(ctx, "cond");
    ++released;
  });
  engine.Spawn("driver", [&](Context& ctx) {
    ctx.SleepUntil(2.0);
    EXPECT_EQ(cond.waiter_count(), 1u);  // corpses already discounted
    EXPECT_TRUE(cond.NotifyOne(ctx.engine(), ctx.now()));
  });
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.killed, static_cast<std::size_t>(kDead));
  EXPECT_EQ(released, 1);
  EXPECT_EQ(cond.waiter_count(), 0u);
}

#if defined(__SANITIZE_ADDRESS__)
#define PSTK_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PSTK_TEST_ASAN 1
#endif
#endif

TEST(FiberSchedulerTest, HundredThousandProcessStorm) {
  // The scale the fiber backend exists for; thread-per-process would need
  // 10^5 OS threads, so this is fiber-gated. Reduced under ASan, whose
  // doubled stacks and shadow memory make the full count needlessly slow.
#if defined(PSTK_TEST_ASAN)
  const int n = 20000;
#else
  const int n = 100000;
#endif
  Engine engine(1, Backend::kFibers);
  long long done = 0;
  for (int i = 0; i < n; ++i) {
    engine.Spawn("p" + std::to_string(i), [&, i](Context& ctx) {
      ctx.Compute(1e-6 * i);
      ctx.Yield();
      ++done;
    });
  }
  auto result = engine.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(done, n);
  EXPECT_EQ(result.completed, static_cast<std::size_t>(n));
}

// --------------------------------------------------------------------------
// Timeline
// --------------------------------------------------------------------------

TEST(TimelineTest, SerializesOverlappingOps) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.Acquire(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.Acquire(0.0, 2.0), 4.0);  // queued behind first
  EXPECT_DOUBLE_EQ(tl.Acquire(10.0, 1.0), 11.0);  // idle gap
  EXPECT_DOUBLE_EQ(tl.busy_time(), 5.0);
  EXPECT_EQ(tl.op_count(), 3u);
}

TEST(TimelineTest, PeekDoesNotReserve) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.Peek(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(tl.Peek(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(tl.next_free(), 0.0);
}

TEST(TimelineTest, FairShareEquivalence) {
  // k equal ops issued together complete at k * d, like processor sharing.
  Timeline tl;
  const int k = 4;
  SimTime last = 0;
  for (int i = 0; i < k; ++i) last = tl.Acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(last, 4.0);
}

TEST(ChannelBankTest, ParallelChannels) {
  ChannelBank bank(2);
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 5.0);   // second channel
  EXPECT_DOUBLE_EQ(bank.Acquire(0.0, 5.0), 10.0);  // queues
}

TEST(ConcurrencyWindowTest, CountsOverlaps) {
  ConcurrencyWindow win;
  EXPECT_EQ(win.Record(0.0, 2.0), 0u);
  EXPECT_EQ(win.Record(1.0, 3.0), 1u);
  EXPECT_EQ(win.active_at(1.5), 2u);
  // Non-overlapping later op: prior spans are pruned (starts nondecreasing).
  EXPECT_EQ(win.Record(5.0, 6.0), 0u);
  EXPECT_EQ(win.active_at(4.0), 0u);
  EXPECT_EQ(win.active_at(5.5), 1u);
}

}  // namespace
}  // namespace pstk::sim
