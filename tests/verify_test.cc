// Tests for the runtime-verification framework (src/verify) and the
// pstk-lint static scanner (src/analysis/lint.h).
//
// Each checker gets at least one seeded-violation test (the checker must
// fire) and the suite ends with zero-false-positive sweeps: idiomatic
// clean jobs on every framework must produce no findings at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "shmem/shmem.h"
#include "sim/engine.h"
#include "spark/spark.h"
#include "verify/checkers.h"
#include "verify/verify.h"

namespace pstk {
namespace {

constexpr auto kNpos = std::string::npos;

// ===========================================================================
// Hub basics (no cluster needed)
// ===========================================================================

TEST(VerifyHubTest, StartsCleanRendersAndClears) {
  verify::Hub hub;
  EXPECT_FALSE(hub.active());
  EXPECT_EQ(hub.RenderReport(), "verify: clean (0 findings)\n");

  hub.Report(verify::Finding{verify::Severity::kError, "test", "test-code",
                             "boom", "rank 0", 1.5});
  hub.Report(verify::Finding{verify::Severity::kWarning, "test", "test-warn",
                             "meh", "", 2.0});
  EXPECT_EQ(hub.error_count(), 1u);
  EXPECT_EQ(hub.warning_count(), 1u);
  EXPECT_EQ(hub.CountCode("test-code"), 1u);
  EXPECT_EQ(hub.CountCode("absent"), 0u);
  const std::string report = hub.RenderReport();
  EXPECT_NE(report.find("[ERROR] test/test-code"), kNpos);
  EXPECT_NE(report.find("[WARNING] test/test-warn"), kNpos);

  hub.Clear();
  EXPECT_EQ(hub.findings().size(), 0u);
  EXPECT_EQ(hub.RenderReport(), "verify: clean (0 findings)\n");
}

TEST(VerifyHubTest, InstallAllActivatesHub) {
  verify::Hub hub;
  verify::InstallAll(hub);
  EXPECT_TRUE(hub.active());
}

// ===========================================================================
// Spark invariant checker, driven directly through the hub
// ===========================================================================

TEST(SparkCheckerTest, LineageCycleReportedWithCycleMembers) {
  verify::Hub hub;
  hub.Install(verify::MakeSparkInvariantChecker());
  // 2 -> 1 -> 3 -> 2 plus an innocent 4 -> 2 edge.
  hub.OnSparkLineage({{2, 1}, {1, 3}, {3, 2}, {4, 2}});
  ASSERT_EQ(hub.CountCode("spark-lineage-cycle"), 1u);
  const verify::Finding& f = hub.findings().front();
  EXPECT_EQ(f.severity, verify::Severity::kError);
  EXPECT_NE(f.message.find("lineage is cyclic"), kNpos);
}

TEST(SparkCheckerTest, AcyclicLineageIsClean) {
  verify::Hub hub;
  hub.Install(verify::MakeSparkInvariantChecker());
  hub.OnSparkLineage({{3, 2}, {2, 1}, {3, 1}});  // a DAG (diamond-ish)
  EXPECT_EQ(hub.findings().size(), 0u);
}

TEST(SparkCheckerTest, StageBarrierSeverityDependsOnRecovery) {
  verify::Hub hub;
  hub.Install(verify::MakeSparkInvariantChecker());
  hub.OnStageBarrier("spark", 7, 2, 4, /*will_recover=*/true, 10.0);
  ASSERT_EQ(hub.CountCode("stage-barrier-retry"), 1u);
  EXPECT_EQ(hub.findings().front().severity, verify::Severity::kWarning);
  EXPECT_NE(hub.findings().front().message.find("2/4"), kNpos);

  hub.OnStageBarrier("mr", 7, 1, 4, /*will_recover=*/false, 11.0);
  ASSERT_EQ(hub.CountCode("stage-barrier-violation"), 1u);
  EXPECT_EQ(hub.findings().back().severity, verify::Severity::kError);
  EXPECT_EQ(hub.error_count(), 1u);
}

// ===========================================================================
// Checkpoint-consistency checker, driven directly through the hub
// ===========================================================================

TEST(CkptCheckerTest, PartialCommitReported) {
  verify::Hub hub;
  hub.Install(verify::MakeCkptChecker());
  hub.OnCkptWrite(0, 0, 1024, 1.0);
  hub.OnCkptCommit(0, /*ranks_written=*/1, /*nranks=*/2, 1.1);
  ASSERT_EQ(hub.CountCode("ckpt-partial-commit"), 1u);
  EXPECT_EQ(hub.findings().front().severity, verify::Severity::kError);
  EXPECT_NE(hub.findings().front().message.find("1/2"), kNpos);
}

TEST(CkptCheckerTest, DuplicateWriteWarned) {
  verify::Hub hub;
  hub.Install(verify::MakeCkptChecker());
  hub.OnCkptWrite(3, 0, 1024, 1.0);
  hub.OnCkptWrite(3, 0, 1024, 1.2);
  ASSERT_EQ(hub.CountCode("ckpt-duplicate-write"), 1u);
  EXPECT_EQ(hub.findings().front().severity, verify::Severity::kWarning);
}

TEST(CkptCheckerTest, EpochRegressionReported) {
  verify::Hub hub;
  hub.Install(verify::MakeCkptChecker());
  hub.OnCkptWrite(0, 1, 64, 1.0);
  hub.OnCkptCommit(1, 1, 1, 1.1);
  hub.OnCkptWrite(0, 0, 64, 2.0);
  hub.OnCkptCommit(0, 1, 1, 2.1);  // commits behind epoch 1
  ASSERT_EQ(hub.CountCode("ckpt-epoch-regression"), 1u);
}

TEST(CkptCheckerTest, RestoreDivergenceReported) {
  verify::Hub hub;
  hub.Install(verify::MakeCkptChecker());
  hub.OnCkptRestore(0, 3, 5.0);
  hub.OnCkptRestore(1, 2, 5.1);  // rank 1 resumed past a lost snapshot
  ASSERT_EQ(hub.CountCode("ckpt-restore-divergence"), 1u);
  EXPECT_EQ(hub.findings().front().severity, verify::Severity::kError);
}

TEST(CkptCheckerTest, CoordinatedSequenceIsClean) {
  verify::Hub hub;
  hub.Install(verify::MakeCkptChecker());
  for (int epoch = 0; epoch < 2; ++epoch) {
    hub.OnCkptWrite(0, epoch, 64, epoch + 0.1);
    hub.OnCkptWrite(1, epoch, 64, epoch + 0.2);
    hub.OnCkptCommit(epoch, 2, 2, epoch + 0.3);
  }
  hub.OnCkptRestore(0, 1, 5.0);
  hub.OnCkptRestore(1, 1, 5.1);
  EXPECT_EQ(hub.findings().size(), 0u);
}

// ===========================================================================
// MPI usage checker on live MiniMPI jobs
// ===========================================================================

struct MpiFixture {
  explicit MpiFixture(std::size_t nodes = 2, double scale = 1.0) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes), scale);
    verify::InstallAll(engine.verify());
  }
  verify::Hub& hub() { return engine.verify(); }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
};

TEST(MpiVerifyTest, TruncationReportedAndRunStillCompletes) {
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  Bytes received = 0;
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<char> big(16, 'x');
      comm.Send(big.data(), big.size(), /*dest=*/1, /*tag=*/7);
    } else {
      std::vector<char> small(8);
      received = comm.Recv(small.data(), small.size(), /*source=*/0,
                           /*tag=*/7);
    }
  });
  // With the verifier on, truncation is MPI_ERR_TRUNCATE semantics (a
  // finding plus a prefix copy), not a hard abort.
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(received, 8u);
  ASSERT_EQ(f.hub().CountCode("mpi-truncation"), 1u);
  EXPECT_NE(f.hub().findings().front().message.find("MPI_ERR_TRUNCATE"),
            kNpos);
}

TEST(MpiVerifyTest, UnmatchedSendReportedAtFinalize) {
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      const int payload = 42;
      // Nobody ever posts the matching receive for tag 99.
      comm.Isend(&payload, sizeof(payload), /*dest=*/1, /*tag=*/99);
    }
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(f.hub().CountCode("mpi-unmatched-send"), 1u);
  EXPECT_NE(f.hub().findings().front().message.find("tag 99"), kNpos);
}

TEST(MpiVerifyTest, LeakedIrecvRequestReported) {
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      int slot = 0;
      comm.Irecv(&slot, sizeof(slot), /*source=*/1, /*tag=*/3);
      // The request is never completed with Wait/Waitall.
    }
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(f.hub().CountCode("mpi-request-leak"), 1u);
}

TEST(MpiVerifyTest, CollectiveCallOrderMismatchReported) {
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  world.SpawnRanks([&](mpi::Comm& comm) {
    double x = 0.0;
    // Rank 0 enters a barrier while rank 1 enters a broadcast: the classic
    // mismatched-collective bug. The run itself may well hang afterwards;
    // the checker must still name the divergence.
    if (comm.rank() == 0) {
      comm.Barrier();
    } else {
      comm.Bcast(&x, sizeof(x), /*root=*/0);
    }
  });
  (void)f.engine.Run();  // outcome irrelevant: the diagnostic is the point
  ASSERT_GE(f.hub().CountCode("mpi-collective-mismatch"), 1u);
  bool found = false;
  for (const verify::Finding& fd : f.hub().findings()) {
    if (fd.code != "mpi-collective-mismatch") continue;
    EXPECT_NE(fd.message.find("barrier"), kNpos);
    EXPECT_NE(fd.message.find("bcast"), kNpos);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MpiVerifyTest, CommunicatorLeakReportedAtJobEnd) {
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  std::vector<std::unique_ptr<mpi::Comm>> leaked(2);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    // The split communicator outlives the job: MPI_Comm_free never runs
    // before MPI_Finalize.
    leaked[static_cast<std::size_t>(comm.rank())] =
        comm.Split(/*color=*/0, /*key=*/comm.rank());
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(f.hub().CountCode("mpi-comm-leak"), 2u);
  leaked.clear();  // destroy while the engine (and contexts) still exist
}

// The paper's Fig. 4 failure: MPI_File_read_at_all takes its count as a C
// int, so a per-rank chunk above INT_MAX bytes cannot be read. The job
// must fail symmetrically (no deadlock) with a structured diagnostic.
TEST(MpiVerifyTest, Fig4IoCountOverflowDiagnosed) {
  // data_scale 1e-6: an 8 KB staged file models an 8 GB logical input, so
  // each of 2 ranks owns a ~4 GB chunk — above INT_MAX.
  MpiFixture f(/*nodes=*/2, /*scale=*/1e-6);
  std::string content;
  for (int i = 0; i < 200; ++i) {
    content += "line " + std::to_string(i) + std::string(32, 'x') + "\n";
  }
  f.cluster->scratch(0).Install("/in/posts.txt", content);
  f.cluster->scratch(1).Install("/in/posts.txt", content);

  mpi::World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    auto file = mpi::File::OpenAll(comm, "/in/posts.txt");
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    const auto chunk = static_cast<std::int64_t>(file->size() / 2);
    ASSERT_GT(chunk, std::int64_t{2147483647});
    auto part = file->ReadLinesAtAll(
        comm, static_cast<Bytes>(comm.rank()) * static_cast<Bytes>(chunk),
        chunk);
    EXPECT_FALSE(part.ok());
    EXPECT_NE(part.status().ToString().find("INT_MAX (2147483647)"), kNpos);
  });
  // Every rank bails out before the collective's barrier: clean finish.
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(f.hub().CountCode("mpi-io-count-overflow"), 2u);
  const verify::Finding& fd = f.hub().findings().front();
  EXPECT_NE(fd.message.find("MPI_File_read_at_all"), kNpos);
  EXPECT_NE(fd.message.find("exceeds INT_MAX"), kNpos);
}

// ===========================================================================
// Deadlock explainer (engine wait-for graph)
// ===========================================================================

TEST(DeadlockVerifyTest, RecvCycleIsNamedInReportAndFinding) {
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    int slot = 0;
    // Both ranks receive from each other and nobody sends: a 2-cycle.
    comm.Recv(&slot, sizeof(slot), /*source=*/1 - comm.rank(), /*tag=*/5);
  });
  ASSERT_FALSE(t.ok());
  const std::string msg = t.status().ToString();
  EXPECT_NE(msg.find("wait-for cycle:"), kNpos) << msg;
  EXPECT_NE(msg.find("mpi-rank-0"), kNpos);
  EXPECT_NE(msg.find("mpi-rank-1"), kNpos);
  EXPECT_NE(msg.find("blame: mpi=2"), kNpos);
  // The same report lands in the hub as a structured finding; with no
  // injected fault this is a usage error, not expected teardown.
  ASSERT_EQ(f.hub().CountCode("sim-deadlock"), 1u);
  bool severity_checked = false;
  for (const verify::Finding& fd : f.hub().findings()) {
    if (fd.code != "sim-deadlock") continue;
    EXPECT_EQ(fd.severity, verify::Severity::kError);
    severity_checked = true;
  }
  EXPECT_TRUE(severity_checked);
}

// The static detector (pstk-lint's mpi-rendezvous-deadlock) is the
// lint-time mirror of this explainer: one exchange, caught both ways.
TEST(DeadlockVerifyTest, StaticDetectorMirrorsRuntimeExplainer) {
  // 128 KiB payloads sit above MiniMPI's 64 KiB eager threshold, so the
  // blocking Send really waits for its receiver.
  constexpr Bytes kPayload = 131072;

  // Static side: the same exchange as source text.
  const auto findings = analysis::LintSource("exchange.cc", R"cc(
void exchange(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Send(data.data(), 131072, partner, 5);
  comm.Recv(data.data(), 131072, partner, 5);
}
)cc");
  const auto count = [&](const char* rule) {
    std::size_t n = 0;
    for (const auto& f : findings) n += f.rule == rule ? 1u : 0u;
    return n;
  };
  EXPECT_EQ(count("mpi-rendezvous-deadlock"), 1u)
      << analysis::RenderLintReport(findings);

  // Runtime side: the exact exchange hangs and the explainer names it.
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    std::vector<char> data(static_cast<std::size_t>(kPayload));
    const int partner = comm.rank() ^ 1;
    comm.Send(data.data(), kPayload, partner, 5);
    comm.Recv(data.data(), kPayload, partner, 5);
  });
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().ToString().find("wait-for cycle:"), kNpos);
  EXPECT_EQ(f.hub().CountCode("sim-deadlock"), 1u);
}

TEST(DeadlockVerifyTest, SendrecvExchangeIsCleanBothWays) {
  constexpr Bytes kPayload = 131072;

  // Static side: the fused form produces no deadlock findings.
  const auto findings = analysis::LintSource("exchange.cc", R"cc(
void exchange(mpi::Comm& comm) {
  const int partner = comm.rank() ^ 1;
  comm.Sendrecv(out.data(), 131072, partner, in.data(), 131072, partner, 5);
}
)cc");
  for (const auto& fd : findings) {
    EXPECT_NE(fd.rule, "mpi-rendezvous-deadlock") << fd.message;
    EXPECT_NE(fd.rule, "mpi-wait-cycle") << fd.message;
  }

  // Runtime side: the same exchange completes above the eager threshold
  // and each rank receives the partner's payload.
  MpiFixture f;
  mpi::World world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    const int partner = comm.rank() ^ 1;
    std::vector<char> out(static_cast<std::size_t>(kPayload),
                          static_cast<char>('a' + comm.rank()));
    std::vector<char> in(static_cast<std::size_t>(kPayload), '?');
    const Bytes got = comm.Sendrecv(out.data(), kPayload, partner,
                                    in.data(), kPayload, partner, 5);
    EXPECT_EQ(got, kPayload);
    EXPECT_EQ(in.front(), static_cast<char>('a' + partner));
    EXPECT_EQ(in.back(), static_cast<char>('a' + partner));
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(f.hub().CountCode("sim-deadlock"), 0u);
}

// ===========================================================================
// SHMEM synchronization checker on live MiniSHMEM jobs
// ===========================================================================

struct ShmemFixture {
  explicit ShmemFixture(std::size_t nodes = 2) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes));
    verify::InstallAll(engine.verify());
  }
  verify::Hub& hub() { return engine.verify(); }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
};

TEST(ShmemVerifyTest, ConcurrentPutsToSameSlotRace) {
  ShmemFixture f;
  shmem::ShmemWorld world(*f.cluster, 4, 2);
  auto t = world.RunSpmd([&](shmem::Pe& pe) {
    auto slot = pe.Malloc<std::int64_t>(1);
    *pe.Local(slot) = 0;
    pe.BarrierAll();
    // PEs 0 and 1 both write PE 3's slot with nothing ordering them.
    if (pe.my_pe() == 0) pe.PutValue<std::int64_t>(slot, 7, /*target_pe=*/3);
    if (pe.my_pe() == 1) pe.PutValue<std::int64_t>(slot, 9, /*target_pe=*/3);
    pe.BarrierAll();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_GE(f.hub().CountCode("shmem-race"), 1u);
  bool described = false;
  for (const verify::Finding& fd : f.hub().findings()) {
    if (fd.code != "shmem-race") continue;
    EXPECT_NE(fd.message.find("data race on PE 3"), kNpos);
    described = true;
  }
  EXPECT_TRUE(described);
}

TEST(ShmemVerifyTest, BarrierSeparatedPutsAreClean) {
  ShmemFixture f;
  shmem::ShmemWorld world(*f.cluster, 4, 2);
  auto t = world.RunSpmd([&](shmem::Pe& pe) {
    auto slot = pe.Malloc<std::int64_t>(1);
    *pe.Local(slot) = 0;
    pe.BarrierAll();
    if (pe.my_pe() == 0) pe.PutValue<std::int64_t>(slot, 7, /*target_pe=*/3);
    pe.BarrierAll();  // orders the two writes
    if (pe.my_pe() == 1) pe.PutValue<std::int64_t>(slot, 9, /*target_pe=*/3);
    pe.BarrierAll();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(f.hub().findings().size(), 0u);
}

TEST(ShmemVerifyTest, AtomicsDoNotRaceWithEachOther) {
  ShmemFixture f;
  shmem::ShmemWorld world(*f.cluster, 4, 2);
  std::int64_t total = -1;
  auto t = world.RunSpmd([&](shmem::Pe& pe) {
    auto counter = pe.Malloc<std::int64_t>(1);
    *pe.Local(counter) = 0;
    pe.BarrierAll();
    pe.AtomicFetchAdd(counter, 1, /*target_pe=*/0);  // all PEs, same word
    pe.BarrierAll();
    if (pe.my_pe() == 0) total = *pe.Local(counter);
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(total, 4);
  EXPECT_EQ(f.hub().findings().size(), 0u);
}

TEST(ShmemVerifyTest, WaitUntilOrdersProducerConsumer) {
  // Producer-consumer through a flag: without the wait_until edge the
  // consumer's write to `data` would race the producer's.
  ShmemFixture f;
  shmem::ShmemWorld world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](shmem::Pe& pe) {
    auto data = pe.Malloc<std::int64_t>(1);
    auto flag = pe.Malloc<std::int64_t>(1);
    *pe.Local(data) = 0;
    *pe.Local(flag) = 0;
    pe.BarrierAll();
    if (pe.my_pe() == 0) {
      pe.PutValue<std::int64_t>(data, 42, /*target_pe=*/1);
      pe.Fence();  // data lands before the flag
      pe.PutValue<std::int64_t>(flag, 1, /*target_pe=*/1);
    } else {
      pe.WaitUntil(flag, shmem::Cmp::kGe, 1);
      EXPECT_EQ(*pe.Local(data), 42);
      pe.PutValue<std::int64_t>(data, 43, /*target_pe=*/1);  // ordered
    }
    pe.BarrierAll();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(f.hub().CountCode("shmem-race"), 0u);
}

TEST(ShmemVerifyTest, UnsynchronizedOverwriteAfterPutRaces) {
  // Same shape as above but the consumer skips the wait: race.
  ShmemFixture f;
  shmem::ShmemWorld world(*f.cluster, 2, 1);
  auto t = world.RunSpmd([&](shmem::Pe& pe) {
    auto data = pe.Malloc<std::int64_t>(1);
    *pe.Local(data) = 0;
    pe.BarrierAll();
    if (pe.my_pe() == 0) {
      pe.PutValue<std::int64_t>(data, 42, /*target_pe=*/1);
    } else {
      pe.PutValue<std::int64_t>(data, 43, /*target_pe=*/1);
    }
    pe.BarrierAll();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_GE(f.hub().CountCode("shmem-race"), 1u);
}

// ===========================================================================
// Spark checker on live MiniSpark jobs
// ===========================================================================

struct SparkFixture {
  explicit SparkFixture(std::size_t nodes = 2) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes));
    spark::SparkOptions options;
    options.app_startup = Millis(100);
    options.executors_per_node = 2;
    mini = std::make_unique<spark::MiniSpark>(*cluster, nullptr, options);
    verify::InstallAll(engine.verify());
  }
  verify::Hub& hub() { return engine.verify(); }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<spark::MiniSpark> mini;
};

TEST(SparkVerifyTest, UnpersistedIterativeReuseWarnsRecomputeStorm) {
  SparkFixture f;
  auto result = f.mini->RunApp([&](spark::SparkContext& sc) {
    std::vector<std::int64_t> data(200);
    for (int i = 0; i < 200; ++i) data[i] = i;
    auto doubled = sc.Parallelize(std::move(data), 4)
                       .Map<std::int64_t>([](const std::int64_t& x) {
                         return x * 2;
                       });
    for (int iter = 0; iter < 3; ++iter) {
      auto n = doubled.Count();  // recomputes the map every iteration
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(n.value(), 200);
    }
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(f.hub().CountCode("spark-recompute-storm"), 1u);
  EXPECT_EQ(f.hub().error_count(), 0u);  // a warning, not an error
}

TEST(SparkVerifyTest, PersistSilencesRecomputeStorm) {
  SparkFixture f;
  auto result = f.mini->RunApp([&](spark::SparkContext& sc) {
    std::vector<std::int64_t> data(200);
    for (int i = 0; i < 200; ++i) data[i] = i;
    auto doubled = sc.Parallelize(std::move(data), 4)
                       .Map<std::int64_t>([](const std::int64_t& x) {
                         return x * 2;
                       });
    doubled.Cache();
    for (int iter = 0; iter < 3; ++iter) {
      auto n = doubled.Count();
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(n.value(), 200);
    }
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(f.hub().CountCode("spark-recompute-storm"), 0u);
}

// ===========================================================================
// Zero-false-positive sweeps: clean idiomatic jobs stay clean
// ===========================================================================

TEST(VerifyCleanSweepTest, CleanMpiJobHasNoFindings) {
  MpiFixture f;
  mpi::World world(*f.cluster, 4, 2);
  auto t = world.RunSpmd([&](mpi::Comm& comm) {
    const std::vector<double> one{1.0};
    std::vector<double> sum(1);
    comm.Allreduce<double>(one, sum);
    EXPECT_DOUBLE_EQ(sum[0], 4.0);

    double root_val = comm.rank() == 0 ? 3.25 : 0.0;
    comm.Bcast(&root_val, sizeof(root_val), /*root=*/0);
    EXPECT_DOUBLE_EQ(root_val, 3.25);

    comm.Barrier();

    // Ring shift with a nonblocking send: matched, leak-free.
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    int token = comm.rank();
    mpi::Request s = comm.Isend(&token, sizeof(token), right, /*tag=*/11);
    int got = -1;
    comm.Recv(&got, sizeof(got), left, /*tag=*/11);
    comm.Wait(s);
    EXPECT_EQ(got, left);

    // A split communicator, used and freed before finalize.
    auto sub = comm.Split(comm.rank() % 2, comm.rank());
    sub->Barrier();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(f.hub().findings().size(), 0u) << f.hub().RenderReport();
}

TEST(VerifyCleanSweepTest, CleanShmemJobHasNoFindings) {
  ShmemFixture f;
  shmem::ShmemWorld world(*f.cluster, 4, 2);
  auto t = world.RunSpmd([&](shmem::Pe& pe) {
    auto slot = pe.Malloc<std::int64_t>(1);
    auto counter = pe.Malloc<std::int64_t>(1);
    *pe.Local(slot) = 0;
    *pe.Local(counter) = 0;
    pe.BarrierAll();
    const int right = (pe.my_pe() + 1) % pe.n_pes();
    pe.PutValue<std::int64_t>(slot, pe.my_pe(), right);
    pe.BarrierAll();
    const std::int64_t neighbor = pe.GetValue<std::int64_t>(slot, right);
    EXPECT_EQ(neighbor, (right + pe.n_pes() - 1) % pe.n_pes());
    pe.AtomicFetchAdd(counter, 1, /*target_pe=*/0);
    pe.BarrierAll();
  });
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(f.hub().findings().size(), 0u) << f.hub().RenderReport();
}

TEST(VerifyCleanSweepTest, CleanSparkJobHasNoErrors) {
  SparkFixture f;
  auto result = f.mini->RunApp([&](spark::SparkContext& sc) {
    std::vector<std::pair<std::int64_t, std::int64_t>> data;
    for (std::int64_t i = 0; i < 500; ++i) data.emplace_back(i % 10, 1);
    auto counts = sc.Parallelize(std::move(data), 4)
                      .AsPairs<std::int64_t, std::int64_t>()
                      .ReduceByKey([](std::int64_t a, std::int64_t b) {
                        return a + b;
                      });
    auto n = counts.Count();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 10);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(f.hub().findings().size(), 0u) << f.hub().RenderReport();
}

// ===========================================================================
// pstk-lint static scanner
// ===========================================================================

TEST(LintTest, BlockingSymmetricSendFlagged) {
  const std::string src = R"(
void Exchange(Comm& comm, int rank, int size, std::vector<char>& buf) {
  comm.Send(buf.data(), buf.size(), (rank + 1) % size, 0);
  comm.Recv(buf.data(), buf.size(), (rank - 1 + size) % size, 0);
}
)";
  auto findings = analysis::LintSource("exchange.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "mpi-blocking-symmetric-send");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, AsyncSymmetricSendIsClean) {
  const std::string src = R"(
void Exchange(Comm& comm, int rank, int size, std::vector<char>& buf) {
  auto req = comm.Isend(buf.data(), buf.size(), (rank + 1) % size, 0);
  comm.Recv(buf.data(), buf.size(), (rank - 1 + size) % size, 0);
  comm.Wait(req);
}
)";
  EXPECT_TRUE(analysis::LintSource("exchange.cc", src).empty());
}

TEST(LintTest, UnpersistedRddReusedInLoopFlagged) {
  const std::string src = R"(
void Iterate(SparkContext& sc) {
  auto doubled = sc.Parallelize(MakeData(), 8);
  for (int iter = 0; iter < 10; ++iter) {
    auto n = doubled.Count();
  }
}
)";
  auto findings = analysis::LintSource("iterate.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "spark-missing-persist");
  EXPECT_NE(findings[0].message.find("'doubled'"), kNpos);
}

TEST(LintTest, PersistedRddInLoopIsClean) {
  const std::string src = R"(
void Iterate(SparkContext& sc) {
  auto doubled = sc.Parallelize(MakeData(), 8);
  doubled.Cache();
  for (int iter = 0; iter < 10; ++iter) {
    auto n = doubled.Count();
  }
}
)";
  EXPECT_TRUE(analysis::LintSource("iterate.cc", src).empty());
}

TEST(LintTest, OmpSharedAccumulationFlagged) {
  const std::string src = R"(
double Sum(const std::vector<double>& xs) {
  double total = 0;
  #pragma omp parallel for
  for (std::size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];
  }
  return total;
}
)";
  auto findings = analysis::LintSource("sum.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "omp-shared-reduction");
}

TEST(LintTest, OmpReductionClauseIsClean) {
  const std::string src = R"(
double Sum(const std::vector<double>& xs) {
  double total = 0;
  #pragma omp parallel for reduction(+ : total)
  for (std::size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];
  }
  return total;
}
)";
  EXPECT_TRUE(analysis::LintSource("sum.cc", src).empty());
}

TEST(LintTest, CommentsDoNotTriggerRules) {
  const std::string src = R"(
// comm.Send(buf.data(), buf.size(), (rank + 1) % size, 0);
/* #pragma omp parallel for
   total += xs[i]; */
int main() { return 0; }
)";
  EXPECT_TRUE(analysis::LintSource("commented.cc", src).empty());
}

TEST(LintTest, RenderReportCleanAndSummary) {
  EXPECT_EQ(analysis::RenderLintReport({}), "pstk-lint: clean (0 findings)\n");
  std::vector<analysis::LintFinding> findings{
      {"omp-shared-reduction", "a.cc", 4, "race",
       analysis::Severity::kWarning, "", {}, "", {}},
      {"omp-shared-reduction", "b.cc", 9, "race",
       analysis::Severity::kWarning, "", {}, "", {}},
  };
  const std::string report = analysis::RenderLintReport(findings);
  EXPECT_NE(report.find("2 finding(s)"), kNpos);
  EXPECT_NE(report.find("a.cc:4"), kNpos);
  EXPECT_NE(report.find("omp-shared-reduction: 2"), kNpos);
}

// The acceptance sweep behind the `pstk-lint-run` target: scanning the
// repo's examples/ and bench/ must succeed and render a report. The
// shipped sources are kept free of the misuse patterns except for the
// intentional pitfalls documented in lint-baseline.txt — if a finding
// ever appears here, fix the source, the heuristic, or the baseline,
// whichever is wrong.
TEST(LintTest, RepoExamplesAndBenchScanClean) {
  const std::string root = PSTK_REPO_ROOT;
  auto findings =
      analysis::LintTree({root + "/examples", root + "/bench"});
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  auto baseline = analysis::LoadBaseline(root + "/lint-baseline.txt");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  int suppressed = 0;
  auto kept = analysis::ApplyBaseline(std::move(findings.value()),
                                      baseline.value(), &suppressed);
  EXPECT_EQ(kept.size(), 0u) << analysis::RenderLintReport(kept);
  // The baseline documents real, intentional pitfalls; if it stops
  // matching anything the entries (or the rules) have rotted.
  EXPECT_GT(suppressed, 0);
}

TEST(LintTest, MissingRootIsAnError) {
  auto findings = analysis::LintTree({"/nonexistent-lint-root"});
  EXPECT_FALSE(findings.ok());
}

}  // namespace
}  // namespace pstk
