// Unit tests for MiniSpark's engine-global state: the BlockManager
// (cache/eviction/spill) and the shuffle-output registry.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "spark/runtime.h"

namespace pstk::spark {
namespace {

PartitionHandle MakeData(int marker) {
  return std::make_shared<std::vector<int>>(1, marker);
}

int MarkerOf(const BlockStore::Block* block) {
  return (*std::static_pointer_cast<std::vector<int>>(block->data))[0];
}

BlockStore::Block MakeBlock(int marker, Bytes size, StorageLevel level) {
  BlockStore::Block block;
  block.data = MakeData(marker);
  block.modeled_size = size;
  block.level = level;
  return block;
}

// --------------------------------------------------------------------------
// BlockStore
// --------------------------------------------------------------------------

TEST(BlockStoreTest, PutAndLookup) {
  BlockStore store(1000);
  Bytes spilled = 0;
  auto put = store.Put(0, 1, 2, MakeBlock(42, 100, StorageLevel::kMemoryOnly),
                       &spilled);
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(spilled, 0u);
  EXPECT_FALSE(put->on_disk);
  const auto* block = store.Lookup(0, 1, 2);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(MarkerOf(block), 42);
  EXPECT_EQ(store.memory_used(0), 100u);
  // Different executor / rdd / partition: miss.
  EXPECT_EQ(store.Lookup(1, 1, 2), nullptr);
  EXPECT_EQ(store.Lookup(0, 2, 2), nullptr);
  EXPECT_EQ(store.Lookup(0, 1, 3), nullptr);
}

TEST(BlockStoreTest, LruEvictionDropsMemoryOnly) {
  BlockStore store(250);
  Bytes spilled = 0;
  store.Put(0, 1, 0, MakeBlock(10, 100, StorageLevel::kMemoryOnly), &spilled);
  store.Put(0, 1, 1, MakeBlock(11, 100, StorageLevel::kMemoryOnly), &spilled);
  // Touch partition 0 so partition 1 is the LRU victim.
  ASSERT_NE(store.Lookup(0, 1, 0), nullptr);
  store.Put(0, 1, 2, MakeBlock(12, 100, StorageLevel::kMemoryOnly), &spilled);
  EXPECT_EQ(spilled, 0u);  // MEMORY_ONLY victims are dropped, not spilled
  EXPECT_NE(store.Lookup(0, 1, 0), nullptr);
  EXPECT_EQ(store.Lookup(0, 1, 1), nullptr);  // evicted
  EXPECT_NE(store.Lookup(0, 1, 2), nullptr);
  EXPECT_LE(store.memory_used(0), 250u);
}

TEST(BlockStoreTest, MemoryAndDiskVictimSpills) {
  BlockStore store(150);
  Bytes spilled = 0;
  store.Put(0, 1, 0, MakeBlock(10, 100, StorageLevel::kMemoryAndDisk),
            &spilled);
  store.Put(0, 1, 1, MakeBlock(11, 100, StorageLevel::kMemoryOnly), &spilled);
  EXPECT_EQ(spilled, 100u);  // partition 0 spilled to make room
  const auto* victim = store.Lookup(0, 1, 0);
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(victim->on_disk);  // still readable, from disk
  EXPECT_EQ(store.memory_used(0), 100u);
}

TEST(BlockStoreTest, OversizedMemoryOnlyNotCached) {
  BlockStore store(50);
  Bytes spilled = 0;
  auto put = store.Put(0, 1, 0, MakeBlock(9, 100, StorageLevel::kMemoryOnly),
                       &spilled);
  EXPECT_FALSE(put.has_value());
  EXPECT_EQ(store.Lookup(0, 1, 0), nullptr);
}

TEST(BlockStoreTest, OversizedMemoryAndDiskGoesToDisk) {
  BlockStore store(50);
  Bytes spilled = 0;
  auto put = store.Put(
      0, 1, 0, MakeBlock(9, 100, StorageLevel::kMemoryAndDisk), &spilled);
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->on_disk);
  EXPECT_EQ(spilled, 100u);
  EXPECT_EQ(store.memory_used(0), 0u);
}

TEST(BlockStoreTest, DiskOnlyNeverUsesMemory) {
  BlockStore store(1000);
  Bytes spilled = 0;
  auto put =
      store.Put(0, 1, 0, MakeBlock(9, 100, StorageLevel::kDiskOnly), &spilled);
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->on_disk);
  EXPECT_EQ(store.memory_used(0), 0u);
}

TEST(BlockStoreTest, PerExecutorBudgetsAreIndependent) {
  BlockStore store(100);
  Bytes spilled = 0;
  store.Put(0, 1, 0, MakeBlock(1, 100, StorageLevel::kMemoryOnly), &spilled);
  store.Put(1, 1, 0, MakeBlock(2, 100, StorageLevel::kMemoryOnly), &spilled);
  EXPECT_NE(store.Lookup(0, 1, 0), nullptr);
  EXPECT_NE(store.Lookup(1, 1, 0), nullptr);
  EXPECT_EQ(store.memory_used(0), 100u);
  EXPECT_EQ(store.memory_used(1), 100u);
}

TEST(BlockStoreTest, CachedExecutorsAndDrops) {
  BlockStore store(1000);
  Bytes spilled = 0;
  store.Put(0, 7, 3, MakeBlock(1, 10, StorageLevel::kMemoryOnly), &spilled);
  store.Put(2, 7, 3, MakeBlock(2, 10, StorageLevel::kMemoryOnly), &spilled);
  store.Put(2, 8, 3, MakeBlock(3, 10, StorageLevel::kMemoryOnly), &spilled);
  auto holders = store.CachedExecutors(7, 3);
  EXPECT_EQ(holders.size(), 2u);

  store.DropExecutor(0);
  EXPECT_EQ(store.CachedExecutors(7, 3).size(), 1u);
  EXPECT_EQ(store.memory_used(0), 0u);

  store.DropRdd(7);
  EXPECT_TRUE(store.CachedExecutors(7, 3).empty());
  EXPECT_NE(store.Lookup(2, 8, 3), nullptr);  // other RDD untouched
}

TEST(BlockStoreTest, RecachingReplacesAccounting) {
  BlockStore store(1000);
  Bytes spilled = 0;
  store.Put(0, 1, 0, MakeBlock(1, 300, StorageLevel::kMemoryOnly), &spilled);
  store.Put(0, 1, 0, MakeBlock(2, 100, StorageLevel::kMemoryOnly), &spilled);
  EXPECT_EQ(store.memory_used(0), 100u);
  EXPECT_EQ(MarkerOf(store.Lookup(0, 1, 0)), 2);
}

// --------------------------------------------------------------------------
// ShuffleStore
// --------------------------------------------------------------------------

ShuffleStore::MapOutput MakeOutput(int executor, int node, int buckets) {
  ShuffleStore::MapOutput output;
  output.executor = executor;
  output.node = node;
  output.buckets.resize(static_cast<std::size_t>(buckets),
                        buf::Bytes::Copy("abc"));
  return output;
}

TEST(ShuffleStoreTest, RegisterAndComplete) {
  ShuffleStore store;
  store.Register(5, /*maps=*/3, /*reduces=*/2);
  EXPECT_TRUE(store.IsRegistered(5));
  EXPECT_FALSE(store.IsRegistered(6));
  EXPECT_FALSE(store.Complete(5));
  EXPECT_EQ(store.MissingMaps(5).size(), 3u);

  store.PutMapOutput(5, 0, MakeOutput(0, 0, 2));
  store.PutMapOutput(5, 2, MakeOutput(1, 1, 2));
  EXPECT_EQ(store.MissingMaps(5), std::vector<int>{1});
  store.PutMapOutput(5, 1, MakeOutput(0, 0, 2));
  EXPECT_TRUE(store.Complete(5));
  EXPECT_EQ(store.NumMaps(5), 3);
  EXPECT_GT(store.total_shuffle_bytes(), 0u);
}

TEST(ShuffleStoreTest, GetMapOutput) {
  ShuffleStore store;
  store.Register(1, 2, 4);
  store.PutMapOutput(1, 0, MakeOutput(7, 3, 4));
  const auto* output = store.GetMapOutput(1, 0);
  ASSERT_NE(output, nullptr);
  EXPECT_EQ(output->executor, 7);
  EXPECT_EQ(output->node, 3);
  EXPECT_EQ(output->buckets.size(), 4u);
  EXPECT_EQ(store.GetMapOutput(1, 1), nullptr);
  EXPECT_EQ(store.GetMapOutput(9, 0), nullptr);
}

TEST(ShuffleStoreTest, DropExecutorLosesItsOutputsOnly) {
  ShuffleStore store;
  store.Register(1, 2, 1);
  store.Register(2, 1, 1);
  store.PutMapOutput(1, 0, MakeOutput(0, 0, 1));
  store.PutMapOutput(1, 1, MakeOutput(1, 1, 1));
  store.PutMapOutput(2, 0, MakeOutput(0, 0, 1));
  EXPECT_TRUE(store.Complete(1));
  EXPECT_TRUE(store.Complete(2));

  store.DropExecutor(0);
  EXPECT_FALSE(store.Complete(1));
  EXPECT_EQ(store.MissingMaps(1), std::vector<int>{0});
  EXPECT_FALSE(store.Complete(2));
  EXPECT_NE(store.GetMapOutput(1, 1), nullptr);  // executor 1's survives
}

TEST(ShuffleStoreTest, FetchedBucketAliasSurvivesDropExecutor) {
  // Kill-unwind safety for the zero-copy plane: a reducer that fetched a
  // bucket holds a refcounted alias of the map output's chunk, so dropping
  // the executor mid-shuffle (the FetchFailed path) deletes the store
  // entry but cannot invalidate buckets already handed out.
  ShuffleStore store;
  store.Register(1, /*maps=*/1, /*reduces=*/1);
  ShuffleStore::MapOutput output;
  output.executor = 0;
  output.node = 0;
  output.buckets.push_back(buf::Bytes::Copy("reduce-partition-payload"));
  store.PutMapOutput(1, 0, std::move(output));

  const auto* stored = store.GetMapOutput(1, 0);
  ASSERT_NE(stored, nullptr);
  const buf::Bytes fetched = stored->buckets[0];  // what FetchShuffle ships

  store.DropExecutor(0);
  EXPECT_EQ(store.GetMapOutput(1, 0), nullptr);
  EXPECT_TRUE(fetched.Equals("reduce-partition-payload"));
}

TEST(ShuffleStoreTest, ReRegisterSameShapeIsIdempotent) {
  ShuffleStore store;
  store.Register(3, 4, 4);
  store.PutMapOutput(3, 0, MakeOutput(0, 0, 4));
  store.Register(3, 4, 4);  // e.g. a re-submitted stage
  EXPECT_NE(store.GetMapOutput(3, 0), nullptr);  // outputs kept
}

}  // namespace
}  // namespace pstk::spark
