#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "serde/serde.h"

namespace pstk::serde {
namespace {

template <typename T>
void RoundTrip(const T& value) {
  const Buffer buf = EncodeToBuffer(value);
  auto back = DecodeFromBuffer<T>(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), value);
}

TEST(SerdeTest, Primitives) {
  RoundTrip<std::int32_t>(-123);
  RoundTrip<std::uint64_t>(0xDEADBEEFCAFEBABEULL);
  RoundTrip<double>(3.14159);
  RoundTrip<bool>(true);
  RoundTrip<char>('x');
}

TEST(SerdeTest, Strings) {
  RoundTrip(std::string(""));
  RoundTrip(std::string("hello world"));
  RoundTrip(std::string(10000, 'z'));
  std::string binary("\x00\x01\xFF", 3);
  RoundTrip(binary);
}

TEST(SerdeTest, Pairs) {
  RoundTrip(std::pair<std::string, std::int64_t>{"answers", 42});
  RoundTrip(std::pair<double, double>{1.5, -2.5});
}

TEST(SerdeTest, Tuples) {
  RoundTrip(std::tuple<int, std::string, double>{7, "seven", 7.7});
}

TEST(SerdeTest, Vectors) {
  RoundTrip(std::vector<std::int32_t>{});
  RoundTrip(std::vector<std::int32_t>{1, 2, 3});
  RoundTrip(std::vector<std::string>{"a", "", "ccc"});
  RoundTrip(std::vector<std::pair<std::string, std::int64_t>>{
      {"q1", 3}, {"q2", 0}});
}

TEST(SerdeTest, NestedVectors) {
  RoundTrip(std::vector<std::vector<std::uint64_t>>{{1, 2}, {}, {3}});
}

TEST(SerdeTest, VarintBoundaries) {
  Writer w;
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, (1ULL << 32), ~0ULL};
  for (auto v : values) w.WriteVarint(v);
  Reader r(w.buffer());
  for (auto v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, UnderrunDetected) {
  const Buffer buf = EncodeToBuffer<std::uint64_t>(5);
  Buffer truncated(buf.begin(), buf.begin() + 3);
  auto res = DecodeFromBuffer<std::uint64_t>(truncated);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, TrailingBytesDetected) {
  Buffer buf = EncodeToBuffer<std::uint32_t>(5);
  buf.push_back(0);
  auto res = DecodeFromBuffer<std::uint32_t>(buf);
  EXPECT_FALSE(res.ok());
}

TEST(SerdeTest, CorruptStringLengthDetected) {
  Writer w;
  w.WriteVarint(1000);  // claims 1000 bytes, provides none
  auto res = DecodeFromBuffer<std::string>(w.buffer());
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, EncodedSizeMatchesBuffer) {
  const std::vector<std::string> v{"abc", "defg"};
  EXPECT_EQ(EncodedSize(v), EncodeToBuffer(v).size());
}

// Property-style sweep: random vectors of pairs round-trip for many sizes.
class SerdeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerdeSweep, RandomKvVectorsRoundTrip) {
  const int n = GetParam();
  std::vector<std::pair<std::string, std::uint64_t>> kv;
  kv.reserve(n);
  std::uint64_t state = 88172645463325252ULL + n;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < n; ++i) {
    std::string key(next() % 32, 'a' + static_cast<char>(next() % 26));
    kv.emplace_back(std::move(key), next());
  }
  RoundTrip(kv);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerdeSweep,
                         ::testing::Values(0, 1, 2, 16, 100, 1000));

}  // namespace
}  // namespace pstk::serde
