#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "sim/engine.h"
#include "spark/spark.h"

namespace pstk::spark {
namespace {

SparkOptions FastOptions() {
  SparkOptions o;
  o.app_startup = Millis(100);
  o.executors_per_node = 2;
  return o;
}

struct SparkFixture {
  explicit SparkFixture(std::size_t nodes = 4, double scale = 1.0,
                        SparkOptions options = FastOptions()) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterSpec::Comet(nodes), scale);
    dfs::DfsOptions dopts;
    dopts.block_size = 4 * kKiB;
    dfs = std::make_unique<dfs::MiniDfs>(*cluster, dopts);
    spark = std::make_unique<MiniSpark>(*cluster, dfs.get(), options);
  }
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::unique_ptr<MiniSpark> spark;
};

TEST(SparkTest, ParallelizeCollectRoundTrips) {
  SparkFixture f;
  std::vector<std::int64_t> collected;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<std::int64_t> data(100);
    for (int i = 0; i < 100; ++i) data[i] = i;
    auto rdd = sc.Parallelize(std::move(data), 8);
    EXPECT_EQ(rdd.num_partitions(), 8);
    auto got = rdd.Collect();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    collected = got.value();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::sort(collected.begin(), collected.end());
  ASSERT_EQ(collected.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(collected[i], i);
  EXPECT_GT(result->stats.tasks_launched, 0u);
}

TEST(SparkTest, MapFilterCount) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<std::int64_t> data(1000);
    for (int i = 0; i < 1000; ++i) data[i] = i;
    auto evens = sc.Parallelize(std::move(data))
                     .Map<std::int64_t>([](const std::int64_t& x) {
                       return x * 2;
                     })
                     .Filter([](const std::int64_t& x) { return x % 4 == 0; });
    auto count = evens.Count();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.value(), 500);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, ReduceSumsAllElements) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<double> zeros(4096, 0.5);
    auto rdd = sc.Parallelize(std::move(zeros));
    auto sum = rdd.Reduce([](const double& a, const double& b) {
      return a + b;
    });
    ASSERT_TRUE(sum.ok());
    EXPECT_DOUBLE_EQ(sum.value(), 2048.0);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, ReduceOfEmptyRddErrors) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    auto rdd = sc.Parallelize(std::vector<std::int64_t>{}, 2);
    auto sum = rdd.Reduce(
        [](const std::int64_t& a, const std::int64_t& b) { return a + b; });
    EXPECT_FALSE(sum.ok());
    EXPECT_EQ(sum.status().code(), StatusCode::kInvalidArgument);
  });
  ASSERT_TRUE(result.ok());
}

TEST(SparkTest, FlatMapAndKeyBy) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    auto words =
        sc.Parallelize(std::vector<std::string>{"a b", "b c", "c d"}, 3)
            .FlatMap<std::string>([](const std::string& line) {
              std::vector<std::string> out;
              std::size_t pos = 0;
              while (pos < line.size()) {
                auto sp = line.find(' ', pos);
                if (sp == std::string::npos) sp = line.size();
                out.push_back(line.substr(pos, sp - pos));
                pos = sp + 1;
              }
              return out;
            });
    auto pairs = words.KeyBy<std::string>(
        [](const std::string& w) { return w; });
    auto counts = pairs
                      .MapValues<std::int64_t>(
                          [](const std::string&) { return 1; })
                      .ReduceByKey(
                          [](std::int64_t a, std::int64_t b) { return a + b; });
    auto got = counts.CollectAsMap();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->at("a"), 1);
    EXPECT_EQ(got->at("b"), 2);
    EXPECT_EQ(got->at("c"), 2);
    EXPECT_EQ(got->at("d"), 1);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, TextFileFromDfs) {
  SparkFixture f;
  std::string content;
  for (int i = 0; i < 500; ++i) {
    content += "line number " + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(f.dfs->Install("/data/in.txt", content).ok());
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    auto lines = sc.TextFile("/data/in.txt");
    ASSERT_TRUE(lines.ok()) << lines.status().ToString();
    EXPECT_GT(lines->num_partitions(), 1);  // multiple blocks
    auto count = lines->Count();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.value(), 500);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, TextFileLocalSplitsCoverEveryLineOnce) {
  SparkFixture f;
  SparkOptions o = FastOptions();
  o.local_split_bytes = 2 * kKiB;
  f.spark = std::make_unique<MiniSpark>(*f.cluster, f.dfs.get(), o);
  std::string content;
  for (int i = 0; i < 800; ++i) {
    content += "local line " + std::to_string(i) + "\n";
  }
  for (int n = 0; n < f.cluster->nodes(); ++n) {
    f.cluster->scratch(n).Install("/scratch/local.txt", content);
  }
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    auto lines = sc.TextFileLocal("/scratch/local.txt");
    ASSERT_TRUE(lines.ok()) << lines.status().ToString();
    EXPECT_GT(lines->num_partitions(), 2);
    auto count = lines->Count();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.value(), 800);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, GroupByKeyGathersAllValues) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<std::pair<std::int64_t, std::int64_t>> data;
    for (std::int64_t i = 0; i < 100; ++i) data.emplace_back(i % 5, i);
    auto grouped = sc.Parallelize(std::move(data), 4)
                       .AsPairs<std::int64_t, std::int64_t>()
                       .GroupByKey();
    auto got = grouped.CollectAsMap();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), 5u);
    for (const auto& [key, values] : got.value()) {
      EXPECT_EQ(values.size(), 20u) << "key " << key;
    }
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, JoinShuffledProducesInnerJoin) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<std::pair<std::string, std::int64_t>> left{
        {"a", 1}, {"b", 2}, {"c", 3}};
    std::vector<std::pair<std::string, std::string>> right{
        {"b", "x"}, {"c", "y"}, {"c", "z"}, {"d", "w"}};
    auto l = sc.Parallelize(std::move(left), 2)
                 .AsPairs<std::string, std::int64_t>();
    auto r = sc.Parallelize(std::move(right), 3)
                 .AsPairs<std::string, std::string>();
    auto joined = l.Join(r);
    auto got = joined.Collect();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->size(), 3u);  // b:1 pair, c:2 pairs
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, CoPartitionedJoinIsNarrow) {
  // The BigDataBench PageRank tuning (paper Fig 5): once both sides are
  // hash-partitioned the same way and persisted, re-joining them moves
  // NOTHING over the fabric — each stage keeps its data local.
  auto build_data = [] {
    std::vector<std::pair<std::int64_t, std::int64_t>> data;
    for (std::int64_t i = 0; i < 200; ++i) data.emplace_back(i, i * 10);
    return data;
  };
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    auto l = sc.Parallelize(build_data(), 4)
                 .AsPairs<std::int64_t, std::int64_t>()
                 .PartitionBy(8);
    auto r = sc.Parallelize(build_data(), 4)
                 .AsPairs<std::int64_t, std::int64_t>()
                 .PartitionBy(8);
    l.Persist(StorageLevel::kMemoryOnly);
    r.Persist(StorageLevel::kMemoryOnly);
    auto joined = l.Join(r);
    EXPECT_TRUE(joined.partitioner().has_value());

    auto first = joined.Count();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value(), 200);
    const Bytes fetched_after_first = sc.stats().shuffle_fetched_bytes;
    const Bytes local_after_first = sc.stats().shuffle_local_bytes;

    // Iterating: the join re-executes entirely from cached partitions.
    auto second = joined.Count();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value(), 200);
    EXPECT_EQ(sc.stats().shuffle_fetched_bytes, fetched_after_first);
    EXPECT_EQ(sc.stats().shuffle_local_bytes, local_after_first);
    EXPECT_GT(sc.stats().cache_hits, 0u);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, PersistAvoidsRecomputation) {
  // Count the same RDD twice: with persist, the second job hits the cache.
  auto run = [](bool persist) -> AppStats {
    SparkFixture g;
    auto result = g.spark->RunApp([&](SparkContext& sc) {
      std::vector<std::int64_t> data(5000);
      for (int i = 0; i < 5000; ++i) data[i] = i;
      auto rdd = sc.Parallelize(std::move(data), 8)
                     .Map<std::int64_t>([](const std::int64_t& x) {
                       return x + 1;
                     });
      if (persist) rdd.Persist(StorageLevel::kMemoryOnly);
      ASSERT_TRUE(rdd.Count().ok());
      ASSERT_TRUE(rdd.Count().ok());
    });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->stats : AppStats{};
  };
  AppStats with_persist;
  AppStats without;
  {
    SCOPED_TRACE("persist");
    with_persist = run(true);
  }
  {
    SCOPED_TRACE("no persist");
    without = run(false);
  }
  EXPECT_GT(with_persist.cache_hits, 0u);
  EXPECT_EQ(without.cache_hits, 0u);
}

TEST(SparkTest, MemoryOnlyEvictsDiskSpillsCharge) {
  // Tiny memory budget forces MEMORY_AND_DISK to spill.
  SparkFixture f;
  SparkOptions o = FastOptions();
  o.storage_memory_fraction = 1e-9;  // ~0 bytes of cache memory
  f.spark = std::make_unique<MiniSpark>(*f.cluster, f.dfs.get(), o);
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<std::int64_t> data(10000);
    for (int i = 0; i < 10000; ++i) data[i] = i;
    auto rdd = sc.Parallelize(std::move(data), 4);
    rdd.Persist(StorageLevel::kMemoryAndDisk);
    ASSERT_TRUE(rdd.Count().ok());
    ASSERT_TRUE(rdd.Count().ok());
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.cache_spilled_bytes, 0u);
  EXPECT_GT(result->stats.cache_hits, 0u);  // served from disk spill
}

TEST(SparkTest, RdmaShuffleFasterWhenShuffleHeavy) {
  auto run = [](bool rdma) {
    sim::Engine engine;
    cluster::Cluster cl(engine, cluster::ClusterSpec::Comet(4));
    SparkOptions o = FastOptions();
    o.rdma_shuffle = rdma;
    MiniSpark spark(cl, nullptr, o);
    SimTime elapsed = 0;
    auto result = spark.RunApp([&](SparkContext& sc) {
      // Wide shuffle: big values, every key distinct.
      std::vector<std::pair<std::int64_t, std::string>> data;
      for (std::int64_t i = 0; i < 2000; ++i) {
        data.emplace_back(i, std::string(512, 'x'));
      }
      auto shuffled = sc.Parallelize(std::move(data), 8)
                          .AsPairs<std::int64_t, std::string>()
                          .PartitionBy(8);
      ASSERT_TRUE(shuffled.Count().ok());
    });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    elapsed = result->elapsed;
    return elapsed;
  };
  const SimTime socket_time = run(false);
  const SimTime rdma_time = run(true);
  EXPECT_LT(rdma_time, socket_time);
}

TEST(SparkTest, ExecutorLossRecoversViaLineage) {
  SparkFixture f(4);
  SparkOptions o = FastOptions();
  o.executors_per_node = 2;
  f.spark = std::make_unique<MiniSpark>(*f.cluster, f.dfs.get(), o);

  std::optional<Result<AppResult>> outcome;
  std::int64_t count = -1;
  f.spark->Submit(
      [&](SparkContext& sc) {
        std::vector<std::pair<std::int64_t, std::int64_t>> data;
        for (std::int64_t i = 0; i < 3000; ++i) data.emplace_back(i % 64, i);
        auto pairs = sc.Parallelize(std::move(data), 8)
                         .AsPairs<std::int64_t, std::int64_t>();
        auto reduced = pairs.ReduceByKey(
            [](std::int64_t a, std::int64_t b) { return a + b; });
        // First materialization.
        auto c1 = reduced.Count();
        ASSERT_TRUE(c1.ok()) << c1.status().ToString();
        // Let the failure land, then run again: shuffle outputs on the dead
        // node are gone; lineage re-runs the missing map tasks.
        sc.ctx().SleepUntil(60.0);
        auto c2 = reduced.Count();
        ASSERT_TRUE(c2.ok()) << c2.status().ToString();
        count = c2.value();
        EXPECT_EQ(c1.value(), c2.value());
      },
      [&](Result<AppResult> result) { outcome = std::move(result); });
  f.cluster->FailNode(2, 30.0);
  auto run = f.engine.Run();
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok()) << outcome->status().ToString();
  EXPECT_EQ(count, 64);
  EXPECT_GT((*outcome)->stats.fetch_failures, 0u);
}

TEST(SparkTest, AllExecutorsLostFailsApp) {
  SparkFixture f(2);
  std::optional<Result<AppResult>> outcome;
  Status job_status;
  f.spark->Submit(
      [&](SparkContext& sc) {
        sc.ctx().SleepUntil(10.0);  // past the failures
        std::vector<std::int64_t> data(100, 1);
        auto count = sc.Parallelize(std::move(data), 4).Count();
        job_status = count.status();
      },
      [&](Result<AppResult> result) { outcome = std::move(result); });
  // Kill both nodes' executors but keep the driver alive: the driver runs
  // on node 0 as a separate process, so kill executors directly.
  for (const ExecutorInfo& info : f.spark->app().executors) {
    f.engine.Kill(info.pid, 5.0);
  }
  auto run = f.engine.Run();
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(job_status.code(), StatusCode::kUnavailable);
}

TEST(SparkTest, DriverOverheadDominatesTinyJobs) {
  // The Fig 3 story: a trivial reduce still costs driver milliseconds.
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    const SimTime start = sc.ctx().now();
    auto sum = sc.Parallelize(std::vector<double>{1.0, 2.0}, 2)
                   .Reduce([](const double& a, const double& b) {
                     return a + b;
                   });
    ASSERT_TRUE(sum.ok());
    const SimTime job_time = sc.ctx().now() - start;
    EXPECT_GT(job_time, Millis(10));  // way above MPI's microseconds
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, LocalityPrefersCachedExecutors) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<std::int64_t> data(1000);
    for (int i = 0; i < 1000; ++i) data[i] = i;
    auto rdd = sc.Parallelize(std::move(data), 4);
    rdd.Persist(StorageLevel::kMemoryOnly);
    ASSERT_TRUE(rdd.Count().ok());
    const auto misses_after_first = sc.stats().cache_misses;
    ASSERT_TRUE(rdd.Count().ok());
    // Second job scheduled onto cached executors: no new misses.
    EXPECT_EQ(sc.stats().cache_misses, misses_after_first);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace pstk::spark

namespace pstk::spark {
namespace {

TEST(SparkTest, UnionConcatenatesPartitions) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    auto a = sc.Parallelize(std::vector<std::int64_t>{1, 2, 3}, 2);
    auto b = sc.Parallelize(std::vector<std::int64_t>{4, 5}, 3);
    auto u = a.Union(b);
    EXPECT_EQ(u.num_partitions(), 5);
    auto all = u.Collect();
    ASSERT_TRUE(all.ok());
    std::sort(all->begin(), all->end());
    EXPECT_EQ(all.value(), (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
    // Union keeps duplicates.
    auto twice = a.Union(a).Count();
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(twice.value(), 6);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, DistinctRemovesDuplicates) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    std::vector<std::string> data;
    for (int i = 0; i < 300; ++i) data.push_back("k" + std::to_string(i % 7));
    auto distinct = sc.Parallelize(std::move(data), 4).Distinct();
    auto got = distinct.Collect();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), 7u);
    std::set<std::string> unique(got->begin(), got->end());
    EXPECT_EQ(unique.size(), 7u);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, UnionOfMappedRddsEvaluatesLazily) {
  SparkFixture f;
  auto result = f.spark->RunApp([&](SparkContext& sc) {
    int evaluations = 0;
    auto a = sc.Parallelize(std::vector<std::int64_t>{1, 2}, 1)
                 .Map<std::int64_t>([&evaluations](const std::int64_t& x) {
                   ++evaluations;
                   return x * 10;
                 });
    auto u = a.Union(a);
    EXPECT_EQ(evaluations, 0);  // nothing ran yet (lazy)
    auto sum = u.Reduce(
        [](const std::int64_t& x, const std::int64_t& y) { return x + y; });
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(sum.value(), 60);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SparkTest, DataPlaneTraceIdenticalAcrossBackends) {
  // The zero-copy plane must stay model-neutral: the same wordcount over
  // DFS blocks — reads, shuffle commits/fetches, a persisted partition —
  // produces byte-identical traces and results on both engine backends.
  auto run = [](sim::Backend backend) {
    sim::Engine engine(/*seed=*/7, backend);
    engine.EnableTrace(true);
    cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(4));
    dfs::DfsOptions dopts;
    dopts.block_size = 4 * kKiB;
    dfs::MiniDfs dfs(cluster, dopts);
    MiniSpark spark(cluster, &dfs, FastOptions());

    std::string content;
    for (int i = 0; i < 400; ++i) {
      content += "alpha beta gamma " + std::to_string(i % 13) + "\n";
    }
    EXPECT_TRUE(dfs.Install("/data/words.txt", content).ok());

    std::map<std::string, std::int64_t> counts;
    auto result = spark.RunApp([&](SparkContext& sc) {
      auto lines = sc.TextFile("/data/words.txt");
      ASSERT_TRUE(lines.ok()) << lines.status().ToString();
      auto words =
          lines->FlatMap<std::string>([](const std::string& line) {
            std::vector<std::string> out;
            std::size_t pos = 0;
            while (pos < line.size()) {
              auto sp = line.find(' ', pos);
              if (sp == std::string::npos) sp = line.size();
              out.push_back(line.substr(pos, sp - pos));
              pos = sp + 1;
            }
            return out;
          });
      words.Persist(StorageLevel::kMemoryOnly);
      auto got = words.KeyBy<std::string>([](const std::string& w) { return w; })
                     .MapValues<std::int64_t>([](const std::string&) {
                       return 1;
                     })
                     .ReduceByKey([](std::int64_t a, std::int64_t b) {
                       return a + b;
                     })
                     .CollectAsMap();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      counts = got.value();
    });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(counts["alpha"], 400);
    return engine.obs().ToChromeTraceJson();
  };
  const std::string fibers = run(sim::Backend::kFibers);
  const std::string threads = run(sim::Backend::kThreads);
  EXPECT_FALSE(fibers.empty());
  EXPECT_EQ(fibers, threads);
}

}  // namespace
}  // namespace pstk::spark
