# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "nodes=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_answerscount_omp "/root/repo/build/examples/answerscount_omp" "threads=4" "mb=2")
set_tests_properties(example_answerscount_omp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_answerscount_mpi "/root/repo/build/examples/answerscount_mpi" "nodes=2" "ppn=4" "mb=2")
set_tests_properties(example_answerscount_mpi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_answerscount_mr "/root/repo/build/examples/answerscount_mr" "nodes=2" "mb=2")
set_tests_properties(example_answerscount_mr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_answerscount_spark "/root/repo/build/examples/answerscount_spark" "nodes=2" "mb=2")
set_tests_properties(example_answerscount_spark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pagerank_spark "/root/repo/build/examples/pagerank_spark" "nodes=2" "vertices=2000" "iters=3")
set_tests_properties(example_pagerank_spark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shmem_histogram "/root/repo/build/examples/shmem_histogram" "nodes=2" "ppn=2")
set_tests_properties(example_shmem_histogram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_tolerance "/root/repo/build/examples/fault_tolerance_demo" "nodes=3")
set_tests_properties(example_fault_tolerance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
