# Empty compiler generated dependencies file for answerscount_mr.
# This may be replaced when dependencies are built.
