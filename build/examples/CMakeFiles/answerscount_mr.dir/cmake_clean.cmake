file(REMOVE_RECURSE
  "CMakeFiles/answerscount_mr.dir/answerscount_mr.cpp.o"
  "CMakeFiles/answerscount_mr.dir/answerscount_mr.cpp.o.d"
  "answerscount_mr"
  "answerscount_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answerscount_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
