file(REMOVE_RECURSE
  "CMakeFiles/pagerank_spark.dir/pagerank_spark.cpp.o"
  "CMakeFiles/pagerank_spark.dir/pagerank_spark.cpp.o.d"
  "pagerank_spark"
  "pagerank_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
