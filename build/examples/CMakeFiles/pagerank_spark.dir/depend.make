# Empty dependencies file for pagerank_spark.
# This may be replaced when dependencies are built.
