# Empty dependencies file for answerscount_omp.
# This may be replaced when dependencies are built.
