file(REMOVE_RECURSE
  "CMakeFiles/answerscount_omp.dir/answerscount_omp.cpp.o"
  "CMakeFiles/answerscount_omp.dir/answerscount_omp.cpp.o.d"
  "answerscount_omp"
  "answerscount_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answerscount_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
