file(REMOVE_RECURSE
  "CMakeFiles/answerscount_mpi.dir/answerscount_mpi.cpp.o"
  "CMakeFiles/answerscount_mpi.dir/answerscount_mpi.cpp.o.d"
  "answerscount_mpi"
  "answerscount_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answerscount_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
