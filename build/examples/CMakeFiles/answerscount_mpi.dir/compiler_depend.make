# Empty compiler generated dependencies file for answerscount_mpi.
# This may be replaced when dependencies are built.
