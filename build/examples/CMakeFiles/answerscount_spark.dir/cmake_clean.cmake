file(REMOVE_RECURSE
  "CMakeFiles/answerscount_spark.dir/answerscount_spark.cpp.o"
  "CMakeFiles/answerscount_spark.dir/answerscount_spark.cpp.o.d"
  "answerscount_spark"
  "answerscount_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answerscount_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
