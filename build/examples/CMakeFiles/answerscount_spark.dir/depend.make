# Empty dependencies file for answerscount_spark.
# This may be replaced when dependencies are built.
