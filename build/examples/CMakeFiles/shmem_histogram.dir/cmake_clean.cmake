file(REMOVE_RECURSE
  "CMakeFiles/shmem_histogram.dir/shmem_histogram.cpp.o"
  "CMakeFiles/shmem_histogram.dir/shmem_histogram.cpp.o.d"
  "shmem_histogram"
  "shmem_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shmem_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
