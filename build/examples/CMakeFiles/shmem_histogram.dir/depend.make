# Empty dependencies file for shmem_histogram.
# This may be replaced when dependencies are built.
