# Empty compiler generated dependencies file for pstk_bench_common.
# This may be replaced when dependencies are built.
