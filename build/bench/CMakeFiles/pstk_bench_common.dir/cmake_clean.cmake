file(REMOVE_RECURSE
  "CMakeFiles/pstk_bench_common.dir/pagerank_common.cc.o"
  "CMakeFiles/pstk_bench_common.dir/pagerank_common.cc.o.d"
  "libpstk_bench_common.a"
  "libpstk_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
