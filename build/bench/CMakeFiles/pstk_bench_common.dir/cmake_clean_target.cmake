file(REMOVE_RECURSE
  "libpstk_bench_common.a"
)
