# Empty compiler generated dependencies file for fig3_reduce.
# This may be replaced when dependencies are built.
