file(REMOVE_RECURSE
  "CMakeFiles/fig3_reduce.dir/fig3_reduce.cc.o"
  "CMakeFiles/fig3_reduce.dir/fig3_reduce.cc.o.d"
  "fig3_reduce"
  "fig3_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
