file(REMOVE_RECURSE
  "CMakeFiles/ablation_shmem.dir/ablation_shmem.cc.o"
  "CMakeFiles/ablation_shmem.dir/ablation_shmem.cc.o.d"
  "ablation_shmem"
  "ablation_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
