# Empty dependencies file for ablation_shmem.
# This may be replaced when dependencies are built.
