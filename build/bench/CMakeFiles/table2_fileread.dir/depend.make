# Empty dependencies file for table2_fileread.
# This may be replaced when dependencies are built.
