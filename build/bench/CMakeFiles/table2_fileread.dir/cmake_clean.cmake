file(REMOVE_RECURSE
  "CMakeFiles/table2_fileread.dir/table2_fileread.cc.o"
  "CMakeFiles/table2_fileread.dir/table2_fileread.cc.o.d"
  "table2_fileread"
  "table2_fileread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fileread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
