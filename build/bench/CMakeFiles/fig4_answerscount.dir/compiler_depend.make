# Empty compiler generated dependencies file for fig4_answerscount.
# This may be replaced when dependencies are built.
