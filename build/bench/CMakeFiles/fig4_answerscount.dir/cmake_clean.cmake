file(REMOVE_RECURSE
  "CMakeFiles/fig4_answerscount.dir/fig4_answerscount.cc.o"
  "CMakeFiles/fig4_answerscount.dir/fig4_answerscount.cc.o.d"
  "fig4_answerscount"
  "fig4_answerscount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_answerscount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
