
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_replication.cc" "bench/CMakeFiles/ablation_replication.dir/ablation_replication.cc.o" "gcc" "bench/CMakeFiles/ablation_replication.dir/ablation_replication.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spark/CMakeFiles/pstk_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/pstk_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pstk_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pstk_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pstk_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pstk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pstk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/pstk_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
