file(REMOVE_RECURSE
  "CMakeFiles/ablation_persist.dir/ablation_persist.cc.o"
  "CMakeFiles/ablation_persist.dir/ablation_persist.cc.o.d"
  "ablation_persist"
  "ablation_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
