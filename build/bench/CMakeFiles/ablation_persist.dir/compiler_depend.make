# Empty compiler generated dependencies file for ablation_persist.
# This may be replaced when dependencies are built.
