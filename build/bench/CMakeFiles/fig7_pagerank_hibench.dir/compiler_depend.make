# Empty compiler generated dependencies file for fig7_pagerank_hibench.
# This may be replaced when dependencies are built.
