file(REMOVE_RECURSE
  "CMakeFiles/fig7_pagerank_hibench.dir/fig7_pagerank_hibench.cc.o"
  "CMakeFiles/fig7_pagerank_hibench.dir/fig7_pagerank_hibench.cc.o.d"
  "fig7_pagerank_hibench"
  "fig7_pagerank_hibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pagerank_hibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
