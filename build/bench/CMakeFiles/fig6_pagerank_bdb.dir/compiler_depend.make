# Empty compiler generated dependencies file for fig6_pagerank_bdb.
# This may be replaced when dependencies are built.
