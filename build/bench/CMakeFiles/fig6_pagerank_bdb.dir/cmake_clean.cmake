file(REMOVE_RECURSE
  "CMakeFiles/fig6_pagerank_bdb.dir/fig6_pagerank_bdb.cc.o"
  "CMakeFiles/fig6_pagerank_bdb.dir/fig6_pagerank_bdb.cc.o.d"
  "fig6_pagerank_bdb"
  "fig6_pagerank_bdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pagerank_bdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
