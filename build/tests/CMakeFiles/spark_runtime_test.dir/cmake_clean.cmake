file(REMOVE_RECURSE
  "CMakeFiles/spark_runtime_test.dir/spark_runtime_test.cc.o"
  "CMakeFiles/spark_runtime_test.dir/spark_runtime_test.cc.o.d"
  "spark_runtime_test"
  "spark_runtime_test.pdb"
  "spark_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
