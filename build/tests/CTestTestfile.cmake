# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/omp_test[1]_include.cmake")
include("/root/repo/build/tests/shmem_test[1]_include.cmake")
include("/root/repo/build/tests/mr_test[1]_include.cmake")
include("/root/repo/build/tests/spark_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/spark_runtime_test[1]_include.cmake")
