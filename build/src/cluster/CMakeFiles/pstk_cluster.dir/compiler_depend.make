# Empty compiler generated dependencies file for pstk_cluster.
# This may be replaced when dependencies are built.
