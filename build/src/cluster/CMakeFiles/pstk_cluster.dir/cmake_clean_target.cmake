file(REMOVE_RECURSE
  "libpstk_cluster.a"
)
