file(REMOVE_RECURSE
  "CMakeFiles/pstk_cluster.dir/cluster.cc.o"
  "CMakeFiles/pstk_cluster.dir/cluster.cc.o.d"
  "libpstk_cluster.a"
  "libpstk_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
