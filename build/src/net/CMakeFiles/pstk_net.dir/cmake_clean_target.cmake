file(REMOVE_RECURSE
  "libpstk_net.a"
)
