file(REMOVE_RECURSE
  "CMakeFiles/pstk_net.dir/fabric.cc.o"
  "CMakeFiles/pstk_net.dir/fabric.cc.o.d"
  "CMakeFiles/pstk_net.dir/network.cc.o"
  "CMakeFiles/pstk_net.dir/network.cc.o.d"
  "libpstk_net.a"
  "libpstk_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
