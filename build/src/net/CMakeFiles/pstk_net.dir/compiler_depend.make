# Empty compiler generated dependencies file for pstk_net.
# This may be replaced when dependencies are built.
