file(REMOVE_RECURSE
  "libpstk_storage.a"
)
