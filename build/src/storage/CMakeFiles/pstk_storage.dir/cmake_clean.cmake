file(REMOVE_RECURSE
  "CMakeFiles/pstk_storage.dir/disk.cc.o"
  "CMakeFiles/pstk_storage.dir/disk.cc.o.d"
  "CMakeFiles/pstk_storage.dir/localfs.cc.o"
  "CMakeFiles/pstk_storage.dir/localfs.cc.o.d"
  "libpstk_storage.a"
  "libpstk_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
