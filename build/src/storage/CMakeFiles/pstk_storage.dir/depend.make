# Empty dependencies file for pstk_storage.
# This may be replaced when dependencies are built.
