file(REMOVE_RECURSE
  "libpstk_common.a"
)
