# Empty compiler generated dependencies file for pstk_common.
# This may be replaced when dependencies are built.
