file(REMOVE_RECURSE
  "CMakeFiles/pstk_common.dir/config.cc.o"
  "CMakeFiles/pstk_common.dir/config.cc.o.d"
  "CMakeFiles/pstk_common.dir/log.cc.o"
  "CMakeFiles/pstk_common.dir/log.cc.o.d"
  "CMakeFiles/pstk_common.dir/stats.cc.o"
  "CMakeFiles/pstk_common.dir/stats.cc.o.d"
  "CMakeFiles/pstk_common.dir/strings.cc.o"
  "CMakeFiles/pstk_common.dir/strings.cc.o.d"
  "CMakeFiles/pstk_common.dir/table.cc.o"
  "CMakeFiles/pstk_common.dir/table.cc.o.d"
  "CMakeFiles/pstk_common.dir/units.cc.o"
  "CMakeFiles/pstk_common.dir/units.cc.o.d"
  "libpstk_common.a"
  "libpstk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
