# Empty compiler generated dependencies file for pstk_mpi.
# This may be replaced when dependencies are built.
