file(REMOVE_RECURSE
  "libpstk_mpi.a"
)
