file(REMOVE_RECURSE
  "CMakeFiles/pstk_mpi.dir/comm.cc.o"
  "CMakeFiles/pstk_mpi.dir/comm.cc.o.d"
  "CMakeFiles/pstk_mpi.dir/io.cc.o"
  "CMakeFiles/pstk_mpi.dir/io.cc.o.d"
  "CMakeFiles/pstk_mpi.dir/world.cc.o"
  "CMakeFiles/pstk_mpi.dir/world.cc.o.d"
  "libpstk_mpi.a"
  "libpstk_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
