file(REMOVE_RECURSE
  "CMakeFiles/pstk_omp.dir/omp.cc.o"
  "CMakeFiles/pstk_omp.dir/omp.cc.o.d"
  "libpstk_omp.a"
  "libpstk_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
