# Empty compiler generated dependencies file for pstk_omp.
# This may be replaced when dependencies are built.
