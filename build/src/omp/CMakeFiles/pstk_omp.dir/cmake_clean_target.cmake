file(REMOVE_RECURSE
  "libpstk_omp.a"
)
