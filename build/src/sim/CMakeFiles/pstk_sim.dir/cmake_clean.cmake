file(REMOVE_RECURSE
  "CMakeFiles/pstk_sim.dir/engine.cc.o"
  "CMakeFiles/pstk_sim.dir/engine.cc.o.d"
  "CMakeFiles/pstk_sim.dir/timeline.cc.o"
  "CMakeFiles/pstk_sim.dir/timeline.cc.o.d"
  "libpstk_sim.a"
  "libpstk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
