file(REMOVE_RECURSE
  "libpstk_sim.a"
)
