# Empty dependencies file for pstk_sim.
# This may be replaced when dependencies are built.
