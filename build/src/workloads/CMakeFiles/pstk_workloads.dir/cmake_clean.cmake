file(REMOVE_RECURSE
  "CMakeFiles/pstk_workloads.dir/graph.cc.o"
  "CMakeFiles/pstk_workloads.dir/graph.cc.o.d"
  "CMakeFiles/pstk_workloads.dir/pagerank.cc.o"
  "CMakeFiles/pstk_workloads.dir/pagerank.cc.o.d"
  "CMakeFiles/pstk_workloads.dir/stackexchange.cc.o"
  "CMakeFiles/pstk_workloads.dir/stackexchange.cc.o.d"
  "libpstk_workloads.a"
  "libpstk_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
