# Empty compiler generated dependencies file for pstk_workloads.
# This may be replaced when dependencies are built.
