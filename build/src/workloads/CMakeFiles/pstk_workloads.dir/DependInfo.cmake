
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/pstk_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/pstk_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/workloads/CMakeFiles/pstk_workloads.dir/pagerank.cc.o" "gcc" "src/workloads/CMakeFiles/pstk_workloads.dir/pagerank.cc.o.d"
  "/root/repo/src/workloads/stackexchange.cc" "src/workloads/CMakeFiles/pstk_workloads.dir/stackexchange.cc.o" "gcc" "src/workloads/CMakeFiles/pstk_workloads.dir/stackexchange.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
