file(REMOVE_RECURSE
  "libpstk_workloads.a"
)
