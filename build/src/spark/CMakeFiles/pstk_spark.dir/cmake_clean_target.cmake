file(REMOVE_RECURSE
  "libpstk_spark.a"
)
