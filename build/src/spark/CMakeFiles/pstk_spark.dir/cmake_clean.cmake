file(REMOVE_RECURSE
  "CMakeFiles/pstk_spark.dir/runtime.cc.o"
  "CMakeFiles/pstk_spark.dir/runtime.cc.o.d"
  "CMakeFiles/pstk_spark.dir/spark.cc.o"
  "CMakeFiles/pstk_spark.dir/spark.cc.o.d"
  "libpstk_spark.a"
  "libpstk_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
