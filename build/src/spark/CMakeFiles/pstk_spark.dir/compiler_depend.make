# Empty compiler generated dependencies file for pstk_spark.
# This may be replaced when dependencies are built.
