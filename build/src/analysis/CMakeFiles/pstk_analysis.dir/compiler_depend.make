# Empty compiler generated dependencies file for pstk_analysis.
# This may be replaced when dependencies are built.
