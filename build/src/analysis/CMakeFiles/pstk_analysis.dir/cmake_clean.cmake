file(REMOVE_RECURSE
  "CMakeFiles/pstk_analysis.dir/loc.cc.o"
  "CMakeFiles/pstk_analysis.dir/loc.cc.o.d"
  "libpstk_analysis.a"
  "libpstk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
