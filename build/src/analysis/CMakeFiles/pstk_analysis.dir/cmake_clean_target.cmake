file(REMOVE_RECURSE
  "libpstk_analysis.a"
)
