file(REMOVE_RECURSE
  "CMakeFiles/pstk_serde.dir/serde.cc.o"
  "CMakeFiles/pstk_serde.dir/serde.cc.o.d"
  "libpstk_serde.a"
  "libpstk_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
