file(REMOVE_RECURSE
  "libpstk_serde.a"
)
