# Empty dependencies file for pstk_serde.
# This may be replaced when dependencies are built.
