file(REMOVE_RECURSE
  "libpstk_mr.a"
)
