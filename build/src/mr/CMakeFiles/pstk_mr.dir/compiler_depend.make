# Empty compiler generated dependencies file for pstk_mr.
# This may be replaced when dependencies are built.
