file(REMOVE_RECURSE
  "CMakeFiles/pstk_mr.dir/mr.cc.o"
  "CMakeFiles/pstk_mr.dir/mr.cc.o.d"
  "libpstk_mr.a"
  "libpstk_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
