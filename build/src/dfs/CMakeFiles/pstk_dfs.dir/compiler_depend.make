# Empty compiler generated dependencies file for pstk_dfs.
# This may be replaced when dependencies are built.
