file(REMOVE_RECURSE
  "CMakeFiles/pstk_dfs.dir/dfs.cc.o"
  "CMakeFiles/pstk_dfs.dir/dfs.cc.o.d"
  "libpstk_dfs.a"
  "libpstk_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
