file(REMOVE_RECURSE
  "libpstk_dfs.a"
)
