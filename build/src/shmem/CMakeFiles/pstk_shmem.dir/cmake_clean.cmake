file(REMOVE_RECURSE
  "CMakeFiles/pstk_shmem.dir/shmem.cc.o"
  "CMakeFiles/pstk_shmem.dir/shmem.cc.o.d"
  "libpstk_shmem.a"
  "libpstk_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstk_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
