# Empty compiler generated dependencies file for pstk_shmem.
# This may be replaced when dependencies are built.
