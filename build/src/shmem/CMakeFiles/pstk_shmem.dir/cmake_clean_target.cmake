file(REMOVE_RECURSE
  "libpstk_shmem.a"
)
