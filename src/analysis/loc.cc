#include "analysis/loc.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace pstk::analysis {

LocReport AnalyzeSource(const std::string& label, const std::string& source,
                        const std::vector<std::string>& markers) {
  LocReport report;
  report.label = label;

  bool in_block_comment = false;
  std::istringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    // Strip comments to decide whether any code remains.
    std::string code;
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        const auto close = line.find("*/", i);
        if (close == std::string::npos) {
          i = line.size();
        } else {
          in_block_comment = false;
          i = close + 2;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        i += 2;
        continue;
      }
      code += line[i];
      ++i;
    }
    if (TrimWhitespace(code).empty()) continue;
    ++report.code_lines;
    for (const std::string& marker : markers) {
      if (code.find(marker) != std::string::npos) {
        ++report.boilerplate_lines;
        break;
      }
    }
  }
  return report;
}

Result<LocReport> AnalyzeFile(const std::string& label,
                              const std::string& path,
                              const std::vector<std::string>& markers) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return AnalyzeSource(label, ExtractBenchmarkRegion(buffer.str()), markers);
}

std::string ExtractBenchmarkRegion(const std::string& source) {
  const auto begin = source.find("// BENCHMARK-BEGIN");
  const auto end = source.find("// BENCHMARK-END");
  if (begin == std::string::npos || end == std::string::npos || end <= begin) {
    return source;
  }
  const auto start = source.find('\n', begin);
  if (start == std::string::npos || start >= end) return source;
  return source.substr(start + 1, end - start - 1);
}

}  // namespace pstk::analysis
