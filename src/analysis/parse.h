// Stage 2 of the pstk-lint pipeline: a lightweight structural parser.
//
// Turns the token stream into a per-function statement tree: loops,
// branches, pragmas, returns, declarations/assignments, and call
// expressions with their argument text. It is *not* a C++ parser — it
// recognizes just enough structure for intra-procedural dataflow:
//
//   * function definitions (free functions, methods, TEST bodies) found
//     by the `name ( params ) qualifiers {` shape
//   * lambda bodies, lifted out as their own Function entries (named
//     `outer::lambda#k`) so SPMD bodies passed to RunSpmd/RunApp are
//     analyzed as the functions they conceptually are
//   * if/else, for/while/do loops (braced or single-statement bodies),
//     `#pragma` directives as first-class statements
//   * per-statement: declared variable (type, name, initializer text),
//     simple assignments (`x = ...`, `x += ...`, `x[i] = ...`), and every
//     call expression with receiver, method, and argument text
//
// Unrecognized constructs degrade to opaque plain statements — the parser
// never fails, it only loses precision.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/token.h"

namespace pstk::analysis {

/// One call expression, e.g. `file->ReadLinesAtAll(comm, offset, n)`.
struct CallExpr {
  std::string callee;    // full path as written: "file->ReadLinesAtAll"
  std::string method;    // last component: "ReadLinesAtAll"
  std::string receiver;  // leading object path: "file" ("" when chained)
  std::vector<std::string> args;  // compact text of each top-level argument
  int line = 0;
};

enum class StmtKind : std::uint8_t {
  kPlain,   // expression / declaration statement
  kLoop,    // for / while / do-while; condition in `text`
  kBranch,  // if (condition in `text`, else body in `else_children`), switch
  kPragma,  // a `#pragma` directive; full directive in `text`
  kReturn,  // return statement; expression in `text`
  kBlock,   // bare { ... } scope (also try/catch bodies)
};

/// A simple write target: `name = ...`, `name += ...`, `name[i] = ...`.
struct Assign {
  std::string name;
  std::string op;         // "=", "+=", "-=", ...
  std::string subscript;  // nonempty for `name[subscript] op ...`
  int line = 0;
};

struct Stmt {
  StmtKind kind = StmtKind::kPlain;
  int line = 0;
  int end_line = 0;  // line of the statement's last token (closing brace
                     // of a branch/loop body, the ';' of a plain stmt);
                     // the rewriter's line-span edits depend on it
  std::string text;  // compact statement/condition/directive text

  std::vector<CallExpr> calls;  // calls in this statement (header for
                                // loops/branches); lambda bodies excluded
  std::vector<Stmt> children;   // loop/branch/block body
  std::vector<Stmt> else_children;

  // Declaration info (empty when the statement declares nothing).
  std::string decl_type;  // "const Bytes", "auto", ...
  std::string decl_name;
  std::string init_text;  // compact initializer text after '='

  std::vector<Assign> assigns;

  // For kLoop: the induction variable from the for-init / range-for
  // binding ("" when none was recognized).
  std::string induction_var;
  // For kLoop: type of the induction variable when it was declared in the
  // loop header.
  std::string induction_type;
};

struct Param {
  std::string type;
  std::string name;
};

struct Function {
  std::string name;  // "RunMpiPageRank", "main", "RunSpmd::lambda#1"
  int line = 0;
  bool is_lambda = false;
  std::vector<Param> params;
  std::vector<Stmt> body;
};

struct Unit {
  std::vector<Function> functions;
};

/// Parse a token stream into functions. Tokens outside any function body
/// (namespace scaffolding, class declarations, global initializers) are
/// skipped.
Unit ParseUnit(const std::vector<Token>& tokens);

/// Tokenize + parse in one step.
Unit ParseSource(const std::string& source);

/// Depth-first visit of a statement tree (children before later siblings);
/// `visit` also receives the enclosing loop depth and whether any
/// enclosing branch exists.
void ForEachStmt(const std::vector<Stmt>& body,
                 const std::function<void(const Stmt&)>& visit);

}  // namespace pstk::analysis
