#include "analysis/parse.h"

#include <algorithm>
#include <array>
#include <unordered_set>

namespace pstk::analysis {

namespace {

const std::unordered_set<std::string>& ControlKeywords() {
  static const std::unordered_set<std::string> kSet{
      "if",     "for",    "while",  "switch", "return", "sizeof",
      "catch",  "new",    "delete", "throw",  "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast", "alignof",
      "decltype", "co_await", "co_return", "co_yield",
  };
  return kSet;
}

bool IsTypeishToken(const Token& t) {
  if (t.kind == TokKind::kIdent) return true;
  if (t.kind != TokKind::kPunct) return t.kind == TokKind::kNumber;
  static const std::unordered_set<std::string> kOk{"::", "<", ">", ">>", "&",
                                                   "*",  ",", "[", "]"};
  return kOk.count(t.text) != 0;
}

const std::unordered_set<std::string>& CompoundAssignOps() {
  static const std::unordered_set<std::string> kSet{
      "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="};
  return kSet;
}

/// Join, masking string/char literal contents so later text queries can
/// never match inside a literal.
std::string JoinMasked(const std::vector<Token>& toks, std::size_t begin,
                       std::size_t end) {
  std::vector<Token> masked(toks.begin() + static_cast<std::ptrdiff_t>(begin),
                            toks.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(end, toks.size())));
  for (Token& t : masked) {
    if (t.kind == TokKind::kString) t.text = "\"\"";
    if (t.kind == TokKind::kChar) t.text = "''";
  }
  return JoinTokens(masked, 0, masked.size());
}

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : t_(tokens) {}

  Unit Run() {
    std::size_t i = 0;
    while (i < t_.size()) {
      std::size_t next = 0;
      if (TryParseFunction(i, &next)) {
        i = next;
      } else {
        ++i;
      }
    }
    return std::move(unit_);
  }

 private:
  // --- token helpers -------------------------------------------------------

  [[nodiscard]] bool AtEnd(std::size_t i) const { return i >= t_.size(); }
  [[nodiscard]] const Token& Tok(std::size_t i) const { return t_[i]; }
  [[nodiscard]] bool IsPunct(std::size_t i, const char* p) const {
    return i < t_.size() && t_[i].IsPunct(p);
  }
  [[nodiscard]] bool IsIdent(std::size_t i, const char* p) const {
    return i < t_.size() && t_[i].IsIdent(p);
  }

  /// Index of the ")" matching the "(" at `i` (npos-style: t_.size()).
  [[nodiscard]] std::size_t MatchParen(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < t_.size(); ++j) {
      if (t_[j].kind != TokKind::kPunct) continue;
      if (t_[j].text == "(") ++depth;
      if (t_[j].text == ")" && --depth == 0) return j;
    }
    return t_.size();
  }

  // --- function discovery --------------------------------------------------

  bool TryParseFunction(std::size_t i, std::size_t* next) {
    if (Tok(i).kind != TokKind::kIdent || !IsPunct(i + 1, "(")) return false;
    if (ControlKeywords().count(Tok(i).text) != 0) return false;
    if (Tok(i).text == "operator") return false;
    const std::size_t close = MatchParen(i + 1);
    if (close >= t_.size()) return false;

    // Skip trailing qualifiers (const/noexcept/->T/&&) up to the body "{",
    // allowing a constructor member-init list after ":".
    std::size_t k = close + 1;
    static const std::unordered_set<std::string> kQualPunct{
        "->", "::", "<", ">", "&", "&&", "*", ",", "[", "]"};
    while (!AtEnd(k)) {
      const Token& t = Tok(k);
      if (t.IsPunct("{")) break;
      if (t.IsPunct(":")) {  // member-init list: balance to the body "{"
        int depth = 0;
        ++k;
        while (!AtEnd(k)) {
          if (Tok(k).kind == TokKind::kPunct) {
            const std::string& p = Tok(k).text;
            if (p == "(" || p == "[") ++depth;
            if (p == ")" || p == "]") --depth;
            if (p == "{" && depth == 0) break;
            if (p == ";") return false;
          }
          ++k;
        }
        break;
      }
      const bool ok = t.kind == TokKind::kIdent ||
                      (t.kind == TokKind::kPunct &&
                       kQualPunct.count(t.text) != 0);
      if (!ok || k - close > 24) return false;
      ++k;
    }
    if (!IsPunct(k, "{")) return false;

    Function fn;
    fn.name = Tok(i).text;
    fn.line = Tok(i).line;
    fn.params = ParseParams(i + 2, close);
    fn_stack_.push_back(fn.name);
    std::size_t end = 0;
    fn.body = ParseBlock(k, &end);
    fn_stack_.pop_back();
    unit_.functions.push_back(std::move(fn));
    *next = end;
    return true;
  }

  std::vector<Param> ParseParams(std::size_t begin, std::size_t end) {
    std::vector<Param> params;
    std::size_t start = begin;
    int depth = 0;
    for (std::size_t j = begin; j <= end && j <= t_.size(); ++j) {
      const bool at_end = j == end || j == t_.size();
      if (!at_end && Tok(j).kind == TokKind::kPunct) {
        const Token& t = Tok(j);
        if (t.text == "(" || t.text == "<" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == ">" || t.text == "}") --depth;
      }
      if (at_end || (depth == 0 && Tok(j).IsPunct(","))) {
        if (j > start) {
          std::size_t stop = j;  // strip a default argument
          for (std::size_t m = start; m < j; ++m) {
            if (Tok(m).IsPunct("=")) {
              stop = m;
              break;
            }
          }
          // Last identifier is the name; everything before is the type.
          std::size_t name_at = stop;
          while (name_at > start &&
                 Tok(name_at - 1).kind != TokKind::kIdent) {
            --name_at;
          }
          if (name_at > start && Tok(name_at - 1).kind == TokKind::kIdent) {
            Param p;
            p.name = Tok(name_at - 1).text;
            p.type = JoinMasked(t_, start, name_at - 1);
            if (p.type.empty()) {  // unnamed parameter, type only
              p.type = p.name;
              p.name.clear();
            }
            params.push_back(std::move(p));
          }
        }
        start = j + 1;
      }
    }
    return params;
  }

  // --- statements ----------------------------------------------------------

  /// Line of the last token consumed before position `i` (0 at start).
  [[nodiscard]] int LineBefore(std::size_t i) const {
    if (i == 0 || t_.empty()) return 0;
    return t_[std::min(i, t_.size()) - 1].line;
  }

  std::vector<Stmt> ParseBlock(std::size_t i, std::size_t* end) {
    std::vector<Stmt> out;
    ++i;  // consume "{"
    while (!AtEnd(i) && !IsPunct(i, "}")) {
      const std::size_t before = i;
      if (auto stmt = ParseStmt(&i)) {
        stmt->end_line = LineBefore(i);
        out.push_back(std::move(*stmt));
      }
      if (i == before) ++i;  // never wedge on unexpected tokens
    }
    *end = AtEnd(i) ? i : i + 1;
    return out;
  }

  std::optional<Stmt> ParseStmt(std::size_t* ip) {
    std::size_t i = *ip;
    const Token& t = Tok(i);
    if (t.kind == TokKind::kPragma) {
      Stmt s;
      s.kind = StmtKind::kPragma;
      s.line = t.line;
      s.text = t.text;
      *ip = i + 1;
      return s;
    }
    if (t.kind == TokKind::kDirective) {
      *ip = i + 1;
      return std::nullopt;
    }
    if (t.IsPunct("{")) {
      Stmt s;
      s.kind = StmtKind::kBlock;
      s.line = t.line;
      s.children = ParseBlock(i, ip);
      return s;
    }
    if (t.IsPunct(";")) {
      *ip = i + 1;
      return std::nullopt;
    }
    if (t.kind == TokKind::kIdent) {
      const std::string& kw = t.text;
      if (kw == "if") return ParseIf(ip);
      if (kw == "for" || kw == "while") return ParseLoop(ip);
      if (kw == "do") return ParseDoWhile(ip);
      if (kw == "switch") return ParseSwitch(ip);
      if (kw == "return") return ParseReturn(ip);
      if (kw == "try" || kw == "else") {  // stray else guards misparses
        *ip = i + 1;
        if (IsPunct(*ip, "{")) {
          Stmt s;
          s.kind = StmtKind::kBlock;
          s.line = t.line;
          s.children = ParseBlock(*ip, ip);
          return s;
        }
        return std::nullopt;
      }
      if (kw == "catch") {
        ++i;
        if (IsPunct(i, "(")) i = MatchParen(i) + 1;
        if (IsPunct(i, "{")) {
          Stmt s;
          s.kind = StmtKind::kBlock;
          s.line = t.line;
          s.children = ParseBlock(i, ip);
          return s;
        }
        *ip = i;
        return std::nullopt;
      }
      if (kw == "struct" || kw == "class" || kw == "union" ||
          kw == "enum") {
        return ParseLocalType(ip);
      }
      if (kw == "case" || kw == "default") {
        while (!AtEnd(i) && !IsPunct(i, ":")) ++i;
        *ip = AtEnd(i) ? i : i + 1;
        return std::nullopt;
      }
      if (kw == "break" || kw == "continue") {
        while (!AtEnd(i) && !IsPunct(i, ";")) ++i;
        *ip = AtEnd(i) ? i : i + 1;
        return std::nullopt;
      }
    }
    return CollectPlain(ip);
  }

  std::optional<Stmt> ParseIf(std::size_t* ip) {
    std::size_t i = *ip;  // at "if"
    Stmt s;
    s.kind = StmtKind::kBranch;
    s.line = Tok(i).line;
    ++i;
    if (IsIdent(i, "constexpr")) ++i;
    if (!IsPunct(i, "(")) {
      *ip = i;
      return std::nullopt;
    }
    const std::size_t close = MatchParen(i);
    s.text = JoinMasked(t_, i + 1, close);
    s.calls = ExtractCalls(i + 1, close);
    i = close + 1;
    ParseBody(&i, &s.children);
    if (IsIdent(i, "else")) {
      ++i;
      ParseBody(&i, &s.else_children);
    }
    *ip = i;
    return s;
  }

  std::optional<Stmt> ParseLoop(std::size_t* ip) {
    std::size_t i = *ip;  // at "for"/"while"
    Stmt s;
    s.kind = StmtKind::kLoop;
    s.line = Tok(i).line;
    ++i;
    if (!IsPunct(i, "(")) {
      *ip = i;
      return std::nullopt;
    }
    const std::size_t close = MatchParen(i);
    s.text = JoinMasked(t_, i + 1, close);
    s.calls = ExtractCalls(i + 1, close);
    FindInduction(i + 1, close, &s);
    i = close + 1;
    ParseBody(&i, &s.children);
    *ip = i;
    return s;
  }

  std::optional<Stmt> ParseDoWhile(std::size_t* ip) {
    std::size_t i = *ip + 1;  // past "do"
    Stmt s;
    s.kind = StmtKind::kLoop;
    s.line = Tok(*ip).line;
    ParseBody(&i, &s.children);
    if (IsIdent(i, "while")) {
      ++i;
      if (IsPunct(i, "(")) {
        const std::size_t close = MatchParen(i);
        s.text = JoinMasked(t_, i + 1, close);
        s.calls = ExtractCalls(i + 1, close);
        i = close + 1;
      }
      if (IsPunct(i, ";")) ++i;
    }
    *ip = i;
    return s;
  }

  std::optional<Stmt> ParseSwitch(std::size_t* ip) {
    std::size_t i = *ip + 1;
    Stmt s;
    s.kind = StmtKind::kBranch;
    s.line = Tok(*ip).line;
    if (IsPunct(i, "(")) {
      const std::size_t close = MatchParen(i);
      s.text = JoinMasked(t_, i + 1, close);
      s.calls = ExtractCalls(i + 1, close);
      i = close + 1;
    }
    ParseBody(&i, &s.children);
    *ip = i;
    return s;
  }

  std::optional<Stmt> ParseReturn(std::size_t* ip) {
    std::size_t i = *ip + 1;
    Stmt s;
    s.kind = StmtKind::kReturn;
    s.line = Tok(*ip).line;
    std::vector<Token> acc;
    CollectExpr(&i, &acc);
    s.text = JoinVec(acc);
    s.calls = ExtractCallsFrom(acc);
    *ip = i;
    return s;
  }

  /// A local struct/class/enum: skip the member block entirely (members
  /// are not statements of this function).
  std::optional<Stmt> ParseLocalType(std::size_t* ip) {
    std::size_t i = *ip;
    Stmt s;
    s.kind = StmtKind::kPlain;
    s.line = Tok(i).line;
    while (!AtEnd(i) && !IsPunct(i, "{") && !IsPunct(i, ";")) ++i;
    if (IsPunct(i, "{")) {
      int depth = 0;
      while (!AtEnd(i)) {
        if (IsPunct(i, "{")) ++depth;
        if (IsPunct(i, "}") && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
    }
    while (!AtEnd(i) && !IsPunct(i, ";")) ++i;
    s.text = JoinMasked(t_, *ip, std::min(i, *ip + 4));
    *ip = AtEnd(i) ? i : i + 1;
    return s;
  }

  /// A braced or single-statement loop/branch body.
  void ParseBody(std::size_t* ip, std::vector<Stmt>* out) {
    if (IsPunct(*ip, "{")) {
      *out = ParseBlock(*ip, ip);
      return;
    }
    if (auto stmt = ParseStmt(ip)) {
      stmt->end_line = LineBefore(*ip);
      out->push_back(std::move(*stmt));
    }
  }

  /// For-header induction variable: `int i = 0; ...` or `auto& x : range`.
  void FindInduction(std::size_t begin, std::size_t end, Stmt* s) {
    std::size_t stop = end;
    int depth = 0;
    bool range_for = false;
    for (std::size_t j = begin; j < end; ++j) {
      if (Tok(j).kind != TokKind::kPunct) continue;
      const std::string& p = Tok(j).text;
      if (p == "(" || p == "[" || p == "{" || p == "<") ++depth;
      if (p == ")" || p == "]" || p == "}" || p == ">") --depth;
      if (depth == 0 && (p == ";" || p == "=" || p == ":")) {
        stop = j;
        range_for = p == ":";
        break;
      }
    }
    if (stop == end || stop == begin) return;
    std::size_t name_at = stop;
    if (!range_for && !Tok(stop).IsPunct("=") && !Tok(stop).IsPunct(";")) {
      return;
    }
    if (Tok(name_at - 1).kind != TokKind::kIdent) return;
    s->induction_var = Tok(name_at - 1).text;
    s->induction_type = JoinMasked(t_, begin, name_at - 1);
  }

  // --- plain statements & lambdas ------------------------------------------

  /// Collect expression tokens until ";" at nesting depth 0, lifting
  /// lambda bodies out as nested Function entries as they appear.
  void CollectExpr(std::size_t* ip, std::vector<Token>* acc) {
    std::size_t i = *ip;
    int depth = 0;
    while (!AtEnd(i)) {
      const Token& t = Tok(i);
      if (t.kind == TokKind::kPunct) {
        const std::string& p = t.text;
        if (p == ";" && depth == 0) {
          ++i;
          break;
        }
        if (p == "}" && depth == 0) break;  // unterminated: end of block
        if (p == "(" || p == "[") ++depth;
        if (p == ")" || p == "]") --depth;
        if (p == "{") {
          if (LooksLikeLambdaIntro(*acc)) {
            std::size_t end = 0;
            Function fn;
            fn.is_lambda = true;
            fn.name = (fn_stack_.empty() ? std::string("<file>")
                                         : fn_stack_.back()) +
                      "::lambda#" + std::to_string(++lambda_count_);
            fn.line = t.line;
            fn.params = LambdaParams(*acc);
            fn_stack_.push_back(fn.name);
            fn.body = ParseBlock(i, &end);
            fn_stack_.pop_back();
            unit_.functions.push_back(std::move(fn));
            acc->push_back(Token{TokKind::kIdent, "<lambda>", t.line});
            i = end;
            continue;
          }
          // Brace init: keep the tokens, keep commas nested.
          int bdepth = 0;
          while (!AtEnd(i)) {
            if (IsPunct(i, "{")) ++bdepth;
            if (IsPunct(i, "}") && --bdepth == 0) {
              acc->push_back(Tok(i));
              ++i;
              break;
            }
            acc->push_back(Tok(i));
            ++i;
          }
          continue;
        }
      }
      acc->push_back(t);
      ++i;
    }
    *ip = i;
  }

  /// Does the token run collected so far end in a lambda introducer —
  /// `[...]`, `[...] (params)`, plus optional mutable/noexcept/->T?
  static bool LooksLikeLambdaIntro(const std::vector<Token>& acc) {
    if (acc.empty()) return false;
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(acc.size()) - 1;
    // Skip trailing specifiers / return type (bounded walk).
    int skipped = 0;
    while (i >= 0 && skipped < 12) {
      const Token& t = acc[static_cast<std::size_t>(i)];
      if (t.IsPunct(")") || t.IsPunct("]")) break;
      const bool spec =
          t.kind == TokKind::kIdent ||
          (t.kind == TokKind::kPunct &&
           (t.text == "->" || t.text == "::" || t.text == "<" ||
            t.text == ">" || t.text == "&" || t.text == "*"));
      if (!spec) return false;
      --i;
      ++skipped;
    }
    if (i < 0) return false;
    if (acc[static_cast<std::size_t>(i)].IsPunct(")")) {
      int depth = 0;
      while (i >= 0) {
        const Token& t = acc[static_cast<std::size_t>(i)];
        if (t.IsPunct(")")) ++depth;
        if (t.IsPunct("(") && --depth == 0) break;
        --i;
      }
      --i;  // token before "("
      if (i < 0 || !acc[static_cast<std::size_t>(i)].IsPunct("]")) {
        return false;
      }
    }
    if (!acc[static_cast<std::size_t>(i)].IsPunct("]")) return false;
    // Walk to the matching "[" and check it sits in expression position
    // (not an array subscript).
    int depth = 0;
    while (i >= 0) {
      const Token& t = acc[static_cast<std::size_t>(i)];
      if (t.IsPunct("]")) ++depth;
      if (t.IsPunct("[") && --depth == 0) break;
      --i;
    }
    if (i < 0) return false;
    if (i == 0) return true;
    const Token& before = acc[static_cast<std::size_t>(i - 1)];
    if (before.kind == TokKind::kIdent &&
        ControlKeywords().count(before.text) == 0 &&
        before.text != "return") {
      return false;  // ident[...] is a subscript
    }
    return !(before.IsPunct(")") || before.IsPunct("]"));
  }

  /// Parameters of the lambda whose introducer terminates `acc`.
  std::vector<Param> LambdaParams(const std::vector<Token>& acc) {
    if (acc.empty() || !acc.back().IsPunct(")")) return {};
    int depth = 0;
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(acc.size()) - 1;
    while (i >= 0) {
      if (acc[static_cast<std::size_t>(i)].IsPunct(")")) ++depth;
      if (acc[static_cast<std::size_t>(i)].IsPunct("(") && --depth == 0) {
        break;
      }
      --i;
    }
    if (i < 0) return {};
    // Reuse ParseParams by building a scratch parser over the segment.
    std::vector<Token> segment(
        acc.begin() + i + 1,
        acc.begin() + static_cast<std::ptrdiff_t>(acc.size()) - 1);
    Parser sub(segment);
    return sub.ParseParams(0, segment.size());
  }

  std::optional<Stmt> CollectPlain(std::size_t* ip) {
    const int line = Tok(*ip).line;
    std::vector<Token> acc;
    CollectExpr(ip, &acc);
    if (acc.empty()) return std::nullopt;
    Stmt s;
    s.kind = StmtKind::kPlain;
    s.line = line;
    s.text = JoinVec(acc);
    s.calls = ExtractCallsFrom(acc);
    ExtractDeclOrAssign(acc, &s);
    return s;
  }

  // --- declaration / assignment shape --------------------------------------

  void ExtractDeclOrAssign(const std::vector<Token>& acc, Stmt* s) {
    // First assignment-shaped operator at nesting depth 0.
    int depth = 0;
    std::size_t op_at = acc.size();
    for (std::size_t j = 0; j < acc.size(); ++j) {
      if (acc[j].kind != TokKind::kPunct) continue;
      const std::string& p = acc[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") --depth;
      if (depth == 0 && (p == "=" || CompoundAssignOps().count(p) != 0)) {
        op_at = j;
        break;
      }
    }
    if (op_at < acc.size()) {
      const std::string op = acc[op_at].text;
      LhsInfo lhs = AnalyzeLhs(acc, op_at);
      if (lhs.kind == LhsInfo::kDecl && op == "=") {
        s->decl_type = lhs.type;
        s->decl_name = lhs.name;
        s->init_text = JoinVecMasked(acc, op_at + 1, acc.size());
      } else if (lhs.kind != LhsInfo::kNone) {
        s->assigns.push_back(
            Assign{lhs.name, op, lhs.subscript, s->line});
      }
      return;
    }
    // No "=": constructor-style or plain declaration.
    TryCtorOrPlainDecl(acc, s);
  }

  struct LhsInfo {
    enum Kind { kNone, kAssign, kDecl } kind = kNone;
    std::string name;
    std::string type;
    std::string subscript;
  };

  LhsInfo AnalyzeLhs(const std::vector<Token>& acc, std::size_t op_at) {
    LhsInfo out;
    if (op_at == 0) return out;
    std::size_t last = op_at - 1;
    if (acc[last].IsPunct("]")) {
      // name[subscript] op ... — possibly an array declaration.
      int depth = 0;
      std::size_t open = last;
      while (open > 0) {
        if (acc[open].IsPunct("]")) ++depth;
        if (acc[open].IsPunct("[") && --depth == 0) break;
        --open;
      }
      if (open == 0 || acc[open - 1].kind != TokKind::kIdent) return out;
      const std::size_t name_at = open - 1;
      if (name_at > 0 && IsTypePrefix(acc, 0, name_at)) {
        out.kind = LhsInfo::kDecl;  // e.g. `int a[3] = {...}`
        out.name = acc[name_at].text;
        out.type = JoinVecMasked(acc, 0, name_at);
        return out;
      }
      if (name_at == 0) {
        out.kind = LhsInfo::kAssign;
        out.name = acc[0].text;
        out.subscript = JoinVecMasked(acc, open + 1, last);
      }
      return out;
    }
    if (acc[last].kind != TokKind::kIdent) return out;
    const std::string& name = acc[last].text;
    if (last == 0) {
      out.kind = LhsInfo::kAssign;
      out.name = name;
      return out;
    }
    const Token& before = acc[last - 1];
    if (before.IsPunct(".") || before.IsPunct("->")) return out;  // member
    if (IsTypePrefix(acc, 0, last)) {
      out.kind = LhsInfo::kDecl;
      out.name = name;
      out.type = JoinVecMasked(acc, 0, last);
    }
    return out;
  }

  /// `acc[begin..end)` is plausible declaration-type text: nonempty,
  /// starts with an identifier, and contains only type-shaped tokens.
  static bool IsTypePrefix(const std::vector<Token>& acc, std::size_t begin,
                           std::size_t end) {
    if (begin >= end) return false;
    if (acc[begin].kind != TokKind::kIdent) return false;
    if (ControlKeywords().count(acc[begin].text) != 0) return false;
    for (std::size_t j = begin; j < end; ++j) {
      if (!IsTypeishToken(acc[j])) return false;
      if (acc[j].IsPunct("(")) return false;
    }
    return true;
  }

  void TryCtorOrPlainDecl(const std::vector<Token>& acc, Stmt* s) {
    if (acc.size() < 2) return;
    if (acc.back().IsPunct(")")) {
      // [type]+ name ( args ) — e.g. `mpi::World world(cluster, n, ppn)`.
      int depth = 0;
      std::size_t open = acc.size() - 1;
      while (open > 0) {
        if (acc[open].IsPunct(")")) ++depth;
        if (acc[open].IsPunct("(") && --depth == 0) break;
        --open;
      }
      if (open < 2 || acc[open - 1].kind != TokKind::kIdent) return;
      const std::size_t name_at = open - 1;
      const Token& before = acc[name_at - 1];
      if (before.IsPunct("::") || before.IsPunct(".") ||
          before.IsPunct("->")) {
        return;  // qualified or member call, not a declaration
      }
      if (!IsTypePrefix(acc, 0, name_at)) return;
      s->decl_type = JoinVecMasked(acc, 0, name_at);
      s->decl_name = acc[name_at].text;
      s->init_text = JoinVecMasked(acc, open + 1, acc.size() - 1);
      return;
    }
    if (acc.back().kind == TokKind::kIdent && acc.size() >= 2) {
      // [type]+ name — e.g. `double total`.
      const std::size_t name_at = acc.size() - 1;
      if (!IsTypePrefix(acc, 0, name_at)) return;
      s->decl_type = JoinVecMasked(acc, 0, name_at);
      s->decl_name = acc[name_at].text;
    }
  }

  // --- call extraction ------------------------------------------------------

  std::vector<CallExpr> ExtractCalls(std::size_t begin, std::size_t end) {
    std::vector<Token> seg(t_.begin() + static_cast<std::ptrdiff_t>(begin),
                           t_.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(end, t_.size())));
    return ExtractCallsFrom(seg);
  }

  static std::vector<CallExpr> ExtractCallsFrom(
      const std::vector<Token>& acc) {
    std::vector<CallExpr> out;
    for (std::size_t j = 0; j < acc.size(); ++j) {
      if (acc[j].kind != TokKind::kIdent) continue;
      if (ControlKeywords().count(acc[j].text) != 0) continue;
      std::size_t open = 0;
      if (j + 1 < acc.size() && acc[j + 1].IsPunct("(")) {
        open = j + 1;
      } else if (j + 1 < acc.size() && acc[j + 1].IsPunct("<")) {
        // Possible template call: ident < ... > (
        int depth = 0;
        std::size_t m = j + 1;
        bool matched = false;
        for (; m < acc.size() && m - j < 64; ++m) {
          if (acc[m].kind != TokKind::kPunct) continue;
          const std::string& p = acc[m].text;
          if (p == "<") ++depth;
          if (p == ">") --depth;
          if (p == ">>") depth -= 2;
          if (p == ";" || p == "{") break;
          if (depth <= 0) break;
        }
        if (depth <= 0 && m + 1 < acc.size() && acc[m + 1].IsPunct("(")) {
          open = m + 1;
          matched = true;
        }
        if (!matched) continue;
      } else {
        continue;
      }

      CallExpr call;
      call.method = acc[j].text;
      call.line = acc[j].line;
      // Walk the receiver path backwards: (ident sep)* method.
      std::vector<std::string> pieces;
      std::ptrdiff_t r = static_cast<std::ptrdiff_t>(j) - 1;
      while (r >= 1) {
        const Token& sep = acc[static_cast<std::size_t>(r)];
        const Token& obj = acc[static_cast<std::size_t>(r - 1)];
        const bool is_sep = sep.IsPunct(".") || sep.IsPunct("->") ||
                            sep.IsPunct("::");
        if (!is_sep || obj.kind != TokKind::kIdent) break;
        pieces.insert(pieces.begin(), obj.text + sep.text);
        r -= 2;
      }
      for (const std::string& piece : pieces) call.receiver += piece;
      if (!call.receiver.empty()) {
        // Trim the trailing separator for a clean object path.
        if (call.receiver.size() >= 2 &&
            call.receiver.compare(call.receiver.size() - 2, 2, "::") == 0) {
          call.receiver.erase(call.receiver.size() - 2);
        } else if (call.receiver.back() == '.') {
          call.receiver.pop_back();
        } else if (call.receiver.size() >= 2 &&
                   call.receiver.compare(call.receiver.size() - 2, 2,
                                         "->") == 0) {
          call.receiver.erase(call.receiver.size() - 2);
        }
      }
      for (const std::string& piece : pieces) call.callee += piece;
      call.callee += call.method;

      // Arguments: top-level comma split inside the matching parens.
      int depth = 0;
      std::size_t close = open;
      for (std::size_t m = open; m < acc.size(); ++m) {
        if (acc[m].kind != TokKind::kPunct) continue;
        if (acc[m].text == "(") ++depth;
        if (acc[m].text == ")" && --depth == 0) {
          close = m;
          break;
        }
      }
      if (close == open) continue;
      std::size_t arg_start = open + 1;
      int adepth = 0;
      for (std::size_t m = open + 1; m <= close; ++m) {
        const bool at_close = m == close;
        if (!at_close && acc[m].kind == TokKind::kPunct) {
          const std::string& p = acc[m].text;
          if (p == "(" || p == "[" || p == "{") ++adepth;
          if (p == ")" || p == "]" || p == "}") --adepth;
        }
        if (at_close || (adepth == 0 && acc[m].IsPunct(","))) {
          if (m > arg_start) {
            call.args.push_back(JoinVecMasked(acc, arg_start, m));
          }
          arg_start = m + 1;
        }
      }
      out.push_back(std::move(call));
    }
    return out;
  }

  // --- small helpers --------------------------------------------------------

  static std::string JoinVec(const std::vector<Token>& toks) {
    return JoinMasked(toks, 0, toks.size());
  }
  static std::string JoinVecMasked(const std::vector<Token>& toks,
                                   std::size_t begin, std::size_t end) {
    return JoinMasked(toks, begin, end);
  }

  const std::vector<Token>& t_;
  Unit unit_;
  std::vector<std::string> fn_stack_;
  int lambda_count_ = 0;
};

}  // namespace

Unit ParseUnit(const std::vector<Token>& tokens) {
  return Parser(tokens).Run();
}

Unit ParseSource(const std::string& source) {
  return ParseUnit(Tokenize(source));
}

void ForEachStmt(const std::vector<Stmt>& body,
                 const std::function<void(const Stmt&)>& visit) {
  for (const Stmt& s : body) {
    visit(s);
    ForEachStmt(s.children, visit);
    ForEachStmt(s.else_children, visit);
  }
}

}  // namespace pstk::analysis
