#include "analysis/deadlock.h"

#include <algorithm>

#include "analysis/token.h"

namespace pstk::analysis {

namespace {

/// Recursive-descent evaluator over the token stream. Every production
/// returns nullopt on the first construct outside the grammar; nullopt is
/// sticky all the way up.
class ExprEval {
 public:
  ExprEval(const std::vector<Token>& toks,
           const std::function<std::optional<long long>(const std::string&)>&
               resolve)
      : t_(toks), resolve_(resolve) {}

  std::optional<long long> Run() {
    auto v = Ternary();
    if (!v.has_value() || pos_ != t_.size()) return std::nullopt;
    return v;
  }

 private:
  [[nodiscard]] bool AtPunct(const char* p) const {
    return pos_ < t_.size() && t_[pos_].kind == TokKind::kPunct &&
           t_[pos_].text == p;
  }

  bool EatPunct(const char* p) {
    if (!AtPunct(p)) return false;
    ++pos_;
    return true;
  }

  std::optional<long long> Ternary() {
    auto cond = OrExpr();
    if (!cond.has_value()) return std::nullopt;
    if (!EatPunct("?")) return cond;
    auto a = Ternary();
    if (!a.has_value() || !EatPunct(":")) return std::nullopt;
    auto b = Ternary();
    if (!b.has_value()) return std::nullopt;
    return *cond != 0 ? *a : *b;
  }

  std::optional<long long> OrExpr() {
    auto a = AndExpr();
    while (a.has_value() && AtPunct("||")) {
      ++pos_;
      auto b = AndExpr();
      if (!b.has_value()) return std::nullopt;
      a = static_cast<long long>(*a != 0 || *b != 0);
    }
    return a;
  }

  std::optional<long long> AndExpr() {
    auto a = BitOr();
    while (a.has_value() && AtPunct("&&")) {
      ++pos_;
      auto b = BitOr();
      if (!b.has_value()) return std::nullopt;
      a = static_cast<long long>(*a != 0 && *b != 0);
    }
    return a;
  }

  std::optional<long long> BitOr() {
    auto a = BitXor();
    while (a.has_value() && AtPunct("|")) {
      ++pos_;
      auto b = BitXor();
      if (!b.has_value()) return std::nullopt;
      a = *a | *b;
    }
    return a;
  }

  std::optional<long long> BitXor() {
    auto a = BitAnd();
    while (a.has_value() && AtPunct("^")) {
      ++pos_;
      auto b = BitAnd();
      if (!b.has_value()) return std::nullopt;
      a = *a ^ *b;
    }
    return a;
  }

  std::optional<long long> BitAnd() {
    auto a = Equality();
    while (a.has_value() && AtPunct("&")) {
      ++pos_;
      auto b = Equality();
      if (!b.has_value()) return std::nullopt;
      a = *a & *b;
    }
    return a;
  }

  std::optional<long long> Equality() {
    auto a = Relational();
    while (a.has_value() && (AtPunct("==") || AtPunct("!="))) {
      const bool eq = t_[pos_].text == "==";
      ++pos_;
      auto b = Relational();
      if (!b.has_value()) return std::nullopt;
      a = static_cast<long long>(eq ? *a == *b : *a != *b);
    }
    return a;
  }

  std::optional<long long> Relational() {
    auto a = Shift();
    while (a.has_value() &&
           (AtPunct("<") || AtPunct(">") || AtPunct("<=") || AtPunct(">="))) {
      const std::string op = t_[pos_].text;
      ++pos_;
      auto b = Shift();
      if (!b.has_value()) return std::nullopt;
      long long r = 0;
      if (op == "<") r = static_cast<long long>(*a < *b);
      if (op == ">") r = static_cast<long long>(*a > *b);
      if (op == "<=") r = static_cast<long long>(*a <= *b);
      if (op == ">=") r = static_cast<long long>(*a >= *b);
      a = r;
    }
    return a;
  }

  std::optional<long long> Shift() {
    auto a = Additive();
    while (a.has_value() && (AtPunct("<<") || AtPunct(">>"))) {
      const bool left = t_[pos_].text == "<<";
      ++pos_;
      auto b = Additive();
      if (!b.has_value() || *b < 0 || *b > 62) return std::nullopt;
      a = left ? (*a << *b) : (*a >> *b);
    }
    return a;
  }

  std::optional<long long> Additive() {
    auto a = Multiplicative();
    while (a.has_value() && (AtPunct("+") || AtPunct("-"))) {
      const bool add = t_[pos_].text == "+";
      ++pos_;
      auto b = Multiplicative();
      if (!b.has_value()) return std::nullopt;
      a = add ? *a + *b : *a - *b;
    }
    return a;
  }

  std::optional<long long> Multiplicative() {
    auto a = Unary();
    while (a.has_value() && (AtPunct("*") || AtPunct("/") || AtPunct("%"))) {
      const std::string op = t_[pos_].text;
      ++pos_;
      auto b = Unary();
      if (!b.has_value()) return std::nullopt;
      if ((op == "/" || op == "%") && *b == 0) return std::nullopt;
      if (op == "*") a = *a * *b;
      if (op == "/") a = *a / *b;
      if (op == "%") a = *a % *b;
    }
    return a;
  }

  std::optional<long long> Unary() {
    if (AtPunct("!")) {
      ++pos_;
      auto v = Unary();
      if (!v.has_value()) return std::nullopt;
      return static_cast<long long>(*v == 0);
    }
    if (AtPunct("-")) {
      ++pos_;
      auto v = Unary();
      if (!v.has_value()) return std::nullopt;
      return -*v;
    }
    if (AtPunct("+")) {
      ++pos_;
      return Unary();
    }
    if (AtPunct("~")) {
      ++pos_;
      auto v = Unary();
      if (!v.has_value()) return std::nullopt;
      return ~*v;
    }
    return Primary();
  }

  std::optional<long long> Primary() {
    if (pos_ >= t_.size()) return std::nullopt;
    const Token& tok = t_[pos_];
    if (EatPunct("(")) {
      auto v = Ternary();
      if (!v.has_value() || !EatPunct(")")) return std::nullopt;
      return v;
    }
    if (tok.kind == TokKind::kNumber) {
      ++pos_;
      return TokenIntValue(tok);
    }
    if (tok.kind != TokKind::kIdent) return std::nullopt;
    if (tok.text == "true" || tok.text == "false") {
      ++pos_;
      return static_cast<long long>(tok.text == "true");
    }
    if (tok.text == "static_cast") {
      // static_cast<T>(e): skip the type, evaluate e — every integral cast
      // is the identity at the value range we evaluate (small ranks/tags).
      ++pos_;
      if (!EatPunct("<")) return std::nullopt;
      int depth = 1;
      while (pos_ < t_.size() && depth > 0) {
        if (AtPunct("<")) ++depth;
        if (AtPunct(">")) --depth;
        ++pos_;
      }
      if (depth != 0 || !EatPunct("(")) return std::nullopt;
      auto v = Ternary();
      if (!v.has_value() || !EatPunct(")")) return std::nullopt;
      return v;
    }
    // A plain identifier, resolved through the caller. Member access,
    // calls, or subscripts on it are outside the grammar.
    const std::string name = tok.text;
    ++pos_;
    if (AtPunct("(") || AtPunct(".") || AtPunct("->") || AtPunct("[") ||
        AtPunct("::")) {
      return std::nullopt;
    }
    return resolve_(name);
  }

  const std::vector<Token>& t_;
  const std::function<std::optional<long long>(const std::string&)>& resolve_;
  std::size_t pos_ = 0;
};

/// One send or receive half posted into the match pool.
struct PostedPart {
  const CommOp* op = nullptr;
  bool is_send = false;
  int peer = -1;  // dest for sends, expected source for recvs
  int tag = 0;
  bool matched = false;
};

struct RankState {
  std::size_t pc = 0;
  std::vector<PostedPart> posted;
  // Index of the first posted part belonging to the op at pc, or npos when
  // the current op has not posted yet (so re-entering Advance after a
  // failed match does not double-post).
  std::size_t posted_at_pc = static_cast<std::size_t>(-1);
  bool at_collective = false;
};

}  // namespace

std::optional<long long> EvalIntExpr(
    const std::string& expr,
    const std::function<std::optional<long long>(const std::string&)>&
        resolve) {
  const std::vector<Token> toks = Tokenize(expr);
  if (toks.empty()) return std::nullopt;
  return ExprEval(toks, resolve).Run();
}

DeadlockReport SimulateRendezvous(
    const std::vector<std::vector<CommOp>>& seq_of_rank) {
  const int n = static_cast<int>(seq_of_rank.size());
  std::vector<RankState> st(seq_of_rank.size());

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  auto all_posted_matched = [&](const RankState& s) {
    return std::all_of(s.posted.begin(), s.posted.end(),
                       [](const PostedPart& p) { return p.matched; });
  };

  // Runs rank r forward until it blocks or finishes; returns true when any
  // state changed.
  auto advance = [&](int r) {
    RankState& s = st[r];
    const std::vector<CommOp>& seq = seq_of_rank[r];
    bool moved = false;
    auto step = [&]() {
      ++s.pc;
      s.posted_at_pc = kNone;
      s.at_collective = false;
      moved = true;
    };
    while (s.pc < seq.size()) {
      const CommOp& op = seq[s.pc];
      switch (op.kind) {
        case CommOp::Kind::kIsend:
        case CommOp::Kind::kIrecv:
          s.posted.push_back(PostedPart{
              &op, op.kind == CommOp::Kind::kIsend, op.peer, op.tag, false});
          step();
          continue;
        case CommOp::Kind::kSend:
        case CommOp::Kind::kRecv: {
          if (s.posted_at_pc == kNone) {
            s.posted_at_pc = s.posted.size();
            s.posted.push_back(PostedPart{
                &op, op.kind == CommOp::Kind::kSend, op.peer, op.tag, false});
            moved = true;
          }
          if (s.posted[s.posted_at_pc].matched) {
            step();
            continue;
          }
          return moved;  // blocked until the rendezvous partner arrives
        }
        case CommOp::Kind::kSendrecv: {
          if (s.posted_at_pc == kNone) {
            s.posted_at_pc = s.posted.size();
            s.posted.push_back(PostedPart{&op, true, op.peer, op.tag, false});
            s.posted.push_back(
                PostedPart{&op, false, op.peer2, op.tag, false});
            moved = true;
          }
          if (s.posted[s.posted_at_pc].matched &&
              s.posted[s.posted_at_pc + 1].matched) {
            step();
            continue;
          }
          return moved;
        }
        case CommOp::Kind::kWait: {
          if (all_posted_matched(s)) {
            step();
            continue;
          }
          return moved;
        }
        case CommOp::Kind::kCollective: {
          if (!s.at_collective) {
            s.at_collective = true;
            moved = true;
          }
          return moved;  // released by the lockstep barrier pass below
        }
      }
    }
    return moved;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int r = 0; r < n; ++r) {
      if (advance(r)) progressed = true;
    }
    // Collective lockstep: release only when every rank of the world is
    // parked at a collective with the same label.
    const bool all_at_collective = std::all_of(
        st.begin(), st.end(), [](const RankState& s) { return s.at_collective; });
    if (all_at_collective && n > 0) {
      bool same = true;
      const std::string& label = seq_of_rank[0][st[0].pc].label;
      for (int r = 1; r < n; ++r) {
        if (seq_of_rank[r][st[r].pc].label != label) same = false;
      }
      if (same) {
        for (int r = 0; r < n; ++r) {
          ++st[r].pc;
          st[r].posted_at_pc = kNone;
          st[r].at_collective = false;
        }
        progressed = true;
      }
    }
    // Matching pass: lowest sender rank first, post order within a rank;
    // each send takes the earliest-posted compatible recv, which preserves
    // MPI's non-overtaking order for a same-(src,dst,tag) stream.
    for (int r = 0; r < n; ++r) {
      for (PostedPart& send : st[r].posted) {
        if (!send.is_send || send.matched) continue;
        if (send.peer < 0 || send.peer >= n) continue;
        for (PostedPart& recv : st[send.peer].posted) {
          if (recv.is_send || recv.matched) continue;
          if (recv.peer != r || recv.tag != send.tag) continue;
          send.matched = true;
          recv.matched = true;
          progressed = true;
          break;
        }
      }
    }
  }

  DeadlockReport rep;
  std::vector<int> stuck;
  for (int r = 0; r < n; ++r) {
    if (st[r].pc < seq_of_rank[r].size()) stuck.push_back(r);
  }
  if (stuck.empty()) return rep;  // drained: no deadlock
  rep.deadlock = true;
  for (int r : stuck) {
    if (st[r].at_collective) rep.involves_collective = true;
  }
  if (rep.involves_collective) return rep;

  // Who does a stuck rank wait on? The peer of its first unmatched part.
  auto wait_peer = [&](int r) -> int {
    for (const PostedPart& p : st[r].posted) {
      if (!p.matched) return p.peer;
    }
    return -1;
  };
  auto is_stuck = [&](int r) {
    return r >= 0 && r < n && st[r].pc < seq_of_rank[r].size();
  };

  // Walk the wait-for chain from the lowest stuck rank; it either closes
  // into a cycle or ends at a rank that already finished.
  std::vector<int> chain;
  std::vector<int> seen_at(seq_of_rank.size(), -1);
  int cur = stuck.front();
  while (is_stuck(cur) && seen_at[cur] < 0) {
    seen_at[cur] = static_cast<int>(chain.size());
    chain.push_back(cur);
    cur = wait_peer(cur);
  }
  if (is_stuck(cur)) {
    // Closed: keep only the cycle portion.
    rep.proper_cycle = true;
    chain.erase(chain.begin(), chain.begin() + seen_at[cur]);
  }
  rep.ranks = chain;
  rep.all_sends = rep.proper_cycle;
  for (int r : chain) {
    const CommOp& op = seq_of_rank[r][st[r].pc];
    rep.ops.push_back(op);
    if (op.kind != CommOp::Kind::kSend) rep.all_sends = false;
  }
  return rep;
}

}  // namespace pstk::analysis
