// pstk-lint: heuristic static scanning of benchmark/example sources for
// the cross-paradigm misuse patterns the runtime verifier catches
// dynamically (see src/verify). The rules are line-based heuristics in
// the spirit of the paper's Table III source analysis — they trade
// soundness for zero build-system integration: comments are stripped and
// a small amount of brace/loop structure is tracked, nothing more.
//
// Rules:
//   mpi-blocking-symmetric-send  blocking Send into a rank-symmetric
//                                exchange (deadlocks once the message
//                                size crosses the rendezvous threshold)
//   spark-missing-persist        an RDD built outside a loop, reused
//                                inside it, and never Persist()/Cache()d
//                                (recompute storm)
//   omp-shared-reduction         `#pragma omp parallel for` without a
//                                reduction clause over a body that
//                                accumulates into a shared variable
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace pstk::analysis {

struct LintFinding {
  std::string rule;     // stable slug, e.g. "spark-missing-persist"
  std::string file;     // label or path of the offending source
  int line = 0;         // 1-based line number
  std::string message;  // human diagnostic
};

/// Scan one source text. `file` is only used to label findings.
std::vector<LintFinding> LintSource(const std::string& file,
                                    const std::string& source);

/// Read and scan one file from the host filesystem.
Result<std::vector<LintFinding>> LintFile(const std::string& path);

/// Recursively scan every .cc/.cpp/.h under each root (files sorted for
/// deterministic output). Roots may also name single files.
Result<std::vector<LintFinding>> LintTree(const std::vector<std::string>& roots);

/// Render findings as a Table III-style report (one row per finding plus
/// a per-rule summary); "clean" when there are none.
std::string RenderLintReport(const std::vector<LintFinding>& findings);

}  // namespace pstk::analysis
