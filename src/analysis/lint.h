// pstk-lint: dataflow-based static analysis of benchmark/example sources
// for cross-paradigm misuse — the static twin of the runtime verifier
// (src/verify). Sources run through a five-stage pipeline:
//
//   token.h    C++-subset tokenizer (comment/string-literal aware)
//   parse.h    structural parser: functions, loops, branches, pragmas,
//              calls with argument text, lambdas lifted as functions
//   dataflow.h per-function def-use: variable table, reaching writes,
//              rank-derived / 64-bit-size value facts, branch context
//   cfg.h      per-function control-flow graph with symbolic branch
//              conditions; bounded path enumeration feeds the
//              path-sensitive divergence gate and the deadlock detector
//   callgraph.h whole-program layer: call graph, taint-knowledge
//              fixpoint, bottom-up function summaries (transitive
//              collective/blocking/checkpoint facts, count/peer params,
//              provable collective sequences)
//
// All sources of one invocation are analyzed together (LintTree /
// LintProgram), so the MPI rules see through wrapper functions — a
// helper that hides a Barrier or an int-narrowed Send count is reported
// at the call site with a related location inside the wrapper.
//
// Rules (slug — severity — what it catches):
//   ckpt-outside-collective — error — CheckpointCoordinator::Checkpoint()
//       under a rank-derived condition: the first arrival decides whether
//       the epoch is due, so skipping ranks never write their fragment and
//       the epoch can never commit
//   mpi-blocking-symmetric-send — error — blocking Send to a rank-derived
//       peer with a matching Recv after it; deadlocks at the rendezvous
//       threshold
//   mpi-collective-in-divergent-branch — error — collective call (or
//       early return) under a rank-derived condition: ranks disagree on
//       the collective sequence (the call-order bug the runtime verifier
//       only sees when the branch executes)
//   mpi-int-count-overflow — error — 64-bit size expression narrowed via
//       static_cast into an int count of Send/Recv/ReadAtAll with no
//       INT_MAX guard in the function (the paper's Fig. 4 failure,
//       diagnosed statically)
//   mpi-tag-mismatch — error — all send tags and all recv tags in a
//       function are constants and the two sets are disjoint: the match
//       can never happen
//   mpi-rendezvous-deadlock — error — per-rank concretization of the
//       function's send/recv order (rank() = r, size() = N for small N)
//       run under rendezvous semantics ends with every stuck rank blocked
//       in Send: the head-to-head exchange / ring-send cycle that hangs
//       once messages cross the eager threshold
//   mpi-wait-cycle — error — same simulation, but the wait-for cycle
//       includes a Recv (or a chain ending at an exited peer): a
//       recv-before-send ordering no message size can save
//   shmem-put-without-quiet — error — symmetric put followed by a get of
//       the same symmetric object with no Quiet/Fence/BarrierAll between
//   omp-shared-reduction — error — `#pragma omp parallel for` whose body
//       accumulates (+=) into a variable declared outside the loop,
//       without reduction/atomic/critical
//   omp-missing-private — warning — scalar declared before a
//       `#pragma omp parallel for` and plainly assigned inside the loop
//       body without private()/firstprivate()/reduction()
//   spark-missing-persist — warning — RDD reused inside a loop, or hit by
//       two actions, without Persist()/Cache(): every reuse recomputes
//       the whole lineage (the paper's Fig. 6 persist() omission)
//   mpi-collective-mismatch — error — both arms of a rank-divergent
//       branch execute collectives but provably *different* sequences
//       (MUST/MPI-Checker-style matching): the mismatched collectives
//       deadlock
//   mpi-collective-in-loop-divergent-bound — error — collective inside a
//       loop whose bound is rank-derived: ranks disagree on the trip
//       count and execute different numbers of collectives
//   sim-blocking-in-drain — error — blocking call reachable from a
//       Drain* function: the sharded engine's coordinator drain path
//       must never block (a blocked coordinator stalls every shard)
//   sim-spsc-multi-producer — error — more than one function pushes to
//       the same SpscRing channel: single-producer is the ring's entire
//       correctness argument
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/rewrite.h"
#include "common/status.h"

namespace pstk::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

/// SARIF-style level name: "note" / "warning" / "error".
const char* SeverityName(Severity severity);

/// Secondary location attached to an interprocedural finding — e.g. the
/// collective inside the wrapper a divergent call site reaches.
struct RelatedLocation {
  std::string file;
  int line = 0;
  std::string note;
};

struct LintFinding {
  std::string rule;     // stable slug, e.g. "spark-missing-persist"
  std::string file;     // label or path of the offending source
  int line = 0;         // 1-based line number
  std::string message;  // human diagnostic
  Severity severity = Severity::kWarning;
  std::string fixit;    // short remediation hint ("" when obvious)
  std::vector<RelatedLocation> related;  // cross-function evidence chain
  // Line-drift-tolerant identity: FNV-1a of the trimmed source line the
  // finding points at ("" when the source text is unavailable). Baseline
  // entries carry it so suppressions survive unrelated edits above.
  std::string line_hash;
  // Machine-applicable fix ([--fix]); empty for non-mechanical findings.
  std::vector<TextEdit> edits;
};

/// Static metadata for one rule (drives --format=sarif and the report).
struct RuleInfo {
  const char* slug;
  Severity severity;
  const char* summary;  // one-line description
  const char* fix;      // default remediation hint
};

/// All registered rules, sorted by slug.
const std::vector<RuleInfo>& Rules();

/// Scan one source text. `file` is only used to label findings.
std::vector<LintFinding> LintSource(const std::string& file,
                                    const std::string& source);

/// Scan a set of sources as one program: call edges cross file
/// boundaries, so wrapper-hidden misuse in one file is reported at call
/// sites in another. LintSource and LintTree are wrappers over this.
/// `jobs` parallelizes the per-file tokenize/parse phase; findings are
/// byte-identical for every value of `jobs`.
std::vector<LintFinding> LintProgram(std::vector<ProgramSource> sources,
                                     int jobs = 1);

/// Read and scan one file from the host filesystem.
Result<std::vector<LintFinding>> LintFile(const std::string& path);

/// Recursively scan every .cc/.cpp/.h under each root (files sorted for
/// deterministic output). Roots may also name single files.
Result<std::vector<LintFinding>> LintTree(const std::vector<std::string>& roots,
                                          int jobs = 1);

/// The finding/baseline line hash: 32-bit FNV-1a of the line with leading
/// and trailing whitespace removed, rendered as 8 hex digits.
std::string SourceLineHash(const std::string& line_text);

/// Highest severity present (kNote when empty).
Severity WorstSeverity(const std::vector<LintFinding>& findings);

// --- output formats --------------------------------------------------------

/// Render findings as a Table III-style report (one row per finding plus
/// a per-rule summary); "clean" when there are none.
std::string RenderLintReport(const std::vector<LintFinding>& findings);

/// Machine-readable JSON: an array of finding objects.
std::string RenderJson(const std::vector<LintFinding>& findings);

/// SARIF 2.1.0 (GitHub code-scanning upload format): one run, the rule
/// registry as tool.driver.rules, one result per finding.
std::string RenderSarif(const std::vector<LintFinding>& findings);

// --- baseline suppression --------------------------------------------------

/// One suppression: findings of `rule` in files whose path ends with
/// `path` are dropped. A nonempty `hash` additionally pins the trimmed
/// text of the flagged line (SourceLineHash), which keeps the entry
/// matching when unrelated edits shift line numbers but stops it from
/// hiding a *different* finding that lands in the same file.
struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string hash;
};

/// Parse baseline text: one `rule path [hash]` tuple per line, `#`
/// comments and blank lines ignored.
std::vector<BaselineEntry> ParseBaseline(const std::string& text);

/// Load and parse a baseline file.
Result<std::vector<BaselineEntry>> LoadBaseline(const std::string& path);

/// Render findings as baseline text that suppresses exactly them
/// (entries deduplicated and sorted). `header` replaces the default
/// comment block when nonempty — pass the previous baseline's leading
/// comments through so regeneration produces reviewable diffs.
std::string FormatBaseline(const std::vector<LintFinding>& findings,
                           const std::string& header = "");

/// Remove suppressed findings; `suppressed` (optional) receives the count.
std::vector<LintFinding> ApplyBaseline(
    std::vector<LintFinding> findings,
    const std::vector<BaselineEntry>& baseline, int* suppressed = nullptr);

}  // namespace pstk::analysis
