#include "analysis/token.h"

#include <cctype>
#include <cstdlib>

namespace pstk::analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character operators, longest first within each leading character.
const char* const kMultiPunct[] = {
    "...", "<<=", ">>=", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "^=", "&=", "|=",
    "++", "--",  ".*",
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        SkipLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        SkipBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        continue;
      }
      at_line_start_ = false;
      const std::size_t raw_prefix = RawStringPrefixAt();
      if (raw_prefix > 0 && ValidRawDelimiterAt(pos_ + raw_prefix + 1)) {
        LexRawString(raw_prefix);
        continue;
      }
      if (raw_prefix > 0) {
        // `R"` (or `u8R"` etc.) not followed by a valid delimiter + '(' is
        // an encoding-prefix identifier and an ordinary string literal.
        Emit(TokKind::kIdent, src_.substr(pos_, raw_prefix), line_);
        pos_ += raw_prefix;
        LexString('"', TokKind::kString);
        continue;
      }
      if (c == '"') {
        LexString('"', TokKind::kString);
        continue;
      }
      if (c == '\'') {
        LexString('\'', TokKind::kChar);
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdent();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  [[nodiscard]] char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokKind kind, std::string text, int line) {
    out_.push_back(Token{kind, std::move(text), line});
  }

  void SkipLineComment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void SkipBlockComment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  /// A whole preprocessor directive, honoring backslash-newline
  /// continuations and stripping comments; `#pragma` is kept verbatim.
  void LexDirective() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        text += ' ';
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && Peek(1) == '/') {
        SkipLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        SkipBlockComment();
        text += ' ';
        continue;
      }
      text += c;
      ++pos_;
    }
    // Normalize "#  pragma" spelling for downstream substring checks.
    std::size_t i = 1;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    const bool is_pragma = text.compare(i, 6, "pragma") == 0;
    Emit(is_pragma ? TokKind::kPragma : TokKind::kDirective,
         std::move(text), start_line);
  }

  /// Number of characters in the raw-string encoding prefix (`R`, `LR`,
  /// `uR`, `UR`, `u8R`) starting at pos_ and immediately followed by `"`;
  /// 0 when no raw string starts here. Run() consumes whole identifiers in
  /// one step, so pos_ is never inside an identifier like `myR"x"` when
  /// this is consulted.
  [[nodiscard]] std::size_t RawStringPrefixAt() const {
    const char c = src_[pos_];
    if (c == 'R' && Peek(1) == '"') return 1;
    if ((c == 'L' || c == 'u' || c == 'U') && Peek(1) == 'R' &&
        Peek(2) == '"') {
      return 2;
    }
    if (c == 'u' && Peek(1) == '8' && Peek(2) == 'R' && Peek(3) == '"') {
      return 3;
    }
    return 0;
  }

  /// The d-char-seq may not contain space, parens, backslash, quote, or
  /// control characters, and is at most 16 chars (C++ [lex.string]). A
  /// malformed introducer is not a raw string at all — without this check
  /// a stray `R"` swallows the rest of the file as one token.
  [[nodiscard]] bool ValidRawDelimiterAt(std::size_t at) const {
    for (std::size_t n = 0; at + n < src_.size() && n <= 16; ++n) {
      const char c = src_[at + n];
      if (c == '(') return true;
      if (c == ' ' || c == ')' || c == '\\' || c == '"' ||
          static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;  // no '(' within 16 chars (or hit end of input)
  }

  void LexRawString(std::size_t prefix_len) {
    const int start_line = line_;
    std::string text = src_.substr(pos_, prefix_len) + "\"";
    pos_ += prefix_len + 1;
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim += src_[pos_];
      text += src_[pos_];
      ++pos_;
    }
    text += '(';
    if (pos_ < src_.size()) ++pos_;  // consume '('
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        text += closer;
        pos_ += closer.size();
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_];
      ++pos_;
    }
    Emit(TokKind::kString, std::move(text), start_line);
  }

  void LexString(char quote, TokKind kind) {
    const int start_line = line_;
    std::string text(1, quote);
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text += c;
        text += src_[pos_ + 1];
        if (src_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '\n') {  // unterminated literal: stop at end of line
        break;
      }
      text += c;
      ++pos_;
      if (c == quote) break;
    }
    Emit(kind, std::move(text), start_line);
  }

  void LexIdent() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
      text += src_[pos_];
      ++pos_;
    }
    Emit(TokKind::kIdent, std::move(text), start_line);
  }

  void LexNumber() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\'' &&
          (pos_ + 1 >= src_.size() ||
           std::isalnum(static_cast<unsigned char>(src_[pos_ + 1])) == 0)) {
        break;  // a separator needs a digit after it; this ' opens a char
      }
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        // Exponent sign: 1e+9 / 0x1p-3.
        text += c;
        ++pos_;
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            text.compare(0, 2, "0x") != 0 && pos_ < src_.size() &&
            (src_[pos_] == '+' || src_[pos_] == '-')) {
          text += src_[pos_];
          ++pos_;
        }
        continue;
      }
      break;
    }
    Emit(TokKind::kNumber, std::move(text), start_line);
  }

  void LexPunct() {
    const int start_line = line_;
    for (const char* op : kMultiPunct) {
      const std::size_t n = std::char_traits<char>::length(op);
      if (src_.compare(pos_, n, op) == 0) {
        pos_ += n;
        Emit(TokKind::kPunct, op, start_line);
        return;
      }
    }
    Emit(TokKind::kPunct, std::string(1, src_[pos_]), start_line);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> out_;
};

}  // namespace

std::vector<Token> Tokenize(const std::string& source) {
  return Lexer(source).Run();
}

std::optional<long long> TokenIntValue(const Token& token) {
  if (token.kind != TokKind::kNumber) return std::nullopt;
  std::string digits;
  for (char c : token.text) {
    if (c == '\'') continue;
    digits += c;
  }
  if (digits.find('.') != std::string::npos) return std::nullopt;
  // Reject decimal exponents (1e9); allow hex (0x...e is a digit there).
  const bool hex = digits.size() > 1 && (digits[1] == 'x' || digits[1] == 'X');
  if (!hex && (digits.find('e') != std::string::npos ||
               digits.find('E') != std::string::npos)) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long long value = std::strtoll(digits.c_str(), &end, 0);
  if (end == digits.c_str()) return std::nullopt;
  // Trailing integer suffixes (u, l, ll, z) are fine; anything else is not
  // a plain integer literal.
  for (const char* p = end; *p != '\0'; ++p) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
    if (c != 'u' && c != 'l' && c != 'z') return std::nullopt;
  }
  return value;
}

std::string JoinTokens(const std::vector<Token>& tokens, std::size_t begin,
                       std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
    const std::string& text = tokens[i].text;
    if (text.empty()) continue;
    if (!out.empty() && (IsIdentChar(out.back()) || out.back() == '>') &&
        (IsIdentChar(text.front()))) {
      // `const Bytes`, `long long`, and `Foo<T> x` need separating spaces;
      // punctuation glues tight.
      out += ' ';
    }
    out += text;
  }
  return out;
}

}  // namespace pstk::analysis
