#include "analysis/cfg.h"

#include <sstream>

namespace pstk::analysis {

namespace {

/// Sentinel edge target used while lowering, before the exit block id is
/// known (the exit block is appended last so goldens read top-to-bottom).
constexpr int kExitSentinel = -2;

class Builder {
 public:
  Builder(const Function& fn, const FunctionFlow& flow) : flow_(flow) {
    const int entry = NewBlock(0);
    const int open = Lower(fn.body, entry, 0);
    exit_ = NewBlock(0);
    if (open != -1) AddEdge(open, exit_);
    for (CfgBlock& b : blocks_) {
      for (CfgEdge& e : b.succs) {
        if (e.to == kExitSentinel) e.to = exit_;
      }
    }
  }

  [[nodiscard]] std::vector<CfgBlock> Take() { return std::move(blocks_); }
  [[nodiscard]] int exit_id() const { return exit_; }

 private:
  int NewBlock(int loop_depth) {
    const int id = static_cast<int>(blocks_.size());
    blocks_.push_back(CfgBlock{});
    blocks_.back().id = id;
    blocks_.back().loop_depth = loop_depth;
    return id;
  }

  void AddEdge(int from, int to, std::optional<CfgCond> cond = std::nullopt,
               bool back = false) {
    blocks_[from].succs.push_back(CfgEdge{to, std::move(cond), back});
  }

  [[nodiscard]] CfgCond CondOf(const Stmt& s, bool negated) const {
    CfgCond c;
    c.text = s.text;
    c.line = s.line;
    c.negated = negated;
    // A guard on a Result/status (`.ok()`) is error handling, not SPMD
    // divergence, even though the status value is rank-local.
    c.rank_divergent = s.text.find(".ok()") == std::string::npos &&
                       flow_.IsRankDerived(s.text);
    return c;
  }

  /// Lower `stmts` starting in block `cur`; returns the block left open at
  /// the end, or -1 when every path through `stmts` already terminated
  /// (statements after an unconditional return are unreachable and are
  /// dropped).
  int Lower(const std::vector<Stmt>& stmts, int cur, int loop_depth) {
    for (const Stmt& s : stmts) {
      if (cur == -1) break;
      switch (s.kind) {
        case StmtKind::kBranch: {
          blocks_[cur].stmts.push_back(&s);
          const int then_entry = NewBlock(loop_depth);
          AddEdge(cur, then_entry, CondOf(s, /*negated=*/false));
          const int then_end = Lower(s.children, then_entry, loop_depth);
          if (s.else_children.empty()) {
            // No else (this also covers switch, lowered by the parser as a
            // branch with an empty else: some arm ran, or none did).
            const int join = NewBlock(loop_depth);
            AddEdge(cur, join, CondOf(s, /*negated=*/true));
            if (then_end != -1) AddEdge(then_end, join);
            cur = join;
          } else {
            const int else_entry = NewBlock(loop_depth);
            AddEdge(cur, else_entry, CondOf(s, /*negated=*/true));
            const int else_end = Lower(s.else_children, else_entry,
                                       loop_depth);
            if (then_end == -1 && else_end == -1) {
              cur = -1;
            } else {
              const int join = NewBlock(loop_depth);
              if (then_end != -1) AddEdge(then_end, join);
              if (else_end != -1) AddEdge(else_end, join);
              cur = join;
            }
          }
          break;
        }
        case StmtKind::kLoop: {
          const int head = NewBlock(loop_depth);
          AddEdge(cur, head);
          blocks_[head].stmts.push_back(&s);
          const int body = NewBlock(loop_depth + 1);
          const int after = NewBlock(loop_depth);
          AddEdge(head, body, CondOf(s, /*negated=*/false));
          AddEdge(head, after, CondOf(s, /*negated=*/true));
          const int body_end = Lower(s.children, body, loop_depth + 1);
          if (body_end != -1) {
            AddEdge(body_end, head, std::nullopt, /*back=*/true);
          }
          cur = after;
          break;
        }
        case StmtKind::kReturn: {
          blocks_[cur].stmts.push_back(&s);
          AddEdge(cur, kExitSentinel);
          cur = -1;
          break;
        }
        case StmtKind::kBlock: {
          cur = Lower(s.children, cur, loop_depth);
          break;
        }
        case StmtKind::kPlain:
        case StmtKind::kPragma: {
          blocks_[cur].stmts.push_back(&s);
          break;
        }
      }
    }
    return cur;
  }

  const FunctionFlow& flow_;
  std::vector<CfgBlock> blocks_;
  int exit_ = 0;
};

}  // namespace

Cfg Cfg::Build(const Function& fn, const FunctionFlow& flow) {
  Builder b(fn, flow);
  Cfg cfg;
  cfg.exit_ = b.exit_id();
  cfg.blocks_ = b.Take();
  cfg.entry_ = 0;
  return cfg;
}

std::vector<Cfg::Path> Cfg::EnumeratePaths(std::size_t max_paths,
                                           bool* overflow) const {
  if (overflow != nullptr) *overflow = false;
  std::vector<Path> paths;
  if (blocks_.empty()) return paths;

  std::vector<int> visits(blocks_.size(), 0);
  Path cur;
  bool truncated = false;

  // Depth-first walk; each block may appear at most twice on a path, which
  // abstracts every loop to its skip path and its body-once path.
  auto walk = [&](auto&& self, int id) -> void {
    if (truncated) return;
    ++visits[id];
    const std::size_t step_mark = cur.steps.size();
    const std::size_t cond_mark = cur.conds.size();
    const CfgBlock& b = blocks_[id];
    for (const Stmt* s : b.stmts) {
      cur.steps.push_back(Step{s, b.loop_depth});
    }
    if (id == exit_) {
      if (paths.size() >= max_paths) {
        truncated = true;
      } else {
        paths.push_back(cur);
      }
    } else {
      for (const CfgEdge& e : b.succs) {
        if (visits[e.to] >= 2) continue;
        if (e.cond.has_value()) cur.conds.push_back(*e.cond);
        self(self, e.to);
        if (e.cond.has_value()) cur.conds.pop_back();
        if (truncated) break;
      }
      // A block with no viable successor is a dead end (e.g. a loop body
      // whose only exit is an exhausted back edge); the partial path is
      // simply abandoned.
    }
    cur.steps.resize(step_mark);
    cur.conds.resize(cond_mark);
    --visits[id];
  };
  walk(walk, entry_);

  if (truncated && overflow != nullptr) *overflow = true;
  return paths;
}

std::string Cfg::Dump() const {
  std::ostringstream os;
  os << "entry=b" << entry_ << " exit=b" << exit_ << "\n";
  for (const CfgBlock& b : blocks_) {
    os << "b" << b.id << " d" << b.loop_depth << " lines=";
    for (std::size_t i = 0; i < b.stmts.size(); ++i) {
      if (i > 0) os << ",";
      os << b.stmts[i]->line;
    }
    os << "\n";
    for (const CfgEdge& e : b.succs) {
      os << "  -> b" << e.to;
      if (e.cond.has_value()) {
        os << (e.cond->negated ? " ifnot \"" : " if \"") << e.cond->text
           << "\" (line " << e.cond->line
           << (e.cond->rank_divergent ? ", divergent)" : ")");
      }
      if (e.back_edge) os << " back";
      os << "\n";
    }
  }
  return os.str();
}

std::string DumpCfg(const Function& fn, const FunctionFlow& flow) {
  return Cfg::Build(fn, flow).Dump();
}

}  // namespace pstk::analysis
