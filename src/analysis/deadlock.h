// Static deadlock detection for SPMD point-to-point code: a constant
// evaluator for rank-dependent integer expressions, and a rendezvous-mode
// scheduler over per-rank communication sequences.
//
// lint.cc concretizes a function for each rank r of a small world
// (N = 2..4): branch conditions and peer/tag expressions are evaluated
// with rank() = r and size() = N via EvalIntExpr, yielding one CommOp
// sequence per rank. SimulateRendezvous then runs the sequences to
// quiescence under *rendezvous* semantics — a blocking Send does not
// complete until the receiver arrives — and, when no progress is possible
// with unfinished ranks, extracts the wait-for cycle.
//
// This is the static mirror of verify::DeadlockExplainer: the runtime
// explainer names the cycle after it hangs; this names it before the
// program runs. MiniMPI delivers small messages eagerly (below
// MpiOptions::eager_threshold), so a flagged exchange may happen to work
// for small payloads — the finding wording accounts for that.
//
// Everything here is self-contained (no Program/callgraph dependency);
// the extraction policy — what to concretize and when to bail — lives
// with the lint rules.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace pstk::analysis {

/// Evaluates a compact integer expression (as produced by JoinTokens) with
/// C-like precedence: ternary, || &&, | ^ &, == !=, < <= > >=, << >>,
/// + -, * / %, unary ! - + ~, parentheses, integer literals, true/false,
/// and `static_cast<T>(e)` (the cast is skipped, e is evaluated).
/// Identifiers are resolved through `resolve`; an unresolved identifier —
/// or any construct outside the grammar — yields nullopt. Division or
/// modulo by zero yields nullopt.
std::optional<long long> EvalIntExpr(
    const std::string& expr,
    const std::function<std::optional<long long>(const std::string&)>&
        resolve);

/// One concretized communication operation of a single rank.
struct CommOp {
  enum class Kind : std::uint8_t {
    kSend,        // blocking send (rendezvous: waits for the receiver)
    kRecv,        // blocking receive
    kIsend,       // nonblocking send: posts and advances
    kIrecv,       // nonblocking receive: posts and advances
    kWait,        // blocks until every posted nonblocking op has matched
    kSendrecv,    // simultaneous send (peer) + receive (peer2)
    kCollective,  // blocks until all ranks reach the same collective
  };
  Kind kind = Kind::kSend;
  int peer = -1;      // dest (sends) / source (recvs); dest for kSendrecv
  int peer2 = -1;     // kSendrecv only: source of the receive half
  int tag = 0;
  int line = 0;       // source line of the call (for related locations)
  std::string label;  // kCollective only: method name, e.g. "Allreduce"
};

struct DeadlockReport {
  bool deadlock = false;
  // At least one stuck rank is blocked at a collective: the divergence /
  // mismatch rules own that shape, so callers report nothing from here.
  bool involves_collective = false;
  // Every blocked op in `ranks` is a blocking Send — the classic
  // head-to-head or ring-send rendezvous deadlock (fixable by Sendrecv).
  bool all_sends = false;
  // The wait-for chain closed on itself (vs. ending at a rank that
  // already finished its sequence, e.g. a recv against an exited peer).
  bool proper_cycle = false;
  std::vector<int> ranks;   // stuck ranks in wait-for order
  std::vector<CommOp> ops;  // op each rank in `ranks` is blocked at
};

/// Runs `seq_of_rank` (one op sequence per rank, index = rank) to
/// quiescence under rendezvous semantics with deterministic matching
/// (lowest rank first, post order within a rank; same-(src,dst,tag)
/// messages match in order). Returns the deadlock analysis; when
/// `deadlock` is false the program drained completely.
DeadlockReport SimulateRendezvous(
    const std::vector<std::vector<CommOp>>& seq_of_rank);

}  // namespace pstk::analysis
