#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"

namespace pstk::analysis {

namespace {

/// Source lines with comments stripped (block-comment state carried across
/// lines), ready for substring heuristics.
std::vector<std::string> StripComments(const std::string& source) {
  std::vector<std::string> out;
  bool in_block_comment = false;
  std::istringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    std::string code;
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        const auto close = line.find("*/", i);
        if (close == std::string::npos) {
          i = line.size();
        } else {
          in_block_comment = false;
          i = close + 2;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        i += 2;
        continue;
      }
      code += line[i];
      ++i;
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text` contains `word` bounded by non-identifier characters.
bool ContainsWord(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end == text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool IsLoopHeader(const std::string& code) {
  return code.find("for (") != std::string::npos ||
         code.find("for(") != std::string::npos ||
         code.find("while (") != std::string::npos ||
         code.find("while(") != std::string::npos;
}

int BraceDelta(const std::string& code) {
  int delta = 0;
  for (char c : code) {
    if (c == '{') ++delta;
    if (c == '}') --delta;
  }
  return delta;
}

/// A blocking `X.Send(...)` (not SendAsync/Isend) aimed at a neighbor
/// computed from the caller's own rank, with a matching Recv nearby: the
/// classic symmetric exchange that deadlocks under rendezvous.
void CheckBlockingSymmetricSend(const std::string& file,
                                const std::vector<std::string>& lines,
                                std::vector<LintFinding>& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i];
    const auto send = code.find(".Send(");
    if (send == std::string::npos) continue;
    if (code.find("SendAsync") != std::string::npos ||
        code.find("Isend") != std::string::npos) {
      continue;
    }
    // Destination derived from the caller's rank/pe => symmetric pattern.
    const std::string args = code.substr(send);
    const bool rank_relative =
        (ContainsWord(args, "rank") || ContainsWord(args, "pe") ||
         ContainsWord(args, "partner") || ContainsWord(args, "neighbor")) &&
        (args.find('+') != std::string::npos ||
         args.find('-') != std::string::npos ||
         args.find('^') != std::string::npos ||
         args.find('%') != std::string::npos);
    if (!rank_relative) continue;
    bool recv_nearby = false;
    for (std::size_t j = i; j < std::min(lines.size(), i + 5); ++j) {
      if (lines[j].find("Recv(") != std::string::npos) {
        recv_nearby = true;
        break;
      }
    }
    if (!recv_nearby) continue;
    out.push_back(LintFinding{
        "mpi-blocking-symmetric-send", file, static_cast<int>(i + 1),
        "blocking Send to a rank-relative peer with a matching Recv "
        "nearby; use Isend/SendAsync or reorder, or the exchange "
        "deadlocks once messages cross the rendezvous threshold"});
  }
}

/// An RDD variable defined outside a loop, reused inside one, and never
/// persisted: every iteration recomputes the whole lineage.
void CheckMissingPersist(const std::string& file,
                         const std::vector<std::string>& lines,
                         std::vector<LintFinding>& out) {
  static const char* const kRddMakers[] = {
      "sc.Parallelize", "sc.TextFile",   ".Map<",       ".Map(",
      ".FlatMap",       ".Filter(",      ".KeyBy",      ".ReduceByKey",
      ".GroupByKey",    ".PartitionBy",  ".Join(",      ".MapValues",
      ".Distinct(",     ".Union(",
  };

  struct Candidate {
    std::size_t decl_line = 0;
    bool declared_in_loop = false;
    std::size_t first_loop_use = 0;  // 0 = none
  };
  std::map<std::string, Candidate> vars;

  // Pass 1: declarations + loop-use tracking in one sweep.
  int depth = 0;
  std::vector<int> loop_stack;  // brace depth at each open loop header
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i];
    const bool in_loop = !loop_stack.empty();

    // `auto name = <rdd-producing expression>` (also Rdd<T> name = ...).
    const bool makes_rdd = std::any_of(
        std::begin(kRddMakers), std::end(kRddMakers),
        [&](const char* m) { return code.find(m) != std::string::npos; });
    const auto eq = code.find('=');
    if (makes_rdd && eq != std::string::npos &&
        (code.find("auto ") != std::string::npos ||
         code.find("Rdd<") < eq)) {
      // Identifier immediately left of '='.
      std::size_t end = eq;
      while (end > 0 && std::isspace(static_cast<unsigned char>(
                            code[end - 1])) != 0) {
        --end;
      }
      std::size_t begin = end;
      while (begin > 0 && IsIdentChar(code[begin - 1])) --begin;
      if (begin < end) {
        const std::string name = code.substr(begin, end - begin);
        if (vars.count(name) == 0) {
          vars[name] = Candidate{i + 1, in_loop, 0};
        }
      }
    }

    for (auto& [name, c] : vars) {
      if (c.first_loop_use != 0 || i + 1 == c.decl_line) continue;
      if (in_loop && !c.declared_in_loop &&
          code.find(name + ".") != std::string::npos) {
        c.first_loop_use = i + 1;
      }
    }

    if (IsLoopHeader(code)) loop_stack.push_back(depth);
    depth += BraceDelta(code);
    while (!loop_stack.empty() && depth <= loop_stack.back()) {
      loop_stack.pop_back();
    }
  }

  // Pass 2: persisted anywhere?
  for (const auto& [name, c] : vars) {
    if (c.first_loop_use == 0) continue;
    bool persisted = false;
    for (const std::string& code : lines) {
      if (code.find(name + ".Persist") != std::string::npos ||
          code.find(name + ".Cache") != std::string::npos) {
        persisted = true;
        break;
      }
    }
    if (persisted) continue;
    out.push_back(LintFinding{
        "spark-missing-persist", file, static_cast<int>(c.first_loop_use),
        "RDD '" + name + "' (defined at line " +
            std::to_string(c.decl_line) +
            ") is reused inside a loop without Persist()/Cache(); every "
            "iteration recomputes its whole lineage"});
  }
}

/// `#pragma omp parallel for` without a reduction clause over a body that
/// accumulates (`+=`) into a variable — a shared-variable data race.
void CheckOmpSharedReduction(const std::string& file,
                             const std::vector<std::string>& lines,
                             std::vector<LintFinding>& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i];
    if (code.find("#pragma omp parallel") == std::string::npos) continue;
    if (code.find("for") == std::string::npos) continue;
    if (code.find("reduction(") != std::string::npos) continue;
    // Scan the loop body (bounded window) for unguarded accumulation.
    bool guarded = false;
    for (std::size_t j = i + 1; j < std::min(lines.size(), i + 16); ++j) {
      const std::string& body = lines[j];
      if (body.find("#pragma omp atomic") != std::string::npos ||
          body.find("#pragma omp critical") != std::string::npos) {
        guarded = true;
        continue;
      }
      if (body.find("+=") == std::string::npos) continue;
      if (guarded) {
        guarded = false;  // the guard only covers the next statement
        continue;
      }
      out.push_back(LintFinding{
          "omp-shared-reduction", file, static_cast<int>(i + 1),
          "parallel-for accumulates into a shared variable at line " +
              std::to_string(j + 1) +
              " without a reduction clause (or omp atomic): data race"});
      break;
    }
  }
}

}  // namespace

std::vector<LintFinding> LintSource(const std::string& file,
                                    const std::string& source) {
  const std::vector<std::string> lines = StripComments(source);
  std::vector<LintFinding> out;
  CheckBlockingSymmetricSend(file, lines, out);
  CheckMissingPersist(file, lines, out);
  CheckOmpSharedReduction(file, lines, out);
  std::sort(out.begin(), out.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return out;
}

Result<std::vector<LintFinding>> LintFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(path, buffer.str());
}

Result<std::vector<LintFinding>> LintTree(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".cpp" || ext == ".h") {
          files.push_back(entry.path().string());
        }
      }
      if (ec) return Internal("cannot walk " + root + ": " + ec.message());
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      return NotFound("lint root not found: " + root);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<LintFinding> all;
  for (const std::string& file : files) {
    auto findings = LintFile(file);
    if (!findings.ok()) return findings.status();
    for (auto& f : findings.value()) all.push_back(std::move(f));
  }
  return all;
}

std::string RenderLintReport(const std::vector<LintFinding>& findings) {
  std::ostringstream oss;
  if (findings.empty()) {
    oss << "pstk-lint: clean (0 findings)\n";
    return oss.str();
  }
  oss << "pstk-lint: " << findings.size() << " finding(s)\n";
  std::map<std::string, int> by_rule;
  for (const LintFinding& f : findings) {
    oss << "  " << f.file << ":" << f.line << ": [" << f.rule << "] "
        << f.message << "\n";
    ++by_rule[f.rule];
  }
  oss << "by rule:\n";
  for (const auto& [rule, count] : by_rule) {
    oss << "  " << rule << ": " << count << "\n";
  }
  return oss.str();
}

}  // namespace pstk::analysis
