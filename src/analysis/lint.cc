#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/deadlock.h"
#include "analysis/parse.h"
#include "common/strings.h"

namespace pstk::analysis {

namespace {

// ===========================================================================
// Rule registry
// ===========================================================================

const RuleInfo kRules[] = {
    {"ckpt-outside-collective", Severity::kError,
     "CheckpointCoordinator::Checkpoint() under a rank-derived condition: "
     "the first arrival decides whether the epoch is due, so ranks that "
     "skip the call never write their fragment and the epoch never "
     "commits — the snapshot can never be restored",
     "call Checkpoint() on every rank at the same collective boundary "
     "(hoist it out of the rank-derived branch)"},
    {"dataplane-copy-in-hot-path", Severity::kWarning,
     "by-value payload parameter (std::string / serde::Buffer / byte "
     "vector) on a function reachable from a task or shuffle root: every "
     "call deep-copies the payload on the data plane's hot path",
     "pass buf::Bytes by value instead (refcounted, zero-copy), or take "
     "the payload by const reference / string_view"},
    {"mpi-blocking-symmetric-send", Severity::kError,
     "blocking Send to a rank-relative peer with a matching Recv after it; "
     "the symmetric exchange deadlocks once messages cross the rendezvous "
     "threshold",
     "use Isend/SendAsync for one side of the exchange, or order the pair "
     "so one rank sends first"},
    {"mpi-collective-in-divergent-branch", Severity::kError,
     "collective call (or early return) under a rank-derived condition: "
     "ranks disagree on the collective call sequence and the job hangs",
     "hoist the collective out of the branch, or make the condition "
     "uniform across ranks"},
    {"mpi-collective-in-loop-divergent-bound", Severity::kError,
     "collective inside a loop whose bound is rank-derived: ranks "
     "disagree on the trip count and execute different numbers of "
     "collectives — the job hangs at the first extra iteration",
     "make the loop bound uniform across ranks (broadcast it first), or "
     "hoist the collective out of the loop"},
    {"mpi-collective-mismatch", Severity::kError,
     "the two arms of a rank-divergent branch execute provably different "
     "collective sequences (MUST-style call-order matching): ranks meet "
     "in different collectives and deadlock",
     "make both arms execute the same collective sequence, or hoist the "
     "collectives out of the branch"},
    {"mpi-int-count-overflow", Severity::kError,
     "64-bit size expression narrowed into an int count parameter with no "
     "INT_MAX guard: counts above 2^31-1 wrap (the paper's Fig. 4 "
     "structural failure)",
     "guard the count against numeric_limits<int32_t>::max() before "
     "narrowing, or chunk the transfer"},
    {"mpi-rendezvous-deadlock", Severity::kError,
     "running the function's per-rank send/recv order under rendezvous "
     "semantics deadlocks with every stuck rank blocked in Send "
     "(head-to-head exchange or circular ring of sends): the exchange "
     "hangs once messages cross the rendezvous threshold",
     "fuse each Send/Recv pair into Sendrecv(), or break the cycle by "
     "reversing the order on one rank (e.g. even ranks send first)"},
    {"mpi-tag-mismatch", Severity::kError,
     "every send tag and every receive tag in this function is a constant "
     "and the two sets are disjoint: no message can ever match",
     "make the send and receive tags agree (or derive both from one "
     "constant)"},
    {"mpi-wait-cycle", Severity::kError,
     "running the function's per-rank send/recv order under rendezvous "
     "semantics deadlocks on a wait-for cycle that includes a blocking "
     "Recv: a rank waits for a message its peer only sends after its own "
     "blocked receive (or never, having already returned)",
     "reorder so every Recv has a matching Send already in flight: pair "
     "the exchange with Sendrecv(), or stagger the order by rank parity"},
    {"omp-missing-private", Severity::kWarning,
     "scalar declared before `#pragma omp parallel for` is plainly "
     "assigned inside the loop body without private()/firstprivate(): "
     "threads race on the shared temporary",
     "add private(<var>) to the pragma, or declare the variable inside "
     "the loop body"},
    {"omp-shared-reduction", Severity::kError,
     "parallel-for body accumulates into a variable declared outside the "
     "loop without a reduction clause (or omp atomic/critical): data race",
     "add reduction(+ : <var>) to the pragma, or guard the update with "
     "#pragma omp atomic"},
    {"sched-blocking-in-submit-path", Severity::kError,
     "blocking call reachable from a scheduler submit-path function "
     "(Submit / OnJob*): these run inside engine event handlers, so a "
     "block there freezes the whole simulated cluster's event loop, not "
     "just the submitting job",
     "defer the blocking work onto a spawned process (engine.Spawn) and "
     "keep the submit path event-driven"},
    {"shmem-put-without-quiet", Severity::kError,
     "symmetric put followed by a get of the same symmetric object with "
     "no Quiet()/Fence()/BarrierAll() between: the put may not be "
     "remotely complete",
     "call Quiet() (or a barrier) between the put and the read-back"},
    {"sim-blocking-in-drain", Severity::kError,
     "blocking call reachable from a Drain* function: the sharded "
     "engine's cross-shard message drain runs between rounds on the "
     "coordinator and must never block, or every shard stalls",
     "keep the drain path non-blocking (defer the work onto the target "
     "shard's event heap instead)"},
    {"sim-spsc-multi-producer", Severity::kError,
     "more than one function pushes into the same SpscRing channel: the "
     "ring is single-producer by contract, a second producer races the "
     "tail index",
     "route every send through the one owning function, or give each "
     "producer its own ring"},
    {"spark-missing-persist", Severity::kWarning,
     "RDD reused (inside a loop, or by multiple actions) without "
     "Persist()/Cache(): every reuse recomputes the whole lineage (the "
     "paper's Fig. 6 persist() omission)",
     "call .Persist(StorageLevel::kMemoryAndDisk) (or .Cache()) on the "
     "RDD before reusing it"},
};

const RuleInfo* FindRule(const std::string& slug) {
  for (const RuleInfo& r : kRules) {
    if (slug == r.slug) return &r;
  }
  return nullptr;
}

LintFinding MakeFinding(const char* slug, const std::string& file, int line,
                        std::string message) {
  const RuleInfo* rule = FindRule(slug);
  LintFinding f;
  f.rule = slug;
  f.file = file;
  f.line = line;
  f.message = std::move(message);
  if (rule != nullptr) {
    f.severity = rule->severity;
    f.fixit = rule->fix;
  }
  return f;
}

bool MethodIn(const CallExpr& call,
              std::initializer_list<const char*> names) {
  return std::any_of(names.begin(), names.end(),
                     [&](const char* n) { return call.method == n; });
}

/// Leading identifier of an argument expression ("local_bins.at(slot)" ->
/// "local_bins"); "" when the argument does not start with one.
std::string BaseIdent(const std::string& arg) {
  std::size_t i = 0;
  while (i < arg.size() && (arg[i] == '(' || arg[i] == '&' || arg[i] == '*')) {
    ++i;
  }
  std::size_t j = i;
  while (j < arg.size() &&
         (std::isalnum(static_cast<unsigned char>(arg[j])) != 0 ||
          arg[j] == '_')) {
    ++j;
  }
  return arg.substr(i, j - i);
}

// ===========================================================================
// MPI rules
// ===========================================================================

bool HasArithmetic(const std::string& text) {
  return text.find('+') != std::string::npos ||
         text.find('-') != std::string::npos ||
         text.find('^') != std::string::npos ||
         text.find('%') != std::string::npos;
}

void CheckBlockingSymmetricSend(const std::string& file,
                                const FunctionFlow& flow,
                                std::vector<LintFinding>& out) {
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr || e.call->method != "Send") continue;
    const bool rank_relative = std::any_of(
        e.call->args.begin(), e.call->args.end(), [&](const std::string& a) {
          if (!flow.IsRankDerived(a)) return false;
          if (HasArithmetic(a)) return true;
          // `partner = rank ^ 1; Send(..., partner, ...)`: the arithmetic
          // lives in the variable's initializer, not the argument text.
          const VarInfo* var = flow.Lookup(a);
          return var != nullptr && HasArithmetic(var->init);
        });
    if (!rank_relative) continue;
    const bool recv_after = std::any_of(
        flow.events().begin(), flow.events().end(), [&](const FlowEvent& r) {
          return r.call != nullptr && r.call->method == "Recv" &&
                 r.order >= e.order;
        });
    if (!recv_after) continue;
    out.push_back(MakeFinding(
        "mpi-blocking-symmetric-send", file, e.call->line,
        "blocking Send to a rank-relative peer with a matching Recv "
        "nearby; use Isend/SendAsync or reorder, or the exchange "
        "deadlocks once messages cross the rendezvous threshold"));
  }
}

bool IsCollective(const CallExpr& call) {
  return IsCollectiveMethod(call.method);
}

/// A call that is a collective itself or resolves to a summary that
/// transitively reaches one.
bool CallReachesCollective(const Program& prog, const CallExpr& call) {
  if (IsCollective(call)) return true;
  for (int idx : prog.Resolve(call)) {
    if (prog.fns()[static_cast<std::size_t>(idx)].summary.calls_collective) {
      return true;
    }
  }
  return false;
}

std::string JoinSeq(const std::vector<std::string>& seq) {
  std::string out;
  for (const std::string& s : seq) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out.empty() ? "<none>" : out;
}

/// Statement-tree walker behind the collective-divergence rules. At each
/// rank-divergent branch it first tries MUST-style sequence matching via
/// the summaries: provably equal arm sequences are *safe* (no finding —
/// `if (rank==0) Barrier(); else Barrier();` is symmetric), provably
/// different nonempty sequences are one mpi-collective-mismatch, and
/// anything else falls back to per-site reporting (the PR-3 behavior,
/// extended through wrappers with related locations). Rank-divergent
/// loop bounds over collective-reaching bodies get their own rule.
class DivergenceWalker {
 public:
  DivergenceWalker(const Program& prog, const Program::FnEntry& entry,
                   std::vector<LintFinding>& out)
      : prog_(prog), entry_(entry), out_(out) {}

  void Run() { Walk(entry_.fn->body); }

 private:
  [[nodiscard]] bool Divergent(const Stmt& s) const {
    // `.ok()` status guards are exempt — see FunctionFlow's ctor note.
    return s.text.find(".ok()") == std::string::npos &&
           entry_.flow.IsRankDerived(s.text);
  }

  void Walk(const std::vector<Stmt>& body) {
    for (const Stmt& s : body) {
      if (s.kind == StmtKind::kBranch && Divergent(s)) {
        const auto then_seq = prog_.CollectiveSeqOf(s.children);
        const auto else_seq = prog_.CollectiveSeqOf(s.else_children);
        if (then_seq.has_value() && else_seq.has_value()) {
          if (*then_seq == *else_seq) continue;  // provably symmetric
          if (!then_seq->empty() && !else_seq->empty()) {
            out_.push_back(MakeFinding(
                "mpi-collective-mismatch", entry_.file, s.line,
                "rank-divergent branch (`" + s.text +
                    "`) executes different collective sequences: [" +
                    JoinSeq(*then_seq) + "] on the then-arm vs [" +
                    JoinSeq(*else_seq) +
                    "] on the else-arm: ranks meet in different "
                    "collectives and deadlock"));
            continue;
          }
        }
        ReportSites(s.children, s);
        ReportSites(s.else_children, s);
        continue;
      }
      if (s.kind == StmtKind::kLoop && Divergent(s)) {
        const auto site = prog_.FirstCollectiveSite(s.children);
        if (site.has_value()) {
          out_.push_back(MakeFinding(
              "mpi-collective-in-loop-divergent-bound", entry_.file, s.line,
              "loop with the rank-derived bound `" + s.text +
                  "` reaches collective " + site->name + "() (line " +
                  std::to_string(site->line) +
                  "): ranks disagree on the trip count and execute "
                  "different numbers of collectives"));
        }
        Walk(s.children);
        continue;
      }
      Walk(s.children);
      Walk(s.else_children);
    }
  }

  /// Per-site reporting inside one divergent arm: direct collectives
  /// (the PR-3 message, byte-compatible), wrapper calls that reach a
  /// collective, and wrapper calls that reach Checkpoint().
  void ReportSites(const std::vector<Stmt>& arm, const Stmt& branch) {
    // Hoisting is machine-safe only in the simplest shape: an else-less
    // branch whose arm is exactly the one collective call — then the fix
    // is "replace the whole if with its body".
    const bool hoistable =
        branch.else_children.empty() && arm.size() == 1 &&
        arm[0].kind == StmtKind::kPlain && arm[0].calls.size() == 1 &&
        branch.end_line >= branch.line;
    ForEachStmt(arm, [&](const Stmt& s) {
      for (const CallExpr& c : s.calls) {
        if (IsCollective(c)) {
          LintFinding f = MakeFinding(
              "mpi-collective-in-divergent-branch", entry_.file, c.line,
              "collective " + c.method + "() under the rank-derived "
              "condition at line " + std::to_string(branch.line) +
              " (`" + branch.text + "`): ranks that skip the branch never "
              "reach the collective");
          if (hoistable) {
            TextEdit e;
            e.file = entry_.file;
            e.line = branch.line;
            e.delete_lines = branch.end_line - branch.line + 1;
            e.text = {arm[0].text + ";"};
            e.note = "hoist " + c.method +
                     "() out of the rank-divergent branch";
            f.edits.push_back(std::move(e));
          }
          out_.push_back(std::move(f));
          continue;
        }
        const Program::FnEntry* coll_callee = nullptr;
        const Program::FnEntry* ckpt_callee = nullptr;
        for (int idx : prog_.Resolve(c)) {
          const Program::FnEntry& cand =
              prog_.fns()[static_cast<std::size_t>(idx)];
          if (cand.summary.calls_collective && coll_callee == nullptr) {
            coll_callee = &cand;
          }
          if (cand.summary.calls_checkpoint && ckpt_callee == nullptr) {
            ckpt_callee = &cand;
          }
        }
        if (coll_callee != nullptr) {
          LintFinding f = MakeFinding(
              "mpi-collective-in-divergent-branch", entry_.file, c.line,
              "call to " + c.method + "() under the rank-derived "
              "condition at line " + std::to_string(branch.line) + " (`" +
                  branch.text + "`): " + c.method +
                  "() reaches collective " +
                  coll_callee->summary.collective_name +
                  "() — ranks that skip the branch never reach it");
          f.related.push_back(RelatedLocation{
              coll_callee->file, coll_callee->summary.collective_line,
              "collective " + coll_callee->summary.collective_name +
                  "() reached through " + c.method + "()"});
          out_.push_back(std::move(f));
          continue;
        }
        if (ckpt_callee != nullptr) {
          LintFinding f = MakeFinding(
              "ckpt-outside-collective", entry_.file, c.line,
              "call to " + c.method + "() under the rank-derived "
              "condition at line " + std::to_string(branch.line) + " (`" +
                  branch.text + "`): " + c.method +
                  "() reaches Checkpoint() — ranks that skip the call "
                  "never write their fragment, so the epoch can never "
                  "commit");
          f.related.push_back(RelatedLocation{
              ckpt_callee->file, ckpt_callee->summary.checkpoint_line,
              "Checkpoint() reached through " + c.method + "()"});
          out_.push_back(std::move(f));
        }
      }
    });
  }

  const Program& prog_;
  const Program::FnEntry& entry_;
  std::vector<LintFinding>& out_;
};

void CheckCollectiveDivergence(const Program& prog,
                               const Program::FnEntry& entry,
                               std::vector<LintFinding>& out) {
  DivergenceWalker(prog, entry, out).Run();
}

/// Divergent early return while collectives (possibly wrapper-hidden)
/// follow — kept event-based, exactly the PR-3 shape.
void CheckEarlyReturnDivergence(const Program& prog,
                                const Program::FnEntry& entry,
                                std::vector<LintFinding>& out) {
  const FunctionFlow& flow = entry.flow;
  for (const FlowEvent& e : flow.events()) {
    if (e.call != nullptr || e.stmt->kind != StmtKind::kReturn) continue;
    if (!e.InRankDivergentBranch()) continue;
    const BranchCtx* branch = nullptr;
    for (const BranchCtx& b : e.branches) {
      if (b.rank_divergent) branch = &b;
    }
    const bool collective_later = std::any_of(
        flow.events().begin(), flow.events().end(),
        [&](const FlowEvent& later) {
          return later.call != nullptr && later.order > e.order &&
                 CallReachesCollective(prog, *later.call);
        });
    if (collective_later) {
      out.push_back(MakeFinding(
          "mpi-collective-in-divergent-branch", entry.file, e.stmt->line,
          "early return under the rank-derived condition at line " +
              std::to_string(branch->line) + " (`" + branch->cond +
              "`) while collectives follow: returning ranks drop out "
              "of the collective sequence"));
    }
  }
}

// ===========================================================================
// Path-sensitive divergence gate (CFG layer)
// ===========================================================================
//
// The walker above is arm-syntactic: it compares the two arms of each
// divergent branch in isolation. The CFG gate runs first and is
// whole-function: enumerate every entry-to-exit path and compute each
// path's collective sequence; when every path is provable and they all
// agree, the function is uniform no matter which rank takes which path —
// so else-if chains, early returns that keep the sequence intact, and
// return-carrying arms stay silent without any per-arm pattern matching.
// Any doubt (path overflow, a collective under a loop, an unknown callee
// sequence, anything Checkpoint-reaching) fails the gate and the
// syntactic rules run exactly as before.

std::optional<std::vector<std::string>> PathCollectiveSeq(
    const Program& prog, const Cfg::Path& path) {
  std::vector<std::string> seq;
  for (const Cfg::Step& step : path.steps) {
    for (const CallExpr& c : step.stmt->calls) {
      // Checkpoint() epochs are first-arrival-decides, not collectives;
      // the ckpt rule owns them, so any Checkpoint-reaching path is
      // never declared uniform.
      if (c.method == "Checkpoint") return std::nullopt;
      if (IsCollective(c)) {
        // The 0-or-1 loop abstraction cannot count iterations; a
        // collective under a loop is not provable here.
        if (step.loop_depth > 0) return std::nullopt;
        seq.push_back(c.method);
        continue;
      }
      std::optional<std::vector<std::string>> callee_seq;
      bool poisoned = false;
      for (int idx : prog.Resolve(c)) {
        const Program::FnEntry& cand =
            prog.fns()[static_cast<std::size_t>(idx)];
        if (cand.summary.calls_checkpoint) {
          poisoned = true;
          break;
        }
        if (!cand.summary.calls_collective) continue;
        if (!cand.summary.sequence_known) {
          poisoned = true;
          break;
        }
        if (callee_seq.has_value() &&
            *callee_seq != cand.summary.collective_seq) {
          poisoned = true;  // ambiguous resolution with differing sequences
          break;
        }
        callee_seq = cand.summary.collective_seq;
      }
      if (poisoned) return std::nullopt;
      if (callee_seq.has_value()) {
        if (step.loop_depth > 0 && !callee_seq->empty()) return std::nullopt;
        seq.insert(seq.end(), callee_seq->begin(), callee_seq->end());
      }
    }
  }
  return seq;
}

bool AllPathsCollectiveUniform(const Program& prog,
                               const Program::FnEntry& entry) {
  const Cfg cfg = Cfg::Build(*entry.fn, entry.flow);
  bool overflow = false;
  const std::vector<Cfg::Path> paths = cfg.EnumeratePaths(256, &overflow);
  if (overflow || paths.empty()) return false;
  std::optional<std::vector<std::string>> common;
  for (const Cfg::Path& p : paths) {
    auto seq = PathCollectiveSeq(prog, p);
    if (!seq.has_value()) return false;
    if (!common.has_value()) {
      common = std::move(seq);
    } else if (*common != *seq) {
      return false;
    }
  }
  return true;
}

// ===========================================================================
// Static deadlock detection (mpi-rendezvous-deadlock / mpi-wait-cycle)
// ===========================================================================
//
// Concretize the function once per rank of a small world (N = 2, 3, 4):
// substitute <comm>.rank() / <comm>.size(), evaluate branch conditions
// and peer/tag expressions with EvalIntExpr, and collect each rank's
// communication order; SimulateRendezvous then runs the orders to
// quiescence and extracts the wait-for cycle, if any. This is the static
// mirror of verify::DeadlockExplainer. Anything not provable — an
// unevaluable condition guarding communication, comm ops under loops,
// calls into blocking or collective wrappers, an unevaluable peer or
// tag — bails the whole function for that world: unknown stays quiet.

struct ExtractedOp {
  CommOp op;
  const Stmt* stmt = nullptr;
  const CallExpr* call = nullptr;
};

class RankExtractor {
 public:
  RankExtractor(const Program& prog, const Program::FnEntry& entry,
                const std::set<std::string>& comms, int rank, int world)
      : prog_(prog),
        entry_(entry),
        comms_(comms),
        rank_(rank),
        world_(world) {}

  /// False when this rank's order is not statically provable.
  bool Run(std::vector<ExtractedOp>* out) {
    Walk(entry_.fn->body);
    if (!ok_) return false;
    *out = std::move(ops_);
    return true;
  }

 private:
  static bool IsIdentTail(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '.';
  }

  /// Replace `<comm>.rank()` / `<comm>.size()` (exact comm names only —
  /// `vec.size()` must never concretize) with this rank's values.
  [[nodiscard]] std::string Subst(const std::string& text) const {
    std::string out = text;
    for (const std::string& comm : comms_) {
      ReplaceAll(out, comm + ".rank()", std::to_string(rank_));
      ReplaceAll(out, comm + ".size()", std::to_string(world_));
    }
    return out;
  }

  static void ReplaceAll(std::string& text, const std::string& from,
                         const std::string& to) {
    std::size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
      if (pos == 0 || !IsIdentTail(text[pos - 1])) {
        text.replace(pos, from.size(), to);
        pos += to.size();
      } else {
        pos += from.size();
      }
    }
  }

  [[nodiscard]] std::optional<long long> Eval(const std::string& expr,
                                              int depth = 0) const {
    if (depth > 8) return std::nullopt;
    return EvalIntExpr(
        Subst(expr), [&](const std::string& name) -> std::optional<long long> {
          const auto it = bindings_.find(name);
          if (it == bindings_.end()) return std::nullopt;
          return Eval(it->second, depth + 1);
        });
  }

  [[nodiscard]] bool IsCommP2p(const CallExpr& c) const {
    if (comms_.count(c.receiver) == 0) return false;
    return MethodIn(c, {"Send", "Recv", "Isend", "Irecv", "Sendrecv",
                        "Wait", "Waitall"});
  }

  /// Any communication-relevant call in the subtree: a comm p2p op, a
  /// collective, or a call resolving to a blocking/collective wrapper.
  [[nodiscard]] bool SubtreeTouchesComm(const std::vector<Stmt>& stmts) const {
    bool found = false;
    ForEachStmt(stmts, [&](const Stmt& s) {
      for (const CallExpr& c : s.calls) {
        if (IsCommP2p(c) || IsCollective(c)) {
          found = true;
          continue;
        }
        for (int idx : prog_.Resolve(c)) {
          const FunctionSummary& sum =
              prog_.fns()[static_cast<std::size_t>(idx)].summary;
          if (sum.calls_blocking || sum.calls_collective) found = true;
        }
      }
    });
    return found;
  }

  /// Skipped scopes (untaken loop bodies, unevaluable comm-free branches)
  /// invalidate every binding they might have written.
  void EraseAssigned(const std::vector<Stmt>& stmts) {
    ForEachStmt(stmts, [&](const Stmt& s) {
      if (!s.decl_name.empty()) bindings_.erase(s.decl_name);
      if (!s.induction_var.empty()) bindings_.erase(s.induction_var);
      for (const Assign& a : s.assigns) bindings_.erase(a.name);
    });
  }

  void UpdateBindings(const Stmt& s) {
    if (!s.decl_name.empty()) {
      if (!s.init_text.empty()) {
        bindings_[s.decl_name] = s.init_text;
      } else {
        bindings_.erase(s.decl_name);
      }
    }
    for (const Assign& a : s.assigns) {
      bool bound = false;
      if (a.op == "=" && a.subscript.empty()) {
        const VarInfo* var = entry_.flow.Lookup(a.name);
        if (var != nullptr) {
          for (const VarWrite& w : var->writes) {
            if (w.line == a.line && !w.rhs.empty()) {
              bindings_[a.name] = w.rhs;
              bound = true;
              break;
            }
          }
        }
      }
      if (!bound) bindings_.erase(a.name);
    }
  }

  void Push(const Stmt& s, const CallExpr& c, CommOp op) {
    op.line = c.line;
    ops_.push_back(ExtractedOp{op, &s, &c});
  }

  bool HandleCommCall(const Stmt& s, const CallExpr& c) {
    const std::string& m = c.method;
    if (m == "rank" || m == "size" || m == "Iprobe" || m == "ok") {
      return true;  // queries: no ordering effect
    }
    if (IsCollectiveMethod(m)) {
      CommOp op;
      op.kind = CommOp::Kind::kCollective;
      op.label = m;
      Push(s, c, op);
      return true;
    }
    if (m == "Send" || m == "Recv" || m == "Isend" || m == "Irecv") {
      std::size_t peer_arg = 0;
      std::size_t tag_arg = 0;
      if (c.args.size() == 4) {  // (data, bytes, peer, tag)
        peer_arg = 2;
        tag_arg = 3;
      } else if (c.args.size() == 3) {  // span form: (span, peer, tag)
        peer_arg = 1;
        tag_arg = 2;
      } else {
        return false;
      }
      const auto peer = Eval(c.args[peer_arg]);
      const auto tag = Eval(c.args[tag_arg]);
      if (!peer.has_value() || !tag.has_value()) return false;
      if (*peer < 0 || *peer >= world_) return false;  // not this world
      CommOp op;
      op.kind = m == "Send"    ? CommOp::Kind::kSend
                : m == "Recv"  ? CommOp::Kind::kRecv
                : m == "Isend" ? CommOp::Kind::kIsend
                               : CommOp::Kind::kIrecv;
      op.peer = static_cast<int>(*peer);
      op.tag = static_cast<int>(*tag);
      if (op.kind == CommOp::Kind::kIsend ||
          op.kind == CommOp::Kind::kIrecv) {
        ++outstanding_;
      }
      Push(s, c, op);
      return true;
    }
    if (m == "Sendrecv") {
      // (send_data, send_bytes, dest, recv_data, recv_max, source, tag)
      if (c.args.size() != 7) return false;
      const auto dest = Eval(c.args[2]);
      const auto src = Eval(c.args[5]);
      const auto tag = Eval(c.args[6]);
      if (!dest.has_value() || !src.has_value() || !tag.has_value()) {
        return false;
      }
      if (*dest < 0 || *dest >= world_ || *src < 0 || *src >= world_) {
        return false;
      }
      CommOp op;
      op.kind = CommOp::Kind::kSendrecv;
      op.peer = static_cast<int>(*dest);
      op.peer2 = static_cast<int>(*src);
      op.tag = static_cast<int>(*tag);
      Push(s, c, op);
      return true;
    }
    if (m == "Wait" || m == "Waitall") {
      // CommOp::kWait waits for *all* posted ops; MiniMPI's Wait takes one
      // request, so the two only agree while at most one is outstanding.
      if (m == "Wait" && outstanding_ > 1) return false;
      outstanding_ = 0;
      CommOp op;
      op.kind = CommOp::Kind::kWait;
      Push(s, c, op);
      return true;
    }
    return false;  // Split and friends: comm topology changes, bail
  }

  void HandleCalls(const Stmt& s) {
    for (const CallExpr& c : s.calls) {
      if (!ok_) return;
      if (comms_.count(c.receiver) != 0) {
        if (!HandleCommCall(s, c)) ok_ = false;
        continue;
      }
      if (IsCollective(c)) {
        CommOp op;
        op.kind = CommOp::Kind::kCollective;
        op.label = c.method;
        Push(s, c, op);
        continue;
      }
      for (int idx : prog_.Resolve(c)) {
        const FunctionSummary& sum =
            prog_.fns()[static_cast<std::size_t>(idx)].summary;
        if (sum.calls_blocking || sum.calls_collective) {
          ok_ = false;  // unknown communication behind the call
          return;
        }
      }
    }
  }

  void Walk(const std::vector<Stmt>& stmts) {
    for (const Stmt& s : stmts) {
      if (!ok_ || stopped_) return;
      switch (s.kind) {
        case StmtKind::kBranch: {
          // Comm ops in the condition itself can't be ordered reliably.
          for (const CallExpr& c : s.calls) {
            if (IsCommP2p(c) || IsCollective(c)) {
              ok_ = false;
              return;
            }
          }
          const auto taken = Eval(s.text);
          if (taken.has_value()) {
            Walk(*taken != 0 ? s.children : s.else_children);
          } else {
            if (SubtreeTouchesComm(s.children) ||
                SubtreeTouchesComm(s.else_children)) {
              ok_ = false;
              return;
            }
            EraseAssigned(s.children);
            EraseAssigned(s.else_children);
          }
          break;
        }
        case StmtKind::kLoop: {
          // Iteration counts are out of scope: any communicating loop
          // bails, a comm-free one is skipped (its writes invalidated).
          if (SubtreeTouchesComm(s.children)) {
            ok_ = false;
            return;
          }
          for (const CallExpr& c : s.calls) {
            if (IsCommP2p(c) || IsCollective(c)) {
              ok_ = false;
              return;
            }
          }
          EraseAssigned(s.children);
          if (!s.induction_var.empty()) bindings_.erase(s.induction_var);
          break;
        }
        case StmtKind::kReturn:
          stopped_ = true;  // this rank's sequence ends here
          return;
        case StmtKind::kBlock:
          Walk(s.children);
          break;
        case StmtKind::kPlain:
          HandleCalls(s);
          if (ok_) UpdateBindings(s);
          break;
        case StmtKind::kPragma:
          break;
      }
    }
  }

  const Program& prog_;
  const Program::FnEntry& entry_;
  const std::set<std::string>& comms_;
  const int rank_;
  const int world_;
  std::map<std::string, std::string> bindings_;  // name -> last known rhs
  std::vector<ExtractedOp> ops_;
  int outstanding_ = 0;
  bool ok_ = true;
  bool stopped_ = false;
};

const char* CommOpName(CommOp::Kind kind) {
  switch (kind) {
    case CommOp::Kind::kSend: return "Send";
    case CommOp::Kind::kRecv: return "Recv";
    case CommOp::Kind::kIsend: return "Isend";
    case CommOp::Kind::kIrecv: return "Irecv";
    case CommOp::Kind::kWait: return "Wait";
    case CommOp::Kind::kSendrecv: return "Sendrecv";
    case CommOp::Kind::kCollective: return "collective";
  }
  return "?";
}

/// The Sendrecv auto-fix: only for the unbranched all-sends cycle where
/// every rank blocks at the *same* `Send` line and the very next op is the
/// matching `Recv` — then replacing the Send line with a fused Sendrecv
/// and deleting the Recv line is mechanical and provably deadlock-free.
void MaybeSendrecvFix(const Program::FnEntry& entry,
                      const DeadlockReport& rep,
                      const std::vector<std::vector<ExtractedOp>>& metas,
                      LintFinding* f) {
  if (!rep.all_sends || !rep.proper_cycle || rep.ranks.empty()) return;
  const int line = rep.ops.front().line;
  for (const CommOp& op : rep.ops) {
    if (op.line != line) return;  // branch-split exchange: not mechanical
  }
  const std::vector<ExtractedOp>& seq =
      metas[static_cast<std::size_t>(rep.ranks.front())];
  std::size_t at = seq.size();
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].op.kind == CommOp::Kind::kSend && seq[i].op.line == line) {
      at = i;
      break;
    }
  }
  if (at + 1 >= seq.size()) return;
  const ExtractedOp& send = seq[at];
  const ExtractedOp& recv = seq[at + 1];
  if (recv.op.kind != CommOp::Kind::kRecv) return;
  const Stmt* ss = send.stmt;
  const Stmt* rs = recv.stmt;
  const CallExpr* sc = send.call;
  const CallExpr* rc = recv.call;
  if (ss == rs || ss->kind != StmtKind::kPlain ||
      rs->kind != StmtKind::kPlain) {
    return;
  }
  if (ss->calls.size() != 1 || rs->calls.size() != 1) return;
  if (!ss->decl_name.empty() || !rs->decl_name.empty()) return;
  if (!ss->assigns.empty() || !rs->assigns.empty()) return;
  if (ss->end_line != ss->line || rs->end_line != rs->line) return;
  if (sc->args.size() != 4 || rc->args.size() != 4) return;
  if (sc->receiver != rc->receiver) return;
  if (sc->args[3] != rc->args[3]) return;  // tags must agree textually
  TextEdit fuse;
  fuse.file = entry.file;
  fuse.line = ss->line;
  fuse.delete_lines = 1;
  fuse.text = {sc->receiver + ".Sendrecv(" + sc->args[0] + ", " +
               sc->args[1] + ", " + sc->args[2] + ", " + rc->args[0] + ", " +
               rc->args[1] + ", " + rc->args[2] + ", " + rc->args[3] + ");"};
  fuse.note = "fuse the blocking Send/Recv exchange into Sendrecv()";
  TextEdit drop;
  drop.file = entry.file;
  drop.line = rs->line;
  drop.delete_lines = 1;
  drop.note = "Recv absorbed into the Sendrecv() above";
  f->edits.push_back(std::move(fuse));
  f->edits.push_back(std::move(drop));
}

void CheckRendezvousDeadlock(const Program& prog,
                             const Program::FnEntry& entry,
                             std::vector<LintFinding>& out) {
  std::set<std::string> comms;
  for (const Param& p : entry.fn->params) {
    if (!p.name.empty() && p.type.find("Comm") != std::string::npos) {
      comms.insert(p.name);
    }
  }
  if (comms.empty()) return;
  bool has_p2p = false;
  ForEachStmt(entry.fn->body, [&](const Stmt& s) {
    for (const CallExpr& c : s.calls) {
      if (comms.count(c.receiver) != 0 &&
          MethodIn(c, {"Send", "Recv", "Isend", "Irecv"})) {
        has_p2p = true;
      }
    }
  });
  if (!has_p2p) return;

  for (int world = 2; world <= 4; ++world) {
    std::vector<std::vector<ExtractedOp>> metas(
        static_cast<std::size_t>(world));
    std::vector<std::vector<CommOp>> seqs(static_cast<std::size_t>(world));
    bool provable = true;
    for (int r = 0; r < world && provable; ++r) {
      RankExtractor ex(prog, entry, comms, r, world);
      if (!ex.Run(&metas[static_cast<std::size_t>(r)])) {
        provable = false;
        break;
      }
      for (const ExtractedOp& eo : metas[static_cast<std::size_t>(r)]) {
        seqs[static_cast<std::size_t>(r)].push_back(eo.op);
      }
    }
    if (!provable) continue;
    const DeadlockReport rep = SimulateRendezvous(seqs);
    if (!rep.deadlock || rep.involves_collective || rep.ranks.empty() ||
        rep.ops.empty()) {
      continue;
    }
    const bool rendezvous = rep.all_sends && rep.proper_cycle;
    const char* slug =
        rendezvous ? "mpi-rendezvous-deadlock" : "mpi-wait-cycle";
    std::ostringstream msg;
    msg << "with " << world << " ranks the point-to-point order deadlocks: ";
    for (std::size_t i = 0; i < rep.ranks.size(); ++i) {
      if (i > 0) msg << " -> ";
      msg << "rank " << rep.ranks[i] << " blocks in "
          << CommOpName(rep.ops[i].kind) << "()";
      if (rep.ops[i].peer >= 0) msg << " on rank " << rep.ops[i].peer;
      msg << " (line " << rep.ops[i].line << ")";
    }
    if (rendezvous) {
      msg << " — a cycle of blocking Sends: under rendezvous semantics no "
             "Send completes until its Recv is posted, so the exchange "
             "hangs once messages cross the eager threshold";
    } else if (rep.proper_cycle) {
      msg << " — a wait-for cycle through a blocking Recv that no message "
             "size can save";
    } else {
      msg << " — the chain ends at a rank that already finished, so the "
             "awaited message never comes";
    }
    LintFinding f = MakeFinding(slug, entry.file, rep.ops.front().line,
                                msg.str());
    for (std::size_t i = 0; i < rep.ranks.size(); ++i) {
      f.related.push_back(RelatedLocation{
          entry.file, rep.ops[i].line,
          "rank " + std::to_string(rep.ranks[i]) + " blocks in " +
              CommOpName(rep.ops[i].kind) + "() here"});
    }
    MaybeSendrecvFix(entry, rep, metas, &f);
    out.push_back(std::move(f));
    return;  // first deadlocking world size is the report
  }
}

// ===========================================================================
// ckpt-outside-collective
// ===========================================================================
//
// CheckpointCoordinator::Checkpoint() uses first-arrival-decides epoch
// accounting: the first rank to reach the boundary decides whether the
// epoch is due, and the epoch commits only once every rank has written its
// fragment. A Checkpoint() call under a rank-derived condition therefore
// produces permanently-uncommittable epochs (the runtime twin is the
// verify ckpt restart-consistency checker, which only fires when the
// divergent branch actually executes).

void CheckCkptOutsideCollective(const std::string& file,
                                const FunctionFlow& flow,
                                std::vector<LintFinding>& out) {
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr || e.call->method != "Checkpoint") continue;
    if (!e.InRankDivergentBranch()) continue;
    const BranchCtx* branch = nullptr;
    for (const BranchCtx& b : e.branches) {
      if (b.rank_divergent) branch = &b;
    }
    out.push_back(MakeFinding(
        "ckpt-outside-collective", file, e.call->line,
        "Checkpoint() under the rank-derived condition at line " +
            std::to_string(branch->line) + " (`" + branch->cond +
            "`): ranks that skip the call never write their fragment, so "
            "the epoch can never commit"));
  }
}

/// True when `expr` depends on a 64-bit-sized parameter of `entry`'s
/// function — the signal that the overflow hazard belongs to the callers
/// (it is recorded in the summary and reported at call sites), not to
/// this function. A non-wide parameter the expression merely mentions
/// (a Comm&, a file handle) does not make this a wrapper.
bool DependsOnWideParam(const Program::FnEntry& entry,
                        const std::string& expr) {
  return std::any_of(
      entry.fn->params.begin(), entry.fn->params.end(), [&](const Param& p) {
        return !p.name.empty() && entry.flow.Is64BitSized(p.name) &&
               entry.flow.DependsOn(expr, p.name);
      });
}

void CheckIntCountOverflow(const Program& prog,
                           const Program::FnEntry& entry,
                           std::vector<LintFinding>& out) {
  const FunctionFlow& flow = entry.flow;
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr) continue;
    // Direct transfer call with a narrowing cast on the count (the PR-3
    // rule). A parameter-sourced operand defers to the call sites.
    const int direct = TransferCountArg(e.call->method);
    if (direct >= 0 &&
        static_cast<std::size_t>(direct) < e.call->args.size()) {
      const std::string operand =
          NarrowCastOperand(e.call->args[static_cast<std::size_t>(direct)]);
      if (!operand.empty() && flow.Is64BitSized(operand) &&
          !flow.HasIntMaxGuard() && !DependsOnWideParam(entry, operand)) {
        out.push_back(MakeFinding(
            "mpi-int-count-overflow", entry.file, e.call->line,
            "64-bit size `" + operand + "` narrowed to an int count of " +
                e.call->method + "() with no INT_MAX guard in the "
                "function: counts above 2 GB wrap (the Fig. 4 failure — "
                "MPI_File_read_at_all takes an `int` count)"));
        continue;
      }
    }
    // A call whose argument lands in a wrapper's int-narrowed count
    // parameter (the summary records the flow, transitively).
    bool fired = false;
    for (int idx : prog.Resolve(*e.call)) {
      if (fired) break;
      const Program::FnEntry& callee =
          prog.fns()[static_cast<std::size_t>(idx)];
      for (int pos : callee.summary.count_params) {
        if (pos < 0 ||
            static_cast<std::size_t>(pos) >= e.call->args.size()) {
          continue;
        }
        const std::string& arg =
            e.call->args[static_cast<std::size_t>(pos)];
        std::string expr = NarrowCastOperand(arg);
        if (expr.empty()) expr = arg;
        if (!flow.Is64BitSized(expr)) continue;
        if (flow.HasIntMaxGuard()) continue;
        if (DependsOnWideParam(entry, expr)) continue;  // defer further up
        LintFinding f = MakeFinding(
            "mpi-int-count-overflow", entry.file, e.call->line,
            "64-bit size `" + expr + "` flows into the int-narrowed "
            "count parameter `" +
                callee.fn->params[static_cast<std::size_t>(pos)].name +
                "` of " + e.call->method + "() with no INT_MAX guard: "
                "counts above 2 GB wrap (the Fig. 4 failure, one call "
                "deep)");
        f.related.push_back(RelatedLocation{
            callee.file, callee.summary.narrow_line,
            "the count is narrowed to int inside " + e.call->method +
                "()"});
        out.push_back(std::move(f));
        fired = true;
        break;
      }
    }
  }
}

/// Caller side of mpi-blocking-symmetric-send: a rank-relative peer
/// expression passed into a wrapper whose summary says the parameter
/// reaches a blocking Send with a matching Recv.
void CheckSymmetricSendWrapper(const Program& prog,
                               const Program::FnEntry& entry,
                               std::vector<LintFinding>& out) {
  const FunctionFlow& flow = entry.flow;
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr || e.call->method == "Send") continue;
    bool fired = false;
    for (int idx : prog.Resolve(*e.call)) {
      if (fired) break;
      const Program::FnEntry& callee =
          prog.fns()[static_cast<std::size_t>(idx)];
      for (int pos : callee.summary.peer_params) {
        if (pos < 0 ||
            static_cast<std::size_t>(pos) >= e.call->args.size()) {
          continue;
        }
        const std::string& a = e.call->args[static_cast<std::size_t>(pos)];
        if (!flow.IsRankDerived(a)) continue;
        bool arith = HasArithmetic(a);
        if (!arith) {
          const VarInfo* var = flow.Lookup(a);
          arith = var != nullptr && HasArithmetic(var->init);
        }
        if (!arith) continue;
        LintFinding f = MakeFinding(
            "mpi-blocking-symmetric-send", entry.file, e.call->line,
            "rank-relative peer `" + a + "` passed to " + e.call->method +
                "(), which performs a blocking Send with a matching Recv "
                "on it; the symmetric exchange deadlocks once messages "
                "cross the rendezvous threshold");
        f.related.push_back(RelatedLocation{
            callee.file, callee.summary.send_line,
            "the blocking Send inside " + e.call->method + "()"});
        out.push_back(std::move(f));
        fired = true;
        break;
      }
    }
  }
}

void CheckTagMismatch(const std::string& file, const FunctionFlow& flow,
                      std::vector<LintFinding>& out) {
  std::set<long long> send_tags;
  std::set<long long> recv_tags;
  int first_recv_line = 0;
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr || e.call->args.size() < 2) continue;
    const bool is_send = MethodIn(*e.call, {"Send", "Isend"});
    const bool is_recv = MethodIn(*e.call, {"Recv", "Irecv"});
    if (!is_send && !is_recv) continue;
    const std::string& tag = e.call->args.back();
    // Only constant tags are provable; one variable tag voids the check.
    char* end = nullptr;
    const long long value = std::strtoll(tag.c_str(), &end, 0);
    if (end == tag.c_str() || *end != '\0') return;
    if (is_send) send_tags.insert(value);
    if (is_recv) {
      recv_tags.insert(value);
      if (first_recv_line == 0) first_recv_line = e.call->line;
    }
  }
  if (send_tags.empty() || recv_tags.empty()) return;
  std::vector<long long> overlap;
  std::set_intersection(send_tags.begin(), send_tags.end(),
                        recv_tags.begin(), recv_tags.end(),
                        std::back_inserter(overlap));
  if (!overlap.empty()) return;
  std::ostringstream msg;
  msg << "send tag(s) {";
  for (long long t : send_tags) msg << " " << t;
  msg << " } and receive tag(s) {";
  for (long long t : recv_tags) msg << " " << t;
  msg << " } never intersect: within this function no send can match a "
         "receive";
  out.push_back(MakeFinding("mpi-tag-mismatch", file, first_recv_line,
                            msg.str()));
}

// ===========================================================================
// SHMEM rule
// ===========================================================================

void CheckPutWithoutQuiet(const std::string& file, const FunctionFlow& flow,
                          std::vector<LintFinding>& out) {
  struct PendingPut {
    std::string base;
    int line;
    std::string receiver;  // shmem context the put went through
    int insert_line;       // first line after the whole put statement
  };
  std::vector<PendingPut> pending;
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr) continue;
    const CallExpr& c = *e.call;
    if (MethodIn(c, {"Put", "PutValue"}) && !c.args.empty()) {
      const std::string base = BaseIdent(c.args[0]);
      const int after = e.stmt != nullptr && e.stmt->end_line >= c.line
                            ? e.stmt->end_line + 1
                            : c.line + 1;
      if (!base.empty()) {
        pending.push_back(PendingPut{base, c.line, c.receiver, after});
      }
      continue;
    }
    if (MethodIn(c, {"Quiet", "Fence", "Barrier", "BarrierAll"})) {
      pending.clear();
      continue;
    }
    std::string src;
    if (c.method == "GetValue" && !c.args.empty()) src = c.args[0];
    if (c.method == "Get" && c.args.size() >= 2) src = c.args[1];
    if (src.empty()) continue;
    const std::string base = BaseIdent(src);
    for (const PendingPut& p : pending) {
      if (p.base != base) continue;
      LintFinding f = MakeFinding(
          "shmem-put-without-quiet", file, c.line,
          "get of symmetric object '" + base + "' follows the put at "
          "line " + std::to_string(p.line) + " with no Quiet()/Fence()/"
          "BarrierAll() between: the put is not remotely complete and "
          "the get may read stale data");
      if (!p.receiver.empty()) {
        TextEdit e;
        e.file = file;
        e.line = p.insert_line;
        e.delete_lines = 0;
        e.text = {p.receiver + ".Quiet();"};
        e.note = "complete the put before the read-back";
        f.edits.push_back(std::move(e));
      }
      out.push_back(std::move(f));
      break;
    }
  }
}

// ===========================================================================
// OpenMP rules
// ===========================================================================

bool IsOmpParallelFor(const std::string& pragma) {
  return pragma.find("omp") != std::string::npos &&
         pragma.find("parallel") != std::string::npos &&
         pragma.find("for") != std::string::npos;
}

/// Identifiers inside every `clause( ... )` occurrence of `pragma`.
std::vector<std::string> ClauseVars(const std::string& pragma,
                                    const char* clause) {
  std::vector<std::string> out;
  const std::string needle = std::string(clause) + "(";
  std::size_t pos = 0;
  while ((pos = pragma.find(needle, pos)) != std::string::npos) {
    const std::size_t open = pos + needle.size() - 1;
    const std::size_t close = pragma.find(')', open);
    if (close == std::string::npos) break;
    std::string word;
    for (std::size_t j = open + 1; j <= close; ++j) {
      const char c = pragma[j];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
        word += c;
      } else {
        if (!word.empty()) out.push_back(word);
        word.clear();
      }
    }
    pos = close;
  }
  return out;
}

void CollectSubtreeDecls(const std::vector<Stmt>& body,
                         std::set<std::string>* names) {
  ForEachStmt(body, [&](const Stmt& s) {
    if (!s.decl_name.empty()) names->insert(s.decl_name);
    if (!s.induction_var.empty()) names->insert(s.induction_var);
  });
}

/// Walk the loop body; `guarded(stmt)` is true when the statement sits
/// directly under an `omp atomic`/`omp critical` pragma sibling.
void ForEachBodyStmtWithGuards(
    const std::vector<Stmt>& body,
    const std::function<void(const Stmt&, bool guarded)>& visit) {
  bool guard_next = false;
  for (const Stmt& s : body) {
    if (s.kind == StmtKind::kPragma) {
      if (s.text.find("omp") != std::string::npos &&
          (s.text.find("atomic") != std::string::npos ||
           s.text.find("critical") != std::string::npos)) {
        guard_next = true;
        continue;
      }
      guard_next = false;
      continue;
    }
    visit(s, guard_next);
    if (!guard_next) {
      ForEachBodyStmtWithGuards(s.children, visit);
      ForEachBodyStmtWithGuards(s.else_children, visit);
    }
    guard_next = false;
  }
}

void CheckOmpPragma(const std::string& file, const Stmt& pragma,
                    const Stmt& loop, const FunctionFlow& flow,
                    std::vector<LintFinding>& out) {
  std::set<std::string> declared_inside;
  CollectSubtreeDecls({loop}, &declared_inside);

  std::set<std::string> protected_vars;
  for (const char* clause :
       {"reduction", "private", "firstprivate", "lastprivate", "linear"}) {
    for (std::string& v : ClauseVars(pragma.text, clause)) {
      protected_vars.insert(std::move(v));
    }
  }

  // --- omp-shared-reduction: unguarded accumulation into a shared var.
  if (pragma.text.find("reduction(") == std::string::npos) {
    bool flagged = false;
    ForEachBodyStmtWithGuards(loop.children, [&](const Stmt& s,
                                                 bool guarded) {
      if (flagged || guarded) return;
      for (const Assign& a : s.assigns) {
        if (a.op == "=" || a.op.size() < 2) continue;
        if (declared_inside.count(a.name) != 0) continue;
        if (protected_vars.count(a.name) != 0) continue;
        // `a[i] += ...` with the loop's own induction index is a
        // disjoint-element update, not a race.
        if (!a.subscript.empty() &&
            declared_inside.count(a.subscript) != 0) {
          continue;
        }
        out.push_back(MakeFinding(
            "omp-shared-reduction", file, pragma.line,
            "parallel-for accumulates into shared '" + a.name +
                "' at line " + std::to_string(s.line) +
                " without a reduction clause (or omp atomic): data race"));
        flagged = true;
        return;
      }
    });
  }

  // --- omp-missing-private: plain scalar assignment to an outer local.
  std::set<std::string> already;
  ForEachBodyStmtWithGuards(loop.children, [&](const Stmt& s, bool guarded) {
    if (guarded) return;
    for (const Assign& a : s.assigns) {
      if (a.op != "=" || !a.subscript.empty()) continue;
      if (declared_inside.count(a.name) != 0) continue;
      if (protected_vars.count(a.name) != 0) continue;
      if (already.count(a.name) != 0) continue;
      const VarInfo* var = flow.Lookup(a.name);
      if (var == nullptr || var->is_param) continue;
      static const char* const kScalarWords[] = {
          "int",     "long",   "double",   "float",    "bool",
          "char",    "short",  "unsigned", "size_t",   "int32_t",
          "int64_t", "uint32_t", "uint64_t", "auto",   "Bytes",
          "SimTime",
      };
      const bool scalar = std::any_of(
          std::begin(kScalarWords), std::end(kScalarWords),
          [&](const char* w) { return ContainsWord(var->type, w); });
      if (!scalar) continue;
      already.insert(a.name);
      out.push_back(MakeFinding(
          "omp-missing-private", file, s.line,
          "'" + a.name + "' (declared at line " +
              std::to_string(var->decl_line) +
              ", outside the parallel loop) is assigned inside the "
              "parallel-for body; without private(" + a.name +
              ") every thread writes the same shared scalar"));
    }
  });
}

void CheckOmpRules(const std::string& file, const std::vector<Stmt>& body,
                   const FunctionFlow& flow,
                   std::vector<LintFinding>& out) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    const Stmt& s = body[i];
    if (s.kind == StmtKind::kPragma && IsOmpParallelFor(s.text) &&
        i + 1 < body.size() && body[i + 1].kind == StmtKind::kLoop) {
      CheckOmpPragma(file, s, body[i + 1], flow, out);
    }
    CheckOmpRules(file, s.children, flow, out);
    CheckOmpRules(file, s.else_children, flow, out);
  }
}

// ===========================================================================
// Spark rule
// ===========================================================================

const char* const kRddMakers[] = {
    ".Parallelize(", ".TextFile(",  ".Map<",        ".Map(",
    ".FlatMap",      ".Filter(",    ".KeyBy",       ".ReduceByKey",
    ".GroupByKey",   ".PartitionBy", ".Join(",      ".MapValues",
    ".Distinct(",    ".Union(",     ".AsPairs",     ".AsRdd",
};

const char* const kRddActions[] = {
    "Count",   "Collect", "CollectAsMap", "Reduce",        "Fold",
    "Take",    "First",   "Foreach",      "SaveAsTextFile", "CountByKey",
    "Lookup",  "TakeSample",
};

void CheckMissingPersist(const std::string& file, const FunctionFlow& flow,
                         std::vector<LintFinding>& out) {
  for (const VarInfo& var : flow.vars()) {
    if (var.is_param || var.init.empty()) continue;
    const bool rdd_type = ContainsWord(var.type, "auto") ||
                          var.type.find("Rdd") != std::string::npos;
    const bool makes_rdd =
        rdd_type && std::any_of(std::begin(kRddMakers), std::end(kRddMakers),
                                [&](const char* m) {
                                  return var.init.find(m) !=
                                         std::string::npos;
                                });
    if (!makes_rdd) continue;
    if (flow.HasMethodCall(var.name, {"Persist", "Cache"})) continue;

    // Reuse class 1: touched inside a loop it was declared outside of.
    int first_loop_use = 0;
    for (const FunctionFlow::UseSite& use : flow.UsesOf(var.name)) {
      if (use.loop_depth > var.decl_loop_depth) {
        first_loop_use = use.line;
        break;
      }
    }
    // Reuse class 2: two or more actions each force a computation.
    int action_count = 0;
    int second_action_line = 0;
    for (const FlowEvent& e : flow.events()) {
      if (e.call == nullptr || e.call->receiver != var.name) continue;
      if (std::any_of(std::begin(kRddActions), std::end(kRddActions),
                      [&](const char* a) { return e.call->method == a; })) {
        ++action_count;
        if (action_count == 2) second_action_line = e.call->line;
      }
    }

    if (first_loop_use != 0) {
      out.push_back(MakeFinding(
          "spark-missing-persist", file, first_loop_use,
          "RDD '" + var.name + "' (defined at line " +
              std::to_string(var.decl_line) +
              ") is reused inside a loop without Persist()/Cache(); "
              "every iteration recomputes its whole lineage"));
    } else if (action_count >= 2) {
      out.push_back(MakeFinding(
          "spark-missing-persist", file, second_action_line,
          "RDD '" + var.name + "' (defined at line " +
              std::to_string(var.decl_line) + ") is computed by " +
              std::to_string(action_count) +
              " actions without Persist()/Cache(); each action recomputes "
              "the whole lineage"));
    }
  }
}

// ===========================================================================
// Sim rules (whole-program: SPSC producers, drain-path blocking)
// ===========================================================================

/// Last identifier of a receiver chain: "from.outbox" -> "outbox",
/// "shards_[i]->inbox" -> "inbox". Trailing call/index syntax stripped.
std::string LastReceiverComponent(const std::string& receiver) {
  std::size_t end = receiver.size();
  while (end > 0 && (receiver[end - 1] == '(' || receiver[end - 1] == '[' ||
                     receiver[end - 1] == ']' || receiver[end - 1] == ')')) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0) {
    const char c = receiver[begin - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      --begin;
    } else {
      break;
    }
  }
  return receiver.substr(begin, end - begin);
}

/// Host-function name of a lifted lambda ("Foo::lambda#1" -> "Foo"); a
/// lambda pushing to a ring counts as its host producing.
std::string ProducerName(const std::string& fn_name) {
  const std::size_t at = fn_name.find("::lambda#");
  return at == std::string::npos ? fn_name : fn_name.substr(0, at);
}

void CheckSpscMultiProducer(const Program& prog,
                            std::vector<LintFinding>& out) {
  struct Producer {
    std::string fn;
    std::string file;
    int line = 0;
  };
  for (const Program::SpscField& ch : prog.spsc_fields()) {
    std::vector<Producer> producers;
    for (const Program::FnEntry& entry : prog.fns()) {
      for (const FlowEvent& e : entry.flow.events()) {
        if (e.call == nullptr || e.call->method != "Push") continue;
        if (LastReceiverComponent(e.call->receiver) != ch.name) continue;
        const std::string who = ProducerName(entry.fn->name);
        const bool known = std::any_of(
            producers.begin(), producers.end(),
            [&](const Producer& p) { return p.fn == who; });
        if (!known) {
          producers.push_back(Producer{who, entry.file, e.call->line});
        }
      }
    }
    if (producers.size() < 2) continue;
    LintFinding f = MakeFinding(
        "sim-spsc-multi-producer", producers[1].file, producers[1].line,
        "SpscRing channel `" + ch.name + "` (declared at " + ch.file + ":" +
            std::to_string(ch.line) + ") is pushed to by " +
            std::to_string(producers.size()) + " functions (" +
            producers[0].fn + ", " + producers[1].fn +
            (producers.size() > 2 ? ", ..." : "") +
            "): single-producer is the ring's entire correctness "
            "argument — a second producer races the tail index");
    f.related.push_back(RelatedLocation{
        ch.file, ch.line, "channel `" + ch.name + "` declared here"});
    f.related.push_back(RelatedLocation{
        producers[0].file, producers[0].line,
        "first producer " + producers[0].fn + "()"});
    out.push_back(std::move(f));
  }
}

/// Shared engine for the "no blocking reachable from X" rules: for every
/// function matched by `is_root`, flag each blocking call in its
/// interprocedurally reachable set, once per source line per rule.
void CheckBlockingReachableFrom(const Program& prog, const char* slug,
                                bool (*is_root)(const std::string&),
                                const char* role, const char* rationale,
                                std::vector<LintFinding>& out) {
  std::set<std::pair<std::string, int>> seen;
  for (std::size_t i = 0; i < prog.fns().size(); ++i) {
    const Program::FnEntry& root = prog.fns()[i];
    const std::string& name = root.fn->name;
    if (name.find("::lambda#") != std::string::npos || !is_root(name)) {
      continue;
    }
    std::vector<int> scope = prog.ReachableFrom(static_cast<int>(i));
    scope.push_back(static_cast<int>(i));
    for (int idx : scope) {
      const Program::FnEntry& entry =
          prog.fns()[static_cast<std::size_t>(idx)];
      for (const FlowEvent& e : entry.flow.events()) {
        if (e.call == nullptr || !IsBlockingMethod(e.call->method)) continue;
        if (!seen.insert({entry.file, e.call->line}).second) continue;
        LintFinding f = MakeFinding(
            slug, entry.file, e.call->line,
            "blocking call " + e.call->method + "() is reachable from " +
                name + "() — " + rationale);
        f.related.push_back(RelatedLocation{
            root.file, root.fn->line,
            std::string(role) + " " + name + "() defined here"});
        out.push_back(std::move(f));
      }
    }
  }
}

void CheckBlockingInDrain(const Program& prog,
                          std::vector<LintFinding>& out) {
  CheckBlockingReachableFrom(
      prog, "sim-blocking-in-drain",
      [](const std::string& name) {
        return name.compare(0, 5, "Drain") == 0;
      },
      "drain root",
      "the drain path runs on the coordinator "
      "between simulation rounds and must never block, or "
      "every shard stalls behind it",
      out);
}

/// Submit-path roots: `Submit` / `Foo::Submit`, plus `OnJob*` handlers
/// (OnJobDone, OnJobArrival, ...) — the scheduler entry points that run
/// as engine event handlers rather than inside a simulated process.
bool IsSubmitPathRoot(const std::string& name) {
  const std::size_t at = name.rfind("::");
  const std::string_view tail =
      at == std::string::npos
          ? std::string_view(name)
          : std::string_view(name).substr(at + 2);
  return tail == "Submit" || tail.substr(0, 5) == "OnJob";
}

void CheckBlockingInSubmitPath(const Program& prog,
                               std::vector<LintFinding>& out) {
  CheckBlockingReachableFrom(
      prog, "sched-blocking-in-submit-path", IsSubmitPathRoot,
      "submit-path root",
      "the scheduler's submit path runs inside an engine event "
      "handler; blocking there freezes the whole simulated cluster's "
      "event loop, not just the submitting job",
      out);
}

// ===========================================================================
// dataplane-copy-in-hot-path
// ===========================================================================

/// Task/shuffle roots: the entry points the data plane's hot path hangs
/// off — per-partition task bodies (RunMapTask / RunReduceTask /
/// Compute*), and the shuffle transfer surface (FetchShuffle /
/// CommitShuffleOutput).
bool IsDataPlaneRoot(const std::string& name) {
  const std::size_t at = name.rfind("::");
  const std::string_view tail =
      at == std::string::npos
          ? std::string_view(name)
          : std::string_view(name).substr(at + 2);
  return tail == "RunMapTask" || tail == "RunReduceTask" ||
         tail == "FetchShuffle" || tail == "CommitShuffleOutput" ||
         tail.substr(0, 7) == "Compute";
}

/// Parameters that are diagnostics rather than data: error/message
/// strings are by-value move-sinks on cold paths, not payload copies.
bool IsMessageParamName(const std::string& name) {
  return name == "msg" || name == "message" || name == "reason" ||
         name == "what" || name == "label" || name == "description";
}

/// True when `type` declares a by-value deep-copying payload buffer: a
/// std::string, serde::Buffer, or byte vector taken without & / * (views,
/// references, and refcounted buf::Bytes are all fine).
bool IsByValuePayloadType(const std::string& type) {
  if (type.find('&') != std::string::npos ||
      type.find('*') != std::string::npos) {
    return false;
  }
  std::string_view t = type;
  if (t.substr(0, 6) == "const ") t.remove_prefix(6);
  while (!t.empty() && t.back() == ' ') t.remove_suffix(1);
  return t == "std::string" || t == "string" || t == "serde::Buffer" ||
         t == "Buffer" || t == "std::vector<std::uint8_t>" ||
         t == "std::vector<uint8_t>" || t == "std::vector<char>";
}

/// Flag every by-value payload parameter on functions interprocedurally
/// reachable from a data-plane root: each call into one copies the whole
/// payload on the hot path the zero-copy plane exists to keep alias-only.
void CheckDataplaneCopyInHotPath(const Program& prog,
                                 std::vector<LintFinding>& out) {
  std::set<std::pair<std::string, int>> seen;
  for (std::size_t i = 0; i < prog.fns().size(); ++i) {
    const Program::FnEntry& root = prog.fns()[i];
    const std::string& name = root.fn->name;
    if (name.find("::lambda#") != std::string::npos ||
        !IsDataPlaneRoot(name)) {
      continue;
    }
    std::vector<int> scope = prog.ReachableFrom(static_cast<int>(i));
    scope.push_back(static_cast<int>(i));
    for (int idx : scope) {
      const Program::FnEntry& entry =
          prog.fns()[static_cast<std::size_t>(idx)];
      for (const Param& p : entry.fn->params) {
        if (!IsByValuePayloadType(p.type) || IsMessageParamName(p.name)) {
          continue;
        }
        if (!seen.insert({entry.file, entry.fn->line}).second) continue;
        LintFinding f = MakeFinding(
            "dataplane-copy-in-hot-path", entry.file, entry.fn->line,
            "parameter `" + p.name + "` of " + entry.fn->name +
                "() takes a " + p.type +
                " by value on a path reachable from data-plane root " +
                name + "() — every call deep-copies the payload");
        f.related.push_back(RelatedLocation{
            root.file, root.fn->line,
            "data-plane root " + name + "() defined here"});
        out.push_back(std::move(f));
      }
    }
  }
}

// ===========================================================================
// JSON helpers
// ===========================================================================

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "warning";
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> rules(std::begin(kRules),
                                           std::end(kRules));
  return rules;
}

namespace {

std::vector<std::string> SourceLines(const std::string& source) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

/// The int-count widening fix is generated post-hoc from the source line:
/// the direct-form finding (no related location) points at the line with
/// the narrowing cast, and widening `static_cast<int>` to
/// `static_cast<std::int64_t>` is exactly the mechanical remediation
/// (MiniMPI transfer counts are 64-bit `Bytes`, so the widened call
/// compiles as-is). Wrapper-form findings stay fix-less: the cast lives
/// in another function serving other callers.
void AddIntCountFix(const std::vector<std::string>& lines, LintFinding* f) {
  if (!f->related.empty() || !f->edits.empty()) return;
  if (f->line < 1 || static_cast<std::size_t>(f->line) > lines.size()) return;
  const std::string& orig = lines[static_cast<std::size_t>(f->line - 1)];
  const std::string narrow = "static_cast<int>";
  const std::size_t at = orig.find(narrow);
  if (at == std::string::npos) return;
  std::string fixed = orig;
  fixed.replace(at, narrow.size(), "static_cast<std::int64_t>");
  // The edit stores the line unindented; ApplyEdits restores depth.
  std::size_t b = 0;
  while (b < fixed.size() && (fixed[b] == ' ' || fixed[b] == '\t')) ++b;
  TextEdit e;
  e.file = f->file;
  e.line = f->line;
  e.delete_lines = 1;
  e.text = {fixed.substr(b)};
  e.note = "widen the count instead of narrowing it";
  f->edits.push_back(std::move(e));
}

}  // namespace

std::string SourceLineHash(const std::string& line_text) {
  std::size_t b = 0;
  std::size_t e = line_text.size();
  while (b < e &&
         std::isspace(static_cast<unsigned char>(line_text[b])) != 0) {
    ++b;
  }
  while (e > b &&
         std::isspace(static_cast<unsigned char>(line_text[e - 1])) != 0) {
    --e;
  }
  std::uint32_t h = 2166136261u;  // FNV-1a, 32-bit
  for (std::size_t i = b; i < e; ++i) {
    h ^= static_cast<unsigned char>(line_text[i]);
    h *= 16777619u;
  }
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", h);
  return buf;
}

std::vector<LintFinding> LintProgram(std::vector<ProgramSource> sources,
                                     int jobs) {
  // Keep the line text: findings get their drift-tolerant line hash and
  // the int-count fix needs the cast's source line (Analyze consumes the
  // source strings).
  std::map<std::string, std::vector<std::string>> lines_of;
  for (const ProgramSource& s : sources) {
    lines_of[s.file] = SourceLines(s.source);
  }
  const Program prog = Program::Analyze(std::move(sources), jobs);
  std::vector<LintFinding> out;
  for (const Program::FnEntry& entry : prog.fns()) {
    const FunctionFlow& flow = entry.flow;
    CheckBlockingSymmetricSend(entry.file, flow, out);
    CheckSymmetricSendWrapper(prog, entry, out);
    // Path-sensitive gate: a function whose every CFG path provably
    // executes the same collective sequence is uniform regardless of
    // which rank takes which path — the syntactic divergence rules
    // (branch arms, early returns) run only when the gate fails.
    if (!AllPathsCollectiveUniform(prog, entry)) {
      CheckCollectiveDivergence(prog, entry, out);
      CheckEarlyReturnDivergence(prog, entry, out);
    }
    CheckRendezvousDeadlock(prog, entry, out);
    CheckCkptOutsideCollective(entry.file, flow, out);
    CheckIntCountOverflow(prog, entry, out);
    CheckTagMismatch(entry.file, flow, out);
    CheckPutWithoutQuiet(entry.file, flow, out);
    CheckOmpRules(entry.file, entry.fn->body, flow, out);
    CheckMissingPersist(entry.file, flow, out);
  }
  CheckSpscMultiProducer(prog, out);
  CheckBlockingInDrain(prog, out);
  CheckBlockingInSubmitPath(prog, out);
  CheckDataplaneCopyInHotPath(prog, out);
  std::sort(out.begin(), out.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const LintFinding& a, const LintFinding& b) {
                          return a.rule == b.rule && a.file == b.file &&
                                 a.line == b.line && a.message == b.message;
                        }),
            out.end());
  for (LintFinding& f : out) {
    const auto it = lines_of.find(f.file);
    if (it == lines_of.end()) continue;
    if (f.line >= 1 &&
        static_cast<std::size_t>(f.line) <= it->second.size()) {
      f.line_hash =
          SourceLineHash(it->second[static_cast<std::size_t>(f.line - 1)]);
    }
    if (f.rule == "mpi-int-count-overflow") AddIntCountFix(it->second, &f);
  }
  return out;
}

std::vector<LintFinding> LintSource(const std::string& file,
                                    const std::string& source) {
  return LintProgram({ProgramSource{file, source}});
}

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Result<std::vector<LintFinding>> LintFile(const std::string& path) {
  auto text = ReadWholeFile(path);
  if (!text.ok()) return text.status();
  return LintSource(path, text.value());
}

Result<std::vector<LintFinding>> LintTree(
    const std::vector<std::string>& roots, int jobs) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".cpp" || ext == ".h") {
          files.push_back(entry.path().string());
        }
      }
      if (ec) return Internal("cannot walk " + root + ": " + ec.message());
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      return NotFound("lint root not found: " + root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // One Program across every file, so wrapper calls resolve across
  // translation-unit boundaries.
  std::vector<ProgramSource> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    auto text = ReadWholeFile(file);
    if (!text.ok()) return text.status();
    sources.push_back(ProgramSource{file, std::move(text.value())});
  }
  return LintProgram(std::move(sources), jobs);
}

Severity WorstSeverity(const std::vector<LintFinding>& findings) {
  Severity worst = Severity::kNote;
  for (const LintFinding& f : findings) {
    if (static_cast<int>(f.severity) > static_cast<int>(worst)) {
      worst = f.severity;
    }
  }
  return worst;
}

std::string RenderLintReport(const std::vector<LintFinding>& findings) {
  std::ostringstream oss;
  if (findings.empty()) {
    oss << "pstk-lint: clean (0 findings)\n";
    return oss.str();
  }
  oss << "pstk-lint: " << findings.size() << " finding(s)\n";
  std::map<std::string, int> by_rule;
  for (const LintFinding& f : findings) {
    oss << "  " << f.file << ":" << f.line << ": " << SeverityName(f.severity)
        << ": [" << f.rule << "] " << f.message << "\n";
    if (!f.fixit.empty()) oss << "      fix: " << f.fixit << "\n";
    for (const RelatedLocation& r : f.related) {
      oss << "      see: " << r.file << ":" << r.line << ": " << r.note
          << "\n";
    }
    ++by_rule[f.rule];
  }
  oss << "by rule:\n";
  for (const auto& [rule, count] : by_rule) {
    oss << "  " << rule << ": " << count << "\n";
  }
  return oss.str();
}

std::string RenderJson(const std::vector<LintFinding>& findings) {
  std::ostringstream oss;
  oss << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    oss << "  {\"rule\": \"" << EscapeJson(f.rule) << "\", \"file\": \""
        << EscapeJson(f.file) << "\", \"line\": " << f.line
        << ", \"severity\": \"" << SeverityName(f.severity)
        << "\", \"message\": \"" << EscapeJson(f.message)
        << "\", \"fixit\": \"" << EscapeJson(f.fixit) << "\"";
    if (!f.related.empty()) {
      oss << ", \"related\": [";
      for (std::size_t r = 0; r < f.related.size(); ++r) {
        const RelatedLocation& rel = f.related[r];
        oss << (r > 0 ? ", " : "") << "{\"file\": \"" << EscapeJson(rel.file)
            << "\", \"line\": " << rel.line << ", \"note\": \""
            << EscapeJson(rel.note) << "\"}";
      }
      oss << "]";
    }
    oss << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  oss << "]\n";
  return oss.str();
}

std::string RenderSarif(const std::vector<LintFinding>& findings) {
  std::ostringstream oss;
  oss << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"pstk-lint\",\n"
      << "          \"informationUri\": "
         "\"https://github.com/pstk/parastack\",\n"
      << "          \"version\": \"0.4.0\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = Rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    oss << "            {\"id\": \"" << r.slug
        << "\", \"shortDescription\": {\"text\": \"" << EscapeJson(r.summary)
        << "\"}, \"help\": {\"text\": \"" << EscapeJson(r.fix)
        << "\"}, \"defaultConfiguration\": {\"level\": \""
        << SeverityName(r.severity) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  oss << "          ]\n        }\n      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    std::size_t rule_index = rules.size();
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (f.rule == rules[r].slug) rule_index = r;
    }
    oss << "        {\"ruleId\": \"" << EscapeJson(f.rule) << "\"";
    if (rule_index < rules.size()) {
      oss << ", \"ruleIndex\": " << rule_index;
    }
    oss << ", \"level\": \"" << SeverityName(f.severity)
        << "\", \"message\": {\"text\": \"" << EscapeJson(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << EscapeJson(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]";
    if (!f.related.empty()) {
      oss << ", \"relatedLocations\": [";
      for (std::size_t r = 0; r < f.related.size(); ++r) {
        const RelatedLocation& rel = f.related[r];
        oss << (r > 0 ? ", " : "")
            << "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
            << EscapeJson(rel.file) << "\"}, \"region\": {\"startLine\": "
            << (rel.line > 0 ? rel.line : 1)
            << "}}, \"message\": {\"text\": \"" << EscapeJson(rel.note)
            << "\"}}";
      }
      oss << "]";
    }
    oss << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  oss << "      ]\n    }\n  ]\n}\n";
  return oss.str();
}

std::vector<BaselineEntry> ParseBaseline(const std::string& text) {
  std::vector<BaselineEntry> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto fields = SplitNonEmpty(line, ' ');
    if (fields.empty()) continue;
    BaselineEntry entry;
    entry.rule = fields[0];
    if (fields.size() > 1) entry.path = fields[1];
    if (fields.size() > 2) entry.hash = fields[2];
    out.push_back(std::move(entry));
  }
  return out;
}

Result<std::vector<BaselineEntry>> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open baseline " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseBaseline(buffer.str());
}

std::string FormatBaseline(const std::vector<LintFinding>& findings,
                           const std::string& header) {
  std::set<std::string> lines;
  for (const LintFinding& f : findings) {
    // The hash column is emitted only when the finding carries one, so a
    // hash-less round trip (findings built by hand, old goldens) renders
    // the legacy two-field form byte-for-byte.
    lines.insert(f.rule + " " + f.file +
                 (f.line_hash.empty() ? "" : " " + f.line_hash));
  }
  std::string out =
      header.empty()
          ? std::string(
                "# pstk-lint baseline: `rule path` per line suppresses "
                "matching\n"
                "# findings (path matched by suffix). '#' starts a "
                "comment.\n")
          : header;
  if (!out.empty() && out.back() != '\n') out += '\n';
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

namespace {

bool PathMatches(const std::string& file, const std::string& pattern) {
  if (pattern.empty()) return true;  // rule-wide suppression
  if (file == pattern) return true;
  if (!EndsWith(file, pattern)) return false;
  // Suffix must start at a path component ("fig4.cc" must not match
  // "notfig4.cc").
  const char before = file[file.size() - pattern.size() - 1];
  return before == '/' || pattern.front() == '/';
}

}  // namespace

std::vector<LintFinding> ApplyBaseline(
    std::vector<LintFinding> findings,
    const std::vector<BaselineEntry>& baseline, int* suppressed) {
  int dropped = 0;
  std::vector<LintFinding> kept;
  kept.reserve(findings.size());
  for (LintFinding& f : findings) {
    const bool matched = std::any_of(
        baseline.begin(), baseline.end(), [&](const BaselineEntry& e) {
          // A hash on both sides must agree; either side hash-less falls
          // back to the rule+path match (drift-tolerant by construction:
          // the hash covers line *text*, never the line number).
          return e.rule == f.rule && PathMatches(f.file, e.path) &&
                 (e.hash.empty() || f.line_hash.empty() ||
                  e.hash == f.line_hash);
        });
    if (matched) {
      ++dropped;
    } else {
      kept.push_back(std::move(f));
    }
  }
  if (suppressed != nullptr) *suppressed = dropped;
  return kept;
}

}  // namespace pstk::analysis
