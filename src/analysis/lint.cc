#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "analysis/dataflow.h"
#include "analysis/parse.h"
#include "common/strings.h"

namespace pstk::analysis {

namespace {

// ===========================================================================
// Rule registry
// ===========================================================================

const RuleInfo kRules[] = {
    {"ckpt-outside-collective", Severity::kError,
     "CheckpointCoordinator::Checkpoint() under a rank-derived condition: "
     "the first arrival decides whether the epoch is due, so ranks that "
     "skip the call never write their fragment and the epoch never "
     "commits — the snapshot can never be restored",
     "call Checkpoint() on every rank at the same collective boundary "
     "(hoist it out of the rank-derived branch)"},
    {"mpi-blocking-symmetric-send", Severity::kError,
     "blocking Send to a rank-relative peer with a matching Recv after it; "
     "the symmetric exchange deadlocks once messages cross the rendezvous "
     "threshold",
     "use Isend/SendAsync for one side of the exchange, or order the pair "
     "so one rank sends first"},
    {"mpi-collective-in-divergent-branch", Severity::kError,
     "collective call (or early return) under a rank-derived condition: "
     "ranks disagree on the collective call sequence and the job hangs",
     "hoist the collective out of the branch, or make the condition "
     "uniform across ranks"},
    {"mpi-int-count-overflow", Severity::kError,
     "64-bit size expression narrowed into an int count parameter with no "
     "INT_MAX guard: counts above 2^31-1 wrap (the paper's Fig. 4 "
     "structural failure)",
     "guard the count against numeric_limits<int32_t>::max() before "
     "narrowing, or chunk the transfer"},
    {"mpi-tag-mismatch", Severity::kError,
     "every send tag and every receive tag in this function is a constant "
     "and the two sets are disjoint: no message can ever match",
     "make the send and receive tags agree (or derive both from one "
     "constant)"},
    {"omp-missing-private", Severity::kWarning,
     "scalar declared before `#pragma omp parallel for` is plainly "
     "assigned inside the loop body without private()/firstprivate(): "
     "threads race on the shared temporary",
     "add private(<var>) to the pragma, or declare the variable inside "
     "the loop body"},
    {"omp-shared-reduction", Severity::kError,
     "parallel-for body accumulates into a variable declared outside the "
     "loop without a reduction clause (or omp atomic/critical): data race",
     "add reduction(+ : <var>) to the pragma, or guard the update with "
     "#pragma omp atomic"},
    {"shmem-put-without-quiet", Severity::kError,
     "symmetric put followed by a get of the same symmetric object with "
     "no Quiet()/Fence()/BarrierAll() between: the put may not be "
     "remotely complete",
     "call Quiet() (or a barrier) between the put and the read-back"},
    {"spark-missing-persist", Severity::kWarning,
     "RDD reused (inside a loop, or by multiple actions) without "
     "Persist()/Cache(): every reuse recomputes the whole lineage (the "
     "paper's Fig. 6 persist() omission)",
     "call .Persist(StorageLevel::kMemoryAndDisk) (or .Cache()) on the "
     "RDD before reusing it"},
};

const RuleInfo* FindRule(const std::string& slug) {
  for (const RuleInfo& r : kRules) {
    if (slug == r.slug) return &r;
  }
  return nullptr;
}

LintFinding MakeFinding(const char* slug, const std::string& file, int line,
                        std::string message) {
  const RuleInfo* rule = FindRule(slug);
  LintFinding f;
  f.rule = slug;
  f.file = file;
  f.line = line;
  f.message = std::move(message);
  if (rule != nullptr) {
    f.severity = rule->severity;
    f.fixit = rule->fix;
  }
  return f;
}

bool MethodIn(const CallExpr& call,
              std::initializer_list<const char*> names) {
  return std::any_of(names.begin(), names.end(),
                     [&](const char* n) { return call.method == n; });
}

/// Leading identifier of an argument expression ("local_bins.at(slot)" ->
/// "local_bins"); "" when the argument does not start with one.
std::string BaseIdent(const std::string& arg) {
  std::size_t i = 0;
  while (i < arg.size() && (arg[i] == '(' || arg[i] == '&' || arg[i] == '*')) {
    ++i;
  }
  std::size_t j = i;
  while (j < arg.size() &&
         (std::isalnum(static_cast<unsigned char>(arg[j])) != 0 ||
          arg[j] == '_')) {
    ++j;
  }
  return arg.substr(i, j - i);
}

// ===========================================================================
// MPI rules
// ===========================================================================

bool HasArithmetic(const std::string& text) {
  return text.find('+') != std::string::npos ||
         text.find('-') != std::string::npos ||
         text.find('^') != std::string::npos ||
         text.find('%') != std::string::npos;
}

void CheckBlockingSymmetricSend(const std::string& file,
                                const FunctionFlow& flow,
                                std::vector<LintFinding>& out) {
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr || e.call->method != "Send") continue;
    const bool rank_relative = std::any_of(
        e.call->args.begin(), e.call->args.end(), [&](const std::string& a) {
          if (!flow.IsRankDerived(a)) return false;
          if (HasArithmetic(a)) return true;
          // `partner = rank ^ 1; Send(..., partner, ...)`: the arithmetic
          // lives in the variable's initializer, not the argument text.
          const VarInfo* var = flow.Lookup(a);
          return var != nullptr && HasArithmetic(var->init);
        });
    if (!rank_relative) continue;
    const bool recv_after = std::any_of(
        flow.events().begin(), flow.events().end(), [&](const FlowEvent& r) {
          return r.call != nullptr && r.call->method == "Recv" &&
                 r.order >= e.order;
        });
    if (!recv_after) continue;
    out.push_back(MakeFinding(
        "mpi-blocking-symmetric-send", file, e.call->line,
        "blocking Send to a rank-relative peer with a matching Recv "
        "nearby; use Isend/SendAsync or reorder, or the exchange "
        "deadlocks once messages cross the rendezvous threshold"));
  }
}

const char* const kCollectives[] = {
    "Reduce",     "Allreduce",      "AllReduce", "Allgather", "AllGather",
    "Gather",     "Scatter",        "Alltoall",  "AllToAll",  "Barrier",
    "BarrierAll", "Broadcast",      "BroadcastAll", "Bcast",  "OpenAll",
    "ReadAtAll",  "ReadLinesAtAll", "WriteAtAll", "Scan",     "ReduceAll",
};

bool IsCollective(const CallExpr& call) {
  return std::any_of(std::begin(kCollectives), std::end(kCollectives),
                     [&](const char* n) { return call.method == n; });
}

void CheckCollectiveDivergence(const std::string& file,
                               const FunctionFlow& flow,
                               std::vector<LintFinding>& out) {
  for (const FlowEvent& e : flow.events()) {
    if (!e.InRankDivergentBranch()) continue;
    const BranchCtx* branch = nullptr;
    for (const BranchCtx& b : e.branches) {
      if (b.rank_divergent) branch = &b;
    }
    if (e.call != nullptr && IsCollective(*e.call)) {
      out.push_back(MakeFinding(
          "mpi-collective-in-divergent-branch", file, e.call->line,
          "collective " + e.call->method + "() under the rank-derived "
          "condition at line " + std::to_string(branch->line) +
          " (`" + branch->cond + "`): ranks that skip the branch never "
          "reach the collective"));
      continue;
    }
    if (e.call == nullptr && e.stmt->kind == StmtKind::kReturn) {
      const bool collective_later = std::any_of(
          flow.events().begin(), flow.events().end(),
          [&](const FlowEvent& later) {
            return later.call != nullptr && IsCollective(*later.call) &&
                   later.order > e.order;
          });
      if (collective_later) {
        out.push_back(MakeFinding(
            "mpi-collective-in-divergent-branch", file, e.stmt->line,
            "early return under the rank-derived condition at line " +
                std::to_string(branch->line) + " (`" + branch->cond +
                "`) while collectives follow: returning ranks drop out "
                "of the collective sequence"));
      }
    }
  }
}

// ===========================================================================
// ckpt-outside-collective
// ===========================================================================
//
// CheckpointCoordinator::Checkpoint() uses first-arrival-decides epoch
// accounting: the first rank to reach the boundary decides whether the
// epoch is due, and the epoch commits only once every rank has written its
// fragment. A Checkpoint() call under a rank-derived condition therefore
// produces permanently-uncommittable epochs (the runtime twin is the
// verify ckpt restart-consistency checker, which only fires when the
// divergent branch actually executes).

void CheckCkptOutsideCollective(const std::string& file,
                                const FunctionFlow& flow,
                                std::vector<LintFinding>& out) {
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr || e.call->method != "Checkpoint") continue;
    if (!e.InRankDivergentBranch()) continue;
    const BranchCtx* branch = nullptr;
    for (const BranchCtx& b : e.branches) {
      if (b.rank_divergent) branch = &b;
    }
    out.push_back(MakeFinding(
        "ckpt-outside-collective", file, e.call->line,
        "Checkpoint() under the rank-derived condition at line " +
            std::to_string(branch->line) + " (`" + branch->cond +
            "`): ranks that skip the call never write their fragment, so "
            "the epoch can never commit"));
  }
}

const char* const kNarrowCasts[] = {
    "static_cast<int>(",           "static_cast<std::int32_t>(",
    "static_cast<int32_t>(",       "static_cast<std::uint32_t>(",
    "static_cast<uint32_t>(",      "static_cast<unsigned>(",
    "static_cast<unsigned int>(",
};

/// Operand text of the first narrowing cast in `arg` ("" when none).
std::string NarrowCastOperand(const std::string& arg) {
  for (const char* cast : kNarrowCasts) {
    const std::size_t at = arg.find(cast);
    if (at == std::string::npos) continue;
    const std::size_t open = at + std::char_traits<char>::length(cast) - 1;
    int depth = 0;
    for (std::size_t j = open; j < arg.size(); ++j) {
      if (arg[j] == '(') ++depth;
      if (arg[j] == ')' && --depth == 0) {
        return arg.substr(open + 1, j - open - 1);
      }
    }
  }
  return "";
}

void CheckIntCountOverflow(const std::string& file, const FunctionFlow& flow,
                           std::vector<LintFinding>& out) {
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr) continue;
    if (!MethodIn(*e.call, {"Send", "Isend", "Recv", "Irecv", "ReadAtAll",
                            "ReadLinesAtAll", "WriteAtAll", "ReadAt",
                            "WriteAt"})) {
      continue;
    }
    for (const std::string& arg : e.call->args) {
      const std::string operand = NarrowCastOperand(arg);
      if (operand.empty() || !flow.Is64BitSized(operand)) continue;
      if (flow.HasIntMaxGuard()) continue;
      out.push_back(MakeFinding(
          "mpi-int-count-overflow", file, e.call->line,
          "64-bit size `" + operand + "` narrowed to an int count of " +
              e.call->method + "() with no INT_MAX guard in the "
              "function: counts above 2 GB wrap (the Fig. 4 failure — "
              "MPI_File_read_at_all takes an `int` count)"));
      break;
    }
  }
}

void CheckTagMismatch(const std::string& file, const FunctionFlow& flow,
                      std::vector<LintFinding>& out) {
  std::set<long long> send_tags;
  std::set<long long> recv_tags;
  int first_recv_line = 0;
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr || e.call->args.size() < 2) continue;
    const bool is_send = MethodIn(*e.call, {"Send", "Isend"});
    const bool is_recv = MethodIn(*e.call, {"Recv", "Irecv"});
    if (!is_send && !is_recv) continue;
    const std::string& tag = e.call->args.back();
    // Only constant tags are provable; one variable tag voids the check.
    char* end = nullptr;
    const long long value = std::strtoll(tag.c_str(), &end, 0);
    if (end == tag.c_str() || *end != '\0') return;
    if (is_send) send_tags.insert(value);
    if (is_recv) {
      recv_tags.insert(value);
      if (first_recv_line == 0) first_recv_line = e.call->line;
    }
  }
  if (send_tags.empty() || recv_tags.empty()) return;
  std::vector<long long> overlap;
  std::set_intersection(send_tags.begin(), send_tags.end(),
                        recv_tags.begin(), recv_tags.end(),
                        std::back_inserter(overlap));
  if (!overlap.empty()) return;
  std::ostringstream msg;
  msg << "send tag(s) {";
  for (long long t : send_tags) msg << " " << t;
  msg << " } and receive tag(s) {";
  for (long long t : recv_tags) msg << " " << t;
  msg << " } never intersect: within this function no send can match a "
         "receive";
  out.push_back(MakeFinding("mpi-tag-mismatch", file, first_recv_line,
                            msg.str()));
}

// ===========================================================================
// SHMEM rule
// ===========================================================================

void CheckPutWithoutQuiet(const std::string& file, const FunctionFlow& flow,
                          std::vector<LintFinding>& out) {
  struct PendingPut {
    std::string base;
    int line;
  };
  std::vector<PendingPut> pending;
  for (const FlowEvent& e : flow.events()) {
    if (e.call == nullptr) continue;
    const CallExpr& c = *e.call;
    if (MethodIn(c, {"Put", "PutValue"}) && !c.args.empty()) {
      const std::string base = BaseIdent(c.args[0]);
      if (!base.empty()) pending.push_back(PendingPut{base, c.line});
      continue;
    }
    if (MethodIn(c, {"Quiet", "Fence", "Barrier", "BarrierAll"})) {
      pending.clear();
      continue;
    }
    std::string src;
    if (c.method == "GetValue" && !c.args.empty()) src = c.args[0];
    if (c.method == "Get" && c.args.size() >= 2) src = c.args[1];
    if (src.empty()) continue;
    const std::string base = BaseIdent(src);
    for (const PendingPut& p : pending) {
      if (p.base != base) continue;
      out.push_back(MakeFinding(
          "shmem-put-without-quiet", file, c.line,
          "get of symmetric object '" + base + "' follows the put at "
          "line " + std::to_string(p.line) + " with no Quiet()/Fence()/"
          "BarrierAll() between: the put is not remotely complete and "
          "the get may read stale data"));
      break;
    }
  }
}

// ===========================================================================
// OpenMP rules
// ===========================================================================

bool IsOmpParallelFor(const std::string& pragma) {
  return pragma.find("omp") != std::string::npos &&
         pragma.find("parallel") != std::string::npos &&
         pragma.find("for") != std::string::npos;
}

/// Identifiers inside every `clause( ... )` occurrence of `pragma`.
std::vector<std::string> ClauseVars(const std::string& pragma,
                                    const char* clause) {
  std::vector<std::string> out;
  const std::string needle = std::string(clause) + "(";
  std::size_t pos = 0;
  while ((pos = pragma.find(needle, pos)) != std::string::npos) {
    const std::size_t open = pos + needle.size() - 1;
    const std::size_t close = pragma.find(')', open);
    if (close == std::string::npos) break;
    std::string word;
    for (std::size_t j = open + 1; j <= close; ++j) {
      const char c = pragma[j];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
        word += c;
      } else {
        if (!word.empty()) out.push_back(word);
        word.clear();
      }
    }
    pos = close;
  }
  return out;
}

void CollectSubtreeDecls(const std::vector<Stmt>& body,
                         std::set<std::string>* names) {
  ForEachStmt(body, [&](const Stmt& s) {
    if (!s.decl_name.empty()) names->insert(s.decl_name);
    if (!s.induction_var.empty()) names->insert(s.induction_var);
  });
}

/// Walk the loop body; `guarded(stmt)` is true when the statement sits
/// directly under an `omp atomic`/`omp critical` pragma sibling.
void ForEachBodyStmtWithGuards(
    const std::vector<Stmt>& body,
    const std::function<void(const Stmt&, bool guarded)>& visit) {
  bool guard_next = false;
  for (const Stmt& s : body) {
    if (s.kind == StmtKind::kPragma) {
      if (s.text.find("omp") != std::string::npos &&
          (s.text.find("atomic") != std::string::npos ||
           s.text.find("critical") != std::string::npos)) {
        guard_next = true;
        continue;
      }
      guard_next = false;
      continue;
    }
    visit(s, guard_next);
    if (!guard_next) {
      ForEachBodyStmtWithGuards(s.children, visit);
      ForEachBodyStmtWithGuards(s.else_children, visit);
    }
    guard_next = false;
  }
}

void CheckOmpPragma(const std::string& file, const Stmt& pragma,
                    const Stmt& loop, const FunctionFlow& flow,
                    std::vector<LintFinding>& out) {
  std::set<std::string> declared_inside;
  CollectSubtreeDecls({loop}, &declared_inside);

  std::set<std::string> protected_vars;
  for (const char* clause :
       {"reduction", "private", "firstprivate", "lastprivate", "linear"}) {
    for (std::string& v : ClauseVars(pragma.text, clause)) {
      protected_vars.insert(std::move(v));
    }
  }

  // --- omp-shared-reduction: unguarded accumulation into a shared var.
  if (pragma.text.find("reduction(") == std::string::npos) {
    bool flagged = false;
    ForEachBodyStmtWithGuards(loop.children, [&](const Stmt& s,
                                                 bool guarded) {
      if (flagged || guarded) return;
      for (const Assign& a : s.assigns) {
        if (a.op == "=" || a.op.size() < 2) continue;
        if (declared_inside.count(a.name) != 0) continue;
        if (protected_vars.count(a.name) != 0) continue;
        // `a[i] += ...` with the loop's own induction index is a
        // disjoint-element update, not a race.
        if (!a.subscript.empty() &&
            declared_inside.count(a.subscript) != 0) {
          continue;
        }
        out.push_back(MakeFinding(
            "omp-shared-reduction", file, pragma.line,
            "parallel-for accumulates into shared '" + a.name +
                "' at line " + std::to_string(s.line) +
                " without a reduction clause (or omp atomic): data race"));
        flagged = true;
        return;
      }
    });
  }

  // --- omp-missing-private: plain scalar assignment to an outer local.
  std::set<std::string> already;
  ForEachBodyStmtWithGuards(loop.children, [&](const Stmt& s, bool guarded) {
    if (guarded) return;
    for (const Assign& a : s.assigns) {
      if (a.op != "=" || !a.subscript.empty()) continue;
      if (declared_inside.count(a.name) != 0) continue;
      if (protected_vars.count(a.name) != 0) continue;
      if (already.count(a.name) != 0) continue;
      const VarInfo* var = flow.Lookup(a.name);
      if (var == nullptr || var->is_param) continue;
      static const char* const kScalarWords[] = {
          "int",     "long",   "double",   "float",    "bool",
          "char",    "short",  "unsigned", "size_t",   "int32_t",
          "int64_t", "uint32_t", "uint64_t", "auto",   "Bytes",
          "SimTime",
      };
      const bool scalar = std::any_of(
          std::begin(kScalarWords), std::end(kScalarWords),
          [&](const char* w) { return ContainsWord(var->type, w); });
      if (!scalar) continue;
      already.insert(a.name);
      out.push_back(MakeFinding(
          "omp-missing-private", file, s.line,
          "'" + a.name + "' (declared at line " +
              std::to_string(var->decl_line) +
              ", outside the parallel loop) is assigned inside the "
              "parallel-for body; without private(" + a.name +
              ") every thread writes the same shared scalar"));
    }
  });
}

void CheckOmpRules(const std::string& file, const std::vector<Stmt>& body,
                   const FunctionFlow& flow,
                   std::vector<LintFinding>& out) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    const Stmt& s = body[i];
    if (s.kind == StmtKind::kPragma && IsOmpParallelFor(s.text) &&
        i + 1 < body.size() && body[i + 1].kind == StmtKind::kLoop) {
      CheckOmpPragma(file, s, body[i + 1], flow, out);
    }
    CheckOmpRules(file, s.children, flow, out);
    CheckOmpRules(file, s.else_children, flow, out);
  }
}

// ===========================================================================
// Spark rule
// ===========================================================================

const char* const kRddMakers[] = {
    ".Parallelize(", ".TextFile(",  ".Map<",        ".Map(",
    ".FlatMap",      ".Filter(",    ".KeyBy",       ".ReduceByKey",
    ".GroupByKey",   ".PartitionBy", ".Join(",      ".MapValues",
    ".Distinct(",    ".Union(",     ".AsPairs",     ".AsRdd",
};

const char* const kRddActions[] = {
    "Count",   "Collect", "CollectAsMap", "Reduce",        "Fold",
    "Take",    "First",   "Foreach",      "SaveAsTextFile", "CountByKey",
    "Lookup",  "TakeSample",
};

void CheckMissingPersist(const std::string& file, const FunctionFlow& flow,
                         std::vector<LintFinding>& out) {
  for (const VarInfo& var : flow.vars()) {
    if (var.is_param || var.init.empty()) continue;
    const bool rdd_type = ContainsWord(var.type, "auto") ||
                          var.type.find("Rdd") != std::string::npos;
    const bool makes_rdd =
        rdd_type && std::any_of(std::begin(kRddMakers), std::end(kRddMakers),
                                [&](const char* m) {
                                  return var.init.find(m) !=
                                         std::string::npos;
                                });
    if (!makes_rdd) continue;
    if (flow.HasMethodCall(var.name, {"Persist", "Cache"})) continue;

    // Reuse class 1: touched inside a loop it was declared outside of.
    int first_loop_use = 0;
    for (const FunctionFlow::UseSite& use : flow.UsesOf(var.name)) {
      if (use.loop_depth > var.decl_loop_depth) {
        first_loop_use = use.line;
        break;
      }
    }
    // Reuse class 2: two or more actions each force a computation.
    int action_count = 0;
    int second_action_line = 0;
    for (const FlowEvent& e : flow.events()) {
      if (e.call == nullptr || e.call->receiver != var.name) continue;
      if (std::any_of(std::begin(kRddActions), std::end(kRddActions),
                      [&](const char* a) { return e.call->method == a; })) {
        ++action_count;
        if (action_count == 2) second_action_line = e.call->line;
      }
    }

    if (first_loop_use != 0) {
      out.push_back(MakeFinding(
          "spark-missing-persist", file, first_loop_use,
          "RDD '" + var.name + "' (defined at line " +
              std::to_string(var.decl_line) +
              ") is reused inside a loop without Persist()/Cache(); "
              "every iteration recomputes its whole lineage"));
    } else if (action_count >= 2) {
      out.push_back(MakeFinding(
          "spark-missing-persist", file, second_action_line,
          "RDD '" + var.name + "' (defined at line " +
              std::to_string(var.decl_line) + ") is computed by " +
              std::to_string(action_count) +
              " actions without Persist()/Cache(); each action recomputes "
              "the whole lineage"));
    }
  }
}

// ===========================================================================
// JSON helpers
// ===========================================================================

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "warning";
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> rules(std::begin(kRules),
                                           std::end(kRules));
  return rules;
}

std::vector<LintFinding> LintSource(const std::string& file,
                                    const std::string& source) {
  const Unit unit = ParseSource(source);
  std::vector<LintFinding> out;
  for (const Function& fn : unit.functions) {
    const FunctionFlow flow(fn);
    CheckBlockingSymmetricSend(file, flow, out);
    CheckCollectiveDivergence(file, flow, out);
    CheckCkptOutsideCollective(file, flow, out);
    CheckIntCountOverflow(file, flow, out);
    CheckTagMismatch(file, flow, out);
    CheckPutWithoutQuiet(file, flow, out);
    CheckOmpRules(file, fn.body, flow, out);
    CheckMissingPersist(file, flow, out);
  }
  std::sort(out.begin(), out.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return out;
}

Result<std::vector<LintFinding>> LintFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(path, buffer.str());
}

Result<std::vector<LintFinding>> LintTree(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".cpp" || ext == ".h") {
          files.push_back(entry.path().string());
        }
      }
      if (ec) return Internal("cannot walk " + root + ": " + ec.message());
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      return NotFound("lint root not found: " + root);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<LintFinding> all;
  for (const std::string& file : files) {
    auto findings = LintFile(file);
    if (!findings.ok()) return findings.status();
    for (auto& f : findings.value()) all.push_back(std::move(f));
  }
  return all;
}

Severity WorstSeverity(const std::vector<LintFinding>& findings) {
  Severity worst = Severity::kNote;
  for (const LintFinding& f : findings) {
    if (static_cast<int>(f.severity) > static_cast<int>(worst)) {
      worst = f.severity;
    }
  }
  return worst;
}

std::string RenderLintReport(const std::vector<LintFinding>& findings) {
  std::ostringstream oss;
  if (findings.empty()) {
    oss << "pstk-lint: clean (0 findings)\n";
    return oss.str();
  }
  oss << "pstk-lint: " << findings.size() << " finding(s)\n";
  std::map<std::string, int> by_rule;
  for (const LintFinding& f : findings) {
    oss << "  " << f.file << ":" << f.line << ": " << SeverityName(f.severity)
        << ": [" << f.rule << "] " << f.message << "\n";
    if (!f.fixit.empty()) oss << "      fix: " << f.fixit << "\n";
    ++by_rule[f.rule];
  }
  oss << "by rule:\n";
  for (const auto& [rule, count] : by_rule) {
    oss << "  " << rule << ": " << count << "\n";
  }
  return oss.str();
}

std::string RenderJson(const std::vector<LintFinding>& findings) {
  std::ostringstream oss;
  oss << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    oss << "  {\"rule\": \"" << EscapeJson(f.rule) << "\", \"file\": \""
        << EscapeJson(f.file) << "\", \"line\": " << f.line
        << ", \"severity\": \"" << SeverityName(f.severity)
        << "\", \"message\": \"" << EscapeJson(f.message)
        << "\", \"fixit\": \"" << EscapeJson(f.fixit) << "\"}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  oss << "]\n";
  return oss.str();
}

std::string RenderSarif(const std::vector<LintFinding>& findings) {
  std::ostringstream oss;
  oss << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"pstk-lint\",\n"
      << "          \"informationUri\": "
         "\"https://github.com/pstk/parastack\",\n"
      << "          \"version\": \"0.3.0\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = Rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    oss << "            {\"id\": \"" << r.slug
        << "\", \"shortDescription\": {\"text\": \"" << EscapeJson(r.summary)
        << "\"}, \"help\": {\"text\": \"" << EscapeJson(r.fix)
        << "\"}, \"defaultConfiguration\": {\"level\": \""
        << SeverityName(r.severity) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  oss << "          ]\n        }\n      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    std::size_t rule_index = rules.size();
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (f.rule == rules[r].slug) rule_index = r;
    }
    oss << "        {\"ruleId\": \"" << EscapeJson(f.rule) << "\"";
    if (rule_index < rules.size()) {
      oss << ", \"ruleIndex\": " << rule_index;
    }
    oss << ", \"level\": \"" << SeverityName(f.severity)
        << "\", \"message\": {\"text\": \"" << EscapeJson(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << EscapeJson(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  oss << "      ]\n    }\n  ]\n}\n";
  return oss.str();
}

std::vector<BaselineEntry> ParseBaseline(const std::string& text) {
  std::vector<BaselineEntry> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto fields = SplitNonEmpty(line, ' ');
    if (fields.empty()) continue;
    BaselineEntry entry;
    entry.rule = fields[0];
    if (fields.size() > 1) entry.path = fields[1];
    out.push_back(std::move(entry));
  }
  return out;
}

Result<std::vector<BaselineEntry>> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open baseline " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseBaseline(buffer.str());
}

std::string FormatBaseline(const std::vector<LintFinding>& findings) {
  std::set<std::string> lines;
  for (const LintFinding& f : findings) {
    lines.insert(f.rule + " " + f.file);
  }
  std::string out =
      "# pstk-lint baseline: `rule path` per line suppresses matching\n"
      "# findings (path matched by suffix). '#' starts a comment.\n";
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

namespace {

bool PathMatches(const std::string& file, const std::string& pattern) {
  if (pattern.empty()) return true;  // rule-wide suppression
  if (file == pattern) return true;
  if (!EndsWith(file, pattern)) return false;
  // Suffix must start at a path component ("fig4.cc" must not match
  // "notfig4.cc").
  const char before = file[file.size() - pattern.size() - 1];
  return before == '/' || pattern.front() == '/';
}

}  // namespace

std::vector<LintFinding> ApplyBaseline(
    std::vector<LintFinding> findings,
    const std::vector<BaselineEntry>& baseline, int* suppressed) {
  int dropped = 0;
  std::vector<LintFinding> kept;
  kept.reserve(findings.size());
  for (LintFinding& f : findings) {
    const bool matched = std::any_of(
        baseline.begin(), baseline.end(), [&](const BaselineEntry& e) {
          return e.rule == f.rule && PathMatches(f.file, e.path);
        });
    if (matched) {
      ++dropped;
    } else {
      kept.push_back(std::move(f));
    }
  }
  if (suppressed != nullptr) *suppressed = dropped;
  return kept;
}

}  // namespace pstk::analysis
