// Stage 3 of the pstk-lint pipeline: intra-procedural def-use analysis.
//
// For one Function (stage 2), builds:
//   * a variable table — parameters and local declarations with type,
//     initializer text, declaring loop depth, and every reaching write
//   * a linearized event stream — every call and return in statement
//     order, each with its enclosing loop depth and branch-condition stack
//   * derived value facts via fixpoint over initializers/writes:
//       - rank-derived: the value depends on the caller's own MPI rank /
//         SHMEM PE id (seeds: `rank`/`my_pe` words, `.rank()` calls)
//       - 64-bit-sized: the value carries a 64-bit size/offset type
//         (Bytes, size_t, int64_t, ...) or comes from `.size()`/`sizeof`
//
// Rule passes (lint.cc) query these instead of re-deriving structure from
// text, which is what kills the substring scanner's false positives.
#pragma once

#include <string>
#include <vector>

#include "analysis/parse.h"

namespace pstk::analysis {

/// True when `text` contains `word` bounded by non-identifier characters.
bool ContainsWord(const std::string& text, const std::string& word);

/// Cross-function facts fed back into per-function taint seeding by the
/// interprocedural layer (callgraph.cc): a call to a function listed in
/// `rank_fns` produces a rank-derived value, one in `wide_fns` a
/// 64-bit-sized value. Built by a program-level fixpoint; a plain
/// FunctionFlow without knowledge degrades to the PR-3 intra-procedural
/// behavior.
struct TaintKnowledge {
  std::vector<std::string> rank_fns;
  std::vector<std::string> wide_fns;
};

struct VarWrite {
  int line = 0;
  std::string rhs;     // compact right-hand-side text
  int loop_depth = 0;  // loop nesting at the write site
};

struct VarInfo {
  std::string name;
  std::string type;  // declared type text ("auto" included); "" for params
                     // only when unnamed
  std::string init;  // compact initializer text
  int decl_line = 0;
  int decl_loop_depth = 0;
  bool is_param = false;
  std::vector<VarWrite> writes;
};

struct BranchCtx {
  std::string cond;  // compact condition text
  int line = 0;
  bool rank_divergent = false;  // condition depends on rank / PE id
};

/// One call or return site in statement order.
struct FlowEvent {
  const Stmt* stmt = nullptr;
  const CallExpr* call = nullptr;  // null for a return statement
  int loop_depth = 0;
  std::vector<BranchCtx> branches;  // innermost last
  int order = 0;                    // linearized position in the function

  [[nodiscard]] bool InRankDivergentBranch() const {
    for (const BranchCtx& b : branches) {
      if (b.rank_divergent) return true;
    }
    return false;
  }
};

class FunctionFlow {
 public:
  /// `knowledge`, when given, must outlive the flow; it widens the taint
  /// seeds with rank-/wide-returning function names.
  explicit FunctionFlow(const Function& fn,
                        const TaintKnowledge* knowledge = nullptr);

  [[nodiscard]] const Function& fn() const { return *fn_; }

  /// Variable table lookup (params + locals); nullptr when unknown.
  [[nodiscard]] const VarInfo* Lookup(const std::string& name) const;
  [[nodiscard]] const std::vector<VarInfo>& vars() const { return vars_; }

  /// Calls and returns in statement order with loop/branch context.
  [[nodiscard]] const std::vector<FlowEvent>& events() const {
    return events_;
  }

  /// Every branch condition in the function (if/switch), in order.
  [[nodiscard]] const std::vector<BranchCtx>& branch_conds() const {
    return branch_conds_;
  }

  /// Expression mentions the caller's rank / PE id, directly (`rank`,
  /// `my_pe` words) or through a rank-derived variable.
  [[nodiscard]] bool IsRankDerived(const std::string& expr) const;

  /// Expression carries a 64-bit size: references a 64-bit-typed variable,
  /// a `size()` call, or `sizeof`.
  [[nodiscard]] bool Is64BitSized(const std::string& expr) const;

  /// Expression depends on `seed` (a parameter or variable name): mentions
  /// it directly or through a chain of local derivations (`n2 = n * 2;
  /// Send(buf, static_cast<int>(n2), ...)` depends on `n`). Used by the
  /// summary layer to map call arguments back onto parameters.
  [[nodiscard]] bool DependsOn(const std::string& expr,
                               const std::string& seed) const;

  /// Some branch condition compares against the `int` ceiling (INT_MAX,
  /// INT32_MAX, numeric_limits<int32>::max(), 2147483647) — the idiomatic
  /// guard before narrowing a 64-bit count.
  [[nodiscard]] bool HasIntMaxGuard() const;

  /// Statement-order uses of `name` (word match in statement text),
  /// excluding its declaration site.
  struct UseSite {
    int line = 0;
    int loop_depth = 0;
  };
  [[nodiscard]] std::vector<UseSite> UsesOf(const std::string& name) const;

  /// Any call whose receiver is `name` and whose method is in `methods`.
  [[nodiscard]] bool HasMethodCall(
      const std::string& name,
      const std::vector<std::string>& methods) const;

 private:
  struct StmtCtx {
    const Stmt* stmt;
    int loop_depth;
  };

  void Walk(const std::vector<Stmt>& body, int loop_depth,
            std::vector<BranchCtx>* branches);
  void ComputeDerived();
  [[nodiscard]] bool MentionsRank(const std::string& text) const;
  [[nodiscard]] bool MentionsWide(const std::string& text) const;

  const Function* fn_;
  const TaintKnowledge* know_ = nullptr;
  std::vector<VarInfo> vars_;
  std::vector<FlowEvent> events_;
  std::vector<BranchCtx> branch_conds_;
  std::vector<StmtCtx> stmts_;  // every statement, for use queries
  std::vector<std::string> rank_vars_;
  std::vector<std::string> wide_vars_;  // 64-bit-sized variables
  int order_ = 0;
};

}  // namespace pstk::analysis
