// Stage 1 of the pstk-lint pipeline: a C++-subset tokenizer.
//
// Produces a flat token stream with comments discarded and string/char
// literals kept as single opaque tokens, so no later stage can ever
// mistake the contents of a literal (or a comment) for code — the
// false-positive class the old line-substring scanner suffered from
// ("rank+1" inside a log message, "Send(" inside a comment).
//
// The subset understood:
//   * identifiers and numeric literals (with digit separators/suffixes)
//   * "..." / '...' literals with escapes, and raw strings
//     R"delim(...)delim" including encoding prefixes (LR, uR, UR, u8R)
//   * line and block comments (skipped, but line accounting is exact)
//   * preprocessor directives: `#pragma ...` survives as one kPragma token
//     carrying the whole directive text (backslash continuations folded);
//     every other directive becomes a kDirective token and is otherwise
//     opaque
//   * multi-character operators (::, ->, +=, <<, ...) as single kPunct
//     tokens, everything else as one-character punctuation
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pstk::analysis {

enum class TokKind : std::uint8_t {
  kIdent,      // identifier or keyword
  kNumber,     // numeric literal
  kString,     // "..." or R"(...)" — text includes the quotes
  kChar,       // '...'
  kPunct,      // operator / punctuation, possibly multi-character
  kPragma,     // a whole `#pragma ...` directive, continuations folded
  kDirective,  // any other preprocessor directive (opaque)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character

  [[nodiscard]] bool Is(TokKind k, const char* t) const {
    return kind == k && text == t;
  }
  [[nodiscard]] bool IsPunct(const char* t) const {
    return Is(TokKind::kPunct, t);
  }
  [[nodiscard]] bool IsIdent(const char* t) const {
    return Is(TokKind::kIdent, t);
  }
};

/// Tokenize C++-subset source text. Never fails: unrecognized bytes become
/// single-character punctuation tokens, unterminated literals end at EOF.
std::vector<Token> Tokenize(const std::string& source);

/// Integer value of a numeric literal token (decimal/hex/octal, optional
/// suffix and digit separators); nullopt for floats or non-numbers.
std::optional<long long> TokenIntValue(const Token& token);

/// Reassemble a token range into compact source-like text: a space is
/// inserted only where gluing two tokens together would merge them (both
/// identifier-like). `"static_cast" "<" "std::int32_t" ">" "(" "len" ")"`
/// renders as `static_cast<std::int32_t>(len)`.
std::string JoinTokens(const std::vector<Token>& tokens, std::size_t begin,
                       std::size_t end);

}  // namespace pstk::analysis
