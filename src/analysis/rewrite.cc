#include "analysis/rewrite.h"

#include <algorithm>
#include <sstream>

namespace pstk::analysis {

namespace {

std::vector<std::string> SplitLines(const std::string& source) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

std::string IndentOf(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.substr(0, i);
}

[[nodiscard]] bool EndsWithOpenBrace(const std::string& line) {
  for (auto it = line.rbegin(); it != line.rend(); ++it) {
    if (*it == ' ' || *it == '\t') continue;
    return *it == '{';
  }
  return false;
}

/// Indentation for an edit at 1-based `line`: the indentation of the first
/// replaced line when the edit replaces something, otherwise the previous
/// line's indentation (+2 when that line opens a block).
std::string EditIndent(const std::vector<std::string>& lines, int line,
                       int delete_lines) {
  const std::size_t at = static_cast<std::size_t>(line - 1);
  if (delete_lines > 0 && at < lines.size()) return IndentOf(lines[at]);
  if (at > 0 && at - 1 < lines.size()) {
    const std::string& prev = lines[at - 1];
    std::string indent = IndentOf(prev);
    if (EndsWithOpenBrace(prev)) indent += "  ";
    return indent;
  }
  return "";
}

}  // namespace

std::string ApplyEdits(const std::string& source, std::vector<TextEdit> edits,
                       std::vector<TextEdit>* applied,
                       std::vector<TextEdit>* skipped) {
  std::vector<std::string> lines = SplitLines(source);
  const bool trailing_newline =
      source.empty() || source.back() == '\n';

  std::stable_sort(edits.begin(), edits.end(),
                   [](const TextEdit& a, const TextEdit& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.delete_lines < b.delete_lines;
                   });

  // First pass: accept edits front-to-back, dropping range overlaps and
  // out-of-file targets. Two pure insertions at the same line would also
  // collide (ambiguous order), so the second is dropped too.
  std::vector<TextEdit> accepted;
  int next_free_line = 1;  // first line not covered by an accepted edit
  const int line_count = static_cast<int>(lines.size());
  for (TextEdit& e : edits) {
    const bool in_range =
        e.line >= 1 &&
        (e.delete_lines == 0 ? e.line <= line_count + 1
                             : e.line + e.delete_lines - 1 <= line_count);
    const bool overlaps = e.line < next_free_line;
    const bool no_op = e.delete_lines == 0 && e.text.empty();
    if (!in_range || overlaps || no_op) {
      if (skipped != nullptr) skipped->push_back(std::move(e));
      continue;
    }
    next_free_line = e.line + std::max(e.delete_lines, 1);
    accepted.push_back(std::move(e));
  }

  // Second pass: apply bottom-up so earlier line numbers stay valid.
  for (auto it = accepted.rbegin(); it != accepted.rend(); ++it) {
    const TextEdit& e = *it;
    const std::string indent = EditIndent(lines, e.line, e.delete_lines);
    std::vector<std::string> body;
    body.reserve(e.text.size());
    for (const std::string& t : e.text) {
      body.push_back(t.empty() ? t : indent + t);
    }
    const auto at = lines.begin() + (e.line - 1);
    lines.erase(at, at + e.delete_lines);
    lines.insert(lines.begin() + (e.line - 1), body.begin(), body.end());
  }
  if (applied != nullptr) {
    for (TextEdit& e : accepted) applied->push_back(std::move(e));
  }

  std::ostringstream os;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    os << lines[i];
    if (i + 1 < lines.size() || trailing_newline) os << "\n";
  }
  return os.str();
}

}  // namespace pstk::analysis
