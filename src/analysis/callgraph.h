// Interprocedural layer of pstk-lint: a whole-program call graph plus
// bottom-up function summaries over the stage-2 parse IR.
//
// Pipeline (Program::Analyze):
//   1. tokenize + parse every source; token streams are kept for the
//      SPSC channel-field scan (`SpscRing<T> name` declarations);
//   2. taint-knowledge fixpoint: every FunctionFlow is rebuilt with the
//      current set of rank-returning / wide-returning function names
//      until the sets stabilize — `int Partner() { return rank ^ 1; }`
//      makes a `Partner(...)` call a rank source in every caller;
//   3. call-edge resolution by method name (arity-preferred — see
//      Resolve); a lambda lifted as `outer::lambda#k` is linked to its
//      host function with a containment edge, conservatively treated as
//      a call (deferred lambdas count as invoked);
//   4. bottom-up summaries: monotone bool facts (transitively calls a
//      collective / blocking primitive / Checkpoint) via fixpoint over
//      call edges, parameter facts (count params, peer params) via a
//      second fixpoint, and per-function *collective sequences* via
//      memoized DFS where recursion, collectives under loops, non-tail
//      returns, and mismatched branch arms all degrade the sequence to
//      "unknown" rather than guessing.
//
// Soundness stance: intentionally unsound-but-useful. There is no
// virtual-dispatch resolution (every same-name definition is merged), no
// aliasing, and taint is textual. Every rule that consumes a summary
// treats "unknown" as "stay quiet", so imprecision costs recall, never
// false positives; DESIGN.md §analysis spells out the tradeoffs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/parse.h"
#include "analysis/token.h"

namespace pstk::analysis {

/// One translation unit handed to the whole-program analysis. `file` is
/// only used to label findings and related locations.
struct ProgramSource {
  std::string file;
  std::string source;
};

/// What a caller can learn about one function without looking inside it.
struct FunctionSummary {
  bool calls_collective = false;  // transitively reaches a collective
  bool calls_blocking = false;    // transitively reaches Wait/Recv/join/...
  bool calls_checkpoint = false;  // transitively reaches Checkpoint()

  bool returns_rank = false;  // return value is rank-derived
  bool returns_wide = false;  // return value is 64-bit-sized

  // First site *within this function* that establishes the corresponding
  // bool fact: a direct call, or the call that reaches one (so a related
  // location always points one hop down the wrapper chain). 0 when unset.
  int collective_line = 0;
  std::string collective_name;  // method name of the first collective
  int blocking_line = 0;
  std::string blocking_name;
  int checkpoint_line = 0;

  // Parameter indices that flow (possibly through further wrappers) into
  // an int-narrowed transfer count; narrow_line is the cast site (or the
  // forwarding call site) inside this function. An INT_MAX guard in the
  // function suppresses recording — the wrapper checks for its callers.
  std::vector<int> count_params;
  int narrow_line = 0;

  // Parameter indices that flow into the peer argument of a blocking
  // Send that has a matching Recv at or after it (the symmetric-exchange
  // shape); send_line is the Send (or forwarding call) site.
  std::vector<int> peer_params;
  int send_line = 0;

  // The ordered collective sequence every caller of this function
  // executes, when statically provable.
  bool sequence_known = true;
  std::vector<std::string> collective_seq;
};

class Program {
 public:
  struct FnEntry {
    std::string file;
    const Function* fn = nullptr;
    FunctionFlow flow;  // built with the final taint knowledge
    FunctionSummary summary;
    std::vector<int> callees;  // indices into fns(), deduplicated
  };

  /// A `SpscRing<T> name` declaration found by token scan (fields,
  /// locals, and reference parameters alike — any declared channel).
  struct SpscField {
    std::string name;
    std::string file;
    int line = 0;
  };

  /// Parse + analyze a whole program. Never fails; unparsable constructs
  /// degrade to missing information. `jobs` > 1 tokenizes and parses the
  /// files on that many threads; every later phase (and the result) is
  /// identical regardless of `jobs` — files land in fixed slots, so the
  /// analysis order never depends on thread scheduling.
  static Program Analyze(std::vector<ProgramSource> sources, int jobs = 1);

  Program(Program&&) = default;
  Program& operator=(Program&&) = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  [[nodiscard]] const std::vector<FnEntry>& fns() const { return fns_; }

  /// Candidate callee indices for a call: every definition whose name
  /// matches the call's method; when any candidate's parameter count
  /// matches the argument count, only those candidates are kept.
  [[nodiscard]] std::vector<int> Resolve(const CallExpr& call) const;

  /// Index of the first function named `name` (with `arity` parameters
  /// when arity >= 0); -1 when absent.
  [[nodiscard]] int Find(const std::string& name, int arity = -1) const;

  /// Indices transitively reachable from `fn` via call/containment
  /// edges, excluding `fn` itself unless it sits on a cycle.
  [[nodiscard]] std::vector<int> ReachableFrom(int fn) const;

  [[nodiscard]] const std::vector<SpscField>& spsc_fields() const {
    return spsc_fields_;
  }

  [[nodiscard]] const TaintKnowledge& knowledge() const { return *know_; }

  /// Collective sequence of a statement list with callee expansion;
  /// nullopt when not statically provable (a collective under a loop, a
  /// return statement, mismatched nested branch arms, recursion, or an
  /// unknown callee sequence).
  [[nodiscard]] std::optional<std::vector<std::string>> CollectiveSeqOf(
      const std::vector<Stmt>& stmts) const;

  /// Any call in the subtree that is a collective or resolves to a
  /// collective-reaching function. Returns the first such site (call
  /// line + collective name); nullopt when none.
  struct CollectiveSite {
    int line = 0;
    std::string name;
  };
  [[nodiscard]] std::optional<CollectiveSite> FirstCollectiveSite(
      const std::vector<Stmt>& stmts) const;

 private:
  Program() = default;

  struct FileUnit {
    std::string file;
    std::vector<Token> tokens;
    Unit unit;
  };

  std::vector<FileUnit> units_;
  std::vector<FnEntry> fns_;
  std::vector<SpscField> spsc_fields_;
  // Heap-allocated so FunctionFlow's knowledge pointer survives moves.
  std::unique_ptr<TaintKnowledge> know_;
};

// --- shared method classification ------------------------------------------
// One home for the method-name tables so the intra rules (lint.cc) and
// the summary layer can never disagree about what counts as what.

/// MPI/SHMEM/MPI-IO collective (Barrier, Allreduce, ReadAtAll, ...).
bool IsCollectiveMethod(const std::string& method);

/// Blocks the calling context (Wait, Recv, join, BlockOn, sleep_for...).
bool IsBlockingMethod(const std::string& method);

/// Index of the count argument of a point-to-point / MPI-IO transfer
/// method (`Send(buf, count, peer, tag)` -> 1); -1 for non-transfers.
int TransferCountArg(const std::string& method);

/// Operand text of the first int-narrowing cast in `arg` ("" when none).
std::string NarrowCastOperand(const std::string& arg);

}  // namespace pstk::analysis
