#include "analysis/dataflow.h"

#include <algorithm>
#include <cctype>

namespace pstk::analysis {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Words that directly denote the caller's own rank / PE id.
const char* const kRankWords[] = {"rank", "my_pe", "my_rank", "pe_id"};

/// Type words that carry 64-bit sizes/offsets in this codebase.
const char* const kWideTypeWords[] = {
    "Bytes",    "size_t",   "int64_t",  "uint64_t",   "ssize_t",
    "ptrdiff_t", "streamsize", "streamoff", "long",    "off_t",
};

bool TypeIsWide(const std::string& type) {
  for (const char* w : kWideTypeWords) {
    if (ContainsWord(type, w)) return true;
  }
  return false;
}

bool MentionsRankDirectly(const std::string& text) {
  for (const char* w : kRankWords) {
    if (ContainsWord(text, w)) return true;
  }
  return false;
}

bool MentionsWideDirectly(const std::string& text) {
  // `x.size()` / `file->size()` / `sizeof(...)` produce 64-bit sizes.
  if (ContainsWord(text, "sizeof")) return true;
  std::size_t pos = 0;
  while ((pos = text.find("size", pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const std::size_t end = pos + 4;
    if (left_ok && text.compare(end, 2, "()") == 0) return true;
    pos = end;
  }
  return false;
}

bool AnyVarWord(const std::string& text,
                const std::vector<std::string>& names) {
  return std::any_of(names.begin(), names.end(), [&](const std::string& n) {
    return ContainsWord(text, n);
  });
}

/// `text` invokes one of `fns` as a call (name word followed by '(').
bool CallsAnyFn(const std::string& text, const std::vector<std::string>& fns) {
  for (const std::string& f : fns) {
    std::size_t pos = 0;
    while ((pos = text.find(f, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
      const std::size_t end = pos + f.size();
      if (left_ok && end < text.size() && text[end] == '(') return true;
      pos = end;
    }
  }
  return false;
}

const char* const kGuardSentinels[] = {"INT_MAX", "INT32_MAX", "2147483647"};

bool IsIntMaxGuard(const std::string& cond) {
  for (const char* s : kGuardSentinels) {
    if (cond.find(s) != std::string::npos) return true;
  }
  return cond.find("numeric_limits") != std::string::npos &&
         cond.find("max") != std::string::npos;
}

}  // namespace

bool ContainsWord(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end == text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

FunctionFlow::FunctionFlow(const Function& fn, const TaintKnowledge* knowledge)
    : fn_(&fn), know_(knowledge) {
  for (const Param& p : fn.params) {
    if (p.name.empty()) continue;
    VarInfo v;
    v.name = p.name;
    v.type = p.type;
    v.decl_line = fn.line;
    v.is_param = true;
    vars_.push_back(std::move(v));
  }
  std::vector<BranchCtx> branches;
  Walk(fn.body, 0, &branches);
  ComputeDerived();
  // Derived facts are only complete after the walk; stamp divergence onto
  // the recorded branch contexts now. Status guards (`.ok()`) are treated
  // as rank-uniform even when the value is rank-tainted: the taint flows
  // through collective reads whose *content* differs per rank while the
  // error outcome is uniform, and flagging every error-handling path
  // would drown the genuinely divergent branches.
  const auto divergent = [this](const BranchCtx& b) {
    return b.cond.find(".ok()") == std::string::npos &&
           IsRankDerived(b.cond);
  };
  for (BranchCtx& b : branch_conds_) {
    b.rank_divergent = divergent(b);
  }
  for (FlowEvent& e : events_) {
    for (BranchCtx& b : e.branches) {
      b.rank_divergent = divergent(b);
    }
  }
}

void FunctionFlow::Walk(const std::vector<Stmt>& body, int loop_depth,
                        std::vector<BranchCtx>* branches) {
  for (const Stmt& s : body) {
    stmts_.push_back(StmtCtx{&s, loop_depth});

    if (!s.decl_name.empty()) {
      const bool known =
          std::any_of(vars_.begin(), vars_.end(),
                      [&](const VarInfo& v) { return v.name == s.decl_name; });
      if (!known) {
        VarInfo v;
        v.name = s.decl_name;
        v.type = s.decl_type;
        v.init = s.init_text;
        v.decl_line = s.line;
        v.decl_loop_depth = loop_depth;
        vars_.push_back(std::move(v));
      }
    }
    for (const Assign& a : s.assigns) {
      for (VarInfo& v : vars_) {
        if (v.name != a.name) continue;
        // Only the part after the operator reaches the variable; for our
        // text-level queries the whole statement text is the usable rhs.
        v.writes.push_back(VarWrite{a.line, s.text, loop_depth});
        break;
      }
    }

    for (const CallExpr& c : s.calls) {
      FlowEvent e;
      e.stmt = &s;
      e.call = &c;
      e.loop_depth = loop_depth;
      e.branches = *branches;
      e.order = order_++;
      events_.push_back(std::move(e));
    }
    if (s.kind == StmtKind::kReturn) {
      FlowEvent e;
      e.stmt = &s;
      e.loop_depth = loop_depth;
      e.branches = *branches;
      e.order = order_++;
      events_.push_back(std::move(e));
    }

    switch (s.kind) {
      case StmtKind::kLoop: {
        if (!s.induction_var.empty()) {
          const bool known = std::any_of(
              vars_.begin(), vars_.end(),
              [&](const VarInfo& v) { return v.name == s.induction_var; });
          if (!known) {
            VarInfo v;
            v.name = s.induction_var;
            v.type = s.induction_type;
            v.decl_line = s.line;
            v.decl_loop_depth = loop_depth + 1;
            vars_.push_back(std::move(v));
          }
        }
        Walk(s.children, loop_depth + 1, branches);
        break;
      }
      case StmtKind::kBranch: {
        branch_conds_.push_back(BranchCtx{s.text, s.line, false});
        branches->push_back(BranchCtx{s.text, s.line, false});
        Walk(s.children, loop_depth, branches);
        Walk(s.else_children, loop_depth, branches);
        branches->pop_back();
        break;
      }
      case StmtKind::kBlock:
        Walk(s.children, loop_depth, branches);
        break;
      default:
        break;
    }
  }
}

void FunctionFlow::ComputeDerived() {
  // Fixpoint over short derivation chains (right = rank+1; partner =
  // right^1; ...). Bounded by the variable count.
  bool changed = true;
  std::size_t guard = vars_.size() + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (const VarInfo& v : vars_) {
      const bool already_rank = AnyVarWord(v.name, rank_vars_);
      if (!already_rank) {
        bool rank = MentionsRank(v.name);
        if (!rank && MentionsRank(v.init)) rank = true;
        if (!rank && AnyVarWord(v.init, rank_vars_)) rank = true;
        for (const VarWrite& w : v.writes) {
          if (rank) break;
          if (MentionsRank(w.rhs) || AnyVarWord(w.rhs, rank_vars_)) {
            rank = true;
          }
        }
        if (rank) {
          rank_vars_.push_back(v.name);
          changed = true;
        }
      }
      const bool already_wide = AnyVarWord(v.name, wide_vars_);
      if (!already_wide) {
        bool wide = TypeIsWide(v.type);
        if (!wide && MentionsWide(v.init)) wide = true;
        if (!wide && AnyVarWord(v.init, wide_vars_)) wide = true;
        for (const VarWrite& w : v.writes) {
          if (wide) break;
          if (MentionsWide(w.rhs) || AnyVarWord(w.rhs, wide_vars_)) {
            wide = true;
          }
        }
        if (wide) {
          wide_vars_.push_back(v.name);
          changed = true;
        }
      }
    }
  }
}

const VarInfo* FunctionFlow::Lookup(const std::string& name) const {
  for (const VarInfo& v : vars_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

bool FunctionFlow::MentionsRank(const std::string& text) const {
  if (MentionsRankDirectly(text)) return true;
  return know_ != nullptr && CallsAnyFn(text, know_->rank_fns);
}

bool FunctionFlow::MentionsWide(const std::string& text) const {
  if (MentionsWideDirectly(text)) return true;
  return know_ != nullptr && CallsAnyFn(text, know_->wide_fns);
}

bool FunctionFlow::IsRankDerived(const std::string& expr) const {
  return MentionsRank(expr) || AnyVarWord(expr, rank_vars_);
}

bool FunctionFlow::Is64BitSized(const std::string& expr) const {
  return MentionsWide(expr) || AnyVarWord(expr, wide_vars_);
}

bool FunctionFlow::DependsOn(const std::string& expr,
                             const std::string& seed) const {
  std::vector<std::string> derived{seed};
  bool changed = true;
  std::size_t guard = vars_.size() + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (const VarInfo& v : vars_) {
      if (AnyVarWord(v.name, derived)) continue;
      bool dep = AnyVarWord(v.init, derived);
      for (const VarWrite& w : v.writes) {
        if (dep) break;
        dep = AnyVarWord(w.rhs, derived);
      }
      if (dep) {
        derived.push_back(v.name);
        changed = true;
      }
    }
  }
  return AnyVarWord(expr, derived);
}

bool FunctionFlow::HasIntMaxGuard() const {
  return std::any_of(
      branch_conds_.begin(), branch_conds_.end(),
      [](const BranchCtx& b) { return IsIntMaxGuard(b.cond); });
}

std::vector<FunctionFlow::UseSite> FunctionFlow::UsesOf(
    const std::string& name) const {
  std::vector<UseSite> out;
  for (const StmtCtx& c : stmts_) {
    if (c.stmt->decl_name == name && !ContainsWord(c.stmt->init_text, name)) {
      continue;  // the declaration itself is not a use
    }
    if (ContainsWord(c.stmt->text, name)) {
      out.push_back(UseSite{c.stmt->line, c.loop_depth});
    }
  }
  return out;
}

bool FunctionFlow::HasMethodCall(
    const std::string& name, const std::vector<std::string>& methods) const {
  return std::any_of(events_.begin(), events_.end(), [&](const FlowEvent& e) {
    return e.call != nullptr && e.call->receiver == name &&
           std::find(methods.begin(), methods.end(), e.call->method) !=
               methods.end();
  });
}

}  // namespace pstk::analysis
