// Machine-applicable text edits for pstk-lint findings (`--fix`).
//
// Edits are deliberately line-grained: the structural parser keeps
// statement line spans (Stmt::line / Stmt::end_line) but not column
// offsets, and every fix the rules emit — hoist a collective out of a
// branch, fuse a Send/Recv pair into Sendrecv, insert a shmem Quiet(),
// widen a narrowing cast — is naturally a whole-line replacement or
// insertion. Replacement text is stored *unindented*; indentation is
// derived at apply time from the surrounding lines, so a fix composed
// from compact statement text lands at the right depth regardless of
// where the finding sat.
//
// ApplyEdits is total and conservative: edits are sorted, overlapping
// edits are dropped (first by line order wins), and out-of-range edits
// are skipped — applying fixes never corrupts a file, it only fixes
// less. lint_main re-lints after applying and reports any finding that
// survived its own fix, which keeps `--fix` idempotent.
#pragma once

#include <string>
#include <vector>

namespace pstk::analysis {

/// One line-granular edit: replace `delete_lines` lines starting at
/// 1-based `line` with `text` (0 delete_lines = pure insertion before
/// `line`). `text` lines carry no leading indentation.
struct TextEdit {
  std::string file;
  int line = 1;
  int delete_lines = 0;
  std::vector<std::string> text;
  std::string note;  // short human description, shown by --fix=dry-run

  friend bool operator==(const TextEdit&, const TextEdit&) = default;
};

/// Applies `edits` (all for one file) to `source`, returning the new
/// content. Edits are applied bottom-up after sorting by line; an edit
/// whose line range overlaps an already-accepted edit, or which falls
/// outside the file, is skipped. `applied` / `skipped` (optional)
/// receive the accepted and dropped edits.
std::string ApplyEdits(const std::string& source,
                       std::vector<TextEdit> edits,
                       std::vector<TextEdit>* applied = nullptr,
                       std::vector<TextEdit>* skipped = nullptr);

}  // namespace pstk::analysis
