#include "analysis/callgraph.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>

namespace pstk::analysis {

namespace {

const char* const kCollectives[] = {
    "Reduce",     "Allreduce",      "AllReduce", "Allgather", "AllGather",
    "Gather",     "Scatter",        "Alltoall",  "AllToAll",  "Barrier",
    "BarrierAll", "Broadcast",      "BroadcastAll", "Bcast",  "OpenAll",
    "ReadAtAll",  "ReadLinesAtAll", "WriteAtAll", "Scan",     "ReduceAll",
};

const char* const kBlocking[] = {
    "Wait", "WaitFor", "WaitAll", "wait", "wait_for", "BlockOn",
    "Join", "join",    "sleep_for", "sleep_until", "Recv",
};

struct TransferSpec {
  const char* method;
  int count_arg;
};

// `Send(buf, count, peer, tag)` style transfers and the MPI-IO at-offset
// family (`ReadAt(file, offset, count)`): where the int count sits.
const TransferSpec kTransfers[] = {
    {"Send", 1},      {"Isend", 1},      {"Recv", 1},
    {"Irecv", 1},     {"ReadAt", 2},     {"WriteAt", 2},
    {"ReadAtAll", 2}, {"WriteAtAll", 2}, {"ReadLinesAtAll", 2},
};

const char* const kNarrowCasts[] = {
    "static_cast<int>(",           "static_cast<std::int32_t>(",
    "static_cast<int32_t>(",       "static_cast<std::uint32_t>(",
    "static_cast<uint32_t>(",      "static_cast<unsigned>(",
    "static_cast<unsigned int>(",
};

/// Scan a token stream for `SpscRing<...> name` declarations. The `<`
/// right after the ring type distinguishes declarations from the class
/// definition and constructor calls; the declared name is the first
/// identifier followed by a declarator terminator before the statement
/// ends.
void ScanSpscDecls(const std::string& file, const std::vector<Token>& tokens,
                   std::vector<Program::SpscField>* out) {
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!(tokens[i].kind == TokKind::kIdent && tokens[i].text == "SpscRing")) {
      continue;
    }
    if (!tokens[i + 1].IsPunct("<")) continue;
    for (std::size_t j = i + 2; j + 1 < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.IsPunct(";") || t.IsPunct("{") || t.IsPunct("}")) break;
      if (t.kind != TokKind::kIdent) continue;
      const Token& next = tokens[j + 1];
      if (next.IsPunct(";") || next.IsPunct("=") || next.IsPunct("(") ||
          next.IsPunct(",") || next.IsPunct(")") || next.IsPunct("{")) {
        out->push_back(Program::SpscField{t.text, file, t.line});
        break;
      }
    }
  }
}

/// Eligible for taint-knowledge / call-edge matching by name: lambdas
/// (`outer::lambda#k`) can never be named in call text, and `main` is
/// never a wrapper.
bool Nameable(const Function& fn) {
  return !fn.is_lambda && fn.name != "main";
}

}  // namespace

bool IsCollectiveMethod(const std::string& method) {
  return std::any_of(std::begin(kCollectives), std::end(kCollectives),
                     [&](const char* n) { return method == n; });
}

bool IsBlockingMethod(const std::string& method) {
  return std::any_of(std::begin(kBlocking), std::end(kBlocking),
                     [&](const char* n) { return method == n; });
}

int TransferCountArg(const std::string& method) {
  for (const TransferSpec& t : kTransfers) {
    if (method == t.method) return t.count_arg;
  }
  return -1;
}

std::string NarrowCastOperand(const std::string& arg) {
  for (const char* cast : kNarrowCasts) {
    const std::size_t at = arg.find(cast);
    if (at == std::string::npos) continue;
    const std::size_t open = at + std::char_traits<char>::length(cast) - 1;
    int depth = 0;
    for (std::size_t j = open; j < arg.size(); ++j) {
      if (arg[j] == '(') ++depth;
      if (arg[j] == ')' && --depth == 0) {
        return arg.substr(open + 1, j - open - 1);
      }
    }
  }
  return "";
}

std::vector<int> Program::Resolve(const CallExpr& call) const {
  std::vector<int> by_name;
  std::vector<int> by_arity;
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    const FnEntry& e = fns_[i];
    if (!Nameable(*e.fn) || e.fn->name != call.method) continue;
    by_name.push_back(static_cast<int>(i));
    if (e.fn->params.size() == call.args.size()) {
      by_arity.push_back(static_cast<int>(i));
    }
  }
  return by_arity.empty() ? by_name : by_arity;
}

int Program::Find(const std::string& name, int arity) const {
  for (std::size_t i = 0; i < fns_.size(); ++i) {
    if (fns_[i].fn->name != name) continue;
    if (arity >= 0 &&
        fns_[i].fn->params.size() != static_cast<std::size_t>(arity)) {
      continue;
    }
    return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Program::ReachableFrom(int fn) const {
  std::vector<char> seen(fns_.size(), 0);
  std::vector<int> stack{fn};
  std::vector<int> out;
  while (!stack.empty()) {
    const int at = stack.back();
    stack.pop_back();
    for (int c : fns_[static_cast<std::size_t>(at)].callees) {
      if (seen[static_cast<std::size_t>(c)] != 0) continue;
      seen[static_cast<std::size_t>(c)] = 1;
      out.push_back(c);
      stack.push_back(c);
    }
  }
  return out;
}

namespace {

/// Memoized bottom-up collective-sequence solver; also the shared
/// statement-list walker Program::CollectiveSeqOf reuses post-analysis.
/// `Walk` returns kReturned when control provably leaves the function at
/// the end of the list (a tail `return` is fine as long as both branch
/// arms agree), kUnknown when the sequence is not statically provable.
class SeqSolver {
 public:
  enum class WalkRes { kOk, kReturned, kUnknown };
  enum class FnState : char { kUnvisited, kInProgress, kDone };

  /// In read mode every function starts kDone, so FnSeq only reads the
  /// stored (final) summaries and never mutates anything.
  SeqSolver(const std::vector<Program::FnEntry>& fns, const Program& prog,
            bool read_summaries = false)
      : fns_(fns),
        prog_(prog),
        state_(fns.size(),
               read_summaries ? FnState::kDone : FnState::kUnvisited) {}

  /// Sequence of function `idx`; nullptr when unknown (including any
  /// recursion through `idx`).
  const std::vector<std::string>* FnSeq(int idx) {
    // Mutation only happens in solve mode, where the caller (Analyze)
    // owns the entries non-const; read mode never reaches the writes.
    auto& entry = const_cast<Program::FnEntry&>(
        fns_[static_cast<std::size_t>(idx)]);
    FnState& st = state_[static_cast<std::size_t>(idx)];
    if (st == FnState::kInProgress) return nullptr;  // cycle -> unknown
    if (st == FnState::kDone) {
      return entry.summary.sequence_known ? &entry.summary.collective_seq
                                          : nullptr;
    }
    st = FnState::kInProgress;
    std::vector<std::string> seq;
    const WalkRes r = Walk(entry.fn->body, &seq);
    st = FnState::kDone;
    entry.summary.sequence_known = r != WalkRes::kUnknown;
    entry.summary.collective_seq =
        entry.summary.sequence_known ? std::move(seq)
                                     : std::vector<std::string>{};
    return entry.summary.sequence_known ? &entry.summary.collective_seq
                                        : nullptr;
  }

  void SolveAll() {
    for (std::size_t i = 0; i < fns_.size(); ++i) {
      FnSeq(static_cast<int>(i));
    }
  }

  WalkRes Walk(const std::vector<Stmt>& stmts,
               std::vector<std::string>* seq) {
    for (const Stmt& s : stmts) {
      // Calls in the statement (or loop/branch header) run first.
      if (s.kind != StmtKind::kLoop) {
        for (const CallExpr& c : s.calls) {
          if (!AppendCall(c, seq)) return WalkRes::kUnknown;
        }
      }
      switch (s.kind) {
        case StmtKind::kReturn:
          // Nothing after this statement executes; the caller-side
          // branch matching checks both arms agree on returning.
          return WalkRes::kReturned;
        case StmtKind::kLoop: {
          // A collective whose repetition count we cannot prove makes
          // the sequence unknown; a collective-free loop is skippable.
          bool header_collective = std::any_of(
              s.calls.begin(), s.calls.end(), [&](const CallExpr& c) {
                return CallReachesCollective(c);
              });
          if (header_collective || SubtreeReaches(s.children)) {
            return WalkRes::kUnknown;
          }
          break;
        }
        case StmtKind::kBranch: {
          std::vector<std::string> then_seq;
          std::vector<std::string> else_seq;
          const WalkRes tr = Walk(s.children, &then_seq);
          const WalkRes er = Walk(s.else_children, &else_seq);
          if (tr == WalkRes::kUnknown || er == WalkRes::kUnknown) {
            return WalkRes::kUnknown;
          }
          if (tr != er || then_seq != else_seq) return WalkRes::kUnknown;
          seq->insert(seq->end(), then_seq.begin(), then_seq.end());
          if (tr == WalkRes::kReturned) return WalkRes::kReturned;
          break;
        }
        case StmtKind::kBlock: {
          const WalkRes r = Walk(s.children, seq);
          if (r != WalkRes::kOk) return r;
          break;
        }
        default:
          break;
      }
    }
    return WalkRes::kOk;
  }

  bool CallReachesCollective(const CallExpr& c) {
    if (IsCollectiveMethod(c.method)) return true;
    for (int idx : prog_.Resolve(c)) {
      const std::vector<std::string>* sub = FnSeq(idx);
      if (sub != nullptr && !sub->empty()) return true;
      if (fns_[static_cast<std::size_t>(idx)].summary.calls_collective) {
        return true;
      }
    }
    return false;
  }

  bool SubtreeReaches(const std::vector<Stmt>& stmts) {
    bool found = false;
    ForEachStmt(stmts, [&](const Stmt& s) {
      if (found) return;
      for (const CallExpr& c : s.calls) {
        if (CallReachesCollective(c)) {
          found = true;
          return;
        }
      }
    });
    return found;
  }

 private:
  /// Append a single call's collective contribution. A collective method
  /// name contributes itself (never expanded further — `comm.Barrier()`
  /// is a Barrier even when a local definition of Barrier is in scope);
  /// a call resolving to local definitions contributes their common
  /// sequence, or poisons the walk when the candidates disagree.
  bool AppendCall(const CallExpr& c, std::vector<std::string>* seq) {
    if (IsCollectiveMethod(c.method)) {
      seq->push_back(c.method);
      return true;
    }
    const std::vector<std::string>* agreed = nullptr;
    for (int idx : prog_.Resolve(c)) {
      const std::vector<std::string>* sub = FnSeq(idx);
      if (sub == nullptr) {
        // Unknown callee sequence only matters if it might contain a
        // collective at all.
        if (fns_[static_cast<std::size_t>(idx)].summary.calls_collective ||
            !fns_[static_cast<std::size_t>(idx)]
                 .summary.sequence_known) {
          return false;
        }
        continue;
      }
      if (agreed == nullptr) {
        agreed = sub;
      } else if (*agreed != *sub) {
        return false;
      }
    }
    if (agreed != nullptr) {
      seq->insert(seq->end(), agreed->begin(), agreed->end());
    }
    return true;
  }

  const std::vector<Program::FnEntry>& fns_;
  const Program& prog_;
  std::vector<FnState> state_;
};

}  // namespace

std::optional<std::vector<std::string>> Program::CollectiveSeqOf(
    const std::vector<Stmt>& stmts) const {
  // Summaries are final after Analyze: a read-mode solver only consults
  // them, it never recomputes.
  SeqSolver reader(fns_, *this, /*read_summaries=*/true);
  std::vector<std::string> out;
  const SeqSolver::WalkRes r = reader.Walk(stmts, &out);
  if (r == SeqSolver::WalkRes::kUnknown) return std::nullopt;
  return out;
}

std::optional<Program::CollectiveSite> Program::FirstCollectiveSite(
    const std::vector<Stmt>& stmts) const {
  std::optional<CollectiveSite> found;
  ForEachStmt(stmts, [&](const Stmt& s) {
    if (found.has_value()) return;
    for (const CallExpr& c : s.calls) {
      if (IsCollectiveMethod(c.method)) {
        found = CollectiveSite{c.line, c.method};
        return;
      }
      for (int idx : Resolve(c)) {
        const FnEntry& callee = fns_[static_cast<std::size_t>(idx)];
        if (callee.summary.calls_collective) {
          const std::string& name = callee.summary.collective_name;
          found = CollectiveSite{c.line, name.empty() ? c.method : name};
          return;
        }
      }
    }
  });
  return found;
}

Program Program::Analyze(std::vector<ProgramSource> sources, int jobs) {
  Program p;
  p.know_ = std::make_unique<TaintKnowledge>();
  // Tokenize + parse are per-file pure work; with jobs > 1 a worker pool
  // claims file indices off an atomic counter and writes into fixed slots,
  // so the unit order (and every downstream phase) is scheduling-free.
  p.units_.resize(sources.size());
  const auto build_one = [&](std::size_t i) {
    FileUnit& fu = p.units_[i];
    fu.file = std::move(sources[i].file);
    fu.tokens = Tokenize(sources[i].source);
    fu.unit = ParseUnit(fu.tokens);
  };
  const std::size_t workers = std::min<std::size_t>(
      jobs > 1 ? static_cast<std::size_t>(jobs) : 1, sources.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < sources.size(); ++i) build_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < p.units_.size();
             i = next.fetch_add(1)) {
          build_one(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  for (const FileUnit& fu : p.units_) {
    ScanSpscDecls(fu.file, fu.tokens, &p.spsc_fields_);
  }

  // --- phase 2: taint-knowledge fixpoint ---------------------------------
  // Rebuild every flow with the current rank/wide function-name sets until
  // they stabilize. Chains like `Partner() { return Left(rank); }` need
  // one extra round per wrapper level; 8 rounds cover any sane depth.
  std::set<std::string> rank_fns;
  std::set<std::string> wide_fns;
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (const FileUnit& fu : p.units_) {
      for (const Function& fn : fu.unit.functions) {
        if (!Nameable(fn)) continue;
        const FunctionFlow flow(fn, p.know_.get());
        bool returns_rank = false;
        bool returns_wide = false;
        for (const FlowEvent& e : flow.events()) {
          if (e.call != nullptr || e.stmt->kind != StmtKind::kReturn) {
            continue;
          }
          if (flow.IsRankDerived(e.stmt->text)) returns_rank = true;
          if (flow.Is64BitSized(e.stmt->text)) returns_wide = true;
        }
        if (returns_rank && rank_fns.insert(fn.name).second) changed = true;
        if (returns_wide && wide_fns.insert(fn.name).second) changed = true;
      }
    }
    p.know_->rank_fns.assign(rank_fns.begin(), rank_fns.end());
    p.know_->wide_fns.assign(wide_fns.begin(), wide_fns.end());
    if (!changed) break;
  }

  // --- final flows + direct summary facts --------------------------------
  for (const FileUnit& fu : p.units_) {
    for (const Function& fn : fu.unit.functions) {
      FnEntry e{fu.file, &fn, FunctionFlow(fn, p.know_.get()),
                FunctionSummary{}, {}};
      e.summary.returns_rank = rank_fns.count(fn.name) != 0;
      e.summary.returns_wide = wide_fns.count(fn.name) != 0;
      for (const FlowEvent& ev : e.flow.events()) {
        if (ev.call == nullptr) continue;
        if (IsCollectiveMethod(ev.call->method) &&
            !e.summary.calls_collective) {
          e.summary.calls_collective = true;
          e.summary.collective_line = ev.call->line;
          e.summary.collective_name = ev.call->method;
        }
        if (IsBlockingMethod(ev.call->method) && !e.summary.calls_blocking) {
          e.summary.calls_blocking = true;
          e.summary.blocking_line = ev.call->line;
          e.summary.blocking_name = ev.call->method;
        }
        if (ev.call->method == "Checkpoint" && !e.summary.calls_checkpoint) {
          e.summary.calls_checkpoint = true;
          e.summary.checkpoint_line = ev.call->line;
        }
      }
      p.fns_.push_back(std::move(e));
    }
  }

  // --- phase 3: call edges -----------------------------------------------
  for (std::size_t i = 0; i < p.fns_.size(); ++i) {
    FnEntry& e = p.fns_[i];
    std::set<int> edges;
    for (const FlowEvent& ev : e.flow.events()) {
      if (ev.call == nullptr) continue;
      for (int idx : p.Resolve(*ev.call)) edges.insert(idx);
    }
    // Containment: a lambda lifted out of this function is treated as
    // called by it (deferred bodies count — conservative by design).
    const std::string prefix = e.fn->name + "::lambda#";
    for (std::size_t j = 0; j < p.fns_.size(); ++j) {
      if (p.fns_[j].file == e.file && p.fns_[j].fn->is_lambda &&
          p.fns_[j].fn->name.compare(0, prefix.size(), prefix) == 0) {
        edges.insert(static_cast<int>(j));
      }
    }
    e.callees.assign(edges.begin(), edges.end());
  }

  // --- phase 4a: transitive bool facts -----------------------------------
  bool changed = true;
  while (changed) {
    changed = false;
    for (FnEntry& e : p.fns_) {
      for (int c : e.callees) {
        const FunctionSummary& cs =
            p.fns_[static_cast<std::size_t>(c)].summary;
        if (cs.calls_collective && !e.summary.calls_collective) {
          e.summary.calls_collective = true;
          changed = true;
        }
        if (cs.calls_blocking && !e.summary.calls_blocking) {
          e.summary.calls_blocking = true;
          changed = true;
        }
        if (cs.calls_checkpoint && !e.summary.calls_checkpoint) {
          e.summary.calls_checkpoint = true;
          changed = true;
        }
      }
    }
  }
  // Fill in the first site that establishes each transitive fact.
  for (FnEntry& e : p.fns_) {
    for (const FlowEvent& ev : e.flow.events()) {
      if (ev.call == nullptr) continue;
      const bool need_coll =
          e.summary.calls_collective && e.summary.collective_line == 0;
      const bool need_block =
          e.summary.calls_blocking && e.summary.blocking_line == 0;
      const bool need_ckpt =
          e.summary.calls_checkpoint && e.summary.checkpoint_line == 0;
      if (!need_coll && !need_block && !need_ckpt) break;
      for (int idx : p.Resolve(*ev.call)) {
        const FunctionSummary& cs =
            p.fns_[static_cast<std::size_t>(idx)].summary;
        if (need_coll && cs.calls_collective &&
            e.summary.collective_line == 0) {
          e.summary.collective_line = ev.call->line;
          e.summary.collective_name = cs.collective_name.empty()
                                          ? ev.call->method
                                          : cs.collective_name;
        }
        if (need_block && cs.calls_blocking && e.summary.blocking_line == 0) {
          e.summary.blocking_line = ev.call->line;
          e.summary.blocking_name = cs.blocking_name.empty()
                                        ? ev.call->method
                                        : cs.blocking_name;
        }
        if (need_ckpt && cs.calls_checkpoint &&
            e.summary.checkpoint_line == 0) {
          e.summary.checkpoint_line = ev.call->line;
        }
      }
    }
    // A fact carried only by a contained lambda has no resolvable call
    // event. The lambda body was lifted out of this very function, so
    // its first site is a genuine line of this function's file.
    const std::string lambda_prefix = e.fn->name + "::lambda#";
    for (int c : e.callees) {
      const FnEntry& ce = p.fns_[static_cast<std::size_t>(c)];
      if (ce.fn->name.compare(0, lambda_prefix.size(), lambda_prefix) != 0) {
        continue;
      }
      const FunctionSummary& cs = ce.summary;
      if (e.summary.calls_collective && e.summary.collective_line == 0 &&
          cs.collective_line != 0) {
        e.summary.collective_line = cs.collective_line;
        e.summary.collective_name = cs.collective_name;
      }
      if (e.summary.calls_blocking && e.summary.blocking_line == 0 &&
          cs.blocking_line != 0) {
        e.summary.blocking_line = cs.blocking_line;
        e.summary.blocking_name = cs.blocking_name;
      }
      if (e.summary.calls_checkpoint && e.summary.checkpoint_line == 0 &&
          cs.checkpoint_line != 0) {
        e.summary.checkpoint_line = cs.checkpoint_line;
      }
    }
  }

  // --- phase 4b: parameter facts (count + peer params) -------------------
  changed = true;
  while (changed) {
    changed = false;
    for (FnEntry& e : p.fns_) {
      if (e.flow.HasIntMaxGuard()) continue;  // guard blesses the wrapper
      for (const FlowEvent& ev : e.flow.events()) {
        if (ev.call == nullptr) continue;
        // Candidate count positions: the transfer table, plus callee
        // count params one level down.
        std::set<int> positions;
        const int direct = TransferCountArg(ev.call->method);
        if (direct >= 0) positions.insert(direct);
        std::set<int> peer_positions;
        for (int idx : p.Resolve(*ev.call)) {
          const FunctionSummary& cs =
              p.fns_[static_cast<std::size_t>(idx)].summary;
          for (int cp : cs.count_params) positions.insert(cp);
          for (int pp : cs.peer_params) peer_positions.insert(pp);
        }
        for (int pos : positions) {
          if (pos < 0 ||
              static_cast<std::size_t>(pos) >= ev.call->args.size()) {
            continue;
          }
          const std::string& arg = ev.call->args[static_cast<std::size_t>(
              pos)];
          std::string expr = NarrowCastOperand(arg);
          if (direct == pos && expr.empty()) continue;  // no cast, no hazard
          if (expr.empty()) expr = arg;
          for (std::size_t pi = 0; pi < e.fn->params.size(); ++pi) {
            const std::string& pname = e.fn->params[pi].name;
            if (pname.empty() || !e.flow.DependsOn(expr, pname)) continue;
            // Only a 64-bit-sized parameter makes this the wrapper shape
            // (the caller supplies the overflowing count); a Comm& the
            // count merely mentions is not a count source.
            if (!e.flow.Is64BitSized(pname)) continue;
            const int pidx = static_cast<int>(pi);
            if (std::find(e.summary.count_params.begin(),
                          e.summary.count_params.end(),
                          pidx) == e.summary.count_params.end()) {
              e.summary.count_params.push_back(pidx);
              if (e.summary.narrow_line == 0) {
                e.summary.narrow_line = ev.call->line;
              }
              changed = true;
            }
          }
        }
        // Peer flow: a blocking Send with a Recv at-or-after it, or a
        // forwarded call into a function with peer params.
        const bool direct_send =
            ev.call->method == "Send" &&
            std::any_of(e.flow.events().begin(), e.flow.events().end(),
                        [&](const FlowEvent& r) {
                          return r.call != nullptr &&
                                 r.call->method == "Recv" &&
                                 r.order >= ev.order;
                        });
        if (direct_send) {
          for (std::size_t ai = 1; ai < ev.call->args.size(); ++ai) {
            peer_positions.insert(static_cast<int>(ai));
          }
        }
        for (int pos : peer_positions) {
          if (pos < 0 ||
              static_cast<std::size_t>(pos) >= ev.call->args.size()) {
            continue;
          }
          // The transfer count position is never the peer.
          if (direct_send && pos == TransferCountArg("Send")) continue;
          const std::string& arg = ev.call->args[static_cast<std::size_t>(
              pos)];
          for (std::size_t pi = 0; pi < e.fn->params.size(); ++pi) {
            const std::string& pname = e.fn->params[pi].name;
            if (pname.empty() || !e.flow.DependsOn(arg, pname)) continue;
            // A rank-derived peer is the *intra* rule's business; the
            // summary records pure parameter flow.
            const int pidx = static_cast<int>(pi);
            if (std::find(e.summary.peer_params.begin(),
                          e.summary.peer_params.end(),
                          pidx) == e.summary.peer_params.end()) {
              e.summary.peer_params.push_back(pidx);
              if (e.summary.send_line == 0) {
                e.summary.send_line = ev.call->line;
              }
              changed = true;
            }
          }
        }
      }
    }
  }
  for (FnEntry& e : p.fns_) {
    std::sort(e.summary.count_params.begin(), e.summary.count_params.end());
    std::sort(e.summary.peer_params.begin(), e.summary.peer_params.end());
  }

  // --- phase 4c: collective sequences ------------------------------------
  SeqSolver solver(p.fns_, p);
  solver.SolveAll();

  return p;
}

}  // namespace pstk::analysis
