// pstk-lint driver: scan source trees for cross-paradigm misuse patterns
// (see lint.h for the rules).
//
//   ./build/src/analysis/pstk-lint [options] [path...]
//
// Options:
//   --format=text|json|sarif   output format (default: text report)
//   --baseline=<file>          suppress findings listed in <file>
//                              (`rule path` per line, `#` comments)
//   --fail-on=error|warning|none
//                              exit 1 when a finding at or above this
//                              severity survives the baseline
//                              (default: none — findings never fail)
//   --write-baseline           print ALL current findings in baseline
//                              format (suppressions are NOT applied —
//                              the output replaces the baseline). When
//                              --baseline=<file> is also given, that
//                              file's leading comment block is carried
//                              over so regeneration diffs cleanly
//   --explain=<rule>           print the rule's severity, summary, and
//                              fix hint, then exit
//
// With no paths, scans the repo's examples/, bench/, and src/ trees.
// Exit codes: 0 clean or below threshold, 1 findings at/above --fail-on,
// 2 usage or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "common/strings.h"

namespace {

using pstk::analysis::LintFinding;
using pstk::analysis::Severity;

/// SARIF/report paths read better repo-relative; strip the build-time
/// repo prefix when a scanned path lives under it.
void MakeRepoRelative(std::vector<LintFinding>& findings) {
#ifdef PSTK_REPO_ROOT
  const std::string prefix = std::string(PSTK_REPO_ROOT) + "/";
  const auto strip = [&](std::string& path) {
    if (pstk::StartsWith(path, prefix)) path = path.substr(prefix.size());
  };
  for (LintFinding& f : findings) {
    strip(f.file);
    for (pstk::analysis::RelatedLocation& r : f.related) strip(r.file);
  }
#else
  (void)findings;
#endif
}

/// Leading comment block ('#' lines and blanks before the first entry) of
/// an existing baseline file; "" when the file is absent or starts with
/// an entry.
std::string BaselineHeader(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string header;
  std::string line;
  while (std::getline(in, line)) {
    const bool comment_or_blank =
        line.empty() || line[0] == '#' ||
        line.find_first_not_of(" \t") == std::string::npos;
    if (!comment_or_blank) break;
    header += line;
    header += '\n';
  }
  return header;
}

int Explain(const std::string& slug) {
  for (const pstk::analysis::RuleInfo& r : pstk::analysis::Rules()) {
    if (slug != r.slug) continue;
    std::printf("%s (%s)\n  %s\n  fix: %s\n", r.slug,
                pstk::analysis::SeverityName(r.severity), r.summary, r.fix);
    return 0;
  }
  std::fprintf(stderr, "pstk-lint: unknown rule '%s'; known rules:\n",
               slug.c_str());
  for (const pstk::analysis::RuleInfo& r : pstk::analysis::Rules()) {
    std::fprintf(stderr, "  %s\n", r.slug);
  }
  return 2;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pstk-lint [--format=text|json|sarif] "
               "[--baseline=<file>] [--fail-on=error|warning|none] "
               "[--write-baseline] [--explain=<rule>] [path...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string baseline_path;
  std::string fail_on = "none";
  bool write_baseline = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (pstk::StartsWith(arg, "--format=")) {
      format = arg.substr(std::strlen("--format="));
      if (format != "text" && format != "json" && format != "sarif") {
        return Usage();
      }
    } else if (pstk::StartsWith(arg, "--baseline=")) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else if (pstk::StartsWith(arg, "--fail-on=")) {
      fail_on = arg.substr(std::strlen("--fail-on="));
      if (fail_on != "error" && fail_on != "warning" && fail_on != "none") {
        return Usage();
      }
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (pstk::StartsWith(arg, "--explain=")) {
      return Explain(arg.substr(std::strlen("--explain=")));
    } else if (pstk::StartsWith(arg, "--")) {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
#ifdef PSTK_REPO_ROOT
    roots = {std::string(PSTK_REPO_ROOT) + "/examples",
             std::string(PSTK_REPO_ROOT) + "/bench",
             std::string(PSTK_REPO_ROOT) + "/src"};
#else
    return Usage();
#endif
  }

  auto scanned = pstk::analysis::LintTree(roots);
  if (!scanned.ok()) {
    std::fprintf(stderr, "pstk-lint: %s\n",
                 scanned.status().ToString().c_str());
    return 2;
  }
  std::vector<LintFinding> findings = std::move(scanned.value());
  MakeRepoRelative(findings);

  if (write_baseline) {
    // The output *replaces* the baseline, so suppressions must not be
    // applied first (that would drop every already-suppressed finding
    // from the regenerated file). Carry the old header through.
    const std::string header =
        baseline_path.empty() ? "" : BaselineHeader(baseline_path);
    std::fputs(pstk::analysis::FormatBaseline(findings, header).c_str(),
               stdout);
    return 0;
  }

  int suppressed = 0;
  if (!baseline_path.empty()) {
    auto baseline = pstk::analysis::LoadBaseline(baseline_path);
    if (!baseline.ok()) {
      std::fprintf(stderr, "pstk-lint: %s\n",
                   baseline.status().ToString().c_str());
      return 2;
    }
    findings = pstk::analysis::ApplyBaseline(std::move(findings),
                                             baseline.value(), &suppressed);
  }

  if (format == "json") {
    std::fputs(pstk::analysis::RenderJson(findings).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(pstk::analysis::RenderSarif(findings).c_str(), stdout);
  } else {
    std::fputs(pstk::analysis::RenderLintReport(findings).c_str(), stdout);
    if (suppressed > 0) {
      std::printf("(%d baseline-suppressed finding(s) not shown)\n",
                  suppressed);
    }
  }

  if (fail_on == "none" || findings.empty()) return 0;
  const Severity worst = pstk::analysis::WorstSeverity(findings);
  const Severity threshold =
      fail_on == "error" ? Severity::kError : Severity::kWarning;
  return static_cast<int>(worst) >= static_cast<int>(threshold) ? 1 : 0;
}
