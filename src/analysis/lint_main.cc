// pstk-lint driver: scan source trees for cross-paradigm misuse patterns
// (see lint.h for the rules) and print a Table III-style report.
//
//   ./build/src/analysis/pstk-lint [path...]
//
// With no arguments, scans the repo's examples/ and bench/ trees. Exits
// nonzero only on I/O errors — findings are a report, not a failure, so
// the repo's own sweep target stays usable as documentation.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) {
#ifdef PSTK_REPO_ROOT
    roots = {std::string(PSTK_REPO_ROOT) + "/examples",
             std::string(PSTK_REPO_ROOT) + "/bench"};
#else
    std::fprintf(stderr, "usage: pstk-lint <path>...\n");
    return 2;
#endif
  }

  auto findings = pstk::analysis::LintTree(roots);
  if (!findings.ok()) {
    std::fprintf(stderr, "pstk-lint: %s\n",
                 findings.status().ToString().c_str());
    return 1;
  }
  std::fputs(pstk::analysis::RenderLintReport(findings.value()).c_str(),
             stdout);
  return 0;
}
