// pstk-lint driver: scan source trees for cross-paradigm misuse patterns
// (see lint.h for the rules).
//
//   ./build/src/analysis/pstk-lint [options] [path...]
//
// Options:
//   --format=text|json|sarif   output format (default: text report)
//   --baseline=<file>          suppress findings listed in <file>
//                              (`rule path [hash]` per line, `#` comments)
//   --fail-on=error|warning|none
//                              exit 1 when a finding at or above this
//                              severity survives the baseline
//                              (default: none — findings never fail)
//   --write-baseline           print ALL current findings in baseline
//                              format (suppressions are NOT applied —
//                              the output replaces the baseline). When
//                              --baseline=<file> is also given, that
//                              file's leading comment block is carried
//                              over so regeneration diffs cleanly
//   --fix[=dry-run]            apply machine-generated fixes for findings
//                              that carry them (after the baseline).
//                              dry-run prints the edit plan and exits 1
//                              when fixes exist for findings at/above
//                              --fail-on; --fix writes the files, then
//                              re-lints to verify the fixes took
//   --jobs=N                   tokenize/parse files on N threads
//                              (default: hardware concurrency; findings
//                              are identical for every N)
//   --explain=<rule>           print the rule's severity, summary, and
//                              fix hint, then exit
//
// With no paths, scans the repo's examples/, bench/, and src/ trees.
// Exit codes: 0 clean or below threshold, 1 findings at/above --fail-on
// (or, under --fix, fixable/unfixed findings), 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/lint.h"
#include "analysis/rewrite.h"
#include "common/strings.h"

namespace {

using pstk::analysis::LintFinding;
using pstk::analysis::Severity;
using pstk::analysis::TextEdit;

/// SARIF/report paths read better repo-relative; strip the build-time
/// repo prefix when a scanned path lives under it. Edit paths keep the
/// on-disk form — they are written back, not displayed.
void MakeRepoRelative(std::vector<LintFinding>& findings) {
#ifdef PSTK_REPO_ROOT
  const std::string prefix = std::string(PSTK_REPO_ROOT) + "/";
  const auto strip = [&](std::string& path) {
    if (pstk::StartsWith(path, prefix)) path = path.substr(prefix.size());
  };
  for (LintFinding& f : findings) {
    strip(f.file);
    for (pstk::analysis::RelatedLocation& r : f.related) strip(r.file);
  }
#else
  (void)findings;
#endif
}

/// Leading comment block ('#' lines and blanks before the first entry) of
/// an existing baseline file; "" when the file is absent or starts with
/// an entry.
std::string BaselineHeader(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string header;
  std::string line;
  while (std::getline(in, line)) {
    const bool comment_or_blank =
        line.empty() || line[0] == '#' ||
        line.find_first_not_of(" \t") == std::string::npos;
    if (!comment_or_blank) break;
    header += line;
    header += '\n';
  }
  return header;
}

int Explain(const std::string& slug) {
  for (const pstk::analysis::RuleInfo& r : pstk::analysis::Rules()) {
    if (slug != r.slug) continue;
    std::printf("%s (%s)\n  %s\n  fix: %s\n", r.slug,
                pstk::analysis::SeverityName(r.severity), r.summary, r.fix);
    return 0;
  }
  std::fprintf(stderr, "pstk-lint: unknown rule '%s'; known rules:\n",
               slug.c_str());
  for (const pstk::analysis::RuleInfo& r : pstk::analysis::Rules()) {
    std::fprintf(stderr, "  %s\n", r.slug);
  }
  return 2;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pstk-lint [--format=text|json|sarif] "
               "[--baseline=<file>] [--fail-on=error|warning|none] "
               "[--write-baseline] [--fix[=dry-run]] [--jobs=N] "
               "[--explain=<rule>] [path...]\n");
  return 2;
}

Severity Threshold(const std::string& fail_on) {
  if (fail_on == "error") return Severity::kError;
  if (fail_on == "warning") return Severity::kWarning;
  return Severity::kNote;  // "none": every finding qualifies under --fix
}

/// Fix driver. Collects edits from findings at/above the threshold,
/// groups them per file, and either prints the plan (dry-run) or writes
/// the files and re-lints to verify every applied fix took.
int RunFix(const std::vector<LintFinding>& findings, bool dry_run,
           const std::string& fail_on, const std::vector<std::string>& roots,
           int jobs) {
  const Severity threshold = Threshold(fail_on);
  std::map<std::string, std::vector<TextEdit>> by_file;
  int fixable = 0;
  for (const LintFinding& f : findings) {
    if (f.edits.empty()) continue;
    if (static_cast<int>(f.severity) < static_cast<int>(threshold)) continue;
    ++fixable;
    for (const TextEdit& e : f.edits) by_file[e.file].push_back(e);
  }
  if (by_file.empty()) {
    std::printf("pstk-lint --fix: nothing to fix (0 fixable findings)\n");
    return 0;
  }
  if (dry_run) {
    std::printf("pstk-lint --fix=dry-run: %d fixable finding(s), "
                "%zu file(s) would change:\n",
                fixable, by_file.size());
    for (const auto& [file, edits] : by_file) {
      for (const TextEdit& e : edits) {
        if (e.delete_lines > 0 && e.text.empty()) {
          std::printf("  %s:%d: delete %d line(s) — %s\n", file.c_str(),
                      e.line, e.delete_lines, e.note.c_str());
        } else {
          std::printf("  %s:%d: replace %d line(s) with %zu — %s\n",
                      file.c_str(), e.line, e.delete_lines, e.text.size(),
                      e.note.c_str());
        }
      }
    }
    return 1;  // fixes exist at/above the threshold
  }

  int files_changed = 0;
  int applied_total = 0;
  int skipped_total = 0;
  for (auto& [file, edits] : by_file) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "pstk-lint --fix: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();
    std::vector<TextEdit> applied;
    std::vector<TextEdit> skipped;
    const std::string fixed = pstk::analysis::ApplyEdits(
        buf.str(), std::move(edits), &applied, &skipped);
    skipped_total += static_cast<int>(skipped.size());
    if (applied.empty()) continue;
    std::ofstream out(file, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "pstk-lint --fix: cannot write %s\n",
                   file.c_str());
      return 2;
    }
    out << fixed;
    ++files_changed;
    applied_total += static_cast<int>(applied.size());
  }
  std::printf("pstk-lint --fix: applied %d edit(s) across %d file(s)",
              applied_total, files_changed);
  if (skipped_total > 0) {
    std::printf(" (%d overlapping edit(s) skipped — re-run --fix)",
                skipped_total);
  }
  std::printf("\n");

  // Verification pass: the fixed tree must not still contain a fixable
  // finding at/above the threshold (that would mean a fix didn't take,
  // and --fix would not be idempotent).
  auto rescan = pstk::analysis::LintTree(roots, jobs);
  if (!rescan.ok()) {
    std::fprintf(stderr, "pstk-lint --fix: re-lint failed: %s\n",
                 rescan.status().ToString().c_str());
    return 2;
  }
  int remaining = 0;
  for (const LintFinding& f : rescan.value()) {
    if (!f.edits.empty() &&
        static_cast<int>(f.severity) >= static_cast<int>(threshold)) {
      ++remaining;
    }
  }
  if (remaining > 0) {
    std::printf("pstk-lint --fix: %d fixable finding(s) remain after "
                "applying (overlaps deferred; re-run --fix)\n",
                remaining);
    return 1;
  }
  std::printf("pstk-lint --fix: re-lint clean of fixable findings\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string baseline_path;
  std::string fail_on = "none";
  bool write_baseline = false;
  bool fix = false;
  bool fix_dry_run = false;
  unsigned hw = std::thread::hardware_concurrency();
  int jobs = hw > 0 ? static_cast<int>(hw) : 1;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (pstk::StartsWith(arg, "--format=")) {
      format = arg.substr(std::strlen("--format="));
      if (format != "text" && format != "json" && format != "sarif") {
        return Usage();
      }
    } else if (pstk::StartsWith(arg, "--baseline=")) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else if (pstk::StartsWith(arg, "--fail-on=")) {
      fail_on = arg.substr(std::strlen("--fail-on="));
      if (fail_on != "error" && fail_on != "warning" && fail_on != "none") {
        return Usage();
      }
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--fix=dry-run") {
      fix = true;
      fix_dry_run = true;
    } else if (pstk::StartsWith(arg, "--jobs=")) {
      const std::string n = arg.substr(std::strlen("--jobs="));
      char* end = nullptr;
      const long v = std::strtol(n.c_str(), &end, 10);
      if (end == n.c_str() || *end != '\0' || v < 1 || v > 256) {
        return Usage();
      }
      jobs = static_cast<int>(v);
    } else if (pstk::StartsWith(arg, "--explain=")) {
      return Explain(arg.substr(std::strlen("--explain=")));
    } else if (pstk::StartsWith(arg, "--")) {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
#ifdef PSTK_REPO_ROOT
    roots = {std::string(PSTK_REPO_ROOT) + "/examples",
             std::string(PSTK_REPO_ROOT) + "/bench",
             std::string(PSTK_REPO_ROOT) + "/src"};
#else
    return Usage();
#endif
  }

  auto scanned = pstk::analysis::LintTree(roots, jobs);
  if (!scanned.ok()) {
    std::fprintf(stderr, "pstk-lint: %s\n",
                 scanned.status().ToString().c_str());
    return 2;
  }
  std::vector<LintFinding> findings = std::move(scanned.value());

  if (write_baseline) {
    // The output *replaces* the baseline, so suppressions must not be
    // applied first (that would drop every already-suppressed finding
    // from the regenerated file). Carry the old header through. Paths
    // are repo-relativized first so entries match across machines.
    MakeRepoRelative(findings);
    const std::string header =
        baseline_path.empty() ? "" : BaselineHeader(baseline_path);
    std::fputs(pstk::analysis::FormatBaseline(findings, header).c_str(),
               stdout);
    return 0;
  }

  int suppressed = 0;
  if (!baseline_path.empty()) {
    // Baselines carry repo-relative paths; PathMatches is suffix-based,
    // so matching against the on-disk paths works either way.
    auto baseline = pstk::analysis::LoadBaseline(baseline_path);
    if (!baseline.ok()) {
      std::fprintf(stderr, "pstk-lint: %s\n",
                   baseline.status().ToString().c_str());
      return 2;
    }
    findings = pstk::analysis::ApplyBaseline(std::move(findings),
                                             baseline.value(), &suppressed);
  }

  if (fix) {
    // Fixes run on the post-baseline findings with on-disk paths (the
    // edits are written back); repo-relativization is display-only.
    return RunFix(findings, fix_dry_run, fail_on, roots, jobs);
  }
  MakeRepoRelative(findings);

  if (format == "json") {
    std::fputs(pstk::analysis::RenderJson(findings).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(pstk::analysis::RenderSarif(findings).c_str(), stdout);
  } else {
    std::fputs(pstk::analysis::RenderLintReport(findings).c_str(), stdout);
    if (suppressed > 0) {
      std::printf("(%d baseline-suppressed finding(s) not shown)\n",
                  suppressed);
    }
  }

  if (fail_on == "none" || findings.empty()) return 0;
  const Severity worst = pstk::analysis::WorstSeverity(findings);
  const Severity threshold =
      fail_on == "error" ? Severity::kError : Severity::kWarning;
  return static_cast<int>(worst) >= static_cast<int>(threshold) ? 1 : 0;
}
