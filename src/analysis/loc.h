// Source-code maintainability metrics for the paper's Table III: lines of
// code and the share of boilerplate (setup/teardown/plumbing) per
// framework implementation of the same benchmark.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace pstk::analysis {

struct LocReport {
  std::string label;
  int code_lines = 0;        // non-blank, non-comment lines
  int boilerplate_lines = 0; // subset matching the boilerplate markers
  [[nodiscard]] double BoilerplateShare() const {
    return code_lines == 0
               ? 0.0
               : static_cast<double>(boilerplate_lines) /
                     static_cast<double>(code_lines);
  }
};

/// Count code lines in C/C++-style source text. A line counts when it has
/// content outside of // and /* */ comments. A counted line is
/// boilerplate when it contains any marker substring (markers describe a
/// framework's setup/teardown/plumbing calls).
LocReport AnalyzeSource(const std::string& label, const std::string& source,
                        const std::vector<std::string>& boilerplate_markers);

/// Read a file from the host filesystem (benchmark sources analyze
/// themselves) and run AnalyzeSource on it.
Result<LocReport> AnalyzeFile(const std::string& label,
                              const std::string& path,
                              const std::vector<std::string>& markers);

/// Extract the region between "// BENCHMARK-BEGIN" and "// BENCHMARK-END"
/// markers (so shared scaffolding in example files is excluded); returns
/// the whole source if the markers are absent.
std::string ExtractBenchmarkRegion(const std::string& source);

}  // namespace pstk::analysis
