// Stage 3.5 of the pstk-lint pipeline: a per-function control-flow graph
// over the stage-2 statement tree, with symbolic branch conditions.
//
// Each Function lowers to basic blocks of *leaf* statements connected by
// edges that carry the branch condition they were taken under (condition
// text, polarity, and whether the condition is rank-divergent per the
// stage-3 dataflow). Loops lower to a head block with a body-taken edge,
// a skip edge, and a back edge; switch statements lower like an if with
// an empty else (conservative: some case ran, or none did).
//
// On top of the graph sits bounded *path enumeration*: every acyclic
// entry-to-exit path, with loops abstracted to zero-or-one iterations
// (each block may appear at most twice on a path, so a loop contributes
// its skip path and its body-once path). Consumers that need exactness
// under iteration — collective sequences, send/recv orders — treat any
// path step inside a loop body as "unknown" instead of trusting the
// abstraction. Enumeration is capped; overflow reports "don't know",
// never a truncated answer presented as complete.
//
// The path-sensitive divergence rules and the static deadlock detector
// (lint.cc) consume paths; DumpCfg feeds the golden tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/parse.h"

namespace pstk::analysis {

/// Symbolic branch condition attached to a CFG edge.
struct CfgCond {
  std::string text;  // condition as written (compact)
  int line = 0;
  bool negated = false;         // edge taken when the condition is false
  bool rank_divergent = false;  // condition depends on rank / PE id
};

struct CfgEdge {
  int to = -1;
  std::optional<CfgCond> cond;  // nullopt: unconditional fall-through
  bool back_edge = false;       // loop repeat edge (body end -> head)
};

/// One basic block: a maximal run of leaf statements with no internal
/// control flow. Branch/loop header statements live in the block that
/// evaluates their condition.
struct CfgBlock {
  int id = 0;
  int loop_depth = 0;  // loop-body nesting of the block's statements
  std::vector<const Stmt*> stmts;
  std::vector<CfgEdge> succs;
};

class Cfg {
 public:
  /// Lower `fn` to a CFG. `flow` classifies branch conditions as
  /// rank-divergent (with the `.ok()` status-guard exemption — a guard on
  /// a Result is error handling, not rank divergence). The Function must
  /// outlive the Cfg (blocks hold Stmt pointers).
  static Cfg Build(const Function& fn, const FunctionFlow& flow);

  [[nodiscard]] const std::vector<CfgBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] int entry() const { return entry_; }
  [[nodiscard]] int exit() const { return exit_; }

  /// One enumerated entry-to-exit path.
  struct Step {
    const Stmt* stmt = nullptr;
    int loop_depth = 0;  // > 0: this step sits inside an abstracted loop
  };
  struct Path {
    std::vector<Step> steps;
    std::vector<CfgCond> conds;  // branch decisions taken, in order
  };

  /// All entry-to-exit paths with loops abstracted to 0-or-1 iterations
  /// (each block appears at most twice per path). When more than
  /// `max_paths` exist, `*overflow` is set and the result is truncated —
  /// consumers must treat overflow as "not provable".
  [[nodiscard]] std::vector<Path> EnumeratePaths(
      std::size_t max_paths = 256, bool* overflow = nullptr) const;

  /// Deterministic text rendering for golden tests: one line per block
  /// with its statement lines and outgoing edges.
  [[nodiscard]] std::string Dump() const;

 private:
  std::vector<CfgBlock> blocks_;
  int entry_ = 0;
  int exit_ = 0;
};

/// Build + dump in one step (test convenience).
std::string DumpCfg(const Function& fn, const FunctionFlow& flow);

}  // namespace pstk::analysis
