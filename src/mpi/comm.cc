#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "mpi/mpi.h"

namespace pstk::mpi {

namespace {
// Collective tags live far above user tag space.
constexpr int kCollTagBase = 0x40000000;
}  // namespace

Comm::Comm(World& world, sim::Context& ctx, int rank, int size, int comm_id,
           std::vector<int> group)
    : world_(world),
      ctx_(ctx),
      rank_(rank),
      size_(size),
      comm_id_(comm_id),
      group_(std::move(group)) {
  PSTK_CHECK_MSG(rank_ >= 0 && rank_ < size_,
                 "rank " << rank_ << " size " << size_ << " comm " << comm_id_);
  PSTK_CHECK(static_cast<int>(group_.size()) == size_);
  ctx_.engine().verify().OnMpiCommCreated(comm_id_, group_[rank_]);
}

Comm::~Comm() {
  ctx_.engine().verify().OnMpiCommDestroyed(comm_id_, group_[rank_]);
}

int Comm::GlobalRank(int local) const {
  PSTK_CHECK_MSG(local >= 0 && local < size_, "bad rank " << local);
  return group_[local];
}

net::Endpoint& Comm::endpoint() {
  return world_.network_->endpoint(group_[rank_]);
}

cluster::Cluster& Comm::cluster() { return world_.cluster_; }

int Comm::NextCollTag(const char* op) {
  ctx_.engine().verify().OnMpiCollective(comm_id_, size_, group_[rank_], op,
                                         coll_seq_, ctx_.now());
  // 256 comms x 256 in-flight collectives x 4096 sub-tags.
  const int tag = kCollTagBase | ((comm_id_ & 0xFF) << 20) |
                  ((static_cast<int>(coll_seq_) & 0xFF) << 12);
  ++coll_seq_;
  return tag;
}

void Comm::ChargeCombine(std::size_t elements) {
  // One flop per element, single-threaded.
  ctx_.Compute(world_.cluster_.ComputeTime(static_cast<double>(elements), 1));
}

void Comm::RawSend(int dest_local, int tag, const void* data, Bytes bytes,
                   bool async) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  serde::Buffer payload(p, p + bytes);
  if (async) {
    endpoint().SendAsync(ctx_, GlobalRank(dest_local), tag,
                         std::move(payload));
  } else {
    endpoint().Send(ctx_, GlobalRank(dest_local), tag, std::move(payload));
  }
}

Bytes Comm::RawRecv(int src_local, int tag, void* data, Bytes max_bytes) {
  const int src = src_local < 0 ? net::kAnySource : GlobalRank(src_local);
  net::Message m = endpoint().Recv(ctx_, src, tag);
  if (m.payload.size() > max_bytes) {
    verify::Hub& hub = ctx_.engine().verify();
    if (hub.active()) {
      // MPI_ERR_TRUNCATE semantics: report, deliver the prefix, continue.
      hub.OnMpiTruncation(group_[rank_], m.src, m.tag, m.payload.size(),
                          max_bytes, ctx_.now());
      std::memcpy(data, m.payload.data(), max_bytes);
      return max_bytes;
    }
    PSTK_CHECK_MSG(false, "message truncation: got "
                              << m.payload.size() << " bytes, buffer "
                              << max_bytes);
  }
  std::memcpy(data, m.payload.data(), m.payload.size());
  return m.payload.size();
}

buf::Bytes Comm::RawRecvBytes(int src_local, int tag, Bytes expected_bytes) {
  const int src = src_local < 0 ? net::kAnySource : GlobalRank(src_local);
  net::Message m = endpoint().Recv(ctx_, src, tag);
  PSTK_CHECK_MSG(m.payload.size() == expected_bytes,
                 "collective size mismatch: got " << m.payload.size()
                                                  << " bytes, expected "
                                                  << expected_bytes);
  return std::move(m.payload);
}

void Comm::Send(const void* data, Bytes bytes, int dest, int tag) {
  PSTK_CHECK_MSG(tag >= 0 && tag < kCollTagBase, "user tag out of range");
  RawSend(dest, tag, data, bytes, /*async=*/false);
}

Bytes Comm::Recv(void* data, Bytes max_bytes, int source, int tag) {
  return RawRecv(source, tag, data, max_bytes);
}

Bytes Comm::Sendrecv(const void* send_data, Bytes send_bytes, int dest,
                     void* recv_data, Bytes recv_max, int source, int tag) {
  PSTK_CHECK_MSG(tag >= 0 && tag < kCollTagBase, "user tag out of range");
  RawSend(dest, tag, send_data, send_bytes, /*async=*/true);
  return RawRecv(source, tag, recv_data, recv_max);
}

Request Comm::Isend(const void* data, Bytes bytes, int dest, int tag) {
  PSTK_CHECK_MSG(tag >= 0 && tag < kCollTagBase, "user tag out of range");
  RawSend(dest, tag, data, bytes, /*async=*/true);
  Request request;
  request.kind = Request::Kind::kSend;
  request.peer = dest;
  request.tag = tag;
  request.complete = true;  // buffered send: locally complete
  return request;
}

Request Comm::Irecv(void* data, Bytes max_bytes, int source, int tag) {
  Request request;
  request.kind = Request::Kind::kRecv;
  request.peer = source;
  request.tag = tag;
  request.buffer = data;
  request.max_bytes = max_bytes;
  ++outstanding_recvs_;
  return request;
}

void Comm::Wait(Request& request) {
  switch (request.kind) {
    case Request::Kind::kNone:
      break;
    case Request::Kind::kSend:
      request.complete = true;
      break;
    case Request::Kind::kRecv:
      if (!request.complete) {
        request.received =
            RawRecv(request.peer, request.tag, request.buffer,
                    request.max_bytes);
        request.complete = true;
        --outstanding_recvs_;
      }
      break;
  }
}

void Comm::Waitall(std::span<Request> requests) {
  for (Request& request : requests) Wait(request);
}

bool Comm::Iprobe(int source, int tag) {
  const int src = source < 0 ? net::kAnySource : GlobalRank(source);
  return endpoint().Probe(ctx_, src, tag);
}

void Comm::Barrier() {
  // Dissemination barrier: in round k, rank sends to (rank + 2^k) % n and
  // waits for a token from (rank - 2^k + n) % n.
  const int tag = NextCollTag("barrier");
  std::uint8_t token = 1;
  for (int k = 0, dist = 1; dist < size_; ++k, dist <<= 1) {
    const int to = (rank_ + dist) % size_;
    const int from = (rank_ - dist + size_) % size_;
    RawSend(to, tag + k, &token, sizeof(token), /*async=*/true);
    RawRecv(from, tag + k, &token, sizeof(token));
  }
}

void Comm::Bcast(void* data, Bytes bytes, int root) {
  const int tag = NextCollTag("bcast");
  const int n = size_;
  const int relative = (rank_ - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int src = (relative - mask + root) % n;
      RawRecv(src, tag, data, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const int dst = (relative + mask + root) % n;
      RawSend(dst, tag, data, bytes, /*async=*/false);
    }
    mask >>= 1;
  }
}

std::unique_ptr<Comm> Comm::Split(int color, int key) {
  // Collective: allgather (color, key) of every rank, then group locally.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  std::vector<Entry> mine{{color, key, rank_}};
  std::vector<Entry> all(static_cast<std::size_t>(size_));
  Allgather(std::span<const Entry>(mine), std::span<Entry>(all));

  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> group;
  int my_new_rank = -1;
  for (const Entry& e : members) {
    if (e.rank == rank_) my_new_rank = static_cast<int>(group.size());
    group.push_back(GlobalRank(e.rank));
  }
  PSTK_CHECK(my_new_rank >= 0);

  // Deterministic comm id shared by all members: derive from the colors.
  // All ranks compute the same sequence of ids because `all` is identical.
  int comm_id = comm_id_ * 31 + color + 1;
  comm_id &= 0xFF;
  const int new_size = static_cast<int>(group.size());
  return std::unique_ptr<Comm>(new Comm(world_, ctx_, my_new_rank, new_size,
                                        comm_id, std::move(group)));
}

}  // namespace pstk::mpi
