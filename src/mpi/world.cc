#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "mpi/mpi.h"

namespace pstk::mpi {

World::World(cluster::Cluster& cluster, int nranks, int ranks_per_node,
             MpiOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      nranks_(nranks),
      ranks_per_node_(ranks_per_node) {
  PSTK_CHECK_MSG(nranks_ >= 1, "need at least one rank");
  PSTK_CHECK_MSG(ranks_per_node_ >= 1, "ranks_per_node must be >= 1");
  const int needed_nodes = (nranks_ + ranks_per_node_ - 1) / ranks_per_node_;
  PSTK_CHECK_MSG(needed_nodes <= cluster_.nodes(),
                 "not enough nodes: need " << needed_nodes << ", have "
                                           << cluster_.nodes());
  const net::TransportParams transport =
      options_.transport.value_or(cluster_.spec().transport);
  network_ = std::make_unique<net::Network>(
      cluster_.engine(), cluster_.fabric(transport),
      options_.eager_threshold);
}

void World::SpawnRanks(RankBody body) {
  std::vector<int> group(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) group[r] = r;

  for (int r = 0; r < nranks_; ++r) {
    const int node = NodeOfRank(r);
    network_->CreateEndpoint(r, node);
    cluster_.engine().Spawn(
        "mpi-rank-" + std::to_string(r),
        [this, r, group, body](sim::Context& ctx) {
          // mpirun launch + MPI_Init.
          ctx.SleepUntil(options_.startup_cost);
          Comm comm(*this, ctx, r, nranks_, /*comm_id=*/0, group);
          body(comm);
          // MPI_Finalize synchronizes the job teardown.
          comm.Barrier();
          job_end_ = std::max(job_end_, ctx.now());
        },
        node);
  }
}

Result<SimTime> World::RunSpmd(RankBody body) {
  SpawnRanks(std::move(body));
  const sim::RunResult result = cluster_.engine().Run();
  if (result.killed > 0) {
    // MPI has no fault tolerance: any lost rank aborts the whole job
    // (paper §VI-D); surviving ranks deadlock and are torn down.
    return Aborted("MPI job lost " + std::to_string(result.killed) +
                   " rank(s); job aborted");
  }
  if (!result.status.ok()) return result.status;
  return job_end_;
}

}  // namespace pstk::mpi
