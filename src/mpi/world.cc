#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "mpi/mpi.h"
#include "verify/verify.h"

namespace pstk::mpi {

World::World(cluster::Cluster& cluster, int nranks, int ranks_per_node,
             MpiOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      nranks_(nranks),
      ranks_per_node_(ranks_per_node) {
  PSTK_CHECK_MSG(nranks_ >= 1, "need at least one rank");
  PSTK_CHECK_MSG(ranks_per_node_ >= 1, "ranks_per_node must be >= 1");
  if (!options_.placement.empty()) {
    PSTK_CHECK_MSG(
        options_.placement.size() == static_cast<std::size_t>(nranks_),
        "placement names " << options_.placement.size() << " ranks for an "
                           << nranks_ << "-rank job");
    for (int node : options_.placement) {
      PSTK_CHECK_MSG(node >= 0 && node < cluster_.nodes(),
                     "placement node " << node << " out of range");
    }
  } else {
    const int needed_nodes = (nranks_ + ranks_per_node_ - 1) / ranks_per_node_;
    PSTK_CHECK_MSG(needed_nodes <= cluster_.nodes(),
                   "not enough nodes: need " << needed_nodes << ", have "
                                             << cluster_.nodes());
  }
  const net::TransportParams transport =
      options_.transport.value_or(cluster_.spec().transport);
  network_ = std::make_unique<net::Network>(
      cluster_.engine(), cluster_.fabric(transport),
      options_.eager_threshold);
}

void World::SpawnRanks(RankBody body) {
  std::vector<int> group(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) group[r] = r;

  for (int r = 0; r < nranks_; ++r) {
    const int node = NodeOfRank(r);
    network_->CreateEndpoint(r, node);
    cluster_.engine().Spawn(
        options_.name + "-rank-" + std::to_string(r),
        [this, r, group, body](sim::Context& ctx) {
          // mpirun launch + MPI_Init (which registers the rank with its
          // NIC endpoint, so deadlock wait-for edges resolve immediately).
          // Relative sleep so mid-run launches (sched) pay the same cost
          // as t=0 launches.
          ctx.SleepFor(options_.startup_cost);
          network_->endpoint(r).Bind(ctx);
          Comm comm(*this, ctx, r, nranks_, /*comm_id=*/0, group);
          body(comm);
          // MPI_Finalize synchronizes the job teardown.
          comm.Barrier();
          verify::Hub& hub = ctx.engine().verify();
          if (hub.active()) {
            // Exiting the dissemination barrier implies every rank has
            // entered finalize, so all user sends are already deposited:
            // anything still in the inbox is an unmatched send.
            std::vector<verify::PendingMessage> unmatched;
            for (const net::Endpoint::PendingInfo& p :
                 network_->endpoint(r).Pending()) {
              unmatched.push_back(
                  verify::PendingMessage{p.src, p.tag, p.bytes});
            }
            hub.OnMpiRankExit(r, unmatched, comm.outstanding_recv_requests(),
                              ctx.now());
          }
          job_end_ = std::max(job_end_, ctx.now());
          if (++ranks_done_ == nranks_ && on_done_) on_done_(ctx.now());
        },
        node);
  }
}

Result<SimTime> World::RunSpmd(RankBody body) {
  SpawnRanks(std::move(body));
  const sim::RunResult result = cluster_.engine().Run();
  if (result.killed > 0) {
    // MPI has no fault tolerance: any lost rank aborts the whole job
    // (paper §VI-D); surviving ranks deadlock and are torn down.
    return Aborted("MPI job lost " + std::to_string(result.killed) +
                   " rank(s); job aborted");
  }
  if (!result.status.ok()) return result.status;
  // Clean completion: flush end-of-job checks (leaked communicators).
  cluster_.engine().verify().OnJobEnd("mpi", job_end_);
  return job_end_;
}

}  // namespace pstk::mpi
