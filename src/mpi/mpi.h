// MiniMPI: an MPI-like message-passing runtime on the simulated cluster.
//
// Scope mirrors what the paper's benchmarks use: SPMD launch, blocking and
// nonblocking point-to-point, the classic collective algorithms (binomial
// broadcast/reduce, recursive-doubling allreduce, ring allgather, pairwise
// alltoall, dissemination barrier), communicator split, and MPI-IO with
// collective reads whose count parameter is an `int` — faithfully
// reproducing the 2 GB-per-rank limitation that breaks the paper's
// AnswersCount runs below ~40 processes (§V-C).
//
// All communication runs over the cluster's default transport (FDR
// InfiniBand RDMA on Comet): "MPI uses InfiniBand for all types of
// communication between nodes" (§V-B1).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "buf/bytes.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"
#include "net/network.h"
#include "serde/serde.h"
#include "sim/engine.h"

namespace pstk::mpi {

struct MpiOptions {
  /// mpirun/srun launch cost before ranks enter main (excluded from
  /// microbenchmark timings, included in job makespans).
  SimTime startup_cost = Millis(800);
  Bytes eager_threshold = 64 * kKiB;
  /// Override the cluster's default transport (tests use this).
  std::optional<net::TransportParams> transport;
  /// Explicit rank->node placement (size must equal nranks). When empty,
  /// ranks are block-placed `ranks_per_node` to a node starting at node 0.
  /// The scheduler uses this to land gang jobs on whatever nodes it
  /// allocated.
  std::vector<int> placement;
  /// Prefix for spawned process names; concurrent jobs under pstk::sched
  /// use it to keep traces distinguishable.
  std::string name = "mpi";
};

class World;

/// Nonblocking operation handle.
class Request {
 public:
  Request() = default;

 private:
  friend class Comm;
  enum class Kind : std::uint8_t { kNone, kSend, kRecv };
  Kind kind = Kind::kNone;
  int peer = 0;
  int tag = 0;
  void* buffer = nullptr;
  Bytes max_bytes = 0;
  Bytes received = 0;
  bool complete = false;
};

/// Reduction operators (element-wise).
template <typename T>
struct OpSum {
  T operator()(const T& a, const T& b) const { return a + b; }
};
template <typename T>
struct OpMax {
  T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};
template <typename T>
struct OpMin {
  T operator()(const T& a, const T& b) const { return b < a ? b : a; }
};

/// A communicator bound to one rank's process. Obtained from World (the
/// world communicator) or via Split.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] sim::Context& ctx() { return ctx_; }
  /// The cluster this job runs on and the node hosting this rank.
  [[nodiscard]] cluster::Cluster& cluster();
  [[nodiscard]] int node() const { return ctx_.node(); }

  // --- point to point ----------------------------------------------------

  /// Blocking send of raw bytes (eager below threshold, rendezvous above).
  void Send(const void* data, Bytes bytes, int dest, int tag);
  /// Blocking receive; returns number of bytes (must fit `max_bytes`).
  Bytes Recv(void* data, Bytes max_bytes, int source, int tag);

  template <typename T>
  void Send(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Send(data.data(), data.size_bytes(), dest, tag);
  }
  template <typename T>
  std::size_t Recv(std::span<T> data, int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Recv(data.data(), data.size_bytes(), source, tag) / sizeof(T);
  }

  /// Combined exchange (MPI_Sendrecv): the send is posted without
  /// blocking before the receive, so head-to-head exchanges that would
  /// deadlock as Send;Recv above the rendezvous threshold are safe.
  /// Returns the number of bytes received.
  Bytes Sendrecv(const void* send_data, Bytes send_bytes, int dest,
                 void* recv_data, Bytes recv_max, int source, int tag);

  /// Nonblocking send: buffers and returns immediately.
  Request Isend(const void* data, Bytes bytes, int dest, int tag);
  /// Nonblocking receive: completes in Wait/Waitall.
  Request Irecv(void* data, Bytes max_bytes, int source, int tag);
  void Wait(Request& request);
  void Waitall(std::span<Request> requests);

  /// True if a matching message has arrived (MPI_Iprobe).
  bool Iprobe(int source, int tag);

  // --- collectives ---------------------------------------------------------

  /// Dissemination barrier: ceil(log2 n) rounds.
  void Barrier();

  /// Binomial-tree broadcast of `bytes` from `root`.
  void Bcast(void* data, Bytes bytes, int root);

  /// Element-wise reduction to `root` (binomial tree). All ranks pass
  /// `data`; on the root, `out` receives the result (may alias data).
  template <typename T, typename Op = OpSum<T>>
  void Reduce(std::span<const T> data, std::span<T> out, int root,
              Op op = Op{});

  /// Allreduce via recursive doubling (with the standard non-power-of-two
  /// fold). Result in `out` on every rank.
  template <typename T, typename Op = OpSum<T>>
  void Allreduce(std::span<const T> data, std::span<T> out, Op op = Op{});

  /// Linear gather of equal-size contributions to `root`.
  template <typename T>
  void Gather(std::span<const T> data, std::span<T> out, int root);

  /// Ring allgather.
  template <typename T>
  void Allgather(std::span<const T> data, std::span<T> out);

  /// Linear scatter of equal-size pieces from `root`.
  template <typename T>
  void Scatter(std::span<const T> data, std::span<T> out, int root);

  /// Pairwise-exchange alltoall of equal-size pieces.
  template <typename T>
  void Alltoall(std::span<const T> data, std::span<T> out);

  /// Split into sub-communicators by color (collective). Ranks with the
  /// same color land in one comm, ordered by key then rank.
  std::unique_ptr<Comm> Split(int color, int key);

  ~Comm();
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  /// Nonblocking receive requests posted but never completed via
  /// Wait/Waitall (the verify layer flags leaks at MPI_Finalize).
  [[nodiscard]] int outstanding_recv_requests() const {
    return outstanding_recvs_;
  }

 private:
  friend class World;
  Comm(World& world, sim::Context& ctx, int rank, int size, int comm_id,
       std::vector<int> group);

  /// Translate a comm-local rank to a world endpoint id.
  [[nodiscard]] int GlobalRank(int local) const;
  [[nodiscard]] net::Endpoint& endpoint();
  /// Tag for the next collective operation (per-comm lockstep sequence);
  /// `op` names the collective for the verify hub's call-order check.
  int NextCollTag(const char* op);
  /// Internal raw send/recv with explicit async choice (collectives use
  /// async sends to avoid rendezvous deadlocks on symmetric exchanges).
  void RawSend(int dest_local, int tag, const void* data, Bytes bytes,
               bool async);
  Bytes RawRecv(int src_local, int tag, void* data, Bytes max_bytes);
  /// Zero-copy receive: hands back the message payload itself (a refcount
  /// bump on the sender's buffer) instead of memcpy'ing into caller
  /// scratch. Reductions combine straight out of it.
  buf::Bytes RawRecvBytes(int src_local, int tag, Bytes expected_bytes);
  /// Charge element-combining cost for reductions.
  void ChargeCombine(std::size_t elements);

  World& world_;
  sim::Context& ctx_;
  int rank_;  // local rank in this comm
  int size_;
  int comm_id_;
  std::vector<int> group_;  // local rank -> world rank
  std::uint32_t coll_seq_ = 0;
  int outstanding_recvs_ = 0;
};

/// The MPI job: spawns one simulated process per rank, block-placed
/// `ranks_per_node` to a node, and hands each a world Comm.
class World {
 public:
  using RankBody = std::function<void(Comm&)>;

  World(cluster::Cluster& cluster, int nranks, int ranks_per_node,
        MpiOptions options = {});

  /// Spawn all rank processes. The caller runs the engine.
  void SpawnRanks(RankBody body);

  /// Convenience: spawn + run the engine; returns the job makespan (launch
  /// to the last rank's exit), or an error on deadlock/abort.
  Result<SimTime> RunSpmd(RankBody body);

  /// Fires once, when the last rank leaves MPI_Finalize. Mid-run launchers
  /// (pstk::sched) use it instead of RunSpmd's engine-drained return.
  void OnAllRanksDone(std::function<void(SimTime)> callback) {
    on_done_ = std::move(callback);
  }

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int ranks_per_node() const { return ranks_per_node_; }
  [[nodiscard]] int NodeOfRank(int rank) const {
    if (!options_.placement.empty()) return options_.placement[rank];
    return rank / ranks_per_node_;
  }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const MpiOptions& options() const { return options_; }
  [[nodiscard]] SimTime job_end_time() const { return job_end_; }

 private:
  friend class Comm;

  cluster::Cluster& cluster_;
  MpiOptions options_;
  int nranks_;
  int ranks_per_node_;
  std::unique_ptr<net::Network> network_;
  int next_comm_id_ = 1;
  SimTime job_end_ = 0;
  int ranks_done_ = 0;
  std::function<void(SimTime)> on_done_;
};

/// MPI-IO over node-local scratch replicas (the paper's setup: the input
/// file is replicated to every node's local scratch).
///
/// Offsets and counts are in *modeled* (logical) bytes. The count
/// parameter is a wide integer so callers can *express* per-rank reads
/// above 2 GB, but — exactly like MPI_File_read_at_all, whose count of
/// MPI_BYTE elements is a C `int` — any count above INT_MAX fails with a
/// structured diagnostic (and a verify-hub finding when --verify is on),
/// reproducing the paper's 2 GB-per-rank limitation (§V-C, Fig. 4).
class File {
 public:
  /// Collective open: every rank checks its node-local replica.
  static Result<File> OpenAll(Comm& comm, const std::string& path);

  /// Modeled (logical) file size in bytes.
  [[nodiscard]] Bytes size() const { return modeled_size_; }

  /// Collective read: each rank reads `count` modeled bytes at
  /// `modeled_offset` from its node-local replica. Returns the actual
  /// (scaled-down staged) bytes backing that logical range.
  Result<std::string> ReadAtAll(Comm& comm, Bytes modeled_offset,
                                std::int64_t count);

  /// Independent (non-collective) read, same coordinates.
  Result<std::string> ReadAt(Comm& comm, Bytes modeled_offset,
                             std::int64_t count);

  /// Collective read adjusted to whole text records: the returned data
  /// contains exactly the lines *starting* inside the logical range
  /// [modeled_offset, modeled_offset + count) — the standard convention
  /// for parallel text processing (each rank skips its partial first line
  /// and reads past its end to finish the last). Ranges that exactly tile
  /// the file yield every line exactly once.
  Result<std::string> ReadLinesAtAll(Comm& comm, Bytes modeled_offset,
                                     std::int64_t count);

 private:
  File(std::string path, Bytes modeled_size, Bytes actual_size)
      : path_(std::move(path)),
        modeled_size_(modeled_size),
        actual_size_(actual_size) {}

  Result<std::string> ReadRange(Comm& comm, Bytes modeled_offset,
                                std::int64_t count);

  std::string path_;
  Bytes modeled_size_;
  Bytes actual_size_;
};

// ===========================================================================
// Template implementations
// ===========================================================================

template <typename T, typename Op>
void Comm::Reduce(std::span<const T> data, std::span<T> out, int root,
                  Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = NextCollTag("reduce");
  const int n = size_;
  const int relative = (rank_ - root + n) % n;
  std::vector<T> accum(data.begin(), data.end());

  // Binomial tree: children push partial results toward the (virtual) root.
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < n) {
        const buf::Bytes incoming = RawRecvBytes((src_rel + root) % n, tag,
                                                 accum.size() * sizeof(T));
        const T* in = reinterpret_cast<const T*>(incoming.data());
        for (std::size_t i = 0; i < accum.size(); ++i) {
          accum[i] = op(accum[i], in[i]);
        }
        ChargeCombine(accum.size());
      }
    } else {
      const int dst_rel = relative & ~mask;
      RawSend((dst_rel + root) % n, tag, accum.data(),
              accum.size() * sizeof(T), /*async=*/false);
      break;
    }
  }
  if (rank_ == root && !out.empty()) {
    std::memcpy(out.data(), accum.data(), accum.size() * sizeof(T));
  }
}

template <typename T, typename Op>
void Comm::Allreduce(std::span<const T> data, std::span<T> out, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = NextCollTag("allreduce");
  const int n = size_;
  std::vector<T> accum(data.begin(), data.end());
  const Bytes bytes = accum.size() * sizeof(T);
  auto combine = [&](const buf::Bytes& incoming) {
    const T* in = reinterpret_cast<const T*>(incoming.data());
    for (std::size_t i = 0; i < accum.size(); ++i) {
      accum[i] = op(accum[i], in[i]);
    }
    ChargeCombine(accum.size());
  };

  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;

  // Fold the surplus ranks into the power-of-two set.
  int newrank;
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      RawSend(rank_ + 1, tag, accum.data(), bytes, /*async=*/true);
      newrank = -1;
    } else {
      combine(RawRecvBytes(rank_ - 1, tag, bytes));
      newrank = rank_ / 2;
    }
  } else {
    newrank = rank_ - rem;
  }

  auto real_rank = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner = real_rank(newrank ^ mask);
      RawSend(partner, tag, accum.data(), bytes, /*async=*/true);
      combine(RawRecvBytes(partner, tag, bytes));
    }
  }

  // Unfold: folded ranks receive the final result.
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      const buf::Bytes final_result = RawRecvBytes(rank_ + 1, tag, bytes);
      std::memcpy(out.data(), final_result.data(), bytes);
      return;
    }
    RawSend(rank_ - 1, tag, accum.data(), bytes, /*async=*/true);
  }
  std::memcpy(out.data(), accum.data(), bytes);
}

template <typename T>
void Comm::Gather(std::span<const T> data, std::span<T> out, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = NextCollTag("gather");
  const Bytes bytes = data.size_bytes();
  if (rank_ == root) {
    std::memcpy(out.data() + static_cast<std::size_t>(rank_) * data.size(),
                data.data(), bytes);
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      RawRecv(r, tag,
              out.data() + static_cast<std::size_t>(r) * data.size(), bytes);
    }
  } else {
    RawSend(root, tag, data.data(), bytes, /*async=*/false);
  }
}

template <typename T>
void Comm::Allgather(std::span<const T> data, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = NextCollTag("allgather");
  const std::size_t piece = data.size();
  const Bytes bytes = data.size_bytes();
  std::memcpy(out.data() + static_cast<std::size_t>(rank_) * piece,
              data.data(), bytes);
  const int left = (rank_ - 1 + size_) % size_;
  const int right = (rank_ + 1) % size_;
  // Ring: in step s, pass along the block originally owned by rank-s.
  for (int s = 0; s < size_ - 1; ++s) {
    const int send_block = (rank_ - s + size_) % size_;
    const int recv_block = (rank_ - s - 1 + size_) % size_;
    RawSend(right, tag + s, out.data() + send_block * piece, bytes,
            /*async=*/true);
    RawRecv(left, tag + s, out.data() + recv_block * piece, bytes);
  }
}

template <typename T>
void Comm::Scatter(std::span<const T> data, std::span<T> out, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = NextCollTag("scatter");
  const std::size_t piece = out.size();
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      RawSend(r, tag, data.data() + static_cast<std::size_t>(r) * piece,
              piece * sizeof(T), /*async=*/true);
    }
    std::memcpy(out.data(),
                data.data() + static_cast<std::size_t>(root) * piece,
                piece * sizeof(T));
  } else {
    RawRecv(root, tag, out.data(), piece * sizeof(T));
  }
}

template <typename T>
void Comm::Alltoall(std::span<const T> data, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int tag = NextCollTag("alltoall");
  const std::size_t piece = data.size() / static_cast<std::size_t>(size_);
  const Bytes bytes = piece * sizeof(T);
  std::memcpy(out.data() + static_cast<std::size_t>(rank_) * piece,
              data.data() + static_cast<std::size_t>(rank_) * piece, bytes);
  for (int s = 1; s < size_; ++s) {
    const int dst = (rank_ + s) % size_;
    const int src = (rank_ - s + size_) % size_;
    RawSend(dst, tag + s, data.data() + static_cast<std::size_t>(dst) * piece,
            bytes, /*async=*/true);
    RawRecv(src, tag + s, out.data() + static_cast<std::size_t>(src) * piece,
            bytes);
  }
}

}  // namespace pstk::mpi
