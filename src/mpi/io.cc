#include <algorithm>
#include <cmath>
#include <limits>
#include <string_view>

#include "common/check.h"
#include "mpi/mpi.h"

namespace pstk::mpi {

namespace {

// MPI_File_read_at_all takes its count of MPI_BYTE elements as a C `int`:
// more than INT_MAX bytes per rank cannot be expressed in one collective
// read. This is the root cause of the paper's AnswersCount failures below
// ~40 MPI processes (§V-C, Fig. 4).
constexpr std::int64_t kMaxIoCount = std::numeric_limits<std::int32_t>::max();

Status CountOverflow(Comm& comm, std::int64_t count, const char* callsite,
                     const std::string& path) {
  comm.ctx().engine().verify().OnMpiIoCountOverflow(comm.rank(), count,
                                                    callsite, path,
                                                    comm.ctx().now());
  return OutOfRange(std::string("MPI-IO: ") + callsite + ": count " +
                    std::to_string(count) +
                    " exceeds INT_MAX (2147483647) MPI_BYTE elements; a "
                    "collective read cannot move more than 2 GB per rank");
}

}  // namespace

Result<File> File::OpenAll(Comm& comm, const std::string& path) {
  comm.Barrier();  // collective open synchronizes the job
  storage::LocalFs& fs = comm.cluster().scratch(comm.node());
  auto actual = fs.Size(path);
  if (!actual.ok()) {
    return NotFound("MPI-IO: no local replica of " + path + " on node " +
                    std::to_string(comm.node()));
  }
  auto modeled = fs.ModeledSize(path);
  if (!modeled.ok()) return modeled.status();
  return File(path, modeled.value(), actual.value());
}

Result<std::string> File::ReadRange(Comm& comm, Bytes modeled_offset,
                                    std::int64_t count) {
  if (count < 0) return InvalidArgument("MPI-IO: negative count");
  if (count > kMaxIoCount) {
    return CountOverflow(comm, count, "MPI_File_read_at", path_);
  }
  if (modeled_offset > modeled_size_) {
    return OutOfRange("MPI-IO: offset past EOF");
  }
  const Bytes modeled_len = std::min<Bytes>(
      static_cast<Bytes>(count), modeled_size_ - modeled_offset);

  // Map the logical range onto the scaled-down staged bytes.
  const double scale = static_cast<double>(actual_size_) /
                       static_cast<double>(std::max<Bytes>(1, modeled_size_));
  const auto actual_begin = static_cast<Bytes>(
      std::llround(static_cast<double>(modeled_offset) * scale));
  const auto actual_end = static_cast<Bytes>(std::llround(
      static_cast<double>(modeled_offset + modeled_len) * scale));

  storage::LocalFs& fs = comm.cluster().scratch(comm.node());
  const Bytes clamped_begin = std::min<Bytes>(actual_begin, actual_size_);
  const Bytes length =
      std::min<Bytes>(actual_end, actual_size_) - clamped_begin;
  return fs.Read(comm.ctx(), path_, clamped_begin, length);
}

Result<std::string> File::ReadAt(Comm& comm, Bytes modeled_offset,
                                 std::int64_t count) {
  return ReadRange(comm, modeled_offset, count);
}

Result<std::string> File::ReadLinesAtAll(Comm& comm, Bytes modeled_offset,
                                         std::int64_t count) {
  if (count < 0) return InvalidArgument("MPI-IO: negative count");
  // The count check must precede the barrier: when every rank's chunk
  // overflows they all bail out symmetrically instead of deadlocking.
  if (count > kMaxIoCount) {
    return CountOverflow(comm, count, "MPI_File_read_at_all", path_);
  }
  if (modeled_offset > modeled_size_) {
    return OutOfRange("MPI-IO: offset past EOF");
  }
  comm.Barrier();
  const Bytes modeled_len = std::min<Bytes>(
      static_cast<Bytes>(count), modeled_size_ - modeled_offset);

  const double scale = static_cast<double>(actual_size_) /
                       static_cast<double>(std::max<Bytes>(1, modeled_size_));
  auto a_begin = static_cast<std::size_t>(
      std::llround(static_cast<double>(modeled_offset) * scale));
  auto a_end = static_cast<std::size_t>(std::llround(
      static_cast<double>(modeled_offset + modeled_len) * scale));

  storage::LocalFs& fs = comm.cluster().scratch(comm.node());
  const buf::Bytes* file = fs.Peek(path_);
  if (file == nullptr) return NotFound("MPI-IO: lost replica of " + path_);
  const std::string_view content = file->view();
  a_begin = std::min(a_begin, content.size());
  a_end = std::min(a_end, content.size());

  // A chunk owns the lines that *start* inside it: skip the line crossing
  // our lower boundary, extend through the line crossing the upper one.
  std::size_t real_begin = a_begin;
  if (real_begin > 0 && content[real_begin - 1] != '\n') {
    const auto nl = content.find('\n', real_begin);
    real_begin = nl == std::string_view::npos ? content.size() : nl + 1;
  }
  std::size_t real_end = a_end;
  if (real_end > 0 && real_end < content.size() &&
      content[real_end - 1] != '\n') {
    const auto nl = content.find('\n', real_end);
    real_end = nl == std::string_view::npos ? content.size() : nl + 1;
  }
  if (real_end < real_begin) real_end = real_begin;

  auto data = fs.Read(comm.ctx(), path_, real_begin, real_end - real_begin);
  comm.Barrier();
  return data;
}

Result<std::string> File::ReadAtAll(Comm& comm, Bytes modeled_offset,
                                    std::int64_t count) {
  if (count < 0) return InvalidArgument("MPI-IO: negative count");
  if (count > kMaxIoCount) {
    return CountOverflow(comm, count, "MPI_File_read_at_all", path_);
  }
  // Collective read: two-phase style exchange is not modeled, but the call
  // synchronizes like MPI_File_read_at_all on a shared handle.
  comm.Barrier();
  auto data = ReadRange(comm, modeled_offset, count);
  comm.Barrier();
  return data;
}

}  // namespace pstk::mpi
