#include "obs/obs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pstk::obs {
namespace {

// Bucket index for a positive value: binary exponent shifted so the
// range [2^-32, 2^32) maps onto [0, 64).
int BucketFor(double value) {
  if (!(value > 0)) return 0;
  int exp = 0;
  (void)std::frexp(value, &exp);
  return std::clamp(exp + 32, 0, Histogram::kBuckets - 1);
}

// Minimal JSON string escaping: the tag vocabulary is ASCII identifiers,
// but user-supplied trace details may carry anything.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Virtual-time seconds -> trace microseconds, fixed 3 decimals so equal
// inputs always serialize to equal bytes.
void AppendMicros(std::string* out, SimTime seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  *out += buf;
}

}  // namespace

void Histogram::Record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<std::size_t>(BucketFor(value))];
}

void Registry::Enable(bool on) {
  enabled_ = on;
  if (on && events_.capacity() < 4096) events_.reserve(4096);
}

TagId Registry::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::uint64_t Registry::CounterByName(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : counter(it->second);
}

const Histogram* Registry::histogram(TagId tag) const {
  auto it = histograms_.find(tag);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::SetTrackName(std::int32_t node, std::uint32_t track,
                            std::string_view name) {
  track_names_[{node, track}] = std::string(name);
}

void Registry::AppendChromeTraceEvents(std::string* out, int pid_offset,
                                       std::string_view process_prefix) const {
  bool first = out->empty();
  auto sep = [&] {
    if (!first) *out += ",\n";
    first = false;
  };

  // Metadata: one process_name per distinct node, one thread_name per
  // named track. Maps iterate in key order, so output is deterministic.
  std::int32_t last_node = -1;
  for (const auto& [key, name] : track_names_) {
    const auto [node, track] = key;
    if (node != last_node) {
      sep();
      *out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      *out += std::to_string(pid_offset + node);
      *out += ",\"tid\":0,\"args\":{\"name\":\"";
      AppendJsonEscaped(out, process_prefix);
      *out += "node ";
      *out += std::to_string(node);
      *out += "\"}}";
      last_node = node;
    }
    sep();
    *out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    *out += std::to_string(pid_offset + node);
    *out += ",\"tid\":";
    *out += std::to_string(track);
    *out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, name);
    *out += "\"}}";
  }

  for (const Event& e : events_) {
    sep();
    *out += "{\"name\":\"";
    AppendJsonEscaped(out, Name(e.tag));
    *out += "\",\"ph\":\"";
    switch (e.phase) {
      case Phase::kBegin: *out += 'B'; break;
      case Phase::kEnd: *out += 'E'; break;
      case Phase::kInstant: *out += 'i'; break;
    }
    *out += "\",\"ts\":";
    AppendMicros(out, e.time);
    *out += ",\"pid\":";
    *out += std::to_string(pid_offset + e.node);
    *out += ",\"tid\":";
    *out += std::to_string(e.track);
    if (e.phase == Phase::kInstant) *out += ",\"s\":\"t\"";
    if (e.detail != kNoTag) {
      *out += ",\"args\":{\"detail\":\"";
      AppendJsonEscaped(out, Name(e.detail));
      *out += "\"}";
    }
    *out += "}";
  }
}

std::string Registry::ToChromeTraceJson() const {
  std::string body;
  AppendChromeTraceEvents(&body, 0, "");
  std::string out = "{\"traceEvents\":[\n";
  out += body;
  out += "\n]}\n";
  return out;
}

Table Registry::MetricsTable(std::string title) const {
  Table table(std::move(title));
  table.SetHeader({"metric", "count", "total", "mean", "min", "max"});

  // Collect non-zero counters and non-empty histograms, then emit in
  // name order so the table is stable across refactors of intern order.
  std::vector<std::pair<std::string_view, TagId>> rows;
  for (TagId id = 1; id < names_.size(); ++id) {
    if (counter(id) != 0 || histogram(id) != nullptr) {
      rows.emplace_back(names_[id], id);
    }
  }
  std::sort(rows.begin(), rows.end());

  for (const auto& [name, id] : rows) {
    if (const Histogram* h = histogram(id); h != nullptr && h->count() > 0) {
      table.Row()
          .Cell(std::string(name))
          .Cell(h->count())
          .Cell(h->sum(), 6)
          .Cell(h->mean(), 6)
          .Cell(h->min(), 6)
          .Cell(h->max(), 6);
    } else if (counter(id) != 0) {
      table.Row()
          .Cell(std::string(name))
          .Cell(counter(id))
          .Cell(counter(id))
          .Cell(std::string("-"))
          .Cell(std::string("-"))
          .Cell(std::string("-"));
    }
  }
  return table;
}

}  // namespace pstk::obs
