#include "obs/obs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pstk::obs {
namespace {

// Bucket index for a positive value: binary exponent shifted so the
// range [2^-32, 2^32) maps onto [0, 64).
int BucketFor(double value) {
  if (!(value > 0)) return 0;
  int exp = 0;
  (void)std::frexp(value, &exp);
  return std::clamp(exp + 32, 0, Histogram::kBuckets - 1);
}

// Minimal JSON string escaping: the tag vocabulary is ASCII identifiers,
// but user-supplied trace details may carry anything.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Virtual-time seconds -> trace microseconds, fixed 3 decimals so equal
// inputs always serialize to equal bytes.
void AppendMicros(std::string* out, SimTime seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  *out += buf;
}

}  // namespace

void Histogram::Record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<std::size_t>(BucketFor(value))];
}

Histogram Histogram::FromRaw(
    std::uint64_t count, double sum, double min, double max,
    const std::array<std::uint64_t, kBuckets>& buckets) {
  Histogram h;
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  h.buckets_ = buckets;
  return h;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
}

void Registry::Enable(bool on) {
  enabled_ = on;
  if (on && events_.capacity() < 4096) events_.reserve(4096);
}

TagId Registry::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lk(intern_mu_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

// ---------------------------------------------------------------------------
// Sharded recording
// ---------------------------------------------------------------------------

thread_local int Registry::tls_shard_ = -1;

void Registry::SetCurrentShard(int shard) { tls_shard_ = shard; }

void Registry::ConfigureShards(int shards) {
  shard_logs_.clear();
  shard_logs_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto log = std::make_unique<ShardLog>();
    if (enabled_) log->events.reserve(4096);
    shard_logs_.push_back(std::move(log));
  }
}

void Registry::MarkBlock(SimTime t, std::uint8_t kind, std::uint64_t key) {
  if (!enabled_) return;
  if (ShardLog* log = CurrentShardLog()) {
    log->blocks.push_back(ShardLog::Block{t, kind, key, log->events.size()});
  }
}

void Registry::MergeShards() {
  if (shard_logs_.empty()) return;

  // Fold counters and histograms (order-insensitive: plain sums).
  for (const auto& log : shard_logs_) {
    for (TagId tag = 0; tag < log->counters.size(); ++tag) {
      if (log->counters[tag] == 0) continue;
      if (tag >= counters_.size()) counters_.resize(names_.size(), 0);
      counters_[tag] += log->counters[tag];
    }
    for (const auto& [tag, hist] : log->histograms) {
      histograms_[tag].Merge(hist);
    }
  }

  // K-way merge of event blocks. Each shard's blocks are already in its
  // local scheduling order; the global min-first scheduler would always
  // have picked the smallest (t, kind, key) among the shards' next
  // actions, so repeatedly emitting the smallest block head reproduces
  // the single-threaded event order exactly.
  struct Cursor {
    ShardLog* log;
    std::size_t block = 0;
  };
  std::vector<Cursor> cursors;
  std::size_t total_events = events_.size();
  for (const auto& log : shard_logs_) {
    // Defensive: events recorded before any MarkBlock sort to the front.
    if (!log->events.empty() &&
        (log->blocks.empty() || log->blocks.front().begin > 0)) {
      log->blocks.insert(log->blocks.begin(),
                         ShardLog::Block{log->events.front().time, 0, 0, 0});
    }
    total_events += log->events.size();
    if (!log->blocks.empty()) cursors.push_back(Cursor{log.get()});
  }
  events_.reserve(total_events);

  auto before = [](const ShardLog::Block& a, const ShardLog::Block& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.key < b.key;
  };
  while (!cursors.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < cursors.size(); ++i) {
      if (before(cursors[i].log->blocks[cursors[i].block],
                 cursors[best].log->blocks[cursors[best].block])) {
        best = i;
      }
    }
    Cursor& c = cursors[best];
    const ShardLog::Block& blk = c.log->blocks[c.block];
    const std::size_t end = c.block + 1 < c.log->blocks.size()
                                ? c.log->blocks[c.block + 1].begin
                                : c.log->events.size();
    events_.insert(events_.end(), c.log->events.begin() + blk.begin,
                   c.log->events.begin() + end);
    if (++c.block == c.log->blocks.size()) {
      cursors.erase(cursors.begin() + static_cast<std::ptrdiff_t>(best));
    }
  }

  shard_logs_.clear();
}

std::uint64_t Registry::CounterByName(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : counter(it->second);
}

const Histogram* Registry::histogram(TagId tag) const {
  auto it = histograms_.find(tag);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::SetTrackName(std::int32_t node, std::uint32_t track,
                            std::string_view name) {
  track_names_[{node, track}] = std::string(name);
}

void Registry::AppendChromeTraceEvents(std::string* out, int pid_offset,
                                       std::string_view process_prefix) const {
  bool first = out->empty();
  auto sep = [&] {
    if (!first) *out += ",\n";
    first = false;
  };

  // Metadata: one process_name per distinct node, one thread_name per
  // named track. Maps iterate in key order, so output is deterministic.
  std::int32_t last_node = -1;
  for (const auto& [key, name] : track_names_) {
    const auto [node, track] = key;
    if (node != last_node) {
      sep();
      *out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      *out += std::to_string(pid_offset + node);
      *out += ",\"tid\":0,\"args\":{\"name\":\"";
      AppendJsonEscaped(out, process_prefix);
      *out += "node ";
      *out += std::to_string(node);
      *out += "\"}}";
      last_node = node;
    }
    sep();
    *out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    *out += std::to_string(pid_offset + node);
    *out += ",\"tid\":";
    *out += std::to_string(track);
    *out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, name);
    *out += "\"}}";
  }

  for (const Event& e : events_) {
    sep();
    *out += "{\"name\":\"";
    AppendJsonEscaped(out, Name(e.tag));
    *out += "\",\"ph\":\"";
    switch (e.phase) {
      case Phase::kBegin: *out += 'B'; break;
      case Phase::kEnd: *out += 'E'; break;
      case Phase::kInstant: *out += 'i'; break;
    }
    *out += "\",\"ts\":";
    AppendMicros(out, e.time);
    *out += ",\"pid\":";
    *out += std::to_string(pid_offset + e.node);
    *out += ",\"tid\":";
    *out += std::to_string(e.track);
    if (e.phase == Phase::kInstant) *out += ",\"s\":\"t\"";
    if (e.detail != kNoTag) {
      *out += ",\"args\":{\"detail\":\"";
      AppendJsonEscaped(out, Name(e.detail));
      *out += "\"}";
    }
    *out += "}";
  }
}

std::string Registry::ToChromeTraceJson() const {
  std::string body;
  AppendChromeTraceEvents(&body, 0, "");
  std::string out = "{\"traceEvents\":[\n";
  out += body;
  out += "\n]}\n";
  return out;
}

Table Registry::MetricsTable(std::string title) const {
  Table table(std::move(title));
  table.SetHeader({"metric", "count", "total", "mean", "min", "max"});

  // Collect non-zero counters and non-empty histograms, then emit in
  // name order so the table is stable across refactors of intern order.
  std::vector<std::pair<std::string_view, TagId>> rows;
  for (TagId id = 1; id < names_.size(); ++id) {
    if (counter(id) != 0 || histogram(id) != nullptr) {
      rows.emplace_back(names_[id], id);
    }
  }
  std::sort(rows.begin(), rows.end());

  for (const auto& [name, id] : rows) {
    if (const Histogram* h = histogram(id); h != nullptr && h->count() > 0) {
      table.Row()
          .Cell(std::string(name))
          .Cell(h->count())
          .Cell(h->sum(), 6)
          .Cell(h->mean(), 6)
          .Cell(h->min(), 6)
          .Cell(h->max(), 6);
    } else if (counter(id) != 0) {
      table.Row()
          .Cell(std::string(name))
          .Cell(counter(id))
          .Cell(counter(id))
          .Cell(std::string("-"))
          .Cell(std::string("-"))
          .Cell(std::string("-"));
    }
  }
  return table;
}

}  // namespace pstk::obs
