// Typed, deterministic instrumentation bus.
//
// Every layer of the stack (sim, net, storage, dfs, mr, spark) publishes
// into one Registry per simulation engine instead of keeping ad-hoc
// counters. Three primitives:
//
//  * counters   — always on: a branch plus an integer add;
//  * histograms — value distributions (message sizes, op latencies),
//                 recorded only while the registry is enabled;
//  * spans      — begin/end (and instant) events in virtual time on a
//                 (node, track) pair, recorded only while enabled.
//
// All strings are interned up front to TagIds, so the hot path never
// allocates. Exports are deterministic: identical simulations produce
// byte-identical Chrome trace_event JSON and identical metrics tables.
//
// Sharded recording: a parallel (sharded) simulation engine calls
// ConfigureShards(n) before its run and sets a thread-local shard slot on
// every worker thread (SetCurrentShard). While shard logs exist, every
// counter / histogram / event recorded from a worker thread lands in that
// shard's private log — no cross-thread contention on the hot path — and
// MergeShards() folds everything back into the main stream afterwards.
// Events merge *deterministically*: the engine brackets each scheduler
// action (one process dispatch or one engine event) with MarkBlock, and
// the merge is a k-way walk over block boundaries keyed by
// (virtual time, action kind, action key), which reproduces exactly the
// global min-first order a single-threaded engine would have recorded.
// Intern is mutex-protected so shard threads may intern concurrently;
// TagIds may then depend on interleaving, but every exporter resolves tags
// by *name*, so exported bytes stay deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"
#include "common/units.h"

namespace pstk::obs {

/// Interned string id. 0 is reserved for "no tag".
using TagId = std::uint32_t;
inline constexpr TagId kNoTag = 0;

/// Power-of-two-bucketed histogram with exact count/sum/min/max. Buckets
/// cover ~[2^-32, 2^32) (bucket = binary exponent + 32, clamped), which
/// spans nanoseconds to gigabytes for the latency/size samples we record.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(double value);

  /// Fold another histogram into this one (bucket-wise; count/sum/min/max
  /// combine exactly). Used when merging per-shard logs.
  void Merge(const Histogram& other);

  /// Build a histogram from externally accumulated raw state (same bucket
  /// layout). Lets lock-free recorders (buf::Stats) publish into metrics
  /// tables. min/max may be approximations of the recorder's knowledge.
  [[nodiscard]] static Histogram FromRaw(
      std::uint64_t count, double sum, double min, double max,
      const std::array<std::uint64_t, kBuckets>& buckets);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

enum class Phase : std::uint8_t {
  kBegin,    // Chrome "B"
  kEnd,      // Chrome "E"
  kInstant,  // Chrome "i"
};

/// One recorded event. `node` exports as the Chrome pid, `track` as the
/// tid (the sim layer uses its Pid as the track).
struct Event {
  SimTime time = 0;
  std::int32_t node = 0;
  std::uint32_t track = 0;
  TagId tag = kNoTag;
  TagId detail = kNoTag;
  Phase phase = Phase::kInstant;
  bool user = false;  // recorded via Context::Trace (compat shim filter)
};

/// The per-engine instrumentation bus. Single-threaded by default; a
/// sharded engine opts into per-shard logs (see the file comment), which
/// make recording safe from its worker threads without locking.
class Registry {
 public:
  Registry() { names_.push_back(""); }  // TagId 0 = kNoTag

  /// Turn span/histogram recording on or off. Enabling reserves event
  /// storage so recording does not reallocate mid-run.
  void Enable(bool on);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Intern `name`, returning a stable id. Idempotent. Safe to call from
  /// shard worker threads (serialized internally).
  TagId Intern(std::string_view name);
  [[nodiscard]] const std::string& Name(TagId tag) const { return names_[tag]; }

  // -- sharded recording ---------------------------------------------------

  /// Create `shards` private logs. Until MergeShards(), a thread whose
  /// shard slot is set (SetCurrentShard) records into its own log.
  void ConfigureShards(int shards);
  /// Bind the calling thread to shard `shard` of whatever sharded
  /// registries it touches (-1 clears the slot). Thread-local.
  static void SetCurrentShard(int shard);
  /// Start a new merge block in the current shard's log: all events
  /// recorded until the next MarkBlock belong to one scheduler action.
  /// `kind` orders actions at equal time (engine events before process
  /// dispatches); `key` breaks remaining ties (event seq / pid) exactly
  /// like the engine's scheduling heaps do.
  void MarkBlock(SimTime t, std::uint8_t kind, std::uint64_t key);
  /// Fold every shard log back into the main stream: counters summed,
  /// histograms merged, events k-way-merged in block order. Destroys the
  /// shard logs; the registry reverts to single-threaded recording.
  void MergeShards();
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shard_logs_.size());
  }

  // -- counters (always on) ----------------------------------------------
  void Add(TagId tag, std::uint64_t delta = 1) {
    if (ShardLog* log = CurrentShardLog()) {
      log->Add(tag, delta);
      return;
    }
    if (tag >= counters_.size()) counters_.resize(names_.size(), 0);
    counters_[tag] += delta;
  }
  [[nodiscard]] std::uint64_t counter(TagId tag) const {
    return tag < counters_.size() ? counters_[tag] : 0;
  }
  [[nodiscard]] std::uint64_t CounterByName(std::string_view name) const;

  // -- histograms (gated on enabled) -------------------------------------
  void Observe(TagId tag, double value) {
    if (!enabled_) return;
    if (ShardLog* log = CurrentShardLog()) {
      log->histograms[tag].Record(value);
      return;
    }
    histograms_[tag].Record(value);
  }
  /// nullptr if nothing was recorded under `tag`.
  [[nodiscard]] const Histogram* histogram(TagId tag) const;
  /// Fold an externally built histogram into `tag` (bypasses the enabled_
  /// gate: used by bench harnesses publishing process-global stats into a
  /// finished run's table).
  void MergeHistogram(TagId tag, const Histogram& h) {
    if (h.count() > 0) histograms_[tag].Merge(h);
  }

  // -- spans / instants (gated on enabled) -------------------------------
  void BeginSpan(std::int32_t node, std::uint32_t track, TagId tag,
                 SimTime t) {
    if (enabled_) Push({t, node, track, tag, kNoTag, Phase::kBegin, false});
  }
  void EndSpan(std::int32_t node, std::uint32_t track, TagId tag, SimTime t) {
    if (enabled_) Push({t, node, track, tag, kNoTag, Phase::kEnd, false});
  }
  void Instant(std::int32_t node, std::uint32_t track, TagId tag, SimTime t,
               TagId detail = kNoTag, bool user = false) {
    if (enabled_) Push({t, node, track, tag, detail, Phase::kInstant, user});
  }

  /// Name a (node, track) pair for the trace viewer (thread_name metadata).
  void SetTrackName(std::int32_t node, std::uint32_t track,
                    std::string_view name);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // -- exporters ----------------------------------------------------------

  /// Complete Chrome trace_event JSON ({"traceEvents": [...]}) with
  /// pid=node and tid=track, timestamps in microseconds. Deterministic:
  /// identical event sequences serialize byte-identically.
  [[nodiscard]] std::string ToChromeTraceJson() const;

  /// Append this registry's events as comma-separated JSON objects (no
  /// surrounding brackets) with every pid offset by `pid_offset` and
  /// process names prefixed by `process_prefix` — lets a bench harness
  /// merge several runs into one trace file.
  void AppendChromeTraceEvents(std::string* out, int pid_offset,
                               std::string_view process_prefix) const;

  /// Counter + histogram summary (name-sorted, zero entries skipped),
  /// rendered through the shared table emitter.
  [[nodiscard]] Table MetricsTable(std::string title) const;

 private:
  /// Private per-shard recording buffer (see ConfigureShards).
  struct ShardLog {
    /// One scheduler action's worth of events: everything in
    /// events[begin ..) until the next block's begin.
    struct Block {
      SimTime t;
      std::uint8_t kind;  // 0 = engine event, 1 = process dispatch
      std::uint64_t key;  // event seq / pid — the scheduler's tie-break
      std::size_t begin;  // index into events
    };
    std::vector<Event> events;
    std::vector<Block> blocks;
    std::vector<std::uint64_t> counters;
    std::map<TagId, Histogram> histograms;

    void Add(TagId tag, std::uint64_t delta) {
      if (tag >= counters.size()) counters.resize(tag + 1, 0);
      counters[tag] += delta;
    }
  };

  [[nodiscard]] ShardLog* CurrentShardLog() {
    if (shard_logs_.empty()) return nullptr;
    const int s = tls_shard_;
    if (s < 0 || s >= static_cast<int>(shard_logs_.size())) return nullptr;
    return shard_logs_[static_cast<std::size_t>(s)].get();
  }

  void Push(const Event& e) {
    if (ShardLog* log = CurrentShardLog()) {
      log->events.push_back(e);
    } else {
      events_.push_back(e);
    }
  }

  static thread_local int tls_shard_;

  bool enabled_ = false;
  std::mutex intern_mu_;  // shard threads intern user trace tags concurrently
  std::map<std::string, TagId, std::less<>> index_;
  std::vector<std::string> names_;
  std::vector<std::uint64_t> counters_;
  std::map<TagId, Histogram> histograms_;
  std::vector<Event> events_;
  std::vector<std::unique_ptr<ShardLog>> shard_logs_;
  std::map<std::pair<std::int32_t, std::uint32_t>, std::string> track_names_;
};

}  // namespace pstk::obs
