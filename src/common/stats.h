// Streaming statistics and fixed-bucket histograms for benchmark reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pstk {

/// Welford-style running summary: count/mean/variance/min/max.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Keeps every sample; exact quantiles. Fine at benchmark scales.
class Sample {
 public:
  void Add(double x) { values_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double Quantile(double q) const;
  [[nodiscard]] double Median() const { return Quantile(0.5); }
  [[nodiscard]] double Mean() const;
  [[nodiscard]] double Min() const { return Quantile(0.0); }
  [[nodiscard]] double Max() const { return Quantile(1.0); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Log-2 bucketed histogram (for message-size / value distributions).
class Log2Histogram {
 public:
  void Add(std::uint64_t value);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  /// Bucket i covers [2^i, 2^(i+1)); bucket 0 also includes 0.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace pstk
