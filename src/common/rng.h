// Deterministic, splittable RNG (SplitMix64 seeding a xoshiro256**).
// Every stochastic component takes an explicit Rng so whole-cluster runs
// replay bit-identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace pstk {

namespace internal {
constexpr std::uint64_t SplitMix64Next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace internal

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDDA7A5EEDDA7AULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = internal::SplitMix64Next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = internal::Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = internal::Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t Below(std::uint64_t bound) {
    PSTK_DCHECK(bound > 0);
    // 128-bit multiply-shift; bias negligible for our simulation purposes
    // when bound << 2^64, exact via rejection otherwise.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t x = Next();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    PSTK_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + Uniform() * (hi - lo); }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Power-law (Zipf-like) sample in [1, n] with exponent alpha via
  /// inverse-CDF approximation; used by the graph generator.
  std::uint64_t PowerLaw(std::uint64_t n, double alpha);

  /// Derive an independent child stream (for per-node / per-task RNGs).
  Rng Split() { return Rng(Next() ^ 0xA02FB1E552F5BDDBULL); }

 private:
  std::uint64_t state_[4];
};

inline std::uint64_t Rng::PowerLaw(std::uint64_t n, double alpha) {
  PSTK_DCHECK(n >= 1);
  // Inverse transform of the continuous Pareto CDF truncated to [1, n+1),
  // floored; close enough to Zipf for workload-shaping purposes.
  const double u = Uniform();
  const double one_minus = 1.0 - alpha;
  double x;
  if (alpha == 1.0) {
    x = std::exp(u * std::log(static_cast<double>(n) + 1.0));
  } else {
    const double hi = std::pow(static_cast<double>(n) + 1.0, one_minus);
    x = std::pow(1.0 + u * (hi - 1.0), 1.0 / one_minus);
  }
  auto result = static_cast<std::uint64_t>(x);
  if (result < 1) result = 1;
  if (result > n) result = n;
  return result;
}

}  // namespace pstk
