// ASCII table / CSV emitter used by the benchmark harnesses to print the
// paper-style tables and figure series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pstk {

class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Convenience for mixed-type rows.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& Cell(std::string value);
    RowBuilder& Cell(double value, int precision = 3);
    RowBuilder& Cell(std::int64_t value);
    RowBuilder& Cell(std::uint64_t value);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(*this); }

  [[nodiscard]] std::string ToAscii() const;
  [[nodiscard]] std::string ToCsv() const;
  void Print() const;
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pstk
