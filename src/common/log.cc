#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pstk {
namespace {

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("PSTK_LOG_LEVEL")) {
      return static_cast<int>(ParseLogLevel(env));
    }
    return static_cast<int>(LogLevel::kWarn);
  }();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStorage().load()); }

void SetLogLevel(LogLevel level) { LevelStorage().store(static_cast<int>(level)); }

LogLevel ParseLogLevel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace internal {

void LogWrite(LogLevel level, const char* module, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%-5s] %-8s %s\n", LevelName(level), module,
               message.c_str());
}

}  // namespace internal
}  // namespace pstk
