// Key=value configuration with typed getters; benches use it to expose
// sweep parameters via the command line ("key=value" arguments).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace pstk {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; unknown tokens yield InvalidArgument.
  static Result<Config> FromArgs(int argc, const char* const* argv);

  void Set(const std::string& key, std::string value);
  [[nodiscard]] bool Has(const std::string& key) const;

  [[nodiscard]] std::string GetString(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace pstk
