// Byte / time / rate unit helpers used throughout the cost models.
#pragma once

#include <cstdint>
#include <string>

namespace pstk {

using Bytes = std::uint64_t;

constexpr Bytes kKiB = 1024ULL;
constexpr Bytes kMiB = 1024ULL * kKiB;
constexpr Bytes kGiB = 1024ULL * kMiB;
constexpr Bytes kTiB = 1024ULL * kGiB;

constexpr Bytes KiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kKiB)); }
constexpr Bytes MiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr Bytes GiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }

// Simulated time is a double in seconds.
using SimTime = double;

constexpr SimTime Nanos(double n) { return n * 1e-9; }
constexpr SimTime Micros(double n) { return n * 1e-6; }
constexpr SimTime Millis(double n) { return n * 1e-3; }
constexpr SimTime Seconds(double n) { return n; }

/// Bandwidth in bytes per second; helpers for common NIC/disk ratings.
using Rate = double;

constexpr Rate GBps(double n) { return n * 1e9; }
constexpr Rate MBps(double n) { return n * 1e6; }
/// Gigabits per second (network ratings are usually in bits).
constexpr Rate Gbps(double n) { return n * 1e9 / 8.0; }

/// Time to move `bytes` at `rate` bytes/sec.
constexpr SimTime TransferTime(Bytes bytes, Rate rate) {
  return static_cast<double>(bytes) / rate;
}

/// "8.2s", "46.8s", "312ms", "4.5us" style formatting for reports.
std::string FormatDuration(SimTime seconds);
/// "80 GB", "4 KiB" style formatting.
std::string FormatBytes(Bytes bytes);

}  // namespace pstk
