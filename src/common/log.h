// Minimal leveled logger. Thread-safe; level settable globally or via the
// PSTK_LOG_LEVEL environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace pstk {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
/// Parse "debug", "INFO", ... ; returns kInfo on unknown input.
LogLevel ParseLogLevel(const std::string& name);

namespace internal {

void LogWrite(LogLevel level, const char* module, const std::string& message);

/// RAII line builder: pstk::internal::LogLine(level, "sim") << "x=" << x;
class LogLine {
 public:
  LogLine(LogLevel level, const char* module) : level_(level), module_(module) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogWrite(level_, module_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* module_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pstk

#define PSTK_LOG(level, module)                        \
  if (static_cast<int>(level) <                        \
      static_cast<int>(::pstk::GetLogLevel())) {       \
  } else                                               \
    ::pstk::internal::LogLine(level, module)

#define PSTK_TRACE(module) PSTK_LOG(::pstk::LogLevel::kTrace, module)
#define PSTK_DEBUG(module) PSTK_LOG(::pstk::LogLevel::kDebug, module)
#define PSTK_INFO(module) PSTK_LOG(::pstk::LogLevel::kInfo, module)
#define PSTK_WARN(module) PSTK_LOG(::pstk::LogLevel::kWarn, module)
#define PSTK_ERROR(module) PSTK_LOG(::pstk::LogLevel::kError, module)
