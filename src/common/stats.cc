#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace pstk {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Sample::Quantile(double q) const {
  PSTK_CHECK_MSG(!values_.empty(), "quantile of empty sample");
  PSTK_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (values_.size() == 1) return values_[0];
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Sample::Mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

void Log2Histogram::Add(std::uint64_t value) {
  std::size_t bucket = 0;
  while ((1ULL << (bucket + 1)) <= value && bucket < 63) ++bucket;
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++total_;
}

std::string Log2Histogram::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    oss << "[2^" << i << "): " << buckets_[i] << "  ";
  }
  return oss.str();
}

}  // namespace pstk
