#include "common/config.h"

#include <cstdlib>

#include "common/strings.h"

namespace pstk {

Result<Config> Config::FromArgs(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      return InvalidArgument("expected key=value, got '" + arg + "'");
    }
    config.Set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return config;
}

void Config::Set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}

bool Config::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

std::int64_t Config::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace pstk
