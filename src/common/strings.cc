#include "common/strings.h"

#include <cctype>

namespace pstk {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitNonEmpty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(text, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace pstk
