// Lightweight Status / Result<T> error handling.
//
// ParaStack uses Status for *expected* runtime failures (file not found,
// datanode dead, MPI count overflow) and assertions/exceptions only for
// programming errors, following the C++ Core Guidelines (E.*).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace pstk {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,   // e.g. node/datanode down
  kDataLoss,      // unrecoverable data loss
  kAborted,       // job aborted (e.g. MPI fault)
  kUnimplemented,
  kInternal,
};

/// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// Value-semantic status: either OK or a (code, message) pair.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status DataLoss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status Aborted(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

/// Thrown only when a caller asserts an operation cannot fail
/// (Result::value() on an error) — a programming error.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(const Status& status)
      : std::runtime_error(status.ToString()), status_(status) {}
  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Result<T>: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  /// Access the value; throws StatusError if this holds an error.
  [[nodiscard]] T& value() & {
    Ensure();
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    Ensure();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    Ensure();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  void Ensure() const {
    if (!ok()) throw StatusError(std::get<Status>(data_));
  }
  std::variant<T, Status> data_;
};

}  // namespace pstk

// Propagate an error Status from an expression.
#define PSTK_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::pstk::Status pstk_status_ = (expr);           \
    if (!pstk_status_.ok()) return pstk_status_;    \
  } while (0)

// Assign the value of a Result<T> expression or propagate its error.
#define PSTK_ASSIGN_OR_RETURN(lhs, expr)            \
  auto pstk_result_##__LINE__ = (expr);             \
  if (!pstk_result_##__LINE__.ok())                 \
    return pstk_result_##__LINE__.status();         \
  lhs = std::move(pstk_result_##__LINE__).value()
