#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pstk {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

Table::RowBuilder& Table::RowBuilder::Cell(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  cells_.emplace_back(buf);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.AddRow(std::move(cells_)); }

std::string Table::ToAscii() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit_row = [&](std::ostringstream& oss,
                      const std::vector<std::string>& row) {
    oss << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      oss << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    oss << "\n";
  };
  auto emit_sep = [&](std::ostringstream& oss) {
    oss << "+";
    for (std::size_t w : widths) oss << std::string(w + 2, '-') << "+";
    oss << "\n";
  };

  std::ostringstream oss;
  if (!title_.empty()) oss << title_ << "\n";
  emit_sep(oss);
  if (!header_.empty()) {
    emit_row(oss, header_);
    emit_sep(oss);
  }
  for (const auto& row : rows_) emit_row(oss, row);
  emit_sep(oss);
  return oss.str();
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << ",";
      oss << escape(row[i]);
    }
    oss << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void Table::Print() const { std::fputs(ToAscii().c_str(), stdout); }

}  // namespace pstk
