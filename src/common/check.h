// Invariant checks for programming errors (C++ Core Guidelines I.6/E.12).
// PSTK_CHECK aborts with a message; PSTK_DCHECK compiles out in NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pstk::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "PSTK_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace pstk::internal

#define PSTK_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond))                                                        \
      ::pstk::internal::CheckFailed(__FILE__, __LINE__, #cond, "");     \
  } while (0)

#define PSTK_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream pstk_oss_;                                     \
      pstk_oss_ << msg; /* NOLINT */                                    \
      ::pstk::internal::CheckFailed(__FILE__, __LINE__, #cond,          \
                                    pstk_oss_.str());                   \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define PSTK_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define PSTK_DCHECK(cond) PSTK_CHECK(cond)
#endif
