#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace pstk {

std::string FormatDuration(SimTime seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3gs", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3gms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3gus", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gns", seconds * 1e9);
  }
  return buf;
}

std::string FormatBytes(Bytes bytes) {
  char buf[64];
  const auto b = static_cast<double>(bytes);
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.3gTiB", b / static_cast<double>(kTiB));
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.3gGiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.3gMiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.3gKiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace pstk
