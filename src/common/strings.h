// Small string helpers (split/trim/join/prefix) shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pstk {

std::vector<std::string> Split(std::string_view text, char sep);
/// Split, dropping empty fields.
std::vector<std::string> SplitNonEmpty(std::string_view text, char sep);
std::string_view TrimWhitespace(std::string_view text);
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string ToLower(std::string_view text);

}  // namespace pstk
