// pstk::ckpt — coordinated checkpoint/restart for the HPC runtimes.
//
// The paper's fault-tolerance axis (§VI-D) is qualitative: Spark recovers
// from lineage, Hadoop re-executes tasks, MPI aborts. This module gives the
// HPC side a real recovery path so the gap can be *measured*
// (bench/ablation_recovery.cc, "Fig. FT"): MPI/SHMEM jobs opt into a
// `CkptPolicy`, snapshot registered application state at collective
// boundaries, and a `RestartManager` replays the job from the last
// restorable snapshot after a node failure instead of today's
// whole-job abort (which stays the default).
//
// Protocol note — why not Chandy–Lamport: a distributed snapshot algorithm
// exists to capture a consistent cut of an *asynchronous* computation,
// where channels may hold in-flight messages when the marker arrives. Our
// checkpoints are taken only at collective boundaries (right after
// Barrier/Allreduce/SumToAll return on every rank). MiniMPI collectives
// complete only after every participant contributed and all collective
// traffic has been consumed, so at the boundary every channel is empty and
// the set of per-rank states IS a consistent cut by construction. A
// blocking coordinated checkpoint (the scheme used by BLCR/SCR-era MPI
// codes, which also quiesce at a barrier) is therefore sufficient; marker
// flooding would add cost and no safety. What still needs care is
// *atomicity across ranks*: an epoch becomes restorable only once every
// rank's fragment is durably written (2-phase: write-all, then commit),
// and restart must pick an epoch whose every fragment survived — both are
// enforced here and asserted by verify's ckpt-consistency checker.
//
// Snapshot durability model (mirrors SCR's storage hierarchy on Table II
// disks): `Target::kLocalSsd` writes each rank's fragment to its node's
// scratch SSD — fast, but fragments die with the node, so an un-replicated
// local snapshot usually degrades restart to epoch 0 (= abort-rerun with
// extra overhead). `replicate` adds a buddy copy on the next node (SCR
// "partner" scheme): one fabric transfer + one remote SSD write buys
// single-failure survivability. `Target::kNfs` writes all fragments to one
// shared NFS server disk, inheriting Table II's NFS bandwidth *and* the
// contention model — checkpoint cost grows with job width, which is what
// makes the Young/Daly interval trade-off non-trivial.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"
#include "mpi/mpi.h"
#include "serde/serde.h"
#include "shmem/shmem.h"
#include "sim/fault.h"
#include "storage/disk.h"

namespace pstk::ckpt {

/// Where snapshot fragments are written.
enum class Target {
  kLocalSsd,  // per-node scratch SSD (fragments lost with the node)
  kNfs,       // one shared NFS server (survives node loss; contended)
};

/// Opt-in checkpoint/restart configuration for one HPC job.
struct CkptPolicy {
  /// Minimum virtual time between snapshots; <= 0 disables checkpointing
  /// (the RestartManager then models abort + full rerun).
  SimTime interval = 0;
  Target target_disk = Target::kLocalSsd;
  /// Buddy-replicate each local-SSD fragment to the next node.
  bool replicate = false;
  /// Scheduler requeue + relaunch penalty charged per restart (the cost
  /// lineage-based recovery avoids entirely).
  SimTime restart_delay = Seconds(60);
  int max_restarts = 64;
  /// CPU cost of serializing/deserializing state (≈ memcpy + encode).
  SimTime serialize_cpu_per_byte = 1.0 / 2e9;
};

/// Young's (and Daly's first-order) optimal checkpoint interval:
/// sqrt(2 * C * MTBF) for per-checkpoint cost C. Clamped below by C.
[[nodiscard]] SimTime YoungDalyInterval(SimTime write_cost, SimTime mtbf);

/// Snapshot state that outlives restart attempts (the durable storage
/// contents, tracked logically). Each epoch holds one serialized fragment
/// per rank plus the set of nodes hosting copies of it; an epoch is
/// restorable while every fragment has >= 1 surviving copy.
class SnapshotStore {
 public:
  /// Node id marking a copy on the NFS server (never dropped).
  static constexpr int kNfsNode = -1;

  explicit SnapshotStore(int nranks);

  [[nodiscard]] int nranks() const { return nranks_; }

  /// Record rank's fragment for `epoch`. Returns true when this write
  /// completed the epoch (all ranks present) — the commit point.
  bool RecordWrite(int epoch, int rank, serde::Buffer fragment,
                   std::vector<int> copies);

  /// All copies hosted on `node` are gone (node failure wipes scratch).
  void DropNode(int node);

  /// Latest epoch restorable right now, or nullopt to start from scratch.
  [[nodiscard]] std::optional<int> LatestRestorableEpoch() const;

  [[nodiscard]] const serde::Buffer* Fragment(int epoch, int rank) const;
  /// Nodes (or kNfsNode) still holding copies of the fragment.
  [[nodiscard]] const std::vector<int>& FragmentCopies(int epoch,
                                                       int rank) const;

 private:
  struct FragmentEntry {
    serde::Buffer data;
    std::vector<int> copies;  // node ids (or kNfsNode) holding it
    bool written = false;
  };
  struct Epoch {
    std::vector<FragmentEntry> fragments;  // by rank
    int written = 0;
  };

  int nranks_;
  std::map<int, Epoch> epochs_;
};

/// Per-attempt checkpoint service shared by all ranks of one SPMD job.
/// Every rank calls `Checkpoint(ctx, rank, node, epoch, state)` at the same
/// collective boundary; the first arrival decides whether the epoch is due
/// (policy interval elapsed) and the rest follow that decision, so the
/// choice is uniform across ranks by construction. See the lint rule
/// `ckpt-outside-collective` for the misuse this forbids.
class CheckpointCoordinator {
 public:
  CheckpointCoordinator(cluster::Cluster& cluster, SnapshotStore& store,
                        const CkptPolicy& policy);

  /// Epoch this attempt restores from (nullopt = fresh start at epoch 0).
  [[nodiscard]] std::optional<int> restore_epoch() const {
    return restore_epoch_;
  }

  /// Fetch + charge the restore of this rank's fragment (disk read on the
  /// snapshot target, deserialize CPU). Returns nullptr on a fresh start.
  const serde::Buffer* Restore(sim::Context& ctx, int rank, int node);

  /// Maybe-snapshot at a collective boundary. No-op unless the epoch is
  /// due per the policy interval; when due, serializes (CPU), writes the
  /// fragment to the target disk (+ optional buddy replica), and commits
  /// the epoch once the last rank's fragment landed.
  void Checkpoint(sim::Context& ctx, int rank, int node, int epoch,
                  const serde::Buffer& state);

  // --- attempt stats ------------------------------------------------------
  [[nodiscard]] int commits() const { return commits_; }
  [[nodiscard]] Bytes bytes_written() const { return bytes_written_; }
  /// Local commit time of the given epoch, if it committed this attempt.
  [[nodiscard]] std::optional<SimTime> CommitTime(int epoch) const;

 private:
  [[nodiscard]] std::shared_ptr<storage::Disk> TargetDisk(int node);

  cluster::Cluster& cluster_;
  SnapshotStore& store_;
  CkptPolicy policy_;
  std::shared_ptr<storage::Disk> nfs_;      // lazily built for Target::kNfs
  std::shared_ptr<net::Fabric> fabric_;     // for buddy replication
  std::optional<int> restore_epoch_;
  std::map<int, bool> due_;                 // epoch -> first-arrival decision
  std::optional<SimTime> last_due_time_;    // interval anchor
  std::map<int, SimTime> commit_times_;
  int commits_ = 0;
  Bytes bytes_written_ = 0;
  struct Tags {
    obs::TagId writes = obs::kNoTag;
    obs::TagId bytes = obs::kNoTag;
    obs::TagId replica_bytes = obs::kNoTag;
    obs::TagId commits = obs::kNoTag;
    obs::TagId restores = obs::kNoTag;
    obs::TagId write_time = obs::kNoTag;  // histogram: ckpt.time.write
  };
  Tags tags_;
};

/// Outcome of a checkpointed (or abort-rerun) job under a fault plan.
struct RecoveryOutcome {
  bool completed = false;  // false: still failing after max_restarts
  int attempts = 0;
  int restarts = 0;
  int checkpoints_committed = 0;
  Bytes snapshot_bytes = 0;
  /// Global time-to-solution: every attempt's span + restart delays.
  SimTime time_to_solution = 0;
  /// Virtual seconds of computed-then-lost work replayed after rollbacks.
  SimTime rollback_work = 0;
};

/// Cluster shape + per-attempt hooks for a recoverable HPC job.
struct HpcJob {
  cluster::ClusterSpec spec;
  int procs = 0;
  int procs_per_node = 0;
  /// Execution backend for every attempt's engine. Recovery outcomes are
  /// backend-invariant (tests/ckpt_test.cc checks fibers == threads); the
  /// field exists so sweeps can pin one explicitly.
  sim::Backend backend = sim::DefaultBackend();
  /// Shard layout for every attempt's engine. A tightly coupled SPMD job
  /// must keep all of its ranks on one shard (the framework layers
  /// interact at zero lookahead), so sharded hosts should pin
  /// shard_of_node to a single shard for this job's nodes; outcomes are
  /// shard-invariant (ckpt_test.cc checks 1 shard == 8 shards).
  sim::ShardOptions shard_options;
  /// Called after engine+cluster construction, before ranks spawn — attach
  /// observability, install checkers, stage data.
  std::function<void(sim::Engine&, cluster::Cluster&)> on_attempt;
  /// Called after each attempt's engine ran (inspect obs/verify state).
  std::function<void(sim::Engine&, int attempt, bool completed)>
      on_attempt_end;
};

/// Drives restart attempts for a gang-scheduled SPMD job under a fault
/// plan (fault times are global, measured from first submission). Each
/// attempt runs in a fresh engine on the same allocation: the failed node
/// comes back rebooted after `restart_delay` — with its scratch (and any
/// snapshot fragments on it) wiped, which is exactly why `replicate` /
/// `Target::kNfs` matter. Only the earliest not-yet-consumed fault is
/// injected per attempt: once it kills the job, later faults belong to
/// later attempts; faults landing between attempts (while the job sits in
/// the requeue) hit no processes, matching gang-scheduler semantics.
class RestartManager {
 public:
  RestartManager(CkptPolicy policy, sim::FaultPlan faults);

  using MpiBody = std::function<void(mpi::Comm&, CheckpointCoordinator&)>;
  using ShmemBody = std::function<void(shmem::Pe&, CheckpointCoordinator&)>;

  Result<RecoveryOutcome> RunMpi(const HpcJob& job, const MpiBody& body,
                                 const mpi::MpiOptions& options = {});
  Result<RecoveryOutcome> RunShmem(const HpcJob& job, const ShmemBody& body,
                                   const shmem::ShmemOptions& options = {});

 private:
  /// Shared attempt loop; `spawn` wires the runtime-specific world and
  /// returns its job-end accessor.
  Result<RecoveryOutcome> RunLoop(
      const HpcJob& job,
      const std::function<std::function<SimTime()>(
          sim::Engine&, cluster::Cluster&, CheckpointCoordinator&)>& spawn);

  CkptPolicy policy_;
  sim::FaultPlan faults_;
};

}  // namespace pstk::ckpt
